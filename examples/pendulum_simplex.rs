//! Figure 1 end-to-end: the inverted-pendulum Simplex architecture in
//! simulation — core safety controller, non-core complex controller, and
//! the Lyapunov-envelope monitor deciding between them.
//!
//! Runs three scenarios: a well-behaved non-core controller, a buggy one
//! emitting garbage, and one that goes silent. In all three the monitored
//! core keeps the pendulum upright.
//!
//! ```text
//! cargo run --example pendulum_simplex
//! ```

use simplex_sim::{ExecutiveConfig, Fault, SimplexExecutive};

fn run_scenario(name: &str, fault: Fault) {
    let cfg = ExecutiveConfig { fault, steps: 1500, ..Default::default() };
    let summary = SimplexExecutive::new(cfg).run();
    println!("--- scenario: {name} ---");
    println!("  steps simulated      : {}", summary.steps);
    println!(
        "  complex controller   : {} steps ({:.0}%)",
        summary.complex_steps,
        100.0 * summary.complex_steps as f64 / summary.steps.max(1) as f64
    );
    println!("  monitor rejections   : {}", summary.rejections);
    println!("  max Lyapunov value   : {:.2}", summary.max_lyapunov);
    println!(
        "  pendulum             : {}",
        if summary.plant_failed { "FELL" } else { "stayed upright" }
    );
    // A small strip chart of the angle over time.
    let n = summary.trace.len();
    if n > 0 {
        let cols = 60usize;
        let mut line = String::from("  |");
        for c in 0..cols {
            let idx = c * (n - 1) / cols.max(1);
            let angle = summary.trace[idx].state[2];
            line.push(if angle.abs() < 0.02 {
                '-'
            } else if angle.abs() < 0.1 {
                '~'
            } else {
                '*'
            });
        }
        line.push('|');
        println!("  angle trace          : {line}  (- upright, ~ wobble, * large)");
    }
    println!();
}

fn run_double_scenario(name: &str, fault: Fault) {
    let cfg = ExecutiveConfig {
        dt: 0.005,
        steps: 1500,
        initial_angle: 0.03,
        envelope: 80.0,
        fault,
        ..Default::default()
    };
    let summary = SimplexExecutive::new_double(cfg).run();
    println!("--- double pendulum, scenario: {name} ---");
    println!("  monitor rejections   : {}", summary.rejections);
    println!(
        "  both links           : {}",
        if summary.plant_failed { "FELL" } else { "stayed upright" }
    );
    println!();
}

fn main() {
    println!("=== Simplex architecture for the inverted pendulum (paper Figure 1) ===\n");
    run_scenario("well-behaved complex controller", Fault::None);
    run_scenario("buggy complex controller (garbage commands)", Fault::GarbageCommands);
    run_scenario("complex controller goes silent", Fault::Stale);

    println!("=== The same executive on the double inverted pendulum (third corpus system) ===\n");
    run_double_scenario("well-behaved complex controller", Fault::None);
    run_double_scenario("buggy complex controller", Fault::GarbageCommands);

    println!(
        "In every scenario the Lyapunov-envelope monitor (paper reference 22) kept the\n\
         plant recoverable: the run-time monitor is the mechanism SafeFlow's annotations\n\
         describe, and its guarantees are what unmonitored value flows bypass."
    );
}
