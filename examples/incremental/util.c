/* Utility translation unit for the incremental-session demo
 * (`make incremental-demo`). Editing `helper` dirties only its SCC and
 * its transitive callers; `monitorVal` replays from the store. */

int monitorVal(int v) {
    if (v > 100) { return 100; }
    if (v < 0) { return 0; }
    return v;
}

int helper(int x) { return x + 1; }
