/* Root translation unit for the incremental-session demo
 * (`make incremental-demo`). Contains a deliberate safe-value-flow
 * violation: `main` forwards a raw shared-memory value to kill()'s pid
 * argument through `helper` without monitoring it first (exit code 2). */

#include "util.c"

typedef struct { int control; } SHMData;
SHMData *noncoreCtrl;
void *shmat(int shmid, void *addr, int flags);
void kill(int pid, int sig);

void initComm(void)
/** SafeFlow Annotation shminit */
{
    noncoreCtrl = (SHMData *) shmat(0, 0, 0);
    /** SafeFlow Annotation
        assume(shmvar(noncoreCtrl, sizeof(SHMData)))
        assume(noncore(noncoreCtrl))
    */
}

int main() {
    int raw;
    int pid;
    initComm();
    raw = noncoreCtrl->control;
    pid = helper(raw);
    kill(pid, 9);
    return 0;
}
