//! The generic-Simplex "rigged feedback" defect (paper §4), shown from
//! both sides:
//!
//! 1. **statically** — SafeFlow flags the core's re-read of published
//!    sensor feedback as a data dependency on non-core values;
//! 2. **dynamically** — the simulation shows a non-core writer rigging the
//!    re-read value so the tainted clamp reaches the actuator.
//!
//! ```text
//! cargo run --example find_rigged_feedback
//! ```

use safeflow::{AnalysisConfig, Analyzer, DependencyKind};
use simplex_sim::{ExecutiveConfig, Fault, SimplexExecutive};

fn main() {
    // ---- static side -----------------------------------------------------
    let system = &safeflow_corpus::systems()[1]; // Generic Simplex
    println!("=== SafeFlow on {} ===\n", system.name);
    let result = Analyzer::new(AnalysisConfig::default())
        .analyze_source(system.core_file, system.core_source)
        .expect("corpus system analyzes");

    let rigged = result
        .report
        .errors
        .iter()
        .find(|e| e.critical == "uOut")
        .expect("the rigged-feedback defect is reported");
    println!(
        "SafeFlow error: critical `{}` in `{}` — {:?} dependency",
        rigged.critical, rigged.function, rigged.kind
    );
    assert_eq!(rigged.kind, DependencyKind::Data);
    if let Some(flow) = &rigged.flow {
        println!("value-flow path:");
        for (what, span) in flow.path() {
            println!("  - {} [{}]", what, result.sources.describe(span));
        }
    }
    println!(
        "\nPaper §4: \"This potential value dependency on non-core values would be fatal,\n\
         if the non-core component replaced the sensor feedback with a hand-crafted value\n\
         that would 'rig' the recoverability check.\"\n"
    );

    // ---- dynamic side -----------------------------------------------------
    println!("=== The same defect at run time (simulation) ===\n");
    // The rig: the non-core side overwrites the published cart position with
    // 0.0, so the unsafe core's clamp limit is always the most permissive.
    let rig = Fault::RigFeedback { value: 0.0 };

    let unsafe_run = SimplexExecutive::new(ExecutiveConfig {
        fault: rig,
        unsafe_core: true,
        track_taint: true,
        steps: 800,
        ..Default::default()
    })
    .run();
    println!(
        "unsafe core (re-reads shared feedback): {} tainted values reached the actuator",
        unsafe_run.tainted_actuations
    );

    let safe_run = SimplexExecutive::new(ExecutiveConfig {
        fault: rig,
        unsafe_core: false,
        track_taint: true,
        steps: 800,
        ..Default::default()
    })
    .run();
    println!(
        "safe core   (uses its local copy)     : {} tainted values reached the actuator",
        safe_run.tainted_actuations
    );
    assert!(unsafe_run.tainted_actuations > 0);
    assert_eq!(safe_run.tainted_actuations, 0);
    println!(
        "\nThe fix SafeFlow pushes you toward — use the core-local copy instead of\n\
         re-reading shared memory — eliminates the attack surface entirely."
    );
}
