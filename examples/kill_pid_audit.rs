//! Audit all three corpus systems for the paper's kill-pid defect —
//! "In all the three systems, the first argument of a kill system call
//! invoked by the core component was dependent on an unmonitored non-core
//! value. This could be easily used to bring down the core component if
//! the non-core component overwrote the value with the process id of the
//! core component itself, causing the core component to kill itself!"
//!
//! ```text
//! cargo run --example kill_pid_audit
//! ```

use safeflow::{AnalysisConfig, Analyzer, DependencyKind};
use simplex_sim::{ExecutiveConfig, Fault, SimplexExecutive};

fn main() {
    println!("=== kill(pid) audit across the corpus ===\n");
    let analyzer = Analyzer::new(AnalysisConfig::default());
    for system in safeflow_corpus::systems() {
        let result = analyzer
            .analyze_source(system.core_file, system.core_source)
            .expect("corpus system analyzes");
        let kill_errors: Vec<_> =
            result.report.errors.iter().filter(|e| e.critical.starts_with("kill")).collect();
        println!("{}:", system.name);
        for e in &kill_errors {
            println!(
                "  {} in `{}` — {:?} dependency [{}]",
                e.critical,
                e.function,
                e.kind,
                result.sources.describe(e.span)
            );
            assert_eq!(e.kind, DependencyKind::Data);
        }
        assert!(!kill_errors.is_empty(), "{}: the kill-pid defect must be reported", system.name);
    }

    println!("\n=== The attack at run time ===\n");
    // The malicious non-core component plants the core's own pid (1000) in
    // shared memory and stops heartbeating; the unsafe core's watchdog then
    // kills... itself.
    let attack = Fault::RigPid { pid: 1000.0 };
    let unsafe_run = SimplexExecutive::new(ExecutiveConfig {
        fault: attack,
        unsafe_core: true,
        steps: 500,
        ..Default::default()
    })
    .run();
    println!(
        "unsafe core: watchdog fired kill({}) -> core {}",
        1000,
        if unsafe_run.killed_self { "KILLED ITSELF" } else { "survived" }
    );
    assert!(unsafe_run.killed_self);

    let safe_run = SimplexExecutive::new(ExecutiveConfig {
        fault: attack,
        unsafe_core: false,
        steps: 500,
        ..Default::default()
    })
    .run();
    println!(
        "safe core  : watchdog uses the registered pid -> core {}",
        if safe_run.killed_self { "KILLED ITSELF" } else { "survived" }
    );
    assert!(!safe_run.killed_self);
}
