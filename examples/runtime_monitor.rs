//! The run-time side of the paper's argument: what a Lyapunov-envelope
//! monitor accepts and rejects, step by step — and why the paper prefers
//! *static* analysis for the value-flow property ("run-time error
//! dependency detection incurs performance penalties").
//!
//! ```text
//! cargo run --example runtime_monitor
//! ```

use simplex_sim::linalg::Mat;
use simplex_sim::lqr::dlqr;
use simplex_sim::{CartPole, Decision, LyapunovMonitor, Plant, RangeMonitor};
use std::time::Instant;

fn main() {
    // Design the safety controller; its Riccati solution gives the
    // Lyapunov envelope (Simplex architecture [22]).
    let plant = CartPole::default();
    let dt = 0.01;
    let (a, b) = plant.linearized(dt);
    let q = Mat::from_rows(&[
        &[10.0, 0.0, 0.0, 0.0],
        &[0.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 100.0, 0.0],
        &[0.0, 0.0, 0.0, 1.0],
    ]);
    let design = dlqr(&a, &b, &q, 0.5, 50_000).expect("LQR converges");
    println!("LQR designed in {} Riccati iterations; envelope V(x) = x'Px", design.iterations);
    let monitor = LyapunovMonitor::new(a, b, design.p, 50.0, 5.0);

    // Probe the monitor with proposals from various states.
    println!("\nstate (x, xdot, th, thdot)      proposal   decision");
    let cases: &[([f64; 4], f64)] = &[
        ([0.0, 0.0, 0.01, 0.0], 0.2),
        ([0.0, 0.0, 0.01, 0.0], 4.9),
        ([0.0, 0.0, 0.01, 0.0], 7.5),
        ([0.0, 0.0, 0.01, 0.0], f64::NAN),
        ([0.8, 0.5, 0.20, 0.8], 4.5),
        ([0.8, 0.5, 0.20, 0.8], -1.0),
    ];
    for (state, u) in cases {
        let d = monitor.check(state, *u);
        println!(
            "({:>4.1}, {:>4.1}, {:>5.2}, {:>4.1})   {:>8.2}   {:?}  (V now = {:.1})",
            state[0],
            state[1],
            state[2],
            state[3],
            u,
            d,
            monitor.lyapunov(state)
        );
    }

    // Range monitors cover configuration-style values (§3.1's examples of
    // what monitors check when no plant model applies).
    let pid_monitor = RangeMonitor { lo: 2000.0, hi: 2999.0 };
    println!("\npid monitor (non-core pids are 2000..2999):");
    for pid in [2000.0, 2500.0, 1000.0] {
        println!("  kill({pid}) -> {:?}", pid_monitor.check(pid));
    }

    // Why static analysis: measure what per-value run-time checking costs.
    println!("\ncost of monitoring every value at run time:");
    let mut state = [0.0, 0.0, 0.05, 0.0];
    let mut p = CartPole::default();
    p.set_state(&state);
    let n = 200_000;

    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for i in 0..n {
        let u = ((i % 100) as f64 / 50.0 - 1.0) * 4.0;
        acc += u;
        state[2] = (i % 7) as f64 * 0.01;
    }
    let base = t0.elapsed();

    let t1 = Instant::now();
    let mut accepted = 0usize;
    for i in 0..n {
        let u = ((i % 100) as f64 / 50.0 - 1.0) * 4.0;
        state[2] = (i % 7) as f64 * 0.01;
        if monitor.check(&state, u) == Decision::Accept {
            accepted += 1;
        }
    }
    let monitored = t1.elapsed();
    println!("  {n} raw value uses        : {base:?} (accumulator {acc:.1})");
    println!("  {n} monitored value uses  : {monitored:?} ({accepted} accepted)");
    println!(
        "  per-check overhead ≈ {:.0} ns — fine for one control output per period,\n\
         ruinous if EVERY shared-memory read had to be dynamically checked;\n\
         SafeFlow moves exactly that burden to compile time.",
        (monitored.as_nanos() as f64 - base.as_nanos() as f64) / n as f64
    );
}
