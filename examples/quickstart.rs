//! Quickstart: analyze the paper's running example (Figure 2) and walk
//! through everything SafeFlow reports.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use safeflow::{AnalysisConfig, Analyzer};

fn main() {
    // The paper's Figure 2: the core controller of the inverted pendulum
    // Simplex implementation, with the annotated initComm of Figure 3.
    let source = safeflow_corpus::figure2_example();

    let analyzer = Analyzer::new(AnalysisConfig::default());
    let result = analyzer
        .analyze_source("figure2.c", source)
        .expect("the running example parses and lowers cleanly");

    println!("=== SafeFlow on the paper's Figure 2 ===\n");
    print!("{}", result.report.render(&result.sources));

    println!("\n=== What happened ===");
    println!(
        "- initComm's shminit/shmvar annotations declared {} shared-memory regions;",
        result.report.regions.len()
    );
    println!("- `decision` assumes core(noncoreCtrl) — its reads of noncoreCtrl are monitored;");
    println!("- but `checkSafety` dereferences `feedback`, which is NOT in the assumed set:");
    for w in &result.report.warnings {
        println!(
            "    warning at {}: unmonitored read of `{}` in `{}`",
            result.sources.describe(w.span),
            w.region_name,
            w.function
        );
    }
    println!("- the assert(safe(output)) in main therefore fails — the paper's worked example:");
    for e in &result.report.errors {
        println!("    error: `{}` in `{}` ({:?} dependency)", e.critical, e.function, e.kind);
        if let Some(flow) = &e.flow {
            for (i, (what, span)) in flow.path().iter().enumerate() {
                println!(
                    "      {} {} [{}]",
                    if i == 0 { "source:" } else { "  then:" },
                    what,
                    result.sources.describe(*span)
                );
            }
        }
    }
    println!(
        "\nThe paper's suggested fix: \"use a local copy of the feedback as an argument to \
         decision, rather than the pointer to the shared location\" — or monitor `feedback` too."
    );
}
