/* Mixed-criticality fusion component: a three-label lattice demo.
 *
 * Three shared-memory channels feed a core actuation loop:
 *
 *   regA  -- labeled sensor_a; its monitor is a licensed declassifier
 *            (declassifier(sensor_a, trusted)), so monitored reads are
 *            fully cleared and the actuation below is safe.
 *   regB  -- labeled sensor_b; read raw with no monitor, so its value
 *            flow to the assert is a definite (Data) error.
 *   regF  -- labeled fused, which sits above both sensors in the
 *            declared order; its monitor only lowers data to sensor_b
 *            (declassifier(fused, sensor_b)), so the result is still
 *            labeled and the downstream assert still fails.
 *
 * The final branch taints `cmd` only through control dependence on an
 * unmonitored sensor_a read: under --implicit-flow strict it is a
 * definite error, under taint-only it is dropped, and under
 * report-separately (the default) it is kept as a distinct
 * control-dependence-only finding. `make policy-smoke` pins the report
 * for all three modes.
 */
typedef struct Blk { float v; int seq; int flag; int pad; } Blk;
Blk *regA;
Blk *regB;
Blk *regF;
int shmget(int key, int size, int flags);
void *shmat(int shmid, void *addr, int flags);
void sink(float v);
void actuate(float v);

void initShm(void)
/** SafeFlow Annotation shminit */
{
    char *cursor;
    int shmid;
    shmid = shmget(77, 3 * sizeof(Blk), 0);
    cursor = (char *) shmat(shmid, 0, 0);
    regA = (Blk *) cursor;
    cursor = cursor + sizeof(Blk);
    regB = (Blk *) cursor;
    cursor = cursor + sizeof(Blk);
    regF = (Blk *) cursor;
    cursor = cursor + sizeof(Blk);
    /** SafeFlow Annotation
        assume(label(sensor_a))
        assume(label(sensor_b))
        assume(label(fused, sensor_a))
        assume(label(fused, sensor_b))
        assume(declassifier(sensor_a, trusted))
        assume(declassifier(fused, sensor_b))
        assume(channel(regA, sizeof(Blk), sensor_a))
        assume(channel(regB, sizeof(Blk), sensor_b))
        assume(channel(regF, sizeof(Blk), fused))
    */
}

float monitorA(float fallback)
/** SafeFlow Annotation assume(core(regA, 0, sizeof(Blk))) */
{
    float v;
    v = regA->v;
    if (v > 100.0) return fallback;
    if (v < 0.0 - 100.0) return fallback;
    return v;
}

float monitorF(float fallback)
/** SafeFlow Annotation assume(declassify(regF, 0, sizeof(Blk), sensor_b)) */
{
    float v;
    v = regF->v;
    if (v > 10.0) return fallback;
    if (v < 0.0 - 10.0) return fallback;
    return v;
}

int main() {
    float safe_a;
    float part;
    float raw;
    float cmd;
    initShm();

    safe_a = monitorA(0.0);
    /** SafeFlow Annotation assert(safe(safe_a)) */
    actuate(safe_a);

    part = monitorF(0.0);
    /** SafeFlow Annotation assert(safe(part)) */
    actuate(part);

    raw = regB->v;
    /** SafeFlow Annotation assert(safe(raw)) */
    sink(raw);

    cmd = 1.0;
    if (regA->v > 0.0) {
        cmd = 2.0;
    }
    /** SafeFlow Annotation assert(safe(cmd)) */
    actuate(cmd);
    return 0;
}
