typedef struct Blk { float v; int seq; } Blk;
Blk *reg0;
int shmget(int key, int size, int flags);
void *shmat(int shmid, void *addr, int flags);
void sink(float v);
float source(void);

void initShm(void)
/** SafeFlow Annotation shminit */
{
	char *cursor;
	int shmid;
	shmid = shmget(77, sizeof(Blk), 0);
	cursor = (char *) shmat(shmid, 0, 0);
	reg0 = (Blk *) cursor;
	/** SafeFlow Annotation
		assume(shmvar(reg0, sizeof(Blk)))
		assume(noncore(reg0))
	*/
}

float monitor0(float fallback)
/** SafeFlow Annotation assume(core(reg0, 0, sizeof(Blk))) */
{
	float v;
	v = reg0->v;
	if (v > 5.0) return fallback;
	if (v < 0.0 - 5.0) return fallback;
	return v;
}

int main() {
	float u;
	float s;
	initShm();
	s = source();
	u = monitor0(s);
	/** SafeFlow Annotation assert(safe(u)) */
	sink(u);
	return 0;
}
