/* oracle-generated core component */
typedef struct Blk { float v; int seq; int flag; int pad; } Blk;
Blk *reg0;
Blk *reg1;
int shmget(int key, int size, int flags);
void *shmat(int shmid, void *addr, int flags);
void sink(float v);
float source(void);

void initShm(void)
/** SafeFlow Annotation shminit */
{
    char *cursor;
    int shmid;
    shmid = shmget(77, 2 * sizeof(Blk), 0);
    cursor = (char *) shmat(shmid, 0, 0);
    reg0 = (Blk *) cursor;
    cursor = cursor + sizeof(Blk);
    reg1 = (Blk *) cursor;
    cursor = cursor + sizeof(Blk);
    /** SafeFlow Annotation
        assume(shmvar(reg0, sizeof(Blk)))
        assume(shmvar(reg1, sizeof(Blk)))
        assume(noncore(reg0))
        assume(noncore(reg1))
    */
}

float helper0(float x, int which) {
    float acc;
    acc = x * 1.03125 + 0.5;
    acc = acc + reg0->v;
    return acc;
}

float monitor0(float fallback)
/** SafeFlow Annotation assume(core(reg0, 0, sizeof(Blk))) */
{
    float v;
    v = reg0->v;
    if (v > 5.0) return fallback;
    if (v < 0.0 - 5.0) return fallback;
    return v + helper0(v, 0);
}

float monitor1(float fallback)
{
    float v;
    v = reg1->v;
    if (v > 5.0) return fallback;
    if (v < 0.0 - 5.0) return fallback;
    return v + helper0(v, 1);
}


int main() {
    float u;
    float s;
    initShm();
    s = source();
    u = 0.0;
    u = u + monitor0(s);
    u = u + monitor1(s);
    u = u + reg1->v;
    /** SafeFlow Annotation assert(safe(u)) */
    sink(u);
    return 0;
}
