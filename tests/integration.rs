//! Workspace-level integration tests: the static analyzer, the corpus, and
//! the runtime simulation agreeing with each other end to end.

use safeflow::{AnalysisConfig, Analyzer, DependencyKind, Engine};
use safeflow_corpus::synthetic::{generate_core, SyntheticParams};
use simplex_sim::{ExecutiveConfig, Fault, SimplexExecutive};

/// The five paper defects are found statically AND demonstrably exploitable
/// dynamically (where the simulation models the scenario).
#[test]
fn static_findings_match_dynamic_exploits() {
    // Static: kill-pid flagged in every system.
    let analyzer = Analyzer::new(AnalysisConfig::default());
    for system in safeflow_corpus::systems() {
        let result =
            analyzer.analyze_source(system.core_file, system.core_source).expect("analyzes");
        assert!(result
            .report
            .errors
            .iter()
            .any(|e| e.critical.starts_with("kill") && e.kind == DependencyKind::Data));
    }
    // Dynamic: the kill-pid attack works against the unsafe core only.
    let attack = Fault::RigPid { pid: 1000.0 };
    let unsafe_run = SimplexExecutive::new(ExecutiveConfig {
        fault: attack,
        unsafe_core: true,
        steps: 400,
        ..Default::default()
    })
    .run();
    assert!(unsafe_run.killed_self);
    let safe_run = SimplexExecutive::new(ExecutiveConfig {
        fault: attack,
        unsafe_core: false,
        steps: 400,
        ..Default::default()
    })
    .run();
    assert!(!safe_run.killed_self);
}

/// The rigged-feedback defect: static data-dependency error in the generic
/// Simplex corpus; dynamic taint reaching the actuator in simulation.
#[test]
fn rigged_feedback_static_and_dynamic() {
    let system = &safeflow_corpus::systems()[1];
    let result = Analyzer::new(AnalysisConfig::default())
        .analyze_source(system.core_file, system.core_source)
        .expect("analyzes");
    let err = result
        .report
        .errors
        .iter()
        .find(|e| e.critical == "uOut")
        .expect("rigged feedback reported");
    assert_eq!(err.kind, DependencyKind::Data);

    let run = SimplexExecutive::new(ExecutiveConfig {
        fault: Fault::RigFeedback { value: 0.0 },
        unsafe_core: true,
        track_taint: true,
        steps: 400,
        ..Default::default()
    })
    .run();
    assert!(run.tainted_actuations > 0);
}

/// Both engines agree on every synthetic program shape (the ablation
/// soundness check behind the engine_scaling bench).
#[test]
fn engines_agree_on_synthetic_sweep() {
    for depth in [1usize, 3, 6] {
        for monitors in [1usize, 3] {
            let src = generate_core(SyntheticParams {
                regions: monitors.max(2),
                monitors,
                depth,
                branches: 2,
            });
            let cs = Analyzer::new(AnalysisConfig::with_engine(Engine::ContextSensitive))
                .analyze_source("syn.c", &src)
                .expect("cs analyzes");
            let sm = Analyzer::new(AnalysisConfig::with_engine(Engine::Summary))
                .analyze_source("syn.c", &src)
                .expect("summary analyzes");
            assert_eq!(
                cs.report.warnings.len(),
                sm.report.warnings.len(),
                "warnings diverge at depth={depth} monitors={monitors}:\nCS:\n{}\nSM:\n{}",
                cs.render(),
                sm.render()
            );
            assert_eq!(
                cs.report.errors.len(),
                sm.report.errors.len(),
                "errors diverge at depth={depth} monitors={monitors}:\nCS:\n{}\nSM:\n{}",
                cs.render(),
                sm.render()
            );
        }
    }
}

/// The synthetic generator's helper chain reads region 0 through the
/// shared helper: monitors that assume region 0 monitor it; other monitors
/// leave it unmonitored. The expected warning count is exactly the deepest
/// helper's read site (one syntactic site), warned iff some calling
/// context leaves reg0 unassumed.
#[test]
fn synthetic_context_sensitivity_shape() {
    // One monitor assuming reg0: the only path to helper is monitored → no
    // warnings and a clean assert.
    let src = generate_core(SyntheticParams { regions: 1, monitors: 1, depth: 3, branches: 1 });
    let result =
        Analyzer::new(AnalysisConfig::default()).analyze_source("syn.c", &src).expect("analyzes");
    assert!(
        result.report.warnings.is_empty(),
        "single monitored path must not warn:\n{}",
        result.render()
    );

    // Two monitors, the second assumes reg1 but the helper still reads
    // reg0 → unmonitored on that path.
    let src = generate_core(SyntheticParams { regions: 2, monitors: 2, depth: 3, branches: 1 });
    let result =
        Analyzer::new(AnalysisConfig::default()).analyze_source("syn.c", &src).expect("analyzes");
    assert_eq!(
        result.report.warnings.len(),
        1,
        "helper read warned via monitor1's context:\n{}",
        result.render()
    );
}

/// Original (pre-annotation) corpus variants still parse — the porting
/// effort the paper measures is annotations plus a small monitor split.
#[test]
fn original_variants_parse() {
    for system in safeflow_corpus::systems() {
        let parsed = safeflow_syntax::parse_source(system.core_file, &system.original_source);
        assert!(
            !parsed.diags.has_errors(),
            "{} original must parse:\n{}",
            system.name,
            parsed.diags.render_all(&parsed.sources)
        );
        // Without annotations there are no regions, hence no findings: the
        // analysis is annotation-driven (§3.1: annotations "describe
        // semantic information only known to the developer").
        let result = Analyzer::new(AnalysisConfig::default())
            .analyze_source(system.core_file, &system.original_source)
            .expect("analyzes");
        assert!(result.report.regions.is_empty());
        assert!(result.report.warnings.is_empty());
    }
}

/// The nominal simulation matches the architecture's promise: the complex
/// controller runs most of the time, the monitor catches its mistakes, the
/// plant never fails.
#[test]
fn simulation_nominal_and_faulty_runs() {
    for fault in [Fault::None, Fault::GarbageCommands, Fault::Stale] {
        let run =
            SimplexExecutive::new(ExecutiveConfig { fault, steps: 800, ..Default::default() })
                .run();
        assert!(!run.plant_failed, "{fault:?}: plant must survive");
    }
}
