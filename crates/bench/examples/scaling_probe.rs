//! Quick probe of engine scaling (used to pick bench sweep ranges).
use safeflow::{AnalysisConfig, Analyzer, Engine};
use safeflow_corpus::synthetic::{generate_core, SyntheticParams};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let regions: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let monitors: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    let depth: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);
    let branches: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(2);
    let src = generate_core(SyntheticParams { regions, monitors, depth, branches });
    println!("loc={}", safeflow_corpus::count_loc(&src));
    for (e, tag) in [(Engine::ContextSensitive, "ctx"), (Engine::Summary, "sum")] {
        let a = Analyzer::new(AnalysisConfig::with_engine(e));
        let t = Instant::now();
        let r = a.analyze_source("s.c", &src).unwrap();
        println!(
            "r={regions} m={monitors} d={depth} b={branches} {tag}: {:>10.1?}  contexts={}",
            t.elapsed(),
            r.report.contexts_analyzed
        );
    }
}
