//! # safeflow-bench
//!
//! Benchmark harness regenerating the paper's evaluation (see DESIGN.md §5
//! for the experiment index):
//!
//! * `table1` — full-pipeline analysis time per corpus system (T1);
//! * `engine_scaling` — context-sensitive vs summary engine as call depth
//!   and monitor count grow (S1, the §3.3 complexity discussion);
//! * `monitor_overhead` — simulation with and without run-time taint
//!   tracking (S2, the zero-runtime-overhead motivation in §1);
//! * `solver` — Omega-test obligations of A1/A2 shape (S3);
//! * `frontend` — parse + lower + SSA cost on the corpus;
//! * `parallel_scaling` — the parallel summary engine at 1/2/4/8 threads
//!   (P1, see DESIGN.md "Parallel engine & caching").
//!
//! The harness is std-only (no criterion — the workspace builds offline):
//! each benchmark is warmed up, then timed over enough iterations per
//! sample to amortize clock noise, and the per-iteration median / min /
//! max over the samples is printed.
//!
//! Run with `cargo bench --workspace`; pass a substring to filter
//! benchmarks by name; set `SAFEFLOW_BENCH_QUICK=1` for a fast smoke pass.
//! Per-table outputs are printed by `cargo run -p safeflow-cli -- --table1`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A benchmark runner: owns the name filter (from CLI args) and prints
/// one result line per benchmark.
pub struct Harness {
    filter: Option<String>,
    quick: bool,
}

impl Harness {
    /// Builds a harness from the process arguments, ignoring the flags
    /// cargo's bench/test drivers pass (`--bench`, `--test`, ...); the
    /// first non-flag argument becomes a substring name filter.
    pub fn from_args() -> Harness {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let quick = std::env::var_os("SAFEFLOW_BENCH_QUICK").is_some();
        Harness { filter, quick }
    }

    /// Whether `name` passes the CLI filter.
    pub fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Times `f`, printing per-iteration stats. `samples` is the number of
    /// measured samples (each of enough iterations to last ~5 ms).
    pub fn bench<T>(&self, name: &str, samples: usize, mut f: impl FnMut() -> T) {
        if !self.selected(name) {
            return;
        }
        let samples = if self.quick { samples.min(3) } else { samples.max(2) };

        // Warm up and size the sample: target ~5 ms per sample so the
        // Instant resolution is negligible, capped for slow benchmarks.
        let warm_start = Instant::now();
        black_box(f());
        let once = warm_start.elapsed().max(Duration::from_nanos(50));
        let target = if self.quick { Duration::from_millis(2) } else { Duration::from_millis(5) };
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(start.elapsed() / iters as u32);
        }
        per_iter.sort();
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{name:<56} median {:>12} (min {}, max {}, {iters} it/sample, {samples} samples)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
        );
    }

    /// Times `f` once (no repetition) — for long-running whole-scenario
    /// measurements where repetition is too costly. Returns the duration.
    pub fn bench_once<T>(&self, name: &str, f: impl FnOnce() -> T) -> Option<Duration> {
        if !self.selected(name) {
            return None;
        }
        let start = Instant::now();
        black_box(f());
        let took = start.elapsed();
        println!("{name:<56} single {:>12}", fmt_duration(took));
        Some(took)
    }
}

/// Renders a duration with an adaptive unit (`ns`/`µs`/`ms`/`s`).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_format_with_adaptive_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(250)), "250.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn harness_runs_and_filters() {
        let h = Harness { filter: Some("yes".into()), quick: true };
        let mut ran = 0;
        h.bench("yes/selected", 2, || ran += 1);
        assert!(ran > 0);
        let mut skipped = 0;
        h.bench("no/filtered-out", 2, || skipped += 1);
        assert_eq!(skipped, 0);
    }
}
