//! # safeflow-bench
//!
//! Criterion benchmark harness regenerating the paper's evaluation (see
//! DESIGN.md §5 for the experiment index):
//!
//! * `table1` — full-pipeline analysis time per corpus system (T1);
//! * `engine_scaling` — context-sensitive vs summary engine as call depth
//!   and monitor count grow (S1, the §3.3 complexity discussion);
//! * `monitor_overhead` — simulation with and without run-time taint
//!   tracking (S2, the zero-runtime-overhead motivation in §1);
//! * `solver` — Omega-test obligations of A1/A2 shape (S3);
//! * `frontend` — parse + lower + SSA cost on the corpus.
//!
//! Run with `cargo bench --workspace`; per-table outputs are printed by
//! `cargo run -p safeflow-cli -- --table1`.
