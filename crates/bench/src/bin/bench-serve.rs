//! Serve latency trajectory bench (`make bench-serve`).
//!
//! Measures the resident daemon's request latency over loopback — the
//! warm path (manifest replay out of the store) against the cold path
//! (full analysis of never-seen content) — and runs a 4× overload drill
//! against a bounded admission queue, emitting `BENCH_serve.json` in the
//! same trajectory-artifact family as `BENCH_pr6.json` (schema locked by
//! `crates/bench/tests/bench_schema.rs`).
//!
//! Usage:
//!
//! ```text
//! bench-serve [--out PATH] [--samples N] [--label S]
//! ```
//!
//! Latencies are wall-clock and therefore schedule-class: nothing in the
//! byte-identity contract reads this file. The overload section, by
//! contrast, records a *behavioral* claim — offering 4× the queue
//! capacity to a single worker must shed with `Overloaded` and answer
//! every request — which the schema test re-asserts from the artifact.

use safeflow_serve::{Client, Daemon, RunKind, ServeOptions, Status};
use safeflow_util::Json;
use std::time::Instant;

struct Args {
    out: String,
    samples: usize,
    label: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_serve.json".to_string(),
        samples: 200,
        label: "resident daemon, store-backed warm path".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = it.next().expect("--out PATH"),
            "--samples" => args.samples = it.next().expect("--samples N").parse().expect("number"),
            "--label" => args.label = it.next().expect("--label S"),
            other => panic!("unknown argument `{other}` (try --out/--samples/--label)"),
        }
    }
    if std::env::var("SAFEFLOW_BENCH_QUICK").is_ok() {
        args.samples = args.samples.min(10);
    }
    args.samples = args.samples.max(4);
    args
}

fn fig2_files() -> Vec<(String, String)> {
    vec![("figure2.c".to_string(), safeflow_corpus::figure2_example().to_string())]
}

fn variant_files(v: usize) -> Vec<(String, String)> {
    vec![(
        "figure2.c".to_string(),
        format!("// cold variant {v}\n{}", safeflow_corpus::figure2_example()),
    )]
}

/// `p`-th percentile (nearest-rank) of an unsorted sample set.
fn percentile(ns: &mut [u64], p: f64) -> u64 {
    ns.sort_unstable();
    let rank = ((p / 100.0) * ns.len() as f64).ceil() as usize;
    ns[rank.clamp(1, ns.len()) - 1]
}

fn stats_json(ns: &mut [u64]) -> Json {
    let p50 = percentile(ns, 50.0);
    let p99 = percentile(ns, 99.0);
    let mut o = Json::obj();
    o.set("p50_ns", p50);
    o.set("p99_ns", p99);
    o.set("min_ns", ns[0]);
    o.set("max_ns", ns[ns.len() - 1]);
    o
}

fn main() {
    let args = parse_args();
    let store = std::env::temp_dir().join(format!("safeflow-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    // ---- latency: one daemon, one connection, warm vs cold ----
    let opts = ServeOptions { store_dir: Some(store.clone()), ..ServeOptions::default() };
    let handle = Daemon::start(opts, "127.0.0.1:0").expect("bind");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr, 60_000).expect("connect");

    // Populate the store, then measure pure replay hits.
    let files = fig2_files();
    let first = client.check("figure2.c", &files, 0).expect("first check");
    assert_eq!(first.run, RunKind::Analyzed);
    let mut warm: Vec<u64> = (0..args.samples)
        .map(|_| {
            let t = Instant::now();
            let r = client.check("figure2.c", &files, 0).expect("warm check");
            assert_eq!(r.run, RunKind::Replayed, "warm sample fell off the replay path");
            t.elapsed().as_nanos() as u64
        })
        .collect();

    // Cold path: every request is content the daemon has never seen.
    let cold_samples = (args.samples / 4).max(4);
    let mut cold: Vec<u64> = (0..cold_samples)
        .map(|v| {
            let files = variant_files(v);
            let t = Instant::now();
            let r = client.check("figure2.c", &files, 0).expect("cold check");
            assert_eq!(r.run, RunKind::Analyzed, "cold sample unexpectedly replayed");
            t.elapsed().as_nanos() as u64
        })
        .collect();
    handle.begin_shutdown();
    handle.wait();

    // ---- overload: 4x the queue against a single worker ----
    let queue_capacity = 8usize;
    let offered = 4 * queue_capacity;
    let opts = ServeOptions { workers: 1, queue_capacity, ..ServeOptions::default() };
    let handle = Daemon::start(opts, "127.0.0.1:0").expect("bind");
    let addr = handle.addr().to_string();
    let threads: Vec<_> = (0..offered)
        .map(|v| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                // Distinct content per request: nothing coalesces, every
                // admission is a real queue slot.
                let files = variant_files(1000 + v);
                Client::connect(&addr, 120_000)
                    .expect("connect")
                    .check("figure2.c", &files, 0)
                    .expect("overload check answered")
            })
        })
        .collect();
    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut answered = 0u64;
    for t in threads {
        let resp = t.join().expect("no overload client may hang or die");
        answered += 1;
        match resp.status {
            Status::Overloaded => shed += 1,
            s if s.is_report() => completed += 1,
            s => panic!("unexpected overload status {s:?}"),
        }
    }
    handle.begin_shutdown();
    let snapshot = handle.wait();
    assert!(shed >= 1, "4x overload against a bounded queue must shed");
    assert_eq!(
        snapshot.sched.get("serve.panics_contained").copied().unwrap_or(0),
        0,
        "overload must shed, never panic"
    );
    let _ = std::fs::remove_dir_all(&store);

    // ---- artifact ----
    let mut warm_json = stats_json(&mut warm);
    let warm_p50 = match warm_json.get("p50_ns") {
        Some(Json::UInt(v)) => *v,
        _ => unreachable!(),
    };
    let cold_json = stats_json(&mut cold);
    let cold_p50 = match cold_json.get("p50_ns") {
        Some(Json::UInt(v)) => *v,
        _ => unreachable!(),
    };
    warm_json.set("samples", args.samples as u64);

    let mut doc = Json::obj();
    doc.set("schema", "safeflow-bench-trajectory-v1");
    doc.set("pr", 7u64);
    doc.set("bench", "serve-latency");
    doc.set("label", args.label.clone());
    doc.set("samples", args.samples as u64);
    let mut det = Json::obj();
    det.set("class", "Sched");
    det.set(
        "note",
        "wall-clock loopback latencies; machine- and schedule-dependent, \
         excluded from byte-identity",
    );
    doc.set("determinism", det);

    let mut latency = Json::obj();
    latency.set("warm", warm_json);
    let mut cold_obj = cold_json;
    cold_obj.set("samples", cold_samples as u64);
    latency.set("cold", cold_obj);
    // Whole percent, 100 = parity: the resident warm path's p50 against a
    // cold analysis of the same program.
    latency
        .set("warm_speedup_pct", (cold_p50.max(1) as u128 * 100 / warm_p50.max(1) as u128) as u64);
    doc.set("latency", latency);

    let mut overload = Json::obj();
    overload.set("queue_capacity", queue_capacity as u64);
    overload.set("workers", 1u64);
    overload.set("offered", offered as u64);
    overload.set("completed", completed);
    overload.set("shed", shed);
    overload.set("answered", answered);
    overload.set("panics_contained", 0u64);
    doc.set("overload", overload);

    let rendered = doc.render();
    std::fs::write(&args.out, format!("{rendered}\n")).expect("write artifact");
    println!(
        "bench-serve: warm p50 {warm_p50}ns, cold p50 {cold_p50}ns, \
         overload {offered} offered / {completed} completed / {shed} shed -> {}",
        args.out
    );
}
