//! Frontend throughput trajectory bench (`make bench-frontend`).
//!
//! Measures cold frontend throughput in LOC/sec over the deterministic
//! `safeflow-corpus` generators at three depths — parse only, parse +
//! AST→IR lowering + SSA, and the full end-to-end analysis — and emits the
//! result as a checked-in `BENCH_pr*.json` trajectory artifact so every
//! future PR can extend the recorded perf history.
//!
//! Usage:
//!
//! ```text
//! bench-frontend [--out PATH] [--baseline PATH] [--samples N] [--label S]
//! ```
//!
//! `--baseline` embeds a previously emitted artifact's stage timings under
//! `"baseline"` (used here to record the pre-refactor numbers next to the
//! post-refactor ones, per ISSUE 6). Timings are wall-clock and therefore
//! schedule-class: the artifact's `determinism` block says so explicitly,
//! and nothing in the byte-identity contract reads this file.

use safeflow::{AnalysisConfig, Analyzer};
use safeflow_corpus::monorepo::{generate_monorepo, total_loc, MonorepoParams};
use safeflow_ir::build_module;
use safeflow_syntax::diag::Diagnostics;
use safeflow_syntax::pp::VirtualFs;
use safeflow_syntax::{parse_program_jobs, parse_source};
use safeflow_util::Json;
use std::hint::black_box;
use std::time::Instant;

struct Args {
    out: String,
    baseline: Option<String>,
    samples: usize,
    label: String,
    pr: u64,
    monorepo: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_pr6.json".to_string(),
        baseline: None,
        samples: 15,
        label: "arena+interned frontend".to_string(),
        pr: 6,
        monorepo: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = it.next().expect("--out PATH"),
            "--baseline" => args.baseline = Some(it.next().expect("--baseline PATH")),
            "--samples" => args.samples = it.next().expect("--samples N").parse().expect("number"),
            "--label" => args.label = it.next().expect("--label S"),
            "--pr" => args.pr = it.next().expect("--pr N").parse().expect("number"),
            "--monorepo" => args.monorepo = true,
            other => panic!(
                "unknown argument `{other}` (try --out/--baseline/--samples/--label/--pr/--monorepo)"
            ),
        }
    }
    if std::env::var("SAFEFLOW_BENCH_QUICK").is_ok() {
        args.samples = args.samples.min(3);
    }
    args
}

/// One corpus program: a name and its annotated source.
fn workload() -> Vec<(String, String)> {
    let mut programs: Vec<(String, String)> = safeflow_corpus::systems()
        .into_iter()
        .map(|s| (s.core_file.to_string(), s.core_source.to_string()))
        .collect();
    programs.push(("fig2.c".to_string(), safeflow_corpus::figure2_example().to_string()));
    programs
}

/// Runs `f` over every program `samples` times and returns the median,
/// minimum and maximum of the per-sample total wall-clock nanoseconds.
fn measure(samples: usize, mut f: impl FnMut()) -> (u64, u64, u64) {
    let mut ns: Vec<u64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    ns.sort_unstable();
    (ns[ns.len() / 2], ns[0], ns[ns.len() - 1])
}

fn loc_per_sec(loc: usize, median_ns: u64) -> u64 {
    (loc as u128 * 1_000_000_000 / median_ns.max(1) as u128) as u64
}

fn stage_json(loc: usize, (median, min, max): (u64, u64, u64)) -> Json {
    // The workspace Json model is integer-only (floats are rejected by the
    // store-replay parser), so rates are rounded to whole LOC/sec.
    let mut j = Json::obj();
    j.set("median_ns", median);
    j.set("min_ns", min);
    j.set("max_ns", max);
    j.set("loc_per_sec", loc_per_sec(loc, median));
    j
}

/// Measures the monorepo corpus (ISSUE 8): preprocess + parallel parse at
/// one and eight workers, and cold end-to-end analysis. The monorepo flows
/// through `parse_program_jobs`/`analyze_program` (VirtualFs, includes,
/// config macros) rather than `parse_source`, so this column exercises the
/// preprocessor under monorepo traffic — guarded headers included ~300
/// times, function-like config macros expanded throughout.
fn monorepo_json(samples: usize) -> Json {
    let files = generate_monorepo(MonorepoParams::bench());
    let loc = total_loc(&files);
    let raw_lines: usize = files.iter().map(|(_, t)| t.lines().count()).sum();
    let tus = files.iter().filter(|(n, _)| n.ends_with(".c")).count();
    let file_count = files.len();
    let mut fs = VirtualFs::new();
    for (name, text) in files {
        fs.add(name, text);
    }

    let parse_at = |jobs: usize, samples: usize| {
        measure(samples, || {
            let r = parse_program_jobs("main.c", &fs, jobs);
            assert!(!r.diags.has_errors(), "monorepo corpus must parse");
            black_box(&r.unit);
        })
    };
    let parse_j1 = parse_at(1, samples);
    let parse_j8 = parse_at(8, samples);
    let e2e = measure(samples, || {
        let analyzer = Analyzer::new(AnalysisConfig::default().with_jobs(8));
        let result = analyzer.analyze_program("main.c", &fs).expect("monorepo analysis runs");
        black_box(&result);
    });

    let mut stages = Json::obj();
    stages.set("parse_j1", stage_json(loc, parse_j1));
    stages.set("parse_j8", stage_json(loc, parse_j8));
    stages.set("e2e", stage_json(loc, e2e));

    let mut j = Json::obj();
    j.set("tus", tus);
    j.set("files", file_count);
    j.set("loc", loc);
    j.set("raw_lines", raw_lines);
    j.set("stages", stages);
    // 100 = parity; >100 means the 8-worker parse beat the 1-worker parse.
    j.set("parallel_parse_speedup_pct", parse_j1.0 * 100 / parse_j8.0.max(1));
    j
}

fn main() {
    let args = parse_args();
    let programs = workload();
    let loc: usize = programs.iter().map(|(_, src)| safeflow_corpus::count_loc(src)).sum();
    let raw_lines: usize = programs.iter().map(|(_, src)| src.lines().count()).sum();

    // Stage 1: preprocess + lex + parse.
    let parse = measure(args.samples, || {
        for (name, src) in &programs {
            let r = parse_source(name, black_box(src));
            assert!(!r.diags.has_errors(), "corpus program {name} must parse");
            black_box(&r.unit);
        }
    });

    // Stage 2: parse + AST→IR lowering + SSA construction.
    let lower = measure(args.samples, || {
        for (name, src) in &programs {
            let r = parse_source(name, black_box(src));
            let mut diags = Diagnostics::new();
            let module = build_module(&r.unit, &mut diags);
            black_box(module.functions.len());
        }
    });

    // Stage 3: cold end-to-end analysis (fresh analyzer per sample so the
    // summary cache never warms across iterations).
    let e2e = measure(args.samples, || {
        for (name, src) in &programs {
            let analyzer = Analyzer::new(AnalysisConfig::default());
            let result = analyzer.analyze_source(name, black_box(src)).expect("analysis runs");
            black_box(&result);
        }
    });

    let mut stages = Json::obj();
    stages.set("parse", stage_json(loc, parse));
    stages.set("lower_ssa", stage_json(loc, lower));
    stages.set("e2e", stage_json(loc, e2e));

    let mut corpus = Json::obj();
    corpus.set("programs", programs.len());
    corpus.set("loc", loc);
    corpus.set("raw_lines", raw_lines);

    let mut determinism = Json::obj();
    determinism.set("class", "Sched");
    determinism.set(
        "note",
        "wall-clock timings; machine- and schedule-dependent, excluded from byte-identity",
    );

    let mut doc = Json::obj();
    doc.set("schema", "safeflow-bench-trajectory-v1");
    doc.set("pr", args.pr);
    doc.set("bench", "frontend-e2e");
    doc.set("label", args.label.as_str());
    doc.set("samples", args.samples);
    doc.set("corpus", corpus);
    doc.set("determinism", determinism);
    doc.set("stages", stages);
    if args.monorepo {
        doc.set("monorepo", monorepo_json(args.samples));
    }

    if let Some(path) = &args.baseline {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let mut base = Json::parse(&text).expect("baseline artifact parses");
        // Embed only the comparable parts of the prior artifact.
        let mut baseline = Json::obj();
        for key in ["label", "stages", "corpus", "samples"] {
            if let Some(v) = base.remove(key) {
                baseline.set(key, v);
            }
        }
        let median = |j: &Json| match j
            .get("stages")
            .and_then(|s| s.get("e2e"))
            .and_then(|s| s.get("median_ns"))
        {
            Some(Json::UInt(v)) => Some(*v),
            Some(Json::Int(v)) if *v > 0 => Some(*v as u64),
            _ => None,
        };
        let speedup_pct = match (median(&baseline), median(&doc)) {
            (Some(before), Some(after)) if after > 0 => Some(before * 100 / after),
            _ => None,
        };
        doc.set("baseline", baseline);
        if let Some(pct) = speedup_pct {
            // 100 = parity, 150 = 1.5x faster end-to-end than the baseline.
            doc.set("speedup_e2e_pct", pct);
        }
    }

    let rendered = doc.render();
    std::fs::write(&args.out, format!("{rendered}\n"))
        .unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!(
        "wrote {} ({} LOC, e2e {:.0} LOC/sec)",
        args.out,
        loc,
        loc as f64 * 1e9 / e2e.0 as f64
    );
}
