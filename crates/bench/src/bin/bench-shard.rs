//! Sharded-analysis scaling bench (`make bench-shard`).
//!
//! Measures cold end-to-end wall-clock for the monorepo corpus under the
//! ISSUE 10 sharded pipeline at 1, 2, and 4 workers — each sample runs the
//! worker fan-out into a fresh summary store and then the coordinator's
//! final merge check, exactly the work `safeflow check --shards N` does,
//! minus the process-spawn overhead (workers run on threads here so the
//! bench stays deterministic about what it measures). An unsharded cold
//! session is recorded alongside as the baseline column.
//!
//! Every sharded sample's rendered report is asserted byte-identical to
//! the unsharded reference before its timing is accepted: a bench run that
//! drifts from the identity contract panics rather than recording numbers
//! for a broken pipeline.
//!
//! Usage:
//!
//! ```text
//! bench-shard [--out PATH] [--samples N] [--label S] [--pr N]
//! ```

use safeflow::shard::run_worker;
use safeflow::{AnalysisConfig, AnalysisSession, Engine};
use safeflow_corpus::monorepo::{generate_monorepo, total_loc, MonorepoParams};
use safeflow_syntax::pp::VirtualFs;
use safeflow_util::Json;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Args {
    out: String,
    samples: usize,
    label: String,
    pr: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_pr10.json".to_string(),
        samples: 5,
        label: "sharded cross-process analysis".to_string(),
        pr: 10,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = it.next().expect("--out PATH"),
            "--samples" => args.samples = it.next().expect("--samples N").parse().expect("number"),
            "--label" => args.label = it.next().expect("--label S"),
            "--pr" => args.pr = it.next().expect("--pr N").parse().expect("number"),
            other => panic!("unknown argument `{other}` (try --out/--samples/--label/--pr)"),
        }
    }
    if std::env::var("SAFEFLOW_BENCH_QUICK").is_ok() {
        args.samples = args.samples.min(3);
    }
    args
}

/// Workers in a real `--shards N` run each get their own process and
/// therefore their own thread pool; two intra-worker jobs keeps the bench
/// honest about per-worker parallelism without oversubscribing the host
/// when four workers run at once.
const JOBS_PER_WORKER: usize = 2;

fn config() -> AnalysisConfig {
    AnalysisConfig::builder().engine(Engine::Summary).jobs(JOBS_PER_WORKER).build_config()
}

fn measure(samples: usize, mut f: impl FnMut()) -> (u64, u64, u64) {
    let mut ns: Vec<u64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    ns.sort_unstable();
    (ns[ns.len() / 2], ns[0], ns[ns.len() - 1])
}

fn stage_json(loc: usize, (median, min, max): (u64, u64, u64)) -> Json {
    let mut j = Json::obj();
    j.set("median_ns", median);
    j.set("min_ns", min);
    j.set("max_ns", max);
    j.set("loc_per_sec", (loc as u128 * 1_000_000_000 / median.max(1) as u128) as u64);
    j
}

fn fresh_dir(tag: &str, n: usize) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("safeflow-bench-shard-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One cold sharded run: `workers` concurrent workers into a fresh store,
/// then the coordinator's merge check. Returns the rendered report.
fn sharded_run(root: &str, fs: &VirtualFs, workers: usize, dir: &Path) -> String {
    std::thread::scope(|scope| {
        for k in 0..workers {
            scope.spawn(move || {
                run_worker(&config(), root, fs, dir, k, workers).expect("shard worker runs");
            });
        }
    });
    let mut session = AnalysisSession::with_store(config(), dir).expect("store opens");
    session.check(root, fs).expect("merge check runs").rendered
}

fn main() {
    let args = parse_args();
    let files = generate_monorepo(MonorepoParams::bench());
    let loc = total_loc(&files);
    let raw_lines: usize = files.iter().map(|(_, t)| t.lines().count()).sum();
    let tus = files.iter().filter(|(n, _)| n.ends_with(".c")).count();
    let file_count = files.len();
    let root = files[0].0.clone();
    let mut fs = VirtualFs::new();
    for (name, text) in files {
        fs.add(name, text);
    }

    // Baseline: a storeless cold session, the pre-sharding analyzer path.
    let reference = {
        let mut s = AnalysisSession::new(config());
        s.check(&root, &fs).expect("reference check runs").rendered
    };
    let unsharded = measure(args.samples, || {
        let mut s = AnalysisSession::new(config());
        let out = s.check(&root, &fs).expect("reference check runs");
        assert_eq!(out.rendered, reference, "unsharded run drifted");
    });

    let mut stages = Json::obj();
    stages.set("unsharded", stage_json(loc, unsharded));
    let mut medians = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut n = 0usize;
        let timing = measure(args.samples, || {
            let dir = fresh_dir(&format!("w{workers}"), n);
            n += 1;
            let rendered = sharded_run(&root, &fs, workers, &dir);
            assert_eq!(rendered, reference, "sharded run ({workers} workers) diverged");
            let _ = std::fs::remove_dir_all(&dir);
        });
        medians.push(timing.0);
        stages.set(format!("shard_{workers}"), stage_json(loc, timing));
    }

    // 100 = parity with one worker; >100 means N workers finished the cold
    // fan-out + merge faster than a single worker did. On a host with
    // fewer cores than workers the ratio honestly sits below parity:
    // each worker re-parses the corpus, so without hardware parallelism
    // the fan-out is pure duplication.
    let host_cpus = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let mut scaling = Json::obj();
    scaling.set("host_cpus", host_cpus);
    scaling.set("shard_2_speedup_pct", medians[0] * 100 / medians[1].max(1));
    scaling.set("shard_4_speedup_pct", medians[0] * 100 / medians[2].max(1));

    let mut corpus = Json::obj();
    corpus.set("tus", tus);
    corpus.set("files", file_count);
    corpus.set("loc", loc);
    corpus.set("raw_lines", raw_lines);

    let mut determinism = Json::obj();
    determinism.set("class", "Sched");
    determinism.set(
        "note",
        "wall-clock timings; machine- and schedule-dependent, excluded from byte-identity",
    );

    let mut doc = Json::obj();
    doc.set("schema", "safeflow-bench-trajectory-v1");
    doc.set("pr", args.pr);
    doc.set("bench", "shard-scaling");
    doc.set("label", args.label.as_str());
    doc.set("samples", args.samples);
    doc.set("jobs_per_worker", JOBS_PER_WORKER);
    doc.set("corpus", corpus);
    doc.set("determinism", determinism);
    doc.set("stages", stages);
    doc.set("scaling", scaling);

    let rendered = doc.render();
    std::fs::write(&args.out, format!("{rendered}\n"))
        .unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!(
        "wrote {} ({} LOC; shard medians 1w={:.2}s 2w={:.2}s 4w={:.2}s)",
        args.out,
        loc,
        medians[0] as f64 / 1e9,
        medians[1] as f64 / 1e9,
        medians[2] as f64 / 1e9,
    );
}
