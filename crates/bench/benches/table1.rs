//! T1: full-pipeline analysis time on each Table 1 corpus system, for both
//! phase-3 engines. The paper notes analysis time "is not a significant
//! factor in most development and testing efforts" — this bench quantifies
//! it for our reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safeflow::{AnalysisConfig, Analyzer, Engine};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for system in safeflow_corpus::systems() {
        for (engine, tag) in [
            (Engine::ContextSensitive, "context"),
            (Engine::Summary, "summary"),
        ] {
            let analyzer = Analyzer::new(AnalysisConfig::with_engine(engine));
            group.bench_with_input(
                BenchmarkId::new(tag, system.name),
                &system,
                |b, system| {
                    b.iter(|| {
                        let result = analyzer
                            .analyze_source(system.core_file, black_box(system.core_source))
                            .expect("corpus analyzes");
                        black_box(result.report.warnings.len())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_figure2(c: &mut Criterion) {
    let analyzer = Analyzer::new(AnalysisConfig::default());
    c.bench_function("figure2_running_example", |b| {
        b.iter(|| {
            let result = analyzer
                .analyze_source("fig2.c", black_box(safeflow_corpus::figure2_example()))
                .expect("fig2 analyzes");
            black_box(result.report.errors.len())
        })
    });
}

criterion_group!(benches, bench_table1, bench_figure2);
criterion_main!(benches);
