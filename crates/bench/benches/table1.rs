//! T1: full-pipeline analysis time on each Table 1 corpus system, for both
//! phase-3 engines. The paper notes analysis time "is not a significant
//! factor in most development and testing efforts" — this bench quantifies
//! it for our reproduction.

use safeflow::{AnalysisConfig, Analyzer, Engine};
use safeflow_bench::Harness;
use std::hint::black_box;

fn main() {
    let h = Harness::from_args();
    for system in safeflow_corpus::systems() {
        for (engine, tag) in [(Engine::ContextSensitive, "context"), (Engine::Summary, "summary")] {
            let analyzer = Analyzer::new(AnalysisConfig::with_engine(engine));
            h.bench(&format!("table1/{tag}/{}", system.name), 10, || {
                let result = analyzer
                    .analyze_source(system.core_file, black_box(system.core_source))
                    .expect("corpus analyzes");
                black_box(result.report.warnings.len())
            });
        }
    }

    let analyzer = Analyzer::new(AnalysisConfig::default());
    h.bench("figure2_running_example", 10, || {
        let result = analyzer
            .analyze_source("fig2.c", black_box(safeflow_corpus::figure2_example()))
            .expect("fig2 analyzes");
        black_box(result.report.errors.len())
    });
}
