//! Frontend costs: preprocess + lex + parse, and AST→IR lowering with SSA
//! construction, measured on the corpus core components. (The paper's
//! substrate was LLVM; this is our equivalent infrastructure cost.)

use safeflow_bench::Harness;
use safeflow_ir::build_module;
use safeflow_syntax::diag::Diagnostics;
use safeflow_syntax::parse_source;
use std::hint::black_box;

fn main() {
    let h = Harness::from_args();

    for system in safeflow_corpus::systems() {
        h.bench(&format!("frontend/parse/{}", system.name), 10, || {
            let r = parse_source(system.core_file, black_box(system.core_source));
            assert!(!r.diags.has_errors());
            black_box(r.unit.items.len())
        });
    }

    for system in safeflow_corpus::systems() {
        let parsed = parse_source(system.core_file, system.core_source);
        assert!(!parsed.diags.has_errors());
        h.bench(&format!("frontend/lower_ssa/{}", system.name), 10, || {
            let mut diags = Diagnostics::new();
            let module = build_module(black_box(&parsed.unit), &mut diags);
            black_box(module.functions.len())
        });
    }
}
