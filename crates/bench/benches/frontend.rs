//! Frontend costs: preprocess + lex + parse, and AST→IR lowering with SSA
//! construction, measured on the corpus core components. (The paper's
//! substrate was LLVM; this is our equivalent infrastructure cost.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safeflow_ir::build_module;
use safeflow_syntax::diag::Diagnostics;
use safeflow_syntax::parse_source;
use std::hint::black_box;

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend/parse");
    for system in safeflow_corpus::systems() {
        group.bench_with_input(
            BenchmarkId::from_parameter(system.name),
            &system,
            |b, system| {
                b.iter(|| {
                    let r = parse_source(system.core_file, black_box(system.core_source));
                    assert!(!r.diags.has_errors());
                    black_box(r.unit.items.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_lower_and_ssa(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend/lower_ssa");
    for system in safeflow_corpus::systems() {
        let parsed = parse_source(system.core_file, system.core_source);
        assert!(!parsed.diags.has_errors());
        group.bench_with_input(
            BenchmarkId::from_parameter(system.name),
            &parsed.unit,
            |b, unit| {
                b.iter(|| {
                    let mut diags = Diagnostics::new();
                    let module = build_module(black_box(unit), &mut diags);
                    black_box(module.functions.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parse, bench_lower_and_ssa);
criterion_main!(benches);
