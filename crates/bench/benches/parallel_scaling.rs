//! P1: parallel analysis-engine scaling at 1/2/4/8 worker threads, plus
//! the content-hashed summary cache's warm-path cost.
//!
//! The workload is the wide synthetic component (`generate_wide`): many
//! independent call-chain families, so the SCC condensation offers real
//! parallelism to the summary engine and the per-function restriction
//! checks. Cold runs construct a fresh `Analyzer` per iteration (empty
//! cache); the warm run reuses one `Analyzer` so every SCC replays from
//! the cache.

use safeflow::{AnalysisConfig, Analyzer, Engine};
use safeflow_bench::Harness;
use safeflow_corpus::synthetic::{generate_wide, WideParams};
use std::hint::black_box;

fn main() {
    let h = Harness::from_args();
    let src = generate_wide(WideParams { families: 48, depth: 3, regions: 8, branches: 4 });

    // Sanity: the workload analyzes cleanly and deterministically.
    let reference = Analyzer::new(AnalysisConfig::with_engine(Engine::Summary))
        .analyze_source("wide.c", &src)
        .expect("wide program analyzes");
    let reference_render = reference.render();

    for jobs in [1usize, 2, 4, 8] {
        h.bench(&format!("parallel/summary_cold/jobs{jobs}"), 10, || {
            let analyzer =
                Analyzer::new(AnalysisConfig::with_engine(Engine::Summary).with_jobs(jobs));
            let result = analyzer.analyze_source("wide.c", &src).expect("analyzes");
            assert_eq!(result.render(), reference_render, "non-deterministic at jobs={jobs}");
            black_box(result.report.contexts_analyzed)
        });
    }

    // Warm path: same analyzer, unchanged source — every summary replays.
    let warm_analyzer = Analyzer::new(AnalysisConfig::with_engine(Engine::Summary));
    warm_analyzer.analyze_source("wide.c", &src).expect("prime");
    let primed = warm_analyzer.cache_stats();
    h.bench("parallel/summary_warm/jobs1", 10, || {
        let result = warm_analyzer.analyze_source("wide.c", &src).expect("analyzes");
        black_box(result.report.warnings.len())
    });
    let after = warm_analyzer.cache_stats();
    assert_eq!(after.misses, primed.misses, "warm runs must not re-summarize");
    println!(
        "parallel/cache: {} summaries primed, {} replayed across warm runs",
        primed.misses,
        after.hits - primed.hits
    );
}
