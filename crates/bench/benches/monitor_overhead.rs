//! S2: the paper's §1 motivation — "Static analysis offers the benefits of
//! incurring no run-time overheads ... (run-time error dependency
//! detection incurs performance penalties)". This bench measures the
//! Simplex executive with and without per-value run-time taint tracking
//! (the `taint-perl`-style alternative), plus the cost of the Lyapunov
//! monitor itself.

use safeflow_bench::Harness;
use simplex_sim::linalg::Mat;
use simplex_sim::lqr::dlqr;
use simplex_sim::{CartPole, ExecutiveConfig, Fault, LyapunovMonitor, Plant, SimplexExecutive};
use std::hint::black_box;

fn main() {
    let h = Harness::from_args();

    for (tag, track) in [("static_analysis_only", false), ("runtime_taint_tracking", true)] {
        h.bench(&format!("monitor_overhead/executive/{tag}"), 10, || {
            let cfg = ExecutiveConfig {
                steps: 1000,
                fault: Fault::RigFeedback { value: 0.0 },
                unsafe_core: true,
                track_taint: track,
                ..Default::default()
            };
            let summary = SimplexExecutive::new(cfg).run();
            black_box(summary.steps)
        });
    }

    let plant = CartPole::default();
    let (a, b) = plant.linearized(0.01);
    let q = Mat::identity(4);
    let d = dlqr(&a, &b, &q, 1.0, 50_000).unwrap();
    let monitor = LyapunovMonitor::new(a, b, d.p, 50.0, 5.0);
    let state = [0.1, 0.0, 0.05, 0.0];
    h.bench("monitor_overhead/single_check", 10, || {
        black_box(monitor.check(black_box(&state), black_box(1.5)))
    });

    let mut plant = CartPole::default();
    h.bench("monitor_overhead/plant_step_rk4", 10, || {
        plant.step(black_box(0.5), 0.01);
        black_box(plant.state()[2])
    });
}
