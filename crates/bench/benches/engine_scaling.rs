//! S1: the §3.3 complexity trade-off. The paper's implemented algorithm
//! re-analyzes each function "multiple times for different call sequences
//! leading to it, making the implementation exponential in run-time
//! complexity", and proposes ESP-style summaries ("analyzing each function
//! only once") as the fix. This bench sweeps the synthetic-generator
//! shape knobs and measures both engines — the *shape* to reproduce is the
//! context-sensitive engine growing with monitors × depth while the
//! summary engine stays near-linear in program size.

use safeflow::{AnalysisConfig, Analyzer, Engine};
use safeflow_bench::Harness;
use safeflow_corpus::synthetic::{generate_core, SyntheticParams};
use std::hint::black_box;

fn main() {
    let h = Harness::from_args();

    for depth in [2usize, 4, 8, 12] {
        let src = generate_core(SyntheticParams { regions: 4, monitors: 4, depth, branches: 2 });
        for (engine, tag) in [(Engine::ContextSensitive, "context"), (Engine::Summary, "summary")] {
            let analyzer = Analyzer::new(AnalysisConfig::with_engine(engine));
            h.bench(&format!("engine_scaling/depth/{tag}/{depth}"), 10, || {
                let r = analyzer.analyze_source("syn.c", black_box(&src)).expect("analyzes");
                black_box(r.report.warnings.len())
            });
        }
    }

    for monitors in [1usize, 2, 4, 8] {
        let src = generate_core(SyntheticParams {
            regions: monitors.max(1),
            monitors,
            depth: 6,
            branches: 2,
        });
        for (engine, tag) in [(Engine::ContextSensitive, "context"), (Engine::Summary, "summary")] {
            let analyzer = Analyzer::new(AnalysisConfig::with_engine(engine));
            h.bench(&format!("engine_scaling/monitors/{tag}/{monitors}"), 10, || {
                let r = analyzer.analyze_source("syn.c", black_box(&src)).expect("analyzes");
                black_box(r.report.warnings.len())
            });
        }
    }
}
