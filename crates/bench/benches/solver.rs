//! S3: the Omega-test solver on obligations of the shapes the A1/A2
//! checker generates ("The set of affine constraints are given to a
//! integer programming solver such as Omega", §3.3).

use safeflow_bench::Harness;
use safeflow_solver::{LinExpr, System};
use std::hint::black_box;

/// The canonical A1 obligation: 0 <= i < n, prove i + k < bound.
fn a1_obligation(n_loops: usize) -> System {
    let mut sys = System::new();
    let mut prev = None;
    for l in 0..n_loops {
        let i = sys.new_var(format!("i{l}"));
        sys.add_ge(LinExpr::var(i), LinExpr::constant(0));
        match prev {
            None => sys.add_lt(LinExpr::var(i), LinExpr::constant(16)),
            Some(p) => sys.add_lt(LinExpr::var(i), LinExpr::var(p)),
        }
        prev = Some(i);
    }
    sys
}

fn main() {
    let h = Harness::from_args();

    for nesting in [1usize, 2, 4, 6] {
        let sys = a1_obligation(nesting);
        h.bench(&format!("solver/feasibility/{nesting}"), 10, || black_box(sys.check()));
    }

    // The exact query shape the restriction checker issues per shared-array
    // access: implies(0 <= 2i + 1) and implies(2i + 1 < 16).
    let mut sys = System::new();
    let i = sys.new_var("i");
    sys.add_ge(LinExpr::var(i), LinExpr::constant(0));
    sys.add_lt(LinExpr::var(i), LinExpr::constant(8));
    let idx = LinExpr::term(i, 2) + LinExpr::constant(1);
    h.bench("solver/a2_affine_bounds_proof", 10, || {
        let lower = sys.implies_ge(black_box(idx.clone()), LinExpr::zero());
        let upper = sys.implies_lt(black_box(idx.clone()), LinExpr::constant(16));
        black_box(lower && upper)
    });

    // A query requiring the inexact FM path (dark shadow / splinter).
    h.bench("solver/dark_shadow_case", 10, || {
        let mut sys = System::new();
        let x = sys.new_var("x");
        sys.add_ge(LinExpr::term(x, 3), LinExpr::constant(7));
        sys.add_le(LinExpr::term(x, 2), LinExpr::constant(5));
        black_box(sys.check())
    });
}
