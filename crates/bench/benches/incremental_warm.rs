//! Incremental-session speedup: a warm no-change `AnalysisSession` run
//! against a persistent store must replay the whole-program manifest —
//! zero SCCs re-analyzed — and come in at least 5× faster than the cold
//! run that populated it.
//!
//! The workload is the wide synthetic component so the cold run has real
//! parsing + summarization work to amortize. Cold and warm runs use
//! separate sessions over the same store directory, so the warm path
//! exercises the on-disk manifest (not the in-memory cache).

use safeflow::{AnalysisConfig, AnalysisSession, Engine, SessionRun};
use safeflow_bench::Harness;
use safeflow_corpus::synthetic::{generate_wide, WideParams};
use safeflow_syntax::VirtualFs;

fn main() {
    let h = Harness::from_args();
    let src = generate_wide(WideParams { families: 48, depth: 3, regions: 8, branches: 4 });
    let mut fs = VirtualFs::new();
    fs.add("wide.c", src);

    let dir =
        std::env::temp_dir().join(format!("safeflow-bench-incremental-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || AnalysisConfig::builder().engine(Engine::Summary).build_config();

    let mut cold_session = AnalysisSession::with_store(config(), &dir).expect("store opens");
    let mut cold_outcome = None;
    let cold = h.bench_once("incremental/cold", || {
        cold_outcome = Some(cold_session.check("wide.c", &fs).expect("cold run analyzes"));
    });
    let cold_outcome = cold_outcome.expect("cold run ran");
    assert_eq!(cold_outcome.run, SessionRun::Analyzed);

    let mut warm_session = AnalysisSession::with_store(config(), &dir).expect("store reopens");
    let mut warm_outcome = None;
    let warm = h.bench_once("incremental/warm_no_change", || {
        warm_outcome = Some(warm_session.check("wide.c", &fs).expect("warm run replays"));
    });
    let warm_outcome = warm_outcome.expect("warm run ran");
    assert_eq!(warm_outcome.run, SessionRun::Replayed, "no-change run must replay");
    assert_eq!(
        warm_outcome.metrics.work.get("summary.summarize_calls"),
        None,
        "replay must re-analyze zero SCCs"
    );
    assert_eq!(warm_outcome.rendered, cold_outcome.rendered, "replay must be byte-identical");

    if let (Some(cold), Some(warm)) = (cold, warm) {
        let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
        println!("incremental/speedup: {speedup:.1}x (cold {cold:?} / warm {warm:?})");
        assert!(
            speedup >= 5.0,
            "warm no-change run must be >=5x faster than cold (got {speedup:.1}x)"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
