//! Schema lock for the checked-in frontend perf-trajectory artifact
//! (ISSUE 6 satellite).
//!
//! `BENCH_pr6.json` at the workspace root is the first entry in the
//! recorded LOC/sec perf history (`make bench-frontend` regenerates it).
//! Future PRs extend the trajectory with `BENCH_pr*.json` artifacts of the
//! same shape, so the shape itself is locked here: required keys, integer
//! timing fields, min ≤ median ≤ max ordering, and the embedded
//! pre-refactor baseline with its e2e speedup ratio.

use safeflow_util::Json;

fn artifact() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run `make bench-frontend`)"));
    Json::parse(&text).expect("artifact is valid workspace JSON")
}

fn pr9_artifact() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run `make bench-frontend`)"));
    Json::parse(&text).expect("artifact is valid workspace JSON")
}

fn pr10_artifact() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr10.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run `make bench-shard`)"));
    Json::parse(&text).expect("artifact is valid workspace JSON")
}

fn serve_artifact() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run `make bench-serve`)"));
    Json::parse(&text).expect("artifact is valid workspace JSON")
}

fn uint(doc: &Json, path: &[&str]) -> u64 {
    let mut cur = doc;
    for key in path {
        cur =
            cur.get(key).unwrap_or_else(|| panic!("missing key `{}` in artifact", path.join(".")));
    }
    match cur {
        Json::UInt(v) => *v,
        Json::Int(v) if *v >= 0 => *v as u64,
        other => panic!("`{}` is not an unsigned integer: {other:?}", path.join(".")),
    }
}

fn string<'j>(doc: &'j Json, path: &[&str]) -> &'j str {
    let mut cur = doc;
    for key in path {
        cur =
            cur.get(key).unwrap_or_else(|| panic!("missing key `{}` in artifact", path.join(".")));
    }
    match cur {
        Json::Str(s) => s.as_str(),
        other => panic!("`{}` is not a string: {other:?}", path.join(".")),
    }
}

/// Checks one stage object: integer timings, coherent ordering, a
/// nonzero throughput consistent with the corpus LOC.
fn check_stage(doc: &Json, stage_path: &[&str], loc: u64) {
    let mut p: Vec<&str> = stage_path.to_vec();
    p.push("median_ns");
    let median = uint(doc, &p);
    *p.last_mut().unwrap() = "min_ns";
    let min = uint(doc, &p);
    *p.last_mut().unwrap() = "max_ns";
    let max = uint(doc, &p);
    *p.last_mut().unwrap() = "loc_per_sec";
    let rate = uint(doc, &p);
    assert!(median > 0, "{stage_path:?}: zero median");
    assert!(min <= median && median <= max, "{stage_path:?}: min/median/max out of order");
    // loc_per_sec is derived from the median; recompute and compare.
    let expected = (loc as u128 * 1_000_000_000 / median as u128) as u64;
    assert_eq!(rate, expected, "{stage_path:?}: loc_per_sec inconsistent with median_ns");
}

#[test]
fn trajectory_artifact_matches_schema() {
    let doc = artifact();
    assert_eq!(string(&doc, &["schema"]), "safeflow-bench-trajectory-v1");
    assert_eq!(uint(&doc, &["pr"]), 6);
    assert_eq!(string(&doc, &["bench"]), "frontend-e2e");
    assert!(!string(&doc, &["label"]).is_empty());
    assert!(uint(&doc, &["samples"]) > 0);

    let loc = uint(&doc, &["corpus", "loc"]);
    assert!(loc > 0, "corpus must have countable LOC");
    assert!(uint(&doc, &["corpus", "programs"]) > 0);
    assert!(uint(&doc, &["corpus", "raw_lines"]) >= loc);

    // Wall-clock numbers are schedule-class by construction and must say so.
    assert_eq!(string(&doc, &["determinism", "class"]), "Sched");

    for stage in ["parse", "lower_ssa", "e2e"] {
        check_stage(&doc, &["stages", stage], loc);
    }
}

#[test]
fn trajectory_artifact_records_pre_refactor_baseline_and_speedup() {
    let doc = artifact();
    // The PR-6 artifact embeds the pre-refactor run: same corpus, same
    // stage shape, plus the end-to-end speedup ratio in whole percent
    // (100 = parity). The refactor claim is that the arena + interning
    // frontend is measurably faster, so the recorded ratio must exceed
    // parity.
    let base_loc = uint(&doc, &["baseline", "corpus", "loc"]);
    assert_eq!(base_loc, uint(&doc, &["corpus", "loc"]), "baseline must use the same corpus");
    for stage in ["parse", "lower_ssa", "e2e"] {
        check_stage(&doc, &["baseline", "stages", stage], base_loc);
    }
    let speedup = uint(&doc, &["speedup_e2e_pct"]);
    assert!(
        speedup > 100,
        "recorded e2e speedup must beat the pre-refactor baseline, got {speedup}%"
    );
}

#[test]
fn pr9_artifact_continues_the_trajectory() {
    let doc = pr9_artifact();
    assert_eq!(string(&doc, &["schema"]), "safeflow-bench-trajectory-v1");
    assert_eq!(uint(&doc, &["pr"]), 9);
    assert_eq!(string(&doc, &["bench"]), "frontend-e2e");
    assert!(!string(&doc, &["label"]).is_empty());
    assert_eq!(string(&doc, &["determinism", "class"]), "Sched");

    // The classic-corpus stages stay comparable with the PR 7 artifact.
    let loc = uint(&doc, &["corpus", "loc"]);
    assert!(loc > 0);
    for stage in ["parse", "lower_ssa", "e2e"] {
        check_stage(&doc, &["stages", stage], loc);
    }
}

#[test]
fn pr9_artifact_records_the_monorepo_column() {
    let doc = pr9_artifact();
    // The ISSUE 8 acceptance floor: a >=100-TU, >=100k-LOC monorepo run
    // completed under `make bench-frontend`.
    let tus = uint(&doc, &["monorepo", "tus"]);
    assert!(tus >= 100, "monorepo column needs >=100 TUs, recorded {tus}");
    let loc = uint(&doc, &["monorepo", "loc"]);
    assert!(loc >= 100_000, "monorepo column needs >=100k LOC, recorded {loc}");
    assert!(uint(&doc, &["monorepo", "files"]) >= tus);
    assert!(uint(&doc, &["monorepo", "raw_lines"]) >= loc);
    for stage in ["parse_j1", "parse_j8", "e2e"] {
        check_stage(&doc, &["monorepo", "stages", stage], loc);
    }
    // The ratio is recorded (it may honestly sit below parity: the
    // monorepo is one root TU, so workers only parallelize lexing while
    // inclusion and macro expansion replay sequentially).
    let ratio = uint(&doc, &["monorepo", "parallel_parse_speedup_pct"]);
    assert!(ratio > 0);
    let j1 = uint(&doc, &["monorepo", "stages", "parse_j1", "median_ns"]);
    let j8 = uint(&doc, &["monorepo", "stages", "parse_j8", "median_ns"]);
    assert_eq!(ratio, j1 * 100 / j8.max(1), "ratio inconsistent with recorded medians");
}

#[test]
fn pr10_artifact_records_shard_scaling() {
    let doc = pr10_artifact();
    assert_eq!(string(&doc, &["schema"]), "safeflow-bench-trajectory-v1");
    assert_eq!(uint(&doc, &["pr"]), 10);
    assert_eq!(string(&doc, &["bench"]), "shard-scaling");
    assert!(!string(&doc, &["label"]).is_empty());
    assert!(uint(&doc, &["samples"]) > 0);
    assert!(uint(&doc, &["jobs_per_worker"]) > 0);
    assert_eq!(string(&doc, &["determinism", "class"]), "Sched");

    // Same monorepo floor as the ISSUE 8 column: >=100 TUs, >=100k LOC.
    let tus = uint(&doc, &["corpus", "tus"]);
    assert!(tus >= 100, "shard bench needs >=100 TUs, recorded {tus}");
    let loc = uint(&doc, &["corpus", "loc"]);
    assert!(loc >= 100_000, "shard bench needs >=100k LOC, recorded {loc}");
    assert!(uint(&doc, &["corpus", "files"]) >= tus);
    assert!(uint(&doc, &["corpus", "raw_lines"]) >= loc);

    // The baseline column plus the 1/2/4-worker fan-out columns.
    for stage in ["unsharded", "shard_1", "shard_2", "shard_4"] {
        check_stage(&doc, &["stages", stage], loc);
    }

    // Scaling ratios are recorded and consistent with the medians. They
    // may honestly sit below parity — on a host with fewer cores than
    // workers the fan-out is pure duplication — so the lock is on
    // coherence, not on a speedup claim.
    assert!(uint(&doc, &["scaling", "host_cpus"]) >= 1);
    let one = uint(&doc, &["stages", "shard_1", "median_ns"]);
    for (key, stage) in [("shard_2_speedup_pct", "shard_2"), ("shard_4_speedup_pct", "shard_4")] {
        let ratio = uint(&doc, &["scaling", key]);
        let n = uint(&doc, &["stages", stage, "median_ns"]);
        assert!(ratio > 0);
        assert_eq!(ratio, one * 100 / n.max(1), "{key} inconsistent with recorded medians");
    }
}

/// Checks one latency-stats object: nonzero, coherent percentiles.
fn check_latency(doc: &Json, path: &[&str]) -> (u64, u64) {
    let mut p: Vec<&str> = path.to_vec();
    p.push("p50_ns");
    let p50 = uint(doc, &p);
    *p.last_mut().unwrap() = "p99_ns";
    let p99 = uint(doc, &p);
    *p.last_mut().unwrap() = "min_ns";
    let min = uint(doc, &p);
    *p.last_mut().unwrap() = "max_ns";
    let max = uint(doc, &p);
    assert!(p50 > 0, "{path:?}: zero p50");
    assert!(min <= p50 && p50 <= p99 && p99 <= max, "{path:?}: percentiles out of order");
    (p50, p99)
}

#[test]
fn serve_artifact_matches_schema() {
    let doc = serve_artifact();
    assert_eq!(string(&doc, &["schema"]), "safeflow-bench-trajectory-v1");
    assert_eq!(uint(&doc, &["pr"]), 7);
    assert_eq!(string(&doc, &["bench"]), "serve-latency");
    assert!(!string(&doc, &["label"]).is_empty());
    assert!(uint(&doc, &["samples"]) > 0);
    // Latencies are wall-clock and must be marked schedule-class.
    assert_eq!(string(&doc, &["determinism", "class"]), "Sched");

    let (warm_p50, _) = check_latency(&doc, &["latency", "warm"]);
    let (cold_p50, _) = check_latency(&doc, &["latency", "cold"]);
    // The tentpole's latency claim: the resident warm path beats a cold
    // analysis of the same program, and the recorded ratio agrees.
    assert!(warm_p50 < cold_p50, "warm p50 ({warm_p50}ns) must beat cold p50 ({cold_p50}ns)");
    let speedup = uint(&doc, &["latency", "warm_speedup_pct"]);
    assert!(speedup > 100, "recorded warm speedup must exceed parity, got {speedup}%");
    let expected = (cold_p50.max(1) as u128 * 100 / warm_p50.max(1) as u128) as u64;
    assert_eq!(speedup, expected, "warm_speedup_pct inconsistent with recorded p50s");
}

#[test]
fn serve_artifact_records_clean_overload_shedding() {
    let doc = serve_artifact();
    // The behavioral claim re-asserted from the artifact: offering 4x the
    // queue capacity to a single worker shed at least one request, every
    // request was answered (no hangs), and nothing panicked.
    let capacity = uint(&doc, &["overload", "queue_capacity"]);
    let offered = uint(&doc, &["overload", "offered"]);
    assert!(capacity > 0);
    assert_eq!(offered, 4 * capacity, "the drill must offer 4x the queue capacity");
    let completed = uint(&doc, &["overload", "completed"]);
    let shed = uint(&doc, &["overload", "shed"]);
    assert!(shed >= 1, "a bounded queue under 4x overload must shed");
    assert!(completed >= 1, "shedding everything means the daemon served nothing");
    assert_eq!(completed + shed, uint(&doc, &["overload", "answered"]));
    assert_eq!(uint(&doc, &["overload", "answered"]), offered, "every request gets an answer");
    assert_eq!(uint(&doc, &["overload", "panics_contained"]), 0);
}
