//! # safeflow-dataflow
//!
//! Dataflow analyses over the SafeFlow IR: a generic worklist framework,
//! def-use chains, liveness, reaching definitions, post-dominators, and the
//! control-dependence graph that phase 3 of the paper's analysis uses to
//! propagate `unsafe` through control dependence (§3.3, §3.4.1).
//!
//! # Examples
//!
//! ```
//! use safeflow_syntax::{parse_source, diag::Diagnostics};
//! use safeflow_ir::build_module;
//! use safeflow_dataflow::defuse::DefUse;
//!
//! let pr = parse_source("d.c", "int f(int a) { return a + a; }");
//! let mut diags = Diagnostics::new();
//! let module = build_module(&pr.unit, &mut diags);
//! let fid = module.function_by_name("f").unwrap();
//! let du = DefUse::build(module.function(fid));
//! assert!(!du.uses_of_param(0).is_empty());
//! ```

#![warn(missing_docs)]

pub mod controldep;
pub mod defuse;
pub mod framework;
pub mod liveness;
pub mod postdom;
pub mod reaching;

pub use controldep::ControlDeps;
pub use defuse::DefUse;
pub use postdom::PostDomTree;
