//! Def-use chains over SSA values.
//!
//! Phase 2 of the paper enforces P1–P3 "by following def-use chains"
//! (§3.3); phase 3's value-flow graph walks them forward.

use safeflow_ir::{BlockId, Function, InstId, Value};
use std::collections::HashMap;

/// A location that consumes a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Use {
    /// Operand of instruction `InstId` (which lives in the block).
    Inst(InstId),
    /// Operand of the terminator of the block.
    Terminator(BlockId),
}

/// Def-use chains for one function.
#[derive(Debug, Clone)]
pub struct DefUse {
    inst_uses: HashMap<InstId, Vec<Use>>,
    param_uses: HashMap<u32, Vec<Use>>,
}

impl DefUse {
    /// Builds chains for every instruction result and parameter of `func`.
    pub fn build(func: &Function) -> DefUse {
        let mut inst_uses: HashMap<InstId, Vec<Use>> = HashMap::new();
        let mut param_uses: HashMap<u32, Vec<Use>> = HashMap::new();
        let mut record = |v: &Value, at: Use| match v {
            Value::Inst(id) => inst_uses.entry(*id).or_default().push(at),
            Value::Param(i) => param_uses.entry(*i).or_default().push(at),
            _ => {}
        };
        for (bid, block) in func.iter_blocks() {
            for &iid in &block.insts {
                for op in func.inst(iid).kind.operands() {
                    record(op, Use::Inst(iid));
                }
            }
            for op in block.terminator.operands() {
                record(op, Use::Terminator(bid));
            }
        }
        DefUse { inst_uses, param_uses }
    }

    /// Uses of the result of `id` (empty slice if unused).
    pub fn uses_of(&self, id: InstId) -> &[Use] {
        self.inst_uses.get(&id).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Uses of parameter `i`.
    pub fn uses_of_param(&self, i: u32) -> &[Use] {
        self.param_uses.get(&i).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Uses of an arbitrary value.
    pub fn uses_of_value(&self, v: &Value) -> &[Use] {
        match v {
            Value::Inst(id) => self.uses_of(*id),
            Value::Param(i) => self.uses_of_param(*i),
            _ => &[],
        }
    }

    /// Whether the result of `id` is used anywhere.
    pub fn is_used(&self, id: InstId) -> bool {
        !self.uses_of(id).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeflow_ir::{build_module, InstKind};
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;

    fn build(src: &str, name: &str) -> (safeflow_ir::Module, safeflow_ir::FuncId) {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors());
        let mut diags = Diagnostics::new();
        let m = build_module(&pr.unit, &mut diags);
        assert!(!diags.has_errors());
        let fid = m.function_by_name(name).unwrap();
        (m, fid)
    }

    #[test]
    fn param_uses_found() {
        let (m, fid) = build("int f(int a) { return a + a; }", "f");
        let f = m.function(fid);
        let du = DefUse::build(f);
        // After SSA, `a` feeds the add twice (one Use per operand).
        assert_eq!(du.uses_of_param(0).len(), 2);
    }

    #[test]
    fn inst_uses_include_terminator() {
        let (m, fid) = build("int f(int a, int b) { return a * b; }", "f");
        let f = m.function(fid);
        let du = DefUse::build(f);
        let mul = f
            .iter_insts()
            .find(|(_, i)| matches!(i.kind, InstKind::Bin { .. }))
            .map(|(id, _)| id)
            .unwrap();
        let uses = du.uses_of(mul);
        assert_eq!(uses.len(), 1);
        assert!(matches!(uses[0], Use::Terminator(_)));
        assert!(du.is_used(mul));
    }

    #[test]
    fn unused_result_has_no_uses() {
        let (m, fid) = build("int g(void); void f(void) { g(); }", "f");
        let f = m.function(fid);
        let du = DefUse::build(f);
        let call = f
            .iter_insts()
            .find(|(_, i)| matches!(i.kind, InstKind::Call { .. }))
            .map(|(id, _)| id)
            .unwrap();
        assert!(!du.is_used(call));
    }

    #[test]
    fn phi_operands_counted() {
        let (m, fid) = build("int f(int x) { int r; if (x) r = 1; else r = 2; return r; }", "f");
        let f = m.function(fid);
        let du = DefUse::build(f);
        // The phi's result is used by the return.
        let phi = f
            .iter_insts()
            .find(|(_, i)| matches!(i.kind, InstKind::Phi { .. }))
            .map(|(id, _)| id)
            .unwrap();
        assert!(du.is_used(phi));
    }
}
