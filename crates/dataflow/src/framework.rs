//! Generic worklist dataflow framework over block-level facts.
//!
//! Analyses implement [`Analysis`]: a join-semilattice fact per block plus a
//! transfer function. [`solve`] iterates to fixpoint in (reverse-)postorder.

use safeflow_ir::{BlockId, Cfg, Function};

/// Direction of a dataflow analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along CFG edges (entry → exit).
    Forward,
    /// Facts flow against CFG edges (exit → entry).
    Backward,
}

/// A dataflow analysis specification.
pub trait Analysis {
    /// The lattice element computed per block boundary.
    type Fact: Clone + PartialEq;

    /// Analysis direction.
    const DIRECTION: Direction;

    /// ⊥ — the initial fact for every block.
    fn bottom(&self, func: &Function) -> Self::Fact;

    /// The boundary fact (at entry for forward, at exits for backward).
    fn boundary(&self, func: &Function) -> Self::Fact;

    /// Least-upper-bound; returns `true` if `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Applies `block`'s transfer function to `fact` (in analysis
    /// direction), producing the outgoing fact.
    fn transfer(&self, func: &Function, block: BlockId, fact: &Self::Fact) -> Self::Fact;
}

/// Fixpoint solution: the *incoming* fact of each block (in analysis
/// direction).
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// `entry[b]` = fact at the block's input boundary.
    pub entry: Vec<F>,
    /// `exit[b]` = fact after the block's transfer function.
    pub exit: Vec<F>,
}

/// Runs `analysis` over `func` to fixpoint.
pub fn solve<A: Analysis>(analysis: &A, func: &Function, cfg: &Cfg) -> Solution<A::Fact> {
    let n = func.blocks.len();
    let mut entry: Vec<A::Fact> = (0..n).map(|_| analysis.bottom(func)).collect();
    let mut exit: Vec<A::Fact> = (0..n).map(|_| analysis.bottom(func)).collect();

    // Iteration order: RPO for forward, post-order for backward.
    let order: Vec<BlockId> = match A::DIRECTION {
        Direction::Forward => cfg.rpo.clone(),
        Direction::Backward => cfg.rpo.iter().rev().copied().collect(),
    };

    // Boundary initialization.
    match A::DIRECTION {
        Direction::Forward => {
            if let Some(&e) = cfg.rpo.first() {
                entry[e.0 as usize] = analysis.boundary(func);
            }
        }
        Direction::Backward => {
            for &b in &cfg.rpo {
                if cfg.succs_of(b).is_empty() {
                    entry[b.0 as usize] = analysis.boundary(func);
                }
            }
        }
    }

    let mut changed = true;
    let mut iterations = 0usize;
    let max_iterations = 4 * n.max(4) * n.max(4) + 64; // defensive bound
    while changed && iterations < max_iterations {
        changed = false;
        iterations += 1;
        for &b in &order {
            let bi = b.0 as usize;
            // Merge from neighbours.
            match A::DIRECTION {
                Direction::Forward => {
                    for &p in cfg.preds_of(b) {
                        if cfg.is_reachable(p) {
                            let from = exit[p.0 as usize].clone();
                            if analysis.join(&mut entry[bi], &from) {
                                changed = true;
                            }
                        }
                    }
                }
                Direction::Backward => {
                    for &s in cfg.succs_of(b) {
                        let from = exit[s.0 as usize].clone();
                        if analysis.join(&mut entry[bi], &from) {
                            changed = true;
                        }
                    }
                }
            }
            let new_exit = analysis.transfer(func, b, &entry[bi]);
            if new_exit != exit[bi] {
                exit[bi] = new_exit;
                changed = true;
            }
        }
    }
    Solution { entry, exit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeflow_ir::build_module;
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;
    use std::collections::HashSet;

    /// Toy analysis: set of blocks seen on some path from entry.
    struct ReachableBlocks;

    impl Analysis for ReachableBlocks {
        type Fact = HashSet<u32>;
        const DIRECTION: Direction = Direction::Forward;

        fn bottom(&self, _f: &Function) -> Self::Fact {
            HashSet::new()
        }
        fn boundary(&self, _f: &Function) -> Self::Fact {
            HashSet::new()
        }
        fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
            let before = into.len();
            into.extend(from.iter().copied());
            into.len() != before
        }
        fn transfer(&self, _f: &Function, block: BlockId, fact: &Self::Fact) -> Self::Fact {
            let mut out = fact.clone();
            out.insert(block.0);
            out
        }
    }

    #[test]
    fn forward_facts_accumulate_along_paths() {
        let pr = parse_source("t.c", "int f(int x) { int r; if (x) r = 1; else r = 2; return r; }");
        let mut diags = Diagnostics::new();
        let m = build_module(&pr.unit, &mut diags);
        let f = m.function(m.function_by_name("f").unwrap());
        let cfg = Cfg::build(f);
        let sol = solve(&ReachableBlocks, f, &cfg);
        // The last block in RPO sees the entry block on every path.
        let last = cfg.rpo.last().unwrap();
        assert!(sol.entry[last.0 as usize].contains(&0));
    }

    #[test]
    fn loop_reaches_fixpoint() {
        let pr =
            parse_source("t.c", "int f(int n) { int s = 0; while (n) { s += n; n--; } return s; }");
        let mut diags = Diagnostics::new();
        let m = build_module(&pr.unit, &mut diags);
        let f = m.function(m.function_by_name("f").unwrap());
        let cfg = Cfg::build(f);
        let sol = solve(&ReachableBlocks, f, &cfg);
        // Loop header's entry fact contains the loop body (via back edge).
        let header =
            cfg.rpo.iter().find(|b| cfg.preds_of(**b).len() >= 2).copied().expect("loop header");
        let body = cfg
            .preds_of(header)
            .iter()
            .copied()
            .find(|p| cfg.rpo_index[p.0 as usize] > cfg.rpo_index[header.0 as usize])
            .expect("latch");
        assert!(sol.entry[header.0 as usize].contains(&body.0));
    }
}
