//! Reaching stores: which `Store` instructions may reach each block.
//!
//! Used by the shared-memory pointer identification phase to reason about
//! non-promoted memory slots (address-taken locals and globals) in a
//! flow-sensitive way, matching the paper's "standard global data flow
//! algorithm ... on the basic blocks in the CFG" (§3.3).

use crate::framework::{solve, Analysis, Direction, Solution};
use safeflow_ir::{BlockId, Cfg, Function, InstId, InstKind};
use std::collections::HashSet;

/// Forward may-analysis over the set of store instructions that reach a
/// point. No kills are applied for aliased pointers — a sound
/// over-approximation; exact-match kills are applied when two stores write
/// through the *same* pointer value.
pub struct ReachingStores;

impl Analysis for ReachingStores {
    type Fact = HashSet<InstId>;
    const DIRECTION: Direction = Direction::Forward;

    fn bottom(&self, _f: &Function) -> Self::Fact {
        HashSet::new()
    }

    fn boundary(&self, _f: &Function) -> Self::Fact {
        HashSet::new()
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        let before = into.len();
        into.extend(from.iter().copied());
        into.len() != before
    }

    fn transfer(&self, func: &Function, block: BlockId, fact: &Self::Fact) -> Self::Fact {
        let mut out = fact.clone();
        for &iid in &func.block(block).insts {
            if let InstKind::Store { ptr, .. } = &func.inst(iid).kind {
                // Kill earlier stores through the identical pointer value.
                out.retain(|&other| match &func.inst(other).kind {
                    InstKind::Store { ptr: other_ptr, .. } => other_ptr != ptr,
                    _ => true,
                });
                out.insert(iid);
            }
        }
        out
    }
}

/// Computes reaching stores; `entry[b]` is the set at block entry.
pub fn reaching_stores(func: &Function, cfg: &Cfg) -> Solution<HashSet<InstId>> {
    solve(&ReachingStores, func, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeflow_ir::{build_module, Value};
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;

    fn module(src: &str) -> safeflow_ir::Module {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors());
        let mut diags = Diagnostics::new();
        build_module(&pr.unit, &mut diags)
    }

    #[test]
    fn global_store_reaches_later_block() {
        let m = module("int g; int f(int x) { g = 1; if (x) { g = 2; } return g; }");
        let fid = m.function_by_name("f").unwrap();
        let f = m.function(fid);
        let cfg = Cfg::build(f);
        let sol = reaching_stores(f, &cfg);
        // At the return block both stores may reach (the g=1 along the
        // else edge, g=2 along the then edge).
        let ret_block = f
            .iter_blocks()
            .find(|(_, b)| matches!(b.terminator, safeflow_ir::Terminator::Ret(_)))
            .map(|(b, _)| b)
            .unwrap();
        let stores_reaching = sol.entry[ret_block.0 as usize].len();
        assert_eq!(stores_reaching, 2, "both stores to g may reach the return");
    }

    #[test]
    fn same_pointer_store_kills_previous() {
        let m = module("int g; void f(void) { g = 1; g = 2; }");
        let fid = m.function_by_name("f").unwrap();
        let f = m.function(fid);
        let cfg = Cfg::build(f);
        let sol = reaching_stores(f, &cfg);
        // At block exit only the second store survives.
        let exit_set = &sol.exit[f.entry().0 as usize];
        assert_eq!(exit_set.len(), 1);
        let surviving = *exit_set.iter().next().unwrap();
        match &f.inst(surviving).kind {
            InstKind::Store { value, .. } => {
                assert_eq!(value.as_const_int(), Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
        let _ = Value::i32(0);
    }

    #[test]
    fn different_pointers_do_not_kill() {
        let m = module("int a; int b; void f(void) { a = 1; b = 2; }");
        let fid = m.function_by_name("f").unwrap();
        let f = m.function(fid);
        let cfg = Cfg::build(f);
        let sol = reaching_stores(f, &cfg);
        assert_eq!(sol.exit[f.entry().0 as usize].len(), 2);
    }
}
