//! Liveness of SSA values, via the generic framework.

use crate::framework::{solve, Analysis, Direction, Solution};
use safeflow_ir::{BlockId, Cfg, Function, InstId, InstKind, Value};
use std::collections::HashSet;

/// Backward may-analysis: which instruction results are live at block
/// boundaries.
pub struct Liveness;

impl Analysis for Liveness {
    type Fact = HashSet<InstId>;
    const DIRECTION: Direction = Direction::Backward;

    fn bottom(&self, _f: &Function) -> Self::Fact {
        HashSet::new()
    }

    fn boundary(&self, _f: &Function) -> Self::Fact {
        HashSet::new()
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        let before = into.len();
        into.extend(from.iter().copied());
        into.len() != before
    }

    fn transfer(&self, func: &Function, block: BlockId, fact: &Self::Fact) -> Self::Fact {
        // Backward: `fact` is live-out; produce live-in.
        let mut live = fact.clone();
        let b = func.block(block);
        for op in b.terminator.operands() {
            if let Value::Inst(id) = op {
                live.insert(*id);
            }
        }
        for &iid in b.insts.iter().rev() {
            live.remove(&iid);
            let inst = func.inst(iid);
            // φ-operands are live on the corresponding predecessor edge;
            // treating them as live-in here is a sound over-approximation.
            for op in inst.kind.operands() {
                if let Value::Inst(id) = op {
                    live.insert(*id);
                }
            }
        }
        live
    }
}

/// Computes liveness for `func`. `entry[b]` holds live-out sets and
/// `exit[b]` live-in sets (backward analysis orientation of the generic
/// solver).
pub fn liveness(func: &Function, cfg: &Cfg) -> Solution<HashSet<InstId>> {
    solve(&Liveness, func, cfg)
}

/// Instruction results that are never used (dead code candidates, excluding
/// side-effecting instructions).
pub fn dead_values(func: &Function) -> Vec<InstId> {
    let mut used: HashSet<InstId> = HashSet::new();
    for (_, inst) in func.iter_insts() {
        for op in inst.kind.operands() {
            if let Value::Inst(id) = op {
                used.insert(*id);
            }
        }
    }
    for (_, block) in func.iter_blocks() {
        for op in block.terminator.operands() {
            if let Value::Inst(id) = op {
                used.insert(*id);
            }
        }
    }
    func.iter_insts()
        .filter(|(id, inst)| {
            !used.contains(id)
                && !inst.kind.has_side_effects()
                && !matches!(inst.kind, InstKind::Alloca { .. })
        })
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeflow_ir::build_module;
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;

    fn module(src: &str) -> safeflow_ir::Module {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors());
        let mut diags = Diagnostics::new();
        build_module(&pr.unit, &mut diags)
    }

    #[test]
    fn value_live_across_branch() {
        let m = module("int g(int); int f(int x) { int a = x * 2; if (x) { g(a); } return a; }");
        let fid = m.function_by_name("f").unwrap();
        let f = m.function(fid);
        let cfg = Cfg::build(f);
        let live = liveness(f, &cfg);
        // The multiply's result is live-out of the entry block.
        let mul = f
            .iter_insts()
            .find(|(_, i)| matches!(i.kind, InstKind::Bin { .. }))
            .map(|(id, _)| id)
            .unwrap();
        assert!(
            live.entry[f.entry().0 as usize].contains(&mul)
                || live.exit[f.entry().0 as usize].contains(&mul)
        );
    }

    #[test]
    fn dead_value_detection() {
        let m = module("int f(int x) { int unused = x + 1; return x; }");
        let fid = m.function_by_name("f").unwrap();
        let f = m.function(fid);
        let dead = dead_values(f);
        assert_eq!(dead.len(), 1, "the unused add should be dead: {dead:?}");
    }

    #[test]
    fn side_effects_never_dead() {
        let m = module("int g(void); void f(void) { g(); }");
        let fid = m.function_by_name("f").unwrap();
        let f = m.function(fid);
        assert!(dead_values(f).is_empty());
    }
}
