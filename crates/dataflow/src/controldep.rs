//! Control-dependence graph (Ferrante–Ottenstein–Warren construction from
//! the post-dominator tree).
//!
//! Block `B` is control-dependent on block `A` when `A` has an outgoing
//! edge `A→S` such that `B` post-dominates `S` but `B` does not
//! post-dominate `A` — i.e., `A`'s branch decides whether `B` runs. Phase 3
//! of SafeFlow taints values defined in blocks that are control-dependent
//! on branches over unsafe values (paper §3.3/§3.4.1 — the source of the
//! analysis's classified false positives).

use crate::postdom::PostDomTree;
use safeflow_ir::{BlockId, Cfg, Function};
use std::collections::HashSet;

/// Control dependences of one function.
#[derive(Debug, Clone)]
pub struct ControlDeps {
    /// `deps[b]` = blocks whose branch decisions `b` is control-dependent
    /// on (the controlling blocks).
    deps: Vec<Vec<BlockId>>,
    /// `controls[a]` = blocks control-dependent on `a`.
    controls: Vec<Vec<BlockId>>,
}

impl ControlDeps {
    /// Computes control dependences of `func`.
    pub fn build(func: &Function, cfg: &Cfg, pdom: &PostDomTree) -> ControlDeps {
        let n = func.blocks.len();
        let mut deps: Vec<HashSet<BlockId>> = vec![HashSet::new(); n];
        for a in 0..n {
            let aid = BlockId(a as u32);
            if !cfg.is_reachable(aid) {
                continue;
            }
            let succs = cfg.succs_of(aid);
            if succs.len() < 2 {
                continue; // only branch points control anything
            }
            for &s in succs {
                // Walk the post-dominator chain from s up to (but not
                // including) ipdom(a); every node on the way is
                // control-dependent on a.
                let stop = pdom.immediate(aid);
                let mut cur = Some(s.0 as usize);
                let mut guard = 0;
                while let Some(c) = cur {
                    if Some(c) == stop || c == crate::postdom::VIRTUAL_EXIT {
                        break;
                    }
                    let cid = BlockId(c as u32);
                    // a is control-dependent on itself in loops; FOW keeps
                    // that case (when a post-dominates its own successor
                    // chain up to itself).
                    deps[c].insert(aid);
                    cur = pdom.immediate(cid);
                    guard += 1;
                    if guard > n + 2 {
                        break;
                    }
                }
            }
        }
        let mut controls: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let deps_out: Vec<Vec<BlockId>> = deps
            .into_iter()
            .enumerate()
            .map(|(b, set)| {
                let mut v: Vec<BlockId> = set.into_iter().collect();
                v.sort();
                for &a in &v {
                    controls[a.0 as usize].push(BlockId(b as u32));
                }
                v
            })
            .collect();
        ControlDeps { deps: deps_out, controls }
    }

    /// Blocks whose branches decide whether `b` executes.
    pub fn controlling(&self, b: BlockId) -> &[BlockId] {
        &self.deps[b.0 as usize]
    }

    /// Blocks whose execution is decided by `a`'s branch.
    pub fn controlled_by(&self, a: BlockId) -> &[BlockId] {
        &self.controls[a.0 as usize]
    }

    /// Transitive closure of controlling blocks for `b` (not including `b`
    /// unless it controls itself through a loop).
    pub fn controlling_transitive(&self, b: BlockId) -> HashSet<BlockId> {
        let mut seen: HashSet<BlockId> = HashSet::new();
        let mut work: Vec<BlockId> = self.controlling(b).to_vec();
        while let Some(a) = work.pop() {
            if seen.insert(a) {
                work.extend(self.controlling(a).iter().copied());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeflow_ir::{build_module, InstKind, Terminator};
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;

    fn cdeps(src: &str, name: &str) -> (safeflow_ir::Module, safeflow_ir::FuncId, ControlDeps) {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors());
        let mut diags = Diagnostics::new();
        let m = build_module(&pr.unit, &mut diags);
        let fid = m.function_by_name(name).unwrap();
        let f = m.function(fid);
        let cfg = Cfg::build(f);
        let pdom = PostDomTree::build(f, &cfg);
        let cd = ControlDeps::build(f, &cfg, &pdom);
        (m, fid, cd)
    }

    #[test]
    fn if_arms_depend_on_condition_block() {
        let (m, fid, cd) =
            cdeps("int g(void); int f(int x) { int r = 0; if (x) r = g(); return r; }", "f");
        let f = m.function(fid);
        let cfg = Cfg::build(f);
        let entry = f.entry();
        // The then-block is control-dependent on the entry (which branches).
        let then_bb = cfg.succs_of(entry)[0];
        assert!(cd.controlling(then_bb).contains(&entry));
        assert!(cd.controlled_by(entry).contains(&then_bb));
    }

    #[test]
    fn join_not_dependent_on_branch() {
        let (m, fid, cd) =
            cdeps("int f(int x) { int r; if (x) r = 1; else r = 2; return r; }", "f");
        let f = m.function(fid);
        let cfg = Cfg::build(f);
        let join = f.iter_blocks().map(|(b, _)| b).find(|&b| cfg.preds_of(b).len() == 2).unwrap();
        // The join executes regardless of the branch: no control dependence.
        assert!(cd.controlling(join).is_empty());
    }

    #[test]
    fn loop_body_depends_on_header() {
        let (m, fid, cd) =
            cdeps("int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }", "f");
        let f = m.function(fid);
        let cfg = Cfg::build(f);
        let header = f.iter_blocks().map(|(b, _)| b).find(|&b| cfg.preds_of(b).len() == 2).unwrap();
        let body = cfg
            .succs_of(header)
            .iter()
            .copied()
            .find(|&b| {
                // body branches back to header eventually
                !matches!(f.block(b).terminator, Terminator::Ret(_))
            })
            .unwrap();
        assert!(cd.controlling(body).contains(&header));
        // The header controls itself (the back edge re-tests the condition).
        assert!(cd.controlling(header).contains(&header));
    }

    #[test]
    fn nested_if_transitive_dependence() {
        let (m, fid, cd) = cdeps(
            "int g(void); int f(int a, int b) { int r = 0; if (a) { if (b) { r = g(); } } return r; }",
            "f",
        );
        let f = m.function(fid);
        // The innermost block (containing the call) transitively depends on
        // both branch blocks.
        let call_block = f
            .iter_blocks()
            .find(|(_, blk)| {
                blk.insts.iter().any(|&i| matches!(f.inst(i).kind, InstKind::Call { .. }))
            })
            .map(|(b, _)| b)
            .unwrap();
        let trans = cd.controlling_transitive(call_block);
        assert!(trans.len() >= 2, "expected at least 2 controlling branches, got {trans:?}");
    }

    #[test]
    fn straightline_has_no_dependences() {
        let (m, fid, cd) = cdeps("int f(int a) { int b = a + 1; return b; }", "f");
        let f = m.function(fid);
        for (b, _) in f.iter_blocks() {
            assert!(cd.controlling(b).is_empty());
        }
    }
}
