//! Post-dominator tree: dominators of the reverse CFG with a virtual exit.
//!
//! Required by the control-dependence computation (paper §3.3: errors are
//! reported when critical data is *control* dependent on unsafe values).

use safeflow_ir::{BlockId, Cfg, Function};

/// Index of the virtual exit node in the post-dominator structures.
/// Real blocks keep their `BlockId` indices; the virtual exit is `n`.
#[derive(Debug, Clone)]
pub struct PostDomTree {
    /// `ipdom[b]` = immediate post-dominator of block `b`; `None` for
    /// blocks that cannot reach any exit. The virtual exit is represented
    /// by `usize::MAX`.
    ipdom: Vec<Option<usize>>,
    n: usize,
}

/// Marker for the virtual exit in [`PostDomTree`] queries.
pub const VIRTUAL_EXIT: usize = usize::MAX;

impl PostDomTree {
    /// Builds the post-dominator tree of `func`.
    pub fn build(func: &Function, cfg: &Cfg) -> PostDomTree {
        let n = func.blocks.len();
        // Reverse CFG with virtual exit node `n`: edges succ->pred, plus
        // exit-node edges to every block with no successors (returns) —
        // and, to make infinite loops well-defined, to every block that
        // cannot reach an exit we fall back by attaching loop headers
        // lazily (standard practical fix: treat unreachable-to-exit blocks
        // as post-dominated by nothing).
        let mut rsuccs: Vec<Vec<usize>> = vec![Vec::new(); n + 1]; // reverse successors = CFG preds
        let mut rpreds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        #[allow(clippy::needless_range_loop)] // b indexes two vecs and builds BlockIds
        for b in 0..n {
            let bid = BlockId(b as u32);
            if !cfg.is_reachable(bid) {
                continue;
            }
            for &s in cfg.succs_of(bid) {
                // reverse edge s -> b
                rsuccs[s.0 as usize].push(b);
                rpreds[b].push(s.0 as usize);
            }
            if cfg.succs_of(bid).is_empty() {
                // exit block: virtual exit -> b
                rsuccs[n].push(b);
                rpreds[b].push(n);
            }
        }

        // RPO of the reverse graph from the virtual exit.
        let mut post: Vec<usize> = Vec::with_capacity(n + 1);
        let mut state = vec![0u8; n + 1];
        let mut stack: Vec<(usize, usize)> = vec![(n, 0)];
        state[n] = 1;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            let ss = &rsuccs[v];
            if *i < ss.len() {
                let nxt = ss[*i];
                *i += 1;
                if state[nxt] == 0 {
                    state[nxt] = 1;
                    stack.push((nxt, 0));
                }
            } else {
                state[v] = 2;
                post.push(v);
                stack.pop();
            }
        }
        let mut rpo = post;
        rpo.reverse();
        let mut rpo_index = vec![usize::MAX; n + 1];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }

        let mut ipdom: Vec<Option<usize>> = vec![None; n + 1];
        ipdom[n] = Some(n);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &rpreds[b] {
                    if ipdom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&ipdom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if ipdom[b] != Some(ni) {
                        ipdom[b] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        // Externalize: map virtual node n to VIRTUAL_EXIT.
        let ipdom_out: Vec<Option<usize>> =
            (0..n).map(|b| ipdom[b].map(|d| if d == n { VIRTUAL_EXIT } else { d })).collect();
        PostDomTree { ipdom: ipdom_out, n }
    }

    /// Immediate post-dominator of `b`: a block index, [`VIRTUAL_EXIT`], or
    /// `None` when `b` cannot reach an exit.
    pub fn immediate(&self, b: BlockId) -> Option<usize> {
        self.ipdom.get(b.0 as usize).copied().flatten()
    }

    /// Whether `a` post-dominates `b` (reflexive). The virtual exit
    /// post-dominates everything that reaches an exit.
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let target = a.0 as usize;
        let mut cur = b.0 as usize;
        let mut guard = 0;
        loop {
            if cur == target {
                return true;
            }
            match self.ipdom.get(cur).copied().flatten() {
                Some(VIRTUAL_EXIT) | None => return false,
                Some(d) => {
                    if d == cur {
                        return false;
                    }
                    cur = d;
                }
            }
            guard += 1;
            if guard > self.n + 2 {
                return false;
            }
        }
    }
}

fn intersect(idom: &[Option<usize>], rpo_index: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a].expect("has idom");
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b].expect("has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeflow_ir::build_module;
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;

    fn pdom_of(src: &str, name: &str) -> (safeflow_ir::Module, safeflow_ir::FuncId, PostDomTree) {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors());
        let mut diags = Diagnostics::new();
        let m = build_module(&pr.unit, &mut diags);
        let fid = m.function_by_name(name).unwrap();
        let f = m.function(fid);
        let cfg = Cfg::build(f);
        let p = PostDomTree::build(f, &cfg);
        (m, fid, p)
    }

    #[test]
    fn diamond_join_postdominates_arms() {
        let (m, fid, p) =
            pdom_of("int f(int x) { int r; if (x) r = 1; else r = 2; return r; }", "f");
        let f = m.function(fid);
        let cfg = Cfg::build(f);
        // Find the join (the block with 2 preds).
        let join = f.iter_blocks().map(|(b, _)| b).find(|&b| cfg.preds_of(b).len() == 2).unwrap();
        for &arm in cfg.preds_of(join) {
            assert!(p.post_dominates(join, arm), "join must post-dominate arm {arm}");
        }
        // The arms do not post-dominate the entry.
        for &arm in cfg.preds_of(join) {
            assert!(!p.post_dominates(arm, f.entry()));
        }
        assert!(p.post_dominates(join, f.entry()));
    }

    #[test]
    fn single_block_postdominated_by_exit() {
        let (m, fid, p) = pdom_of("int f(void) { return 1; }", "f");
        let f = m.function(fid);
        assert_eq!(p.immediate(f.entry()), Some(VIRTUAL_EXIT));
    }

    #[test]
    fn loop_exit_postdominates_header() {
        let (m, fid, p) =
            pdom_of("int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }", "f");
        let f = m.function(fid);
        let cfg = Cfg::build(f);
        // Exit block = the one with Ret.
        let exit = f
            .iter_blocks()
            .find(|(_, b)| matches!(b.terminator, safeflow_ir::Terminator::Ret(_)))
            .map(|(b, _)| b)
            .unwrap();
        // Header = the 2-pred block.
        let header = f.iter_blocks().map(|(b, _)| b).find(|&b| cfg.preds_of(b).len() == 2).unwrap();
        assert!(p.post_dominates(exit, header));
        // The loop body does not post-dominate the header.
        let body = cfg.succs_of(header).iter().copied().find(|&b| b != exit).unwrap();
        assert!(!p.post_dominates(body, header));
    }
}
