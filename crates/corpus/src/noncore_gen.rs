//! Deterministic non-core component generator.
//!
//! The paper's Table 1 reports *total* system LOC (7–8 kLOC), but the
//! analysis only ever sees the core component. To make `total_loc()`
//! meaningful without shipping thousands of lines of dead text in the
//! binary, this module deterministically generates a plausible non-core
//! component (complex controller + UI) of the right size from the system's
//! seed, and reports its LOC.

use crate::System;
use safeflow_util::SplitMix64;

/// Lines of code of the generated non-core component for `system`
/// (total target minus the *paper's* core size, so the split matches the
/// paper even when our re-created core differs by a few lines).
pub fn noncore_loc(system: &System) -> usize {
    system.paper.loc_total.saturating_sub(system.paper.loc_core)
}

/// Generates the non-core component source (deterministic per seed).
///
/// The output is plausible C — a complex controller with neural-ish gain
/// schedules, a curses-style UI, and logging — sized to `noncore_loc`.
/// It is *not* analyzed (the paper's analysis boundary is the core
/// component), but examples and docs can show it.
pub fn generate_noncore(system: &System) -> String {
    let target = noncore_loc(system);
    let mut rng = SplitMix64::seed_from_u64(system.noncore_seed);
    let mut out = String::new();
    out.push_str(&format!(
        "/* Non-core component for {} (generated, {} LOC target).\n",
        system.name, target
    ));
    out.push_str(" * Complex controller + UI; communicates via shared memory. */\n\n");
    out.push_str("static float nc_lut[16];\n\n");
    let mut loc = 0usize;
    let mut func = 0usize;
    while loc + 8 < target {
        func += 1;
        let stmts = rng.usize_range(4, 14).min(target - loc - 3);
        out.push_str(&format!("static float nc_stage_{func}(float x, int k) {{\n"));
        out.push_str("    float acc = x;\n");
        loc += 2;
        for s in 0..stmts {
            let a: f64 = rng.f64_range(0.01, 2.0);
            let b = rng.i64_range(1, 9);
            match s % 4 {
                0 => out.push_str(&format!("    acc = acc * {a:.4}f + (float)(k % {b});\n")),
                1 => out.push_str(&format!("    if (acc > {a:.3}f) acc = acc - {a:.3}f;\n")),
                2 => out.push_str(&format!("    acc = acc + {a:.4}f * nc_lut[(k + {b}) & 15];\n")),
                _ => out.push_str(&format!("    acc = acc / (1.0f + {a:.4}f * acc * acc);\n")),
            }
            loc += 1;
        }
        out.push_str("    return acc;\n}\n\n");
        loc += 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;

    #[test]
    fn noncore_loc_matches_paper_split() {
        for s in systems() {
            assert_eq!(noncore_loc(&s), s.paper.loc_total - s.paper.loc_core);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = &systems()[0];
        assert_eq!(generate_noncore(s), generate_noncore(s));
    }

    #[test]
    fn generated_size_close_to_target() {
        for s in systems() {
            let text = generate_noncore(&s);
            let loc = crate::count_loc(&text);
            let target = noncore_loc(&s);
            assert!(
                loc.abs_diff(target) <= target / 10 + 20,
                "{}: generated {} vs target {}",
                s.name,
                loc,
                target
            );
        }
    }
}
