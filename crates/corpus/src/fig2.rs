//! The paper's Figure 2/3 running example, kept verbatim-faithful to the
//! structure shown in the paper (simplified IP Simplex core controller).

/// Figure 2 core controller with the Figure 3 annotated `initComm`.
pub const FIGURE2: &str = r#"
/* Figure 2 (DSN 2006): simplified core controller of the inverted
   pendulum Simplex implementation, with the Figure 3 initComm. */

typedef struct { float control; float track; float angle; } SHMData;
typedef SHMData Feedback;

SHMData *noncoreCtrl;
SHMData *feedback;

int shmget(int key, int size, int flags);
void *shmat(int shmid, void *addr, int flags);
void getFeedback(SHMData *fb);
void computeSafety(SHMData *fb, float *safe);
void Unlock(int lock);
void Lock(int lock);
void wait(int tsecs);
void sendControl(float output);

int shmLock;
int tsecs;

void initComm(void)
/** SafeFlow Annotation shminit */
{
    void *shmStart;
    int shmid;
    /* Initialize shared memory */
    shmid = shmget(42, 2 * sizeof(SHMData), 0);
    shmStart = shmat(shmid, 0, 0);
    feedback = (SHMData *) shmStart;
    noncoreCtrl = feedback + 1;
    /** SafeFlow Annotation
        assume(shmvar(feedback, sizeof(SHMData)))
        assume(shmvar(noncoreCtrl, sizeof(SHMData)))
        assume(noncore(feedback))
        assume(noncore(noncoreCtrl))
    */
}

int checkSafety(Feedback *fb, SHMData *ctrl) {
    /* Lyapunov-style recoverability check: uses both the published
       feedback and the proposed non-core control. */
    if (fb->angle > 0.5) return 0;
    if (fb->angle < 0.0 - 0.5) return 0;
    if (fb->track > 1.2) return 0;
    if (fb->track < 0.0 - 1.2) return 0;
    if (ctrl->control > 5.0) return 0;
    if (ctrl->control < 0.0 - 5.0) return 0;
    return 1;
}

float decision(Feedback *f, float safeControl, SHMData *ctrl)
/***SafeFlow Annotation
    assume(core(noncoreCtrl, 0, sizeof(SHMData))) /***/
{
    if (checkSafety(feedback, noncoreCtrl))
        return noncoreCtrl->control;
    else
        return safeControl;
}

int main() {
    float safeControl;
    float output;
    initComm();
    while (1) {
        getFeedback(feedback);
        computeSafety(feedback, &safeControl);
        Unlock(shmLock);
        wait(tsecs);
        Lock(shmLock);
        output = decision(feedback, safeControl, noncoreCtrl);
        /**SafeFlow Annotation
        assert(safe(output)); /***/
        sendControl(output);
    }
    return 0;
}
"#;
