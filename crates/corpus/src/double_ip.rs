//! System 3: the **double inverted pendulum controller** (Table 1, row 3).
//!
//! Re-creation of the newest of the three lab systems — the paper analyzed
//! "a preliminary version of the double IP controller". Built on the IP
//! controller code base "albeit with changes to enable additional control
//! modes". Two §4 defects are seeded:
//!
//! * **kill-pid** — as in the other systems;
//! * **invalid assumption** — "one error in the double IP controller is a
//!   result of accessing an unmonitored non-core value assuming that this
//!   value does not propagate to the critical data in the core component.
//!   Our analysis discovers that this assumption is invalid." Here: the
//!   jitter-compensation term uses the non-core controller's self-reported
//!   compute time, which the developer believed only affected logging —
//!   but it is added into the actuator command.

use crate::{Defect, PaperRow, System};

/// Returns the Double IP system description.
pub fn system() -> System {
    System {
        name: "Double IP",
        core_file: "double_ip_core.c",
        core_source: CORE,
        original_source: original(),
        paper: PaperRow {
            loc_total: 7188,
            loc_core: 929,
            source_changes: 7,
            annotation_lines: 23,
            errors: 2,
            warnings: 8,
            false_positives: 2,
        },
        defects: vec![
            Defect {
                id: "dip-kill-pid",
                critical: "kill:arg0",
                description: "watchdog kills the pid read from unmonitored non-core shared memory",
            },
            Defect {
                id: "dip-invalid-assumption",
                critical: "uFinal",
                description: "jitter compensation uses the non-core compute-time report, wrongly \
                              assumed not to propagate to the actuator command",
            },
        ],
        noncore_seed: 0x2b02,
    }
}

/// The pre-annotation original: annotations stripped, monitor inlined.
fn original() -> String {
    let replaced = CORE.replace(DECISION_FN, "").replace(DECISION_CALL, DECISION_INLINE);
    crate::strip_annotations(&replaced)
}

const DECISION_FN: &str = r#"float decisionDual(float safeU)
/** SafeFlow Annotation assume(core(ncShm, 0, sizeof(NC2Cmd))) */
{
    float u;
    int fresh;
    fresh = 0;
    if (ncShm->seq != lastNcSeq) {
        lastNcSeq = ncShm->seq;
        fresh = 1;
    }
    if (fresh == 1 && ncShm->valid == 1) {
        u = ncShm->u;
        if (envelopeOk(u)) {
            ncAccepted = ncAccepted + 1;
            /** SafeFlow Annotation assert(safe(u)) */
            return u;
        }
    }
    ncRejected = ncRejected + 1;
    return safeU;
}
"#;

const DECISION_CALL: &str = "    u = decisionDual(safeU);";

const DECISION_INLINE: &str = r#"    if (ncShm->seq != lastNcSeq && ncShm->valid == 1 && envelopeOk(ncShm->u)) {
        lastNcSeq = ncShm->seq;
        ncAccepted = ncAccepted + 1;
        u = ncShm->u;
    } else {
        ncRejected = ncRejected + 1;
        u = safeU;
    }"#;

/// Annotated core component source.
pub const CORE: &str = r#"
/* ============================================================
 * Double Inverted Pendulum Simplex - core controller
 *
 * Balances a double pendulum on a cart (6 states: track position
 * and velocity, two link angles and angular velocities). Derived
 * from the single-IP controller with additional control modes.
 * Preliminary version, under active refinement.
 * ============================================================ */

enum {
    NS          = 6,
    HIST_N      = 32,
    MODE_SAFE   = 0,
    MODE_COMPLEX = 1,
    MODE_SWINGUP = 2,
    CMD_NONE    = 0,
    CMD_START   = 1,
    CMD_STOP    = 2,
    CMD_FAST    = 3,
    CMD_SWINGUP = 4,
    OP_NORMAL   = 0,
    OP_FAST     = 1,
    SIG_TERM    = 15,
    HB_LIMIT    = 3,
    SHM_KEY     = 9210
};

/* ---- shared memory layout ------------------------------------ */

typedef struct DblFeedback {
    float track;
    float angle1;
    float angle2;
    float trackVel;
    float angle1Vel;
    float angle2Vel;
    int   seq;
    int   displayAck;
} DblFeedback;

typedef struct NC2Cmd {
    float u;
    int   seq;
    int   valid;
    int   heartbeat;
    int   clientPid;
    int   computeTimeUs;
    int   jitterNs;
    int   pad0;
} NC2Cmd;

typedef struct DblStatus {
    float u;
    float track;
    float angle1;
    float angle2;
    int   mode;
    int   seq;
    int   statusCode;
    int   pad0;
} DblStatus;

typedef struct UICmd2 {
    int command;
    int resetCounters;
    int padA;
    int padB;
} UICmd2;

typedef struct CalibBlock {
    float offsetTrack;
    float offsetA1;
    float offsetA2;
    float scaleTrack;
    float scaleA1;
    float scaleA2;
    int   calibSeq;
    int   pad0;
} CalibBlock;

typedef struct PerfBlock2 {
    int loopTimeUs;
    int maxLoopTimeUs;
    int overruns;
    int pad0;
} PerfBlock2;

typedef struct LogRing {
    float u[8];
    float lyap[8];
    int head;
    int pad0;
} LogRing;

DblFeedback *fbShm;
NC2Cmd      *ncShm;
DblStatus   *statShm;
UICmd2      *uiShm;
CalibBlock  *calibShm;
PerfBlock2  *perfShm;
LogRing     *logShm;

/* ---- external services ---------------------------------------- */

int   shmget(int key, int size, int flags);
void *shmat(int shmid, void *addr, int flags);
float readTrackSensor(void);
float readAngle1Sensor(void);
float readAngle2Sensor(void);
void  sendActuator(float volts);
int   kill(int pid, int sig);
void  logInt(char *tag, int value);
void  logFloat(char *tag, float value);
void  timerWait(int ticks);
int   getTicks(void);
void  panicStop(void);

/* ---- controller state ------------------------------------------ */

float xhat[NS];

/* LQR gains for the upright equilibrium (dt = 5ms). */
float gainK[NS];

/* Observer transition matrix (6x6, precomputed A - L*C). */
float phiM[NS][NS];

/* Observer injection gains for the three measured outputs. */
float ellM[NS][3];

/* Lyapunov P (symmetric 6x6; upper triangle flattened, 21 terms). */
float lyapP[21];

float envelopeLimit;
float voltLimit;
float trackLimit;
float angleLimit;

float histU[HIST_N];
int   histHead;
int   histCount;

int running;
int opRequested;
int modeActive;
int coreSeq;
int lastNcSeq;
int lastHb;
int missedHeartbeats;
int ncAccepted;
int ncRejected;
int logCount;
int uiSyncs;

/* ---- shared memory initialization ------------------------------- */

void initShm(void)
/** SafeFlow Annotation shminit */
{
    void *base;
    char *cursor;
    int   shmid;
    int   total;

    total = sizeof(DblFeedback) + sizeof(NC2Cmd)
          + sizeof(DblStatus) + sizeof(UICmd2)
          + sizeof(CalibBlock) + sizeof(PerfBlock2)
          + sizeof(LogRing);
    shmid  = shmget(SHM_KEY, total, 0);
    base   = shmat(shmid, 0, 0);
    cursor = (char *) base;

    fbShm   = (DblFeedback *) cursor;
    cursor  = cursor + sizeof(DblFeedback);
    ncShm   = (NC2Cmd *) cursor;
    cursor  = cursor + sizeof(NC2Cmd);
    statShm = (DblStatus *) cursor;
    cursor  = cursor + sizeof(DblStatus);
    uiShm   = (UICmd2 *) cursor;
    cursor  = cursor + sizeof(UICmd2);
    calibShm = (CalibBlock *) cursor;
    cursor  = cursor + sizeof(CalibBlock);
    perfShm = (PerfBlock2 *) cursor;
    cursor  = cursor + sizeof(PerfBlock2);
    logShm  = (LogRing *) cursor;

    /** SafeFlow Annotation
        assume(shmvar(fbShm, sizeof(DblFeedback)))
        assume(shmvar(ncShm, sizeof(NC2Cmd)))
        assume(shmvar(statShm, sizeof(DblStatus)))
        assume(shmvar(uiShm, sizeof(UICmd2)))
        assume(shmvar(calibShm, sizeof(CalibBlock)))
        assume(shmvar(perfShm, sizeof(PerfBlock2)))
        assume(shmvar(logShm, sizeof(LogRing)))
        assume(noncore(fbShm))
        assume(noncore(ncShm))
        assume(noncore(uiShm))
    */
}

/* ---- numerics ----------------------------------------------------- */

float clampf(float v, float lo, float hi) {
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
}

float absf(float v) {
    if (v < 0.0) return 0.0 - v;
    return v;
}

void initGains(void) {
    gainK[0] = 4.8812;
    gainK[1] = 6.3021;
    gainK[2] = 71.4415;
    gainK[3] = 11.0288;
    gainK[4] = 44.9310;
    gainK[5] = 7.2206;

    phiM[0][0] = 0.9990; phiM[0][1] = 0.0049; phiM[0][2] = 0.0003;
    phiM[0][3] = 0.0000; phiM[0][4] = 0.0001; phiM[0][5] = 0.0000;
    phiM[1][0] = 0.0401; phiM[1][1] = 0.9811; phiM[1][2] = 0.0902;
    phiM[1][3] = 0.0004; phiM[1][4] = 0.0371; phiM[1][5] = 0.0002;
    phiM[2][0] = 0.0001; phiM[2][1] = 0.0000; phiM[2][2] = 0.9991;
    phiM[2][3] = 0.0050; phiM[2][4] = 0.0002; phiM[2][5] = 0.0000;
    phiM[3][0] = 0.0332; phiM[3][1] = 0.0001; phiM[3][2] = 0.1705;
    phiM[3][3] = 0.9902; phiM[3][4] = 0.0881; phiM[3][5] = 0.0004;
    phiM[4][0] = 0.0001; phiM[4][1] = 0.0000; phiM[4][2] = 0.0002;
    phiM[4][3] = 0.0000; phiM[4][4] = 0.9989; phiM[4][5] = 0.0050;
    phiM[5][0] = 0.0218; phiM[5][1] = 0.0001; phiM[5][2] = 0.0907;
    phiM[5][3] = 0.0003; phiM[5][4] = 0.1998; phiM[5][5] = 0.9891;

    ellM[0][0] = 0.3551; ellM[0][1] = 0.0019; ellM[0][2] = 0.0008;
    ellM[1][0] = 1.0441; ellM[1][1] = 0.0388; ellM[1][2] = 0.0121;
    ellM[2][0] = 0.0016; ellM[2][1] = 0.3667; ellM[2][2] = 0.0027;
    ellM[3][0] = 0.0341; ellM[3][1] = 1.0921; ellM[3][2] = 0.0488;
    ellM[4][0] = 0.0007; ellM[4][1] = 0.0025; ellM[4][2] = 0.3912;
    ellM[5][0] = 0.0199; ellM[5][1] = 0.0471; ellM[5][2] = 1.2210;

    lyapP[0]  = 15.32; lyapP[1]  = 3.61;  lyapP[2]  = 11.05;
    lyapP[3]  = 1.70;  lyapP[4]  = 8.21;  lyapP[5]  = 1.12;
    lyapP[6]  = 2.40;  lyapP[7]  = 4.05;  lyapP[8]  = 0.81;
    lyapP[9]  = 3.02;  lyapP[10] = 0.46;  lyapP[11] = 16.80;
    lyapP[12] = 2.95;  lyapP[13] = 12.11; lyapP[14] = 1.88;
    lyapP[15] = 1.51;  lyapP[16] = 2.66;  lyapP[17] = 0.58;
    lyapP[18] = 17.92; lyapP[19] = 3.14;  lyapP[20] = 1.62;

    envelopeLimit = 64.0;
    voltLimit     = 4.97;
    trackLimit    = 1.10;
    angleLimit    = 0.35;
}

void resetEstimator(void) {
    int i;
    for (i = 0; i < NS; i++) {
        xhat[i] = 0.0;
    }
    histHead = 0;
    histCount = 0;
}

/* Observer update from the three measured outputs. */
void observerUpdate(float ytrack, float ya1, float ya2, float u) {
    float nxt[NS];
    float r0;
    float r1;
    float r2;
    int i;
    int j;

    r0 = ytrack - xhat[0];
    r1 = ya1 - xhat[2];
    r2 = ya2 - xhat[4];

    for (i = 0; i < NS; i++) {
        nxt[i] = 0.0;
        for (j = 0; j < NS; j++) {
            nxt[i] = nxt[i] + phiM[i][j] * xhat[j];
        }
    }
    nxt[1] = nxt[1] + 0.0051 * u;
    nxt[3] = nxt[3] + 0.0117 * u;
    nxt[5] = nxt[5] + 0.0083 * u;

    for (i = 0; i < NS; i++) {
        xhat[i] = nxt[i] + ellM[i][0] * r0 + ellM[i][1] * r1 + ellM[i][2] * r2;
    }
}

float computeSafeControl(void) {
    float u;
    int i;
    u = 0.0;
    for (i = 0; i < NS; i++) {
        u = u - gainK[i] * xhat[i];
    }
    return clampf(u, 0.0 - voltLimit, voltLimit);
}

/* V(x) = x' P x over the flattened upper triangle. */
float lyapunov(void) {
    float v;
    int i;
    int j;
    int k;
    v = 0.0;
    k = 0;
    for (i = 0; i < NS; i++) {
        for (j = i; j < NS; j++) {
            if (i == j) {
                v = v + lyapP[k] * xhat[i] * xhat[j];
            } else {
                v = v + 2.0 * lyapP[k] * xhat[i] * xhat[j];
            }
            k = k + 1;
        }
    }
    return v;
}

int envelopeOk(float u) {
    float v;
    if (u > voltLimit) return 0;
    if (u < 0.0 - voltLimit) return 0;
    if (absf(xhat[0]) > trackLimit) return 0;
    if (absf(xhat[2]) > angleLimit) return 0;
    if (absf(xhat[4]) > angleLimit) return 0;
    v = lyapunov();
    if (v > envelopeLimit) return 0;
    return 1;
}

void recordControl(float u) {
    histU[histHead] = u;
    histHead = histHead + 1;
    if (histHead >= HIST_N) histHead = 0;
    if (histCount < HIST_N) histCount = histCount + 1;
}

float meanRecentControl(void) {
    float acc;
    int i;
    if (histCount == 0) return 0.0;
    acc = 0.0;
    for (i = 0; i < HIST_N; i++) {
        acc = acc + histU[i];
    }
    return acc / histCount;
}

/* ---- swing-up energy controller (additional mode) ----------------- */

float swingupGain;
float swingupCap;

void initSwingup(void) {
    swingupGain = 1.25;
    swingupCap  = 2.2;
}

/* Energy-pumping swing-up for the first link; verified core code. */
float swingupControl(void) {
    float energyErr;
    float u;
    energyErr = 0.5 * xhat[3] * xhat[3] + 9.81 * (1.0 - xhat[2] * xhat[2] * 0.5) - 9.81;
    if (xhat[3] > 0.0) {
        u = swingupGain * energyErr;
    } else {
        u = 0.0 - swingupGain * energyErr;
    }
    return clampf(u, 0.0 - swingupCap, swingupCap);
}

/* ---- Simplex decision module (the separated monitor) -------------- */

float decisionDual(float safeU)
/** SafeFlow Annotation assume(core(ncShm, 0, sizeof(NC2Cmd))) */
{
    float u;
    int fresh;
    fresh = 0;
    if (ncShm->seq != lastNcSeq) {
        lastNcSeq = ncShm->seq;
        fresh = 1;
    }
    if (fresh == 1 && ncShm->valid == 1) {
        u = ncShm->u;
        if (envelopeOk(u)) {
            ncAccepted = ncAccepted + 1;
            /** SafeFlow Annotation assert(safe(u)) */
            return u;
        }
    }
    ncRejected = ncRejected + 1;
    return safeU;
}

/* ---- jitter compensation (the invalid-assumption defect) ----------- */

/* DEFECT (paper §4, double IP): the developer assumed the non-core
 * controller's self-reported compute time "does not propagate to the
 * critical data" — it was meant for the logs. It does propagate: the
 * compensation term below is added to the actuator command. */
float jitterCompensation(void) {
    int ct;
    float comp;
    ct = ncShm->computeTimeUs;
    comp = 0.000001 * ct;
    if (comp > 0.004) {
        comp = 0.004;
    }
    return comp;
}

/* ---- shared memory publication -------------------------------------- */

void publishFeedback(float yt, float ya1, float ya2) {
    /** SafeFlow Annotation assert(safe(coreSeq)) */
    fbShm->track     = yt;
    fbShm->angle1    = ya1;
    fbShm->angle2    = ya2;
    fbShm->trackVel  = xhat[1];
    fbShm->angle1Vel = xhat[3];
    fbShm->angle2Vel = xhat[5];
    fbShm->seq       = coreSeq;
}

void publishStatus(float u, float yt, float ya1, float ya2) {
    int statusCode;
    statShm->u      = u;
    statShm->track  = yt;
    statShm->angle1 = ya1;
    statShm->angle2 = ya2;
    statShm->seq    = coreSeq;
    statShm->mode   = modeActive;
    if (running == 1) {
        statusCode = 2;
    } else {
        statusCode = 1;
    }
    /** SafeFlow Annotation assert(safe(statusCode)) */
    statShm->statusCode = statusCode;
}

/* ---- housekeeping ----------------------------------------------------- */

/* Watchdog with the kill-pid defect, as in the other systems. */
void watchdogCheck(void) {
    int hb;
    int pid;
    hb = ncShm->heartbeat;
    if (hb == lastHb) {
        missedHeartbeats = missedHeartbeats + 1;
    } else {
        missedHeartbeats = 0;
        lastHb = hb;
    }
    if (missedHeartbeats > HB_LIMIT) {
        pid = ncShm->clientPid;
        kill(pid, SIG_TERM);
        missedHeartbeats = 0;
    }
}

void pollUiCommands(void) {
    int cmd;
    int rst;
    cmd = uiShm->command;
    if (cmd == CMD_START) {
        running = 1;
    }
    if (cmd == CMD_STOP) {
        running = 0;
    }
    if (cmd == CMD_FAST) {
        opRequested = OP_FAST;
    }
    rst = uiShm->resetCounters;
    if (rst == 1) {
        logCount = 0;
        ncAccepted = 0;
        ncRejected = 0;
    }
}

int selectPeriod(void) {
    int periodTicks;
    if (opRequested == OP_FAST) {
        periodTicks = 2;
    } else {
        periodTicks = 5;
    }
    /** SafeFlow Annotation assert(safe(periodTicks)) */
    return periodTicks;
}

void logStats(void) {
    int sq;
    int jn;
    sq = ncShm->seq;
    jn = ncShm->jitterNs;
    logInt("nc.seq", sq);
    logInt("nc.jitterNs", jn);
    logInt("nc.accepted", ncAccepted);
    logInt("nc.rejected", ncRejected);
    logFloat("u.mean", meanRecentControl());
    logCount = logCount + 1;
}

void displayHandshake(void) {
    int ack;
    ack = fbShm->displayAck;
    if (ack == coreSeq) {
        uiSyncs = uiSyncs + 1;
    }
}

void dumpDiagnostics(void) {
    logFloat("xhat.track", xhat[0]);
    logFloat("xhat.trackVel", xhat[1]);
    logFloat("xhat.angle1", xhat[2]);
    logFloat("xhat.angle1Vel", xhat[3]);
    logFloat("xhat.angle2", xhat[4]);
    logFloat("xhat.angle2Vel", xhat[5]);
    logFloat("lyapunov", lyapunov());
    logInt("core.seq", coreSeq);
    logInt("mode", modeActive);
    logInt("ui.syncs", uiSyncs);
}


/* ---- sensor conditioning -------------------------------------------- */

float bq1B0; float bq1B1; float bq1B2; float bq1A1; float bq1A2;
float bq1Z1; float bq1Z2;
float bq2B0; float bq2B1; float bq2B2; float bq2A1; float bq2A2;
float bq2Z1; float bq2Z2;
float bq3B0; float bq3B1; float bq3B2; float bq3A1; float bq3A2;
float bq3Z1; float bq3Z2;

void initFilters(void) {
    bq1B0 = 0.4208; bq1B1 = 0.8416; bq1B2 = 0.4208;
    bq1A1 = 0.6631; bq1A2 = 0.2201;
    bq1Z1 = 0.0; bq1Z2 = 0.0;
    bq2B0 = 0.2512; bq2B1 = 0.5024; bq2B2 = 0.2512;
    bq2A1 = 0.4409; bq2A2 = 0.1911;
    bq2Z1 = 0.0; bq2Z2 = 0.0;
    bq3B0 = 0.2512; bq3B1 = 0.5024; bq3B2 = 0.2512;
    bq3A1 = 0.4409; bq3A2 = 0.1911;
    bq3Z1 = 0.0; bq3Z2 = 0.0;
}

float filterTrack(float x) {
    float y;
    y = bq1B0 * x + bq1Z1;
    bq1Z1 = bq1B1 * x - bq1A1 * y + bq1Z2;
    bq1Z2 = bq1B2 * x - bq1A2 * y;
    return y;
}

float filterAngle1(float x) {
    float y;
    y = bq2B0 * x + bq2Z1;
    bq2Z1 = bq2B1 * x - bq2A1 * y + bq2Z2;
    bq2Z2 = bq2B2 * x - bq2A2 * y;
    return y;
}

float filterAngle2(float x) {
    float y;
    y = bq3B0 * x + bq3Z1;
    bq3Z1 = bq3B1 * x - bq3A1 * y + bq3Z2;
    bq3Z2 = bq3B2 * x - bq3A2 * y;
    return y;
}

/* ---- calibration (core-owned, published for the UI) ------------------ */

float calOffTrack;
float calOffA1;
float calOffA2;
float calSclTrack;
float calSclA1;
float calSclA2;
int calibSeq;

void initCalibration(void) {
    calOffTrack = 0.0027;
    calOffA1    = 0.0011;
    calOffA2    = 0.0014;
    calSclTrack = 0.9989;
    calSclA1    = 1.0021;
    calSclA2    = 0.9978;
    calibSeq    = 0;
}

float calTrack(float raw) {
    return (raw - calOffTrack) * calSclTrack;
}

float calA1(float raw) {
    return (raw - calOffA1) * calSclA1;
}

float calA2(float raw) {
    return (raw - calOffA2) * calSclA2;
}

void publishCalibration(void) {
    calibShm->offsetTrack = calOffTrack;
    calibShm->offsetA1    = calOffA1;
    calibShm->offsetA2    = calOffA2;
    calibShm->scaleTrack  = calSclTrack;
    calibShm->scaleA1     = calSclA1;
    calibShm->scaleA2     = calSclA2;
    calibSeq = calibSeq + 1;
    /** SafeFlow Annotation assert(safe(calibSeq)) */
    calibShm->calibSeq = calibSeq;
}

void publishPerf(int loopUs) {
    perfShm->loopTimeUs = loopUs;
    if (loopUs > perfShm->maxLoopTimeUs) {
        perfShm->maxLoopTimeUs = loopUs;
    }
    if (loopUs > 5000) {
        perfShm->overruns = perfShm->overruns + 1;
    }
}

void publishLogRing(float u) {
    int i;
    for (i = 7; i > 0; i = i - 1) {
        logShm->u[i] = logShm->u[i - 1];
        logShm->lyap[i] = logShm->lyap[i - 1];
    }
    logShm->u[0] = u;
    logShm->lyap[0] = lyapunov();
    logShm->head = logShm->head + 1;
}

/* ---- actuator excitation for calibration runs -------------------------- */

float waveFreq;
float wavePhase;
float waveAmp;
int waveEnabled;

void initWave(void) {
    waveFreq = 0.5;
    wavePhase = 0.0;
    waveAmp = 0.25;
    waveEnabled = 0;
}

float waveSample(void) {
    float tri;
    wavePhase = wavePhase + waveFreq * 0.005;
    if (wavePhase > 1.0) {
        wavePhase = wavePhase - 1.0;
    }
    if (wavePhase < 0.5) {
        tri = 4.0 * wavePhase - 1.0;
    } else {
        tri = 3.0 - 4.0 * wavePhase;
    }
    return waveAmp * tri;
}

/* ---- fault management -------------------------------------------------- */

enum {
    DFLT_TRACK = 0,
    DFLT_A1    = 1,
    DFLT_A2    = 2,
    DFLT_STUCK = 3,
    DFLT_N     = 4,
    DFLT_TRIP  = 5
};

int dfltCount[DFLT_N];
int dfltLatch;
float lastRawT;
float lastRawA1;
float lastRawA2;
int dStuckTicks;

void clearFaults(void) {
    int i;
    for (i = 0; i < DFLT_N; i++) {
        dfltCount[i] = 0;
    }
    dfltLatch = 0;
    dStuckTicks = 0;
}

void noteFault(int which) {
    if (which < 0) return;
    if (which >= DFLT_N) return;
    dfltCount[which] = dfltCount[which] + 1;
    if (dfltCount[which] > DFLT_TRIP) {
        dfltLatch = 1;
    }
}

void checkSensorFaults(float rt, float r1, float r2) {
    if (rt > 1.6) noteFault(DFLT_TRACK);
    if (rt < 0.0 - 1.6) noteFault(DFLT_TRACK);
    if (r1 > 0.8) noteFault(DFLT_A1);
    if (r1 < 0.0 - 0.8) noteFault(DFLT_A1);
    if (r2 > 0.8) noteFault(DFLT_A2);
    if (r2 < 0.0 - 0.8) noteFault(DFLT_A2);
    if (absf(rt - lastRawT) < 0.000001
        && absf(r1 - lastRawA1) < 0.000001
        && absf(r2 - lastRawA2) < 0.000001) {
        dStuckTicks = dStuckTicks + 1;
        if (dStuckTicks > 40) {
            noteFault(DFLT_STUCK);
            dStuckTicks = 0;
        }
    } else {
        dStuckTicks = 0;
    }
    lastRawT = rt;
    lastRawA1 = r1;
    lastRawA2 = r2;
}

/* ---- main control step --------------------------------------------- */

void controlStep(void) {
    float ytrack;
    float ya1;
    float ya2;
    float safeU;
    float u;
    float uFinal;

    ytrack = readTrackSensor();
    ya1 = readAngle1Sensor();
    ya2 = readAngle2Sensor();
    checkSensorFaults(ytrack, ya1, ya2);
    ytrack = filterTrack(calTrack(ytrack));
    ya1 = filterAngle1(calA1(ya1));
    ya2 = filterAngle2(calA2(ya2));

    observerUpdate(ytrack, ya1, ya2, meanRecentControl());

    /* Automatic mode management: drop to swing-up when a link falls
     * outside the balancing basin, return when both links are upright. */
    if (modeActive == MODE_COMPLEX && absf(xhat[2]) > 0.30) {
        modeActive = MODE_SWINGUP;
    }
    if (modeActive == MODE_SWINGUP) {
        safeU = swingupControl();
        if (absf(xhat[2]) < 0.15 && absf(xhat[4]) < 0.15) {
            modeActive = MODE_COMPLEX;
        }
    } else {
        safeU = computeSafeControl();
    }
    /** SafeFlow Annotation assert(safe(safeU)) */

    u = decisionDual(safeU);

    uFinal = u + jitterCompensation() * xhat[1];
    if (dfltLatch == 1) {
        uFinal = 0.0;
    }
    uFinal = clampf(uFinal, 0.0 - voltLimit, voltLimit);
    /** SafeFlow Annotation assert(safe(uFinal)) */
    sendActuator(uFinal);
    recordControl(u);

    publishFeedback(ytrack, ya1, ya2);
    publishStatus(uFinal, ytrack, ya1, ya2);
    publishLogRing(u);
    coreSeq = coreSeq + 1;
}

int selftest(void) {
    float v;
    resetEstimator();
    xhat[0] = 0.04;
    xhat[2] = 0.02;
    xhat[4] = 0.01;
    v = lyapunov();
    if (v <= 0.0) return 0;
    if (computeSafeControl() > voltLimit) return 0;
    if (computeSafeControl() < 0.0 - voltLimit) return 0;
    resetEstimator();
    return 1;
}

int main() {
    int period;
    int t0;
    int t1;
    initGains();
    initSwingup();
    initWave();
    initFilters();
    initCalibration();
    clearFaults();
    resetEstimator();
    initShm();
    publishCalibration();
    if (selftest() == 0) {
        panicStop();
        return 1;
    }
    running = 1;
    modeActive = MODE_COMPLEX;
    while (1) {
        t0 = getTicks();
        controlStep();
        watchdogCheck();
        pollUiCommands();
        logStats();
        displayHandshake();
        if (logCount >= 200) {
            dumpDiagnostics();
            publishCalibration();
            logCount = 0;
        }
        period = selectPeriod();
        t1 = getTicks();
        publishPerf(t1 - t0);
        timerWait(period);
    }
    return 0;
}
"#;
