//! # safeflow-corpus
//!
//! The benchmark corpus for the SafeFlow reproduction: re-creations of the
//! three laboratory control systems the paper evaluates (Table 1) —
//!
//! 1. the **inverted pendulum** (IP) Simplex controller,
//! 2. the **generic Simplex** implementation for simple plants, and
//! 3. the **double inverted pendulum** controller —
//!
//! each written in the restricted C subset with the paper's annotations and
//! with the five §4 defects seeded back in (kill-pid dependencies, the
//! rigged sensor feedback in generic Simplex, the invalid value-propagation
//! assumption in the double-IP controller), plus the control-dependence
//! false-positive patterns §3.4.1 describes.
//!
//! Also provides the paper's Figure 2 running example, a deterministic
//! non-core component generator (for total-LOC accounting — the analysis
//! only ever sees the core component, as in the paper), and a synthetic
//! core-component generator for the scaling benchmarks.

#![warn(missing_docs)]

mod double_ip;
mod fig2;
mod generic;
mod ip;
pub mod monorepo;
pub mod noncore_gen;
pub mod oracle_gen;
pub mod synthetic;

/// The paper's numbers for one Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperRow {
    /// Total system LOC (core + non-core).
    pub loc_total: usize,
    /// Core component LOC (what the analysis sees).
    pub loc_core: usize,
    /// Source lines changed to annotate/port the system.
    pub source_changes: usize,
    /// Annotation line count.
    pub annotation_lines: usize,
    /// Confirmed erroneous dependencies.
    pub errors: usize,
    /// Unmonitored-access warnings.
    pub warnings: usize,
    /// False positives (control-dependence reports dismissed by triage).
    pub false_positives: usize,
}

/// A seeded defect, reconstructed from the paper's §4 narrative.
#[derive(Debug, Clone)]
pub struct Defect {
    /// Short identifier (used by tests and the Table 1 harness).
    pub id: &'static str,
    /// The critical datum the report must name (assert variable or
    /// `function:argN` for implicit critical calls).
    pub critical: &'static str,
    /// What the paper said about it.
    pub description: &'static str,
}

/// One corpus system.
#[derive(Debug, Clone)]
pub struct System {
    /// Display name (matches Table 1).
    pub name: &'static str,
    /// File name for the core component source.
    pub core_file: &'static str,
    /// Annotated core component (what SafeFlow analyzes).
    pub core_source: &'static str,
    /// The pre-annotation original (for the source-changes diff).
    pub original_source: String,
    /// The paper's Table 1 row for this system.
    pub paper: PaperRow,
    /// Seeded defects (the paper's confirmed errors).
    pub defects: Vec<Defect>,
    /// Seed for the deterministic non-core padding generator so
    /// `total_loc()` is stable.
    pub noncore_seed: u64,
}

impl System {
    /// Lines of code of the annotated core component.
    pub fn core_loc(&self) -> usize {
        count_loc(self.core_source)
    }

    /// Total system LOC: core + deterministically generated non-core
    /// component (the analysis never sees the latter, as in the paper).
    pub fn total_loc(&self) -> usize {
        self.core_loc() + noncore_gen::noncore_loc(self)
    }

    /// Number of source lines that differ between the original and the
    /// annotated core, excluding pure annotation insertions (the paper's
    /// "Source Changes" column; annotations are counted separately).
    pub fn source_change_lines(&self) -> usize {
        diff_changed_lines(
            &strip_annotations(&self.original_source),
            &strip_annotations(self.core_source),
        )
    }

    /// Number of annotation lines in the annotated core (lines inside
    /// SafeFlow annotation comments that carry a fact).
    pub fn annotation_lines(&self) -> usize {
        count_annotation_lines(self.core_source)
    }
}

/// All three Table 1 systems, in the paper's order.
pub fn systems() -> Vec<System> {
    vec![ip::system(), generic::system(), double_ip::system()]
}

/// The paper's Figure 2/3 running example (core controller of the IP
/// Simplex implementation, simplified).
pub fn figure2_example() -> &'static str {
    fig2::FIGURE2
}

/// Counts non-blank, non-pure-comment lines — the LOC convention used for
/// all corpus numbers.
pub fn count_loc(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .filter(|l| !l.starts_with("//"))
        .filter(|l| !(l.starts_with("/*") && l.ends_with("*/") && !l.contains("SafeFlow")))
        .count()
}

/// Counts lines that carry SafeFlow annotation facts.
pub fn count_annotation_lines(src: &str) -> usize {
    let mut count = 0;
    let mut in_annotation = false;
    for line in src.lines() {
        let t = line.trim();
        if t.contains("SafeFlow Annotation") {
            in_annotation = true;
            // Facts may share the marker line.
            if t.contains("assume(") || t.contains("assert(") || t.contains("shminit") {
                count += 1;
            }
        } else if in_annotation
            && (t.contains("assume(") || t.contains("assert(") || t.contains("shminit"))
        {
            count += 1;
        }
        if in_annotation && t.contains("*/") {
            in_annotation = false;
        }
    }
    count
}

/// Removes SafeFlow annotation comment lines (used when diffing source
/// changes, which the paper counts separately from annotations).
pub fn strip_annotations(src: &str) -> String {
    let mut out = String::new();
    let mut in_annotation = false;
    for line in src.lines() {
        let t = line.trim();
        if t.contains("SafeFlow Annotation") {
            in_annotation = true;
        }
        let skip = in_annotation;
        if in_annotation && t.contains("*/") {
            in_annotation = false;
        }
        if !skip {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// A minimal line-based diff: number of lines changed/added/removed from
/// `old` to `new` (longest-common-subsequence based).
pub fn diff_changed_lines(old: &str, new: &str) -> usize {
    let a: Vec<&str> = old.lines().map(str::trim_end).collect();
    let b: Vec<&str> = new.lines().map(str::trim_end).collect();
    let n = a.len();
    let m = b.len();
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] =
                if a[i] == b[j] { lcs[i + 1][j + 1] + 1 } else { lcs[i + 1][j].max(lcs[i][j + 1]) };
        }
    }
    let common = lcs[0][0] as usize;
    (n - common) + (m - common)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_systems_present() {
        let all = systems();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].name, "IP");
        assert_eq!(all[1].name, "Generic Simplex");
        assert_eq!(all[2].name, "Double IP");
    }

    #[test]
    fn loc_counter_skips_blanks_and_comments() {
        let src = "int a;\n\n// comment\n/* c */\nint b;\n";
        assert_eq!(count_loc(src), 2);
    }

    #[test]
    fn annotation_line_counter() {
        let src = r#"
            void f(void)
            /** SafeFlow Annotation shminit */
            {
                /** SafeFlow Annotation
                    assume(shmvar(a, 4))
                    assume(noncore(a))
                */
            }
        "#;
        assert_eq!(count_annotation_lines(src), 3);
    }

    #[test]
    fn diff_counts_changed_lines() {
        let old = "a\nb\nc\n";
        let new = "a\nB\nc\nd\n";
        // b removed, B added, d added = 3.
        assert_eq!(diff_changed_lines(old, new), 3);
        assert_eq!(diff_changed_lines(old, old), 0);
    }

    #[test]
    fn paper_rows_match_table1() {
        let all = systems();
        assert_eq!(all[0].paper.errors, 1);
        assert_eq!(all[0].paper.warnings, 7);
        assert_eq!(all[0].paper.false_positives, 2);
        assert_eq!(all[1].paper.errors, 2);
        assert_eq!(all[1].paper.warnings, 7);
        assert_eq!(all[1].paper.false_positives, 6);
        assert_eq!(all[2].paper.errors, 2);
        assert_eq!(all[2].paper.warnings, 8);
        assert_eq!(all[2].paper.false_positives, 2);
    }

    #[test]
    fn defect_manifests_match_paper_narrative() {
        let all = systems();
        // kill-pid in all three (§4: "In all the three systems").
        for s in &all {
            assert!(
                s.defects.iter().any(|d| d.critical.contains("kill")),
                "{} must seed the kill-pid defect",
                s.name
            );
        }
        // Rigged feedback only in generic Simplex.
        assert!(all[1].defects.iter().any(|d| d.id.contains("rigged")));
        // Invalid assumption only in double IP.
        assert!(all[2].defects.iter().any(|d| d.id.contains("assumption")));
        // Five confirmed defects in total.
        let total: usize = all.iter().map(|s| s.defects.len()).sum();
        assert_eq!(total, 5);
    }
}
