//! Synthetic core-component generator for the scaling benchmarks.
//!
//! Produces annotated C programs with a controllable shape: `R` shared
//! regions, `M` monitoring functions each assuming a different region, and
//! a shared helper chain of depth `D` called from every monitor. The
//! context-sensitive engine re-analyzes the helper chain once per
//! assumption context (≈ `M × D` function analyses), while the summary
//! engine summarizes each function once — the §3.3 trade-off the
//! `engine_scaling` bench measures.

/// Shape of a generated program.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticParams {
    /// Number of shared-memory regions (each gets its own monitor flag).
    pub regions: usize,
    /// Number of monitoring functions (each assumes one region).
    pub monitors: usize,
    /// Depth of the shared helper call chain.
    pub depth: usize,
    /// Extra branches per helper (path count pressure).
    pub branches: usize,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams { regions: 4, monitors: 4, depth: 6, branches: 2 }
    }
}

/// Generates an annotated core component with the given shape.
pub fn generate_core(p: SyntheticParams) -> String {
    let regions = p.regions.max(1);
    let monitors = p.monitors.max(1).min(regions);
    let depth = p.depth.max(1);
    let branches = p.branches;

    let mut out = String::new();
    out.push_str("/* synthetic core component (generated) */\n");
    out.push_str("typedef struct Blk { float v; int seq; int flag; int pad; } Blk;\n");
    for r in 0..regions {
        out.push_str(&format!("Blk *reg{r};\n"));
    }
    out.push_str("int shmget(int key, int size, int flags);\n");
    out.push_str("void *shmat(int shmid, void *addr, int flags);\n");
    out.push_str("void sink(float v);\n");
    out.push_str("float source(void);\n\n");

    // Init function.
    out.push_str("void initShm(void)\n/** SafeFlow Annotation shminit */\n{\n");
    out.push_str("    char *cursor;\n    int shmid;\n");
    out.push_str(&format!(
        "    shmid = shmget(77, {regions} * sizeof(Blk), 0);\n"
    ));
    out.push_str("    cursor = (char *) shmat(shmid, 0, 0);\n");
    for r in 0..regions {
        out.push_str(&format!("    reg{r} = (Blk *) cursor;\n"));
        out.push_str("    cursor = cursor + sizeof(Blk);\n");
    }
    out.push_str("    /** SafeFlow Annotation\n");
    for r in 0..regions {
        out.push_str(&format!("        assume(shmvar(reg{r}, sizeof(Blk)))\n"));
    }
    for r in 0..regions {
        out.push_str(&format!("        assume(noncore(reg{r}))\n"));
    }
    out.push_str("    */\n}\n\n");

    // Helper chain: each level does arithmetic and branches, bottoming out
    // in a region read (monitored or not depending on the caller's
    // assumption context).
    for d in (0..depth).rev() {
        out.push_str(&format!("float helper{d}(float x, int which) {{\n"));
        out.push_str("    float acc;\n    acc = x * 1.03125 + 0.5;\n");
        for b in 0..branches {
            out.push_str(&format!(
                "    if (which > {b}) {{ acc = acc + {b}.25; }} else {{ acc = acc - 0.125; }}\n"
            ));
        }
        if d + 1 < depth {
            out.push_str(&format!("    acc = acc + helper{}(acc, which + 1);\n", d + 1));
        } else {
            // Deepest level reads region 0 through the shared global.
            out.push_str("    acc = acc + reg0->v;\n");
        }
        out.push_str("    return acc;\n}\n\n");
    }

    // Monitors: each assumes its own region, reads it, and runs the shared
    // helper chain.
    for m in 0..monitors {
        let r = m % regions;
        out.push_str(&format!(
            "float monitor{m}(float fallback)\n/** SafeFlow Annotation assume(core(reg{r}, 0, sizeof(Blk))) */\n{{\n"
        ));
        out.push_str(&format!("    float v;\n    v = reg{r}->v;\n"));
        out.push_str("    if (v > 5.0) return fallback;\n");
        out.push_str("    if (v < 0.0 - 5.0) return fallback;\n");
        out.push_str(&format!("    return v + helper0(v, {m});\n"));
        out.push_str("}\n\n");
    }

    // Main: call the monitors, assert the combined output.
    out.push_str("int main() {\n    float u;\n    float s;\n    initShm();\n    s = source();\n    u = 0.0;\n");
    for m in 0..monitors {
        out.push_str(&format!("    u = u + monitor{m}(s);\n"));
    }
    out.push_str("    /** SafeFlow Annotation assert(safe(u)) */\n");
    out.push_str("    sink(u);\n    return 0;\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_program_has_expected_shape() {
        let src = generate_core(SyntheticParams { regions: 3, monitors: 3, depth: 4, branches: 1 });
        assert!(src.contains("monitor2"));
        assert!(src.contains("helper3"));
        assert!(src.contains("assume(shmvar(reg2"));
        assert!(src.contains("assert(safe(u))"));
    }

    #[test]
    fn generation_deterministic() {
        let p = SyntheticParams::default();
        assert_eq!(generate_core(p), generate_core(p));
    }

    #[test]
    fn scales_with_depth() {
        let small = generate_core(SyntheticParams { depth: 2, ..Default::default() });
        let large = generate_core(SyntheticParams { depth: 12, ..Default::default() });
        assert!(crate::count_loc(&large) > crate::count_loc(&small));
    }
}
