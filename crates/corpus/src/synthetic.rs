//! Synthetic core-component generator for the scaling benchmarks.
//!
//! Produces annotated C programs with a controllable shape: `R` shared
//! regions, `M` monitoring functions each assuming a different region, and
//! a shared helper chain of depth `D` called from every monitor. The
//! context-sensitive engine re-analyzes the helper chain once per
//! assumption context (≈ `M × D` function analyses), while the summary
//! engine summarizes each function once — the §3.3 trade-off the
//! `engine_scaling` bench measures.

/// Shape of a generated program.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticParams {
    /// Number of shared-memory regions (each gets its own monitor flag).
    pub regions: usize,
    /// Number of monitoring functions (each assumes one region).
    pub monitors: usize,
    /// Depth of the shared helper call chain.
    pub depth: usize,
    /// Extra branches per helper (path count pressure).
    pub branches: usize,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams { regions: 4, monitors: 4, depth: 6, branches: 2 }
    }
}

/// Generates an annotated core component with the given shape.
pub fn generate_core(p: SyntheticParams) -> String {
    let regions = p.regions.max(1);
    let monitors = p.monitors.max(1).min(regions);
    let depth = p.depth.max(1);
    let branches = p.branches;

    let mut out = String::new();
    out.push_str("/* synthetic core component (generated) */\n");
    out.push_str("typedef struct Blk { float v; int seq; int flag; int pad; } Blk;\n");
    for r in 0..regions {
        out.push_str(&format!("Blk *reg{r};\n"));
    }
    out.push_str("int shmget(int key, int size, int flags);\n");
    out.push_str("void *shmat(int shmid, void *addr, int flags);\n");
    out.push_str("void sink(float v);\n");
    out.push_str("float source(void);\n\n");

    // Init function.
    out.push_str("void initShm(void)\n/** SafeFlow Annotation shminit */\n{\n");
    out.push_str("    char *cursor;\n    int shmid;\n");
    out.push_str(&format!("    shmid = shmget(77, {regions} * sizeof(Blk), 0);\n"));
    out.push_str("    cursor = (char *) shmat(shmid, 0, 0);\n");
    for r in 0..regions {
        out.push_str(&format!("    reg{r} = (Blk *) cursor;\n"));
        out.push_str("    cursor = cursor + sizeof(Blk);\n");
    }
    out.push_str("    /** SafeFlow Annotation\n");
    for r in 0..regions {
        out.push_str(&format!("        assume(shmvar(reg{r}, sizeof(Blk)))\n"));
    }
    for r in 0..regions {
        out.push_str(&format!("        assume(noncore(reg{r}))\n"));
    }
    out.push_str("    */\n}\n\n");

    // Helper chain: each level does arithmetic and branches, bottoming out
    // in a region read (monitored or not depending on the caller's
    // assumption context).
    for d in (0..depth).rev() {
        out.push_str(&format!("float helper{d}(float x, int which) {{\n"));
        out.push_str("    float acc;\n    acc = x * 1.03125 + 0.5;\n");
        for b in 0..branches {
            out.push_str(&format!(
                "    if (which > {b}) {{ acc = acc + {b}.25; }} else {{ acc = acc - 0.125; }}\n"
            ));
        }
        if d + 1 < depth {
            out.push_str(&format!("    acc = acc + helper{}(acc, which + 1);\n", d + 1));
        } else {
            // Deepest level reads region 0 through the shared global.
            out.push_str("    acc = acc + reg0->v;\n");
        }
        out.push_str("    return acc;\n}\n\n");
    }

    // Monitors: each assumes its own region, reads it, and runs the shared
    // helper chain.
    for m in 0..monitors {
        let r = m % regions;
        out.push_str(&format!(
            "float monitor{m}(float fallback)\n/** SafeFlow Annotation assume(core(reg{r}, 0, sizeof(Blk))) */\n{{\n"
        ));
        out.push_str(&format!("    float v;\n    v = reg{r}->v;\n"));
        out.push_str("    if (v > 5.0) return fallback;\n");
        out.push_str("    if (v < 0.0 - 5.0) return fallback;\n");
        out.push_str(&format!("    return v + helper0(v, {m});\n"));
        out.push_str("}\n\n");
    }

    // Main: call the monitors, assert the combined output.
    out.push_str("int main() {\n    float u;\n    float s;\n    initShm();\n    s = source();\n    u = 0.0;\n");
    for m in 0..monitors {
        out.push_str(&format!("    u = u + monitor{m}(s);\n"));
    }
    out.push_str("    /** SafeFlow Annotation assert(safe(u)) */\n");
    out.push_str("    sink(u);\n    return 0;\n}\n");
    out
}

/// Shape of a generated *wide* program (see [`generate_wide`]).
#[derive(Debug, Clone, Copy)]
pub struct WideParams {
    /// Number of independent call-chain families.
    pub families: usize,
    /// Depth of each family's helper chain.
    pub depth: usize,
    /// Number of shared-memory regions (families cycle through them).
    pub regions: usize,
    /// Extra branches per helper (per-function analysis pressure).
    pub branches: usize,
}

impl Default for WideParams {
    fn default() -> Self {
        WideParams { families: 32, depth: 3, regions: 8, branches: 4 }
    }
}

/// Generates a *wide* annotated core component: `families` mutually
/// independent helper chains, each `depth` deep, all called from `main`.
///
/// The call-graph condensation is a shallow fan of `families` parallel
/// paths, so the SCC-scheduled summary engine and the per-function
/// restriction checks can spread the work across every worker — the
/// workload for the `parallel_scaling` bench. Each helper carries
/// branches, a bounded shared-array loop (solver pressure for A1) and a
/// region read, so per-function analysis cost dominates scheduling
/// overhead.
pub fn generate_wide(p: WideParams) -> String {
    let families = p.families.max(1);
    let depth = p.depth.max(1);
    let regions = p.regions.max(1);
    let branches = p.branches;

    let mut out = String::new();
    out.push_str("/* synthetic wide core component (generated) */\n");
    out.push_str("typedef struct Wide { float v; float arr[16]; int seq; } Wide;\n");
    for r in 0..regions {
        out.push_str(&format!("Wide *wreg{r};\n"));
    }
    out.push_str("int shmget(int key, int size, int flags);\n");
    out.push_str("void *shmat(int shmid, void *addr, int flags);\n");
    out.push_str("void sink(float v);\n");
    out.push_str("float source(void);\n\n");

    out.push_str("void initShm(void)\n/** SafeFlow Annotation shminit */\n{\n");
    out.push_str("    char *cursor;\n    int shmid;\n");
    out.push_str(&format!("    shmid = shmget(99, {regions} * sizeof(Wide), 0);\n"));
    out.push_str("    cursor = (char *) shmat(shmid, 0, 0);\n");
    for r in 0..regions {
        out.push_str(&format!("    wreg{r} = (Wide *) cursor;\n"));
        out.push_str("    cursor = cursor + sizeof(Wide);\n");
    }
    out.push_str("    /** SafeFlow Annotation\n");
    for r in 0..regions {
        out.push_str(&format!("        assume(shmvar(wreg{r}, sizeof(Wide)))\n"));
    }
    for r in 0..regions {
        out.push_str(&format!("        assume(noncore(wreg{r}))\n"));
    }
    out.push_str("    */\n}\n\n");

    // Families: independent chains fam{f}_h0 -> ... -> fam{f}_h{depth-1};
    // no function is shared between families, so distinct families are
    // independent SCCs in the condensation.
    for f in 0..families {
        let r = f % regions;
        for d in (0..depth).rev() {
            out.push_str(&format!("float fam{f}_h{d}(float x, int which)\n"));
            if d == 0 {
                // Chain heads monitor their region, so deeper reads are
                // covered (keeps the report small and stable as the
                // program scales).
                out.push_str(&format!(
                    "/** SafeFlow Annotation assume(core(wreg{r}, 0, sizeof(Wide))) */\n"
                ));
            }
            out.push_str("{\n    float acc;\n    int i;\n");
            out.push_str(&format!("    acc = x * 1.0625 + {}.125;\n", d + 1));
            for b in 0..branches {
                out.push_str(&format!(
                    "    if (which > {b}) {{ acc = acc + {b}.5; }} else {{ acc = acc - 0.25; }}\n"
                ));
            }
            out.push_str(&format!(
                "    for (i = 0; i < 16; i++) {{ acc = acc + wreg{r}->arr[i]; }}\n"
            ));
            if d + 1 < depth {
                out.push_str(&format!("    acc = acc + fam{f}_h{}(acc, which + 1);\n", d + 1));
            } else {
                out.push_str(&format!("    acc = acc + wreg{r}->v;\n"));
            }
            out.push_str("    return acc;\n}\n\n");
        }
    }

    out.push_str("int main() {\n    float u;\n    float s;\n    initShm();\n    s = source();\n    u = 0.0;\n");
    for f in 0..families {
        out.push_str(&format!("    u = u + fam{f}_h0(s, {f});\n"));
    }
    out.push_str("    /** SafeFlow Annotation assert(safe(u)) */\n");
    out.push_str("    sink(u);\n    return 0;\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_program_has_expected_shape() {
        let src = generate_core(SyntheticParams { regions: 3, monitors: 3, depth: 4, branches: 1 });
        assert!(src.contains("monitor2"));
        assert!(src.contains("helper3"));
        assert!(src.contains("assume(shmvar(reg2"));
        assert!(src.contains("assert(safe(u))"));
    }

    #[test]
    fn generation_deterministic() {
        let p = SyntheticParams::default();
        assert_eq!(generate_core(p), generate_core(p));
    }

    #[test]
    fn scales_with_depth() {
        let small = generate_core(SyntheticParams { depth: 2, ..Default::default() });
        let large = generate_core(SyntheticParams { depth: 12, ..Default::default() });
        assert!(crate::count_loc(&large) > crate::count_loc(&small));
    }

    #[test]
    fn wide_program_has_independent_families() {
        let p = WideParams { families: 5, depth: 2, regions: 3, branches: 1 };
        let src = generate_wide(p);
        assert!(src.contains("fam4_h0"));
        assert!(src.contains("fam4_h1"));
        assert!(src.contains("assume(shmvar(wreg2"));
        assert!(src.contains("assert(safe(u))"));
        // No cross-family calls: fam0 functions never mention fam1.
        for line in src.lines() {
            if line.contains("fam0_") {
                assert!(!line.contains("fam1_"), "{line}");
            }
        }
        assert_eq!(generate_wide(p), generate_wide(p));
    }
}
