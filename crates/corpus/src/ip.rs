//! System 1: the **inverted pendulum (IP) Simplex controller** (Table 1,
//! row 1).
//!
//! Re-creation of the UIUC real-time lab's IP demonstration: a core
//! controller balancing a single inverted pendulum, with a non-core
//! "complex" controller and a UI communicating through four shared-memory
//! regions. The §4 defect seeded here is the **kill-pid dependency**: the
//! watchdog restarts the non-core client using a pid read from non-core
//! shared memory — "this could easily be used to bring down the core
//! component if the non-core component overwrote the value with the
//! process id of the core component itself".
//!
//! Expected findings (checked by integration tests against the paper's
//! Table 1 row): 7 warnings, 1 confirmed error (kill pid, data
//! dependency), 2 control-dependence false positives (UI-driven status
//! code and loop-period selection).

use crate::{Defect, PaperRow, System};

/// Returns the IP system description.
pub fn system() -> System {
    System {
        name: "IP",
        core_file: "ip_core.c",
        core_source: CORE,
        original_source: original(),
        paper: PaperRow {
            loc_total: 7079,
            loc_core: 820,
            source_changes: 7,
            annotation_lines: 11,
            errors: 1,
            warnings: 7,
            false_positives: 2,
        },
        defects: vec![Defect {
            id: "ip-kill-pid",
            critical: "kill:arg0",
            description: "watchdog kills the pid read from unmonitored non-core shared memory \
                          (paper §4: the non-core side could substitute the core's own pid)",
        }],
        noncore_seed: 0x1701,
    }
}

/// The pre-annotation original: annotations stripped and the monitoring
/// logic inlined in `controlStep` (the paper: "a very small number of
/// source changes were required ... to separate the monitoring function,
/// which was a part of a larger function").
fn original() -> String {
    let replaced = CORE.replace(DECISION_FN, "").replace(DECISION_CALL, DECISION_INLINE);
    crate::strip_annotations(&replaced)
}

/// The separated monitoring function in the annotated version.
const DECISION_FN: &str = r#"float decisionModule(float safeU)
/** SafeFlow Annotation assume(core(ncShm, 0, sizeof(NCControl))) */
{
    float u;
    int fresh;
    fresh = 0;
    if (ncShm->seq != lastNcSeq) {
        lastNcSeq = ncShm->seq;
        fresh = 1;
    }
    if (fresh == 1 && ncShm->valid == 1) {
        u = ncShm->control;
        if (envelopeOk(u)) {
            ncAccepted = ncAccepted + 1;
            return u;
        }
    }
    ncRejected = ncRejected + 1;
    return safeU;
}
"#;

/// The call in the annotated version's `controlStep`.
const DECISION_CALL: &str = "    u = decisionModule(safeU);";

/// What the original did instead (monitoring inline).
const DECISION_INLINE: &str = r#"    if (ncShm->seq != lastNcSeq && ncShm->valid == 1 && envelopeOk(ncShm->control)) {
        lastNcSeq = ncShm->seq;
        ncAccepted = ncAccepted + 1;
        u = ncShm->control;
    } else {
        ncRejected = ncRejected + 1;
        u = safeU;
    }"#;

/// Annotated core component source (the input to SafeFlow).
pub const CORE: &str = r#"
/* ============================================================
 * Inverted Pendulum Simplex - core controller
 *
 * Core subsystem of the IP demonstration: balances the pendulum
 * with a verified LQR safety controller and admits the non-core
 * complex controller's output only when the Lyapunov envelope
 * check passes (Simplex architecture).
 * ============================================================ */

enum {
    HIST_N      = 32,
    STATE_N     = 4,
    MODE_SAFE   = 0,
    MODE_COMPLEX = 1,
    OP_NORMAL   = 0,
    OP_FAST     = 1,
    CMD_NONE    = 0,
    CMD_START   = 1,
    CMD_STOP    = 2,
    CMD_FAST    = 3,
    SIG_TERM    = 15,
    HB_LIMIT    = 3,
    SHM_KEY     = 5120
};

/* ---- shared memory layout -------------------------------- */

typedef struct Feedback {
    float track;
    float angle;
    float trackVel;
    float angleVel;
    int   seq;
    int   displayAck;
} Feedback;

typedef struct NCControl {
    float control;
    int   seq;
    int   valid;
    int   computeTimeUs;
    int   heartbeat;
    int   clientPid;
} NCControl;

typedef struct StatusOut {
    float control;
    float track;
    float angle;
    int   mode;
    int   seq;
    int   statusCode;
} StatusOut;

typedef struct UICmd {
    int command;
    int resetCounters;
    int padA;
    int padB;
} UICmd;

Feedback  *fbShm;
NCControl *ncShm;
StatusOut *statShm;
UICmd     *uiShm;

/* ---- external services ------------------------------------ */

int   shmget(int key, int size, int flags);
void *shmat(int shmid, void *addr, int flags);
float readTrackSensor(void);
float readAngleSensor(void);
void  sendActuator(float volts);
int   kill(int pid, int sig);
void  logInt(char *tag, int value);
void  logFloat(char *tag, float value);
void  timerWait(int ticks);
int   getTicks(void);
void  panicStop(void);

/* ---- controller state -------------------------------------- */

float xhat0;
float xhat1;
float xhat2;
float xhat3;

float gainSafe0;
float gainSafe1;
float gainSafe2;
float gainSafe3;

float obsA00; float obsA01; float obsA02; float obsA03;
float obsA10; float obsA11; float obsA12; float obsA13;
float obsA20; float obsA21; float obsA22; float obsA23;
float obsA30; float obsA31; float obsA32; float obsA33;

float obsL00; float obsL01;
float obsL10; float obsL11;
float obsL20; float obsL21;
float obsL30; float obsL31;

float lyapP00; float lyapP01; float lyapP02; float lyapP03;
float lyapP11; float lyapP12; float lyapP13;
float lyapP22; float lyapP23;
float lyapP33;

float envelopeLimit;
float voltLimit;
float trackLimit;
float angleLimit;

float histU[HIST_N];
int   histHead;
int   histCount;

int running;
int opRequested;
int coreSeq;
int lastNcSeq;
int lastHb;
int missedHeartbeats;
int ncAccepted;
int ncRejected;
int logCount;
int uiSyncs;

/* ---- shared memory initialization (Figure 3 style) --------- */

void initShm(void)
/** SafeFlow Annotation shminit */
{
    void *base;
    char *cursor;
    int   shmid;
    int   total;

    total = sizeof(Feedback) + sizeof(NCControl)
          + sizeof(StatusOut) + sizeof(UICmd);
    shmid  = shmget(SHM_KEY, total, 0);
    base   = shmat(shmid, 0, 0);
    cursor = (char *) base;

    fbShm   = (Feedback *) cursor;
    cursor  = cursor + sizeof(Feedback);
    ncShm   = (NCControl *) cursor;
    cursor  = cursor + sizeof(NCControl);
    statShm = (StatusOut *) cursor;
    cursor  = cursor + sizeof(StatusOut);
    uiShm   = (UICmd *) cursor;

    /** SafeFlow Annotation
        assume(shmvar(fbShm, sizeof(Feedback)))
        assume(shmvar(ncShm, sizeof(NCControl)))
        assume(shmvar(statShm, sizeof(StatusOut)))
        assume(shmvar(uiShm, sizeof(UICmd)))
        assume(noncore(fbShm))
        assume(noncore(ncShm))
        assume(noncore(uiShm))
    */
}

/* ---- numerics ---------------------------------------------- */

float clampf(float v, float lo, float hi) {
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
}

float absf(float v) {
    if (v < 0.0) return 0.0 - v;
    return v;
}

void initGains(void) {
    /* Discrete LQR gains for the linearized cart-pole (dt = 10ms). */
    gainSafe0 = 3.1623;
    gainSafe1 = 4.2814;
    gainSafe2 = 38.5712;
    gainSafe3 = 6.9342;

    /* Observer system matrix Phi = A - L*C (precomputed). */
    obsA00 = 0.9992; obsA01 = 0.0099; obsA02 = 0.0006; obsA03 = 0.0000;
    obsA10 = 0.0531; obsA11 = 0.9871; obsA12 = 0.1201; obsA13 = 0.0006;
    obsA20 = 0.0002; obsA21 = 0.0000; obsA22 = 0.9989; obsA23 = 0.0100;
    obsA30 = 0.0421; obsA31 = 0.0002; obsA32 = 0.2212; obsA33 = 0.9877;

    /* Observer injection gains. */
    obsL00 = 0.3412; obsL01 = 0.0021;
    obsL10 = 1.0233; obsL11 = 0.0442;
    obsL20 = 0.0018; obsL21 = 0.3821;
    obsL30 = 0.0364; obsL31 = 1.1420;

    /* Lyapunov matrix P (symmetric; upper triangle stored). */
    lyapP00 = 12.441; lyapP01 = 3.022; lyapP02 = 9.871; lyapP03 = 1.442;
    lyapP11 = 2.114;  lyapP12 = 3.672; lyapP13 = 0.731;
    lyapP22 = 14.220; lyapP23 = 2.510;
    lyapP33 = 1.309;

    envelopeLimit = 48.0;
    voltLimit     = 4.96;
    trackLimit    = 1.20;
    angleLimit    = 0.45;
}

void resetEstimator(void) {
    xhat0 = 0.0;
    xhat1 = 0.0;
    xhat2 = 0.0;
    xhat3 = 0.0;
    histHead = 0;
    histCount = 0;
}

/* Luenberger observer update from the two measured outputs. */
void observerUpdate(float ytrack, float yangle, float u) {
    float n0; float n1; float n2; float n3;
    float rtrack; float rangle;

    rtrack = ytrack - xhat0;
    rangle = yangle - xhat2;

    n0 = obsA00 * xhat0 + obsA01 * xhat1 + obsA02 * xhat2 + obsA03 * xhat3;
    n1 = obsA10 * xhat0 + obsA11 * xhat1 + obsA12 * xhat2 + obsA13 * xhat3;
    n2 = obsA20 * xhat0 + obsA21 * xhat1 + obsA22 * xhat2 + obsA23 * xhat3;
    n3 = obsA30 * xhat0 + obsA31 * xhat1 + obsA32 * xhat2 + obsA33 * xhat3;

    n1 = n1 + 0.0098 * u;
    n3 = n3 + 0.0214 * u;

    xhat0 = n0 + obsL00 * rtrack + obsL01 * rangle;
    xhat1 = n1 + obsL10 * rtrack + obsL11 * rangle;
    xhat2 = n2 + obsL20 * rtrack + obsL21 * rangle;
    xhat3 = n3 + obsL30 * rtrack + obsL31 * rangle;
}

/* LQR state feedback with saturation. */
float computeSafeControl(void) {
    float u;
    u = 0.0 - (gainSafe0 * xhat0 + gainSafe1 * xhat1
             + gainSafe2 * xhat2 + gainSafe3 * xhat3);
    u = clampf(u, 0.0 - voltLimit, voltLimit);
    return u;
}

/* Lyapunov function V(xhat) = xhat' P xhat (upper-triangular expansion). */
float lyapunov(void) {
    float v;
    v = lyapP00 * xhat0 * xhat0
      + 2.0 * lyapP01 * xhat0 * xhat1
      + 2.0 * lyapP02 * xhat0 * xhat2
      + 2.0 * lyapP03 * xhat0 * xhat3
      + lyapP11 * xhat1 * xhat1
      + 2.0 * lyapP12 * xhat1 * xhat2
      + 2.0 * lyapP13 * xhat1 * xhat3
      + lyapP22 * xhat2 * xhat2
      + 2.0 * lyapP23 * xhat2 * xhat3
      + lyapP33 * xhat3 * xhat3;
    return v;
}

/* Recoverability: applying u keeps the state in the Lyapunov
 * stability envelope (Simplex decision rule). Pure core data. */
int envelopeOk(float u) {
    float v;
    if (u > voltLimit) return 0;
    if (u < 0.0 - voltLimit) return 0;
    if (absf(xhat0) > trackLimit) return 0;
    if (absf(xhat2) > angleLimit) return 0;
    v = lyapunov();
    if (v > envelopeLimit) return 0;
    return 1;
}

void recordControl(float u) {
    histU[histHead] = u;
    histHead = histHead + 1;
    if (histHead >= HIST_N) histHead = 0;
    if (histCount < HIST_N) histCount = histCount + 1;
}

float meanRecentControl(void) {
    float acc;
    int i;
    acc = 0.0;
    if (histCount == 0) return 0.0;
    for (i = 0; i < HIST_N; i++) {
        acc = acc + histU[i];
    }
    return acc / histCount;
}

/* ---- Simplex decision module (the separated monitor) ------- */

float decisionModule(float safeU)
/** SafeFlow Annotation assume(core(ncShm, 0, sizeof(NCControl))) */
{
    float u;
    int fresh;
    fresh = 0;
    if (ncShm->seq != lastNcSeq) {
        lastNcSeq = ncShm->seq;
        fresh = 1;
    }
    if (fresh == 1 && ncShm->valid == 1) {
        u = ncShm->control;
        if (envelopeOk(u)) {
            ncAccepted = ncAccepted + 1;
            return u;
        }
    }
    ncRejected = ncRejected + 1;
    return safeU;
}

/* ---- shared memory publication ------------------------------ */

void publishFeedback(float ytrack, float yangle) {
    fbShm->track    = ytrack;
    fbShm->angle    = yangle;
    fbShm->trackVel = xhat1;
    fbShm->angleVel = xhat3;
    fbShm->seq      = coreSeq;
}

void publishStatus(float u, float ytrack, float yangle) {
    int statusCode;
    statShm->control = u;
    statShm->track   = ytrack;
    statShm->angle   = yangle;
    statShm->seq     = coreSeq;
    if (running == 1) {
        statusCode = 2;
    } else {
        statusCode = 1;
    }
    /** SafeFlow Annotation assert(safe(statusCode)) */
    statShm->statusCode = statusCode;
    statShm->mode = MODE_COMPLEX;
}

/* ---- housekeeping (non-core interactions) ------------------- */

/* Watchdog: restart the non-core client when its heartbeat stalls.
 * DEFECT (paper §4): the pid comes from non-core shared memory and
 * is used without monitoring. */
void watchdogCheck(void) {
    int hb;
    int pid;
    int stalled;
    int restarted;
    stalled = 0;
    restarted = 0;
    hb = ncShm->heartbeat;
    if (hb == lastHb) {
        missedHeartbeats = missedHeartbeats + 1;
        stalled = 1;
    } else {
        missedHeartbeats = 0;
        lastHb = hb;
    }
    if (missedHeartbeats > HB_LIMIT) {
        pid = ncShm->clientPid;
        kill(pid, SIG_TERM);
        missedHeartbeats = 0;
        restarted = 1;
    }
    noteWatchdogCheck(stalled, restarted);
}

/* UI command polling: operator start/stop and speed requests. */
void pollUiCommands(void) {
    int cmd;
    int rst;
    cmd = uiShm->command;
    if (cmd == CMD_START) {
        running = 1;
    }
    if (cmd == CMD_STOP) {
        running = 0;
    }
    if (cmd == CMD_FAST) {
        opRequested = OP_FAST;
    }
    rst = uiShm->resetCounters;
    if (rst == 1) {
        logCount = 0;
        ncAccepted = 0;
        ncRejected = 0;
    }
}

/* Loop-period selection from the requested operating mode. */
int selectPeriod(void) {
    int periodTicks;
    if (opRequested == OP_FAST) {
        periodTicks = 5;
    } else {
        periodTicks = 10;
    }
    /** SafeFlow Annotation assert(safe(periodTicks)) */
    return periodTicks;
}

/* Jitter statistics from the non-core controller, for the log. */
void logJitter(void) {
    int ct;
    int sq;
    ct = ncShm->computeTimeUs;
    sq = ncShm->seq;
    logInt("nc.computeTimeUs", ct);
    logInt("nc.seq", sq);
    logInt("nc.accepted", ncAccepted);
    logInt("nc.rejected", ncRejected);
    logFloat("u.mean", meanRecentControl());
    logCount = logCount + 1;
}

/* Display handshake: note when the UI consumed the last frame. */
void displayHandshake(void) {
    int ack;
    ack = fbShm->displayAck;
    if (ack == coreSeq) {
        uiSyncs = uiSyncs + 1;
    }
}


/* ---- sensor conditioning ------------------------------------ */

float trackOffset;
float trackScale;
float angleOffset;
float angleScale;

float bqTrackB0; float bqTrackB1; float bqTrackB2;
float bqTrackA1; float bqTrackA2;
float bqTrackZ1; float bqTrackZ2;

float bqAngleB0; float bqAngleB1; float bqAngleB2;
float bqAngleA1; float bqAngleA2;
float bqAngleZ1; float bqAngleZ2;

void initFilters(void) {
    /* 2nd-order Butterworth, 35 Hz cutoff at 100 Hz sampling. */
    bqTrackB0 = 0.4459; bqTrackB1 = 0.8918; bqTrackB2 = 0.4459;
    bqTrackA1 = 0.7478; bqTrackA2 = 0.2722;
    bqTrackZ1 = 0.0;    bqTrackZ2 = 0.0;

    bqAngleB0 = 0.2066; bqAngleB1 = 0.4131; bqAngleB2 = 0.2066;
    bqAngleA1 = 0.3695; bqAngleA2 = 0.1958;
    bqAngleZ1 = 0.0;    bqAngleZ2 = 0.0;

    trackOffset = 0.0042;
    trackScale  = 0.9987;
    angleOffset = 0.0008;
    angleScale  = 1.0034;
}

float filterTrack(float x) {
    float y;
    y = bqTrackB0 * x + bqTrackZ1;
    bqTrackZ1 = bqTrackB1 * x - bqTrackA1 * y + bqTrackZ2;
    bqTrackZ2 = bqTrackB2 * x - bqTrackA2 * y;
    return y;
}

float filterAngle(float x) {
    float y;
    y = bqAngleB0 * x + bqAngleZ1;
    bqAngleZ1 = bqAngleB1 * x - bqAngleA1 * y + bqAngleZ2;
    bqAngleZ2 = bqAngleB2 * x - bqAngleA2 * y;
    return y;
}

float calibrateTrack(float raw) {
    float v;
    v = (raw - trackOffset) * trackScale;
    return clampf(v, 0.0 - 2.0, 2.0);
}

float calibrateAngle(float raw) {
    float v;
    v = (raw - angleOffset) * angleScale;
    return clampf(v, 0.0 - 1.0, 1.0);
}

/* ---- fault management --------------------------------------- */

enum {
    FAULT_TRACK_RANGE = 0,
    FAULT_ANGLE_RANGE = 1,
    FAULT_SENSOR_STUCK = 2,
    FAULT_ACT_SAT = 3,
    FAULT_N = 4,
    FAULT_TRIP = 5,
    STUCK_TICKS = 50
};

int faultCount[FAULT_N];
int faultLatch;
float lastRawTrack;
float lastRawAngle;
int stuckTicks;
int satTicks;

void clearFaults(void) {
    int i;
    for (i = 0; i < FAULT_N; i++) {
        faultCount[i] = 0;
    }
    faultLatch = 0;
    stuckTicks = 0;
    satTicks = 0;
}

void noteFault(int which) {
    if (which < 0) return;
    if (which >= FAULT_N) return;
    faultCount[which] = faultCount[which] + 1;
    if (faultCount[which] > FAULT_TRIP) {
        faultLatch = 1;
    }
}

void checkSensorFaults(float rawTrack, float rawAngle) {
    if (rawTrack > 1.9) noteFault(FAULT_TRACK_RANGE);
    if (rawTrack < 0.0 - 1.9) noteFault(FAULT_TRACK_RANGE);
    if (rawAngle > 0.9) noteFault(FAULT_ANGLE_RANGE);
    if (rawAngle < 0.0 - 0.9) noteFault(FAULT_ANGLE_RANGE);

    if (absf(rawTrack - lastRawTrack) < 0.000001
        && absf(rawAngle - lastRawAngle) < 0.000001) {
        stuckTicks = stuckTicks + 1;
        if (stuckTicks > STUCK_TICKS) {
            noteFault(FAULT_SENSOR_STUCK);
            stuckTicks = 0;
        }
    } else {
        stuckTicks = 0;
    }
    lastRawTrack = rawTrack;
    lastRawAngle = rawAngle;
}

void checkActuatorFault(float u) {
    float m;
    m = absf(u);
    if (m >= voltLimit - 0.01) {
        satTicks = satTicks + 1;
        if (satTicks > STUCK_TICKS) {
            noteFault(FAULT_ACT_SAT);
            satTicks = 0;
        }
    } else {
        satTicks = 0;
    }
}

/* ---- command shaping ----------------------------------------- */

float slewLimit;
float deadband;
float lastSentU;

void initShaping(void) {
    slewLimit = 0.35;
    deadband  = 0.015;
    lastSentU = 0.0;
}

float shapeControl(float u) {
    float delta;
    delta = u - lastSentU;
    if (delta > slewLimit) {
        u = lastSentU + slewLimit;
    }
    if (delta < 0.0 - slewLimit) {
        u = lastSentU - slewLimit;
    }
    if (absf(u) < deadband) {
        u = 0.0;
    }
    lastSentU = u;
    return u;
}

/* ---- reference generator -------------------------------------- */

float refTarget;
float refCurrent;
float refRate;

void initReference(void) {
    refTarget  = 0.0;
    refCurrent = 0.0;
    refRate    = 0.002;
}

float referenceStep(void) {
    float d;
    d = refTarget - refCurrent;
    if (d > refRate) {
        refCurrent = refCurrent + refRate;
    } else if (d < 0.0 - refRate) {
        refCurrent = refCurrent - refRate;
    } else {
        refCurrent = refTarget;
    }
    return refCurrent;
}

/* ---- energy bookkeeping ---------------------------------------- */

float energyEstimate;
float frictionCoeff;

void initEnergy(void) {
    energyEstimate = 0.0;
    frictionCoeff  = 0.018;
}

float frictionCompensation(void) {
    float comp;
    if (xhat1 > 0.001) {
        comp = frictionCoeff;
    } else if (xhat1 < 0.0 - 0.001) {
        comp = 0.0 - frictionCoeff;
    } else {
        comp = 0.0;
    }
    return comp;
}

void updateEnergy(float u) {
    float p;
    p = u * xhat1;
    energyEstimate = 0.995 * energyEstimate + 0.005 * absf(p);
}

/* ---- startup homing -------------------------------------------- */

int homed;

int homeTrolley(void) {
    int start;
    int now;
    float pos;
    start = getTicks();
    pos = readTrackSensor();
    while (absf(pos) > 0.02) {
        if (pos > 0.0) {
            sendActuator(0.0 - 0.8);
        } else {
            sendActuator(0.8);
        }
        timerWait(2);
        pos = readTrackSensor();
        now = getTicks();
        if (now - start > 2000) {
            sendActuator(0.0);
            return 0;
        }
    }
    sendActuator(0.0);
    homed = 1;
    return 1;
}

/* ---- diagnostics ------------------------------------------------ */

void dumpDiagnostics(void) {
    logFloat("xhat.track", xhat0);
    logFloat("xhat.trackVel", xhat1);
    logFloat("xhat.angle", xhat2);
    logFloat("xhat.angleVel", xhat3);
    logFloat("lyapunov", lyapunov());
    logFloat("energy", energyEstimate);
    logInt("fault.trackRange", faultCount[FAULT_TRACK_RANGE]);
    logInt("fault.angleRange", faultCount[FAULT_ANGLE_RANGE]);
    logInt("fault.stuck", faultCount[FAULT_SENSOR_STUCK]);
    logInt("fault.sat", faultCount[FAULT_ACT_SAT]);
    logInt("fault.latch", faultLatch);
    logInt("core.seq", coreSeq);
    logInt("ui.syncs", uiSyncs);
    logInt("homed", homed);
}


/* ---- supply-voltage compensation ----------------------------- */

float supplyNominal;
float supplyMeasured;
float supplyAlpha;

void initSupply(void) {
    supplyNominal  = 12.0;
    supplyMeasured = 12.0;
    supplyAlpha    = 0.02;
}

float readSupplyVolts(void);

void updateSupply(void) {
    float raw;
    raw = readSupplyVolts();
    if (raw < 8.0) raw = 8.0;
    if (raw > 16.0) raw = 16.0;
    supplyMeasured = (1.0 - supplyAlpha) * supplyMeasured + supplyAlpha * raw;
}

/* Scale the command so the delivered force is supply-independent. */
float supplyCompensate(float u) {
    float ratio;
    ratio = supplyNominal / supplyMeasured;
    if (ratio < 0.8) ratio = 0.8;
    if (ratio > 1.3) ratio = 1.3;
    return u * ratio;
}

/* ---- watchdog statistics --------------------------------------- */

int wdChecks;
int wdStalls;
int wdRestarts;
int wdMaxStall;

void initWatchdogStats(void) {
    wdChecks = 0;
    wdStalls = 0;
    wdRestarts = 0;
    wdMaxStall = 0;
}

void noteWatchdogCheck(int stalled, int restarted) {
    wdChecks = wdChecks + 1;
    if (stalled == 1) {
        wdStalls = wdStalls + 1;
        if (missedHeartbeats > wdMaxStall) {
            wdMaxStall = missedHeartbeats;
        }
    }
    if (restarted == 1) {
        wdRestarts = wdRestarts + 1;
    }
}

void dumpWatchdogStats(void) {
    logInt("wd.checks", wdChecks);
    logInt("wd.stalls", wdStalls);
    logInt("wd.restarts", wdRestarts);
    logInt("wd.maxStall", wdMaxStall);
}

/* ---- main control step -------------------------------------- */

void controlStep(void) {
    float rawTrack;
    float rawAngle;
    float ytrack;
    float yangle;
    float safeU;
    float ref;
    float u;

    rawTrack = readTrackSensor();
    rawAngle = readAngleSensor();
    checkSensorFaults(rawTrack, rawAngle);

    ytrack = filterTrack(calibrateTrack(rawTrack));
    yangle = filterAngle(calibrateAngle(rawAngle));

    ref = referenceStep();
    observerUpdate(ytrack - ref, yangle, meanRecentControl());
    safeU = computeSafeControl() + frictionCompensation();
    safeU = clampf(safeU, 0.0 - voltLimit, voltLimit);

    u = decisionModule(safeU);

    if (faultLatch == 1) {
        u = 0.0;
    }
    u = shapeControl(u);
    u = supplyCompensate(u);
    u = clampf(u, 0.0 - voltLimit, voltLimit);
    checkActuatorFault(u);
    updateEnergy(u);
    /** SafeFlow Annotation assert(safe(u)) */
    sendActuator(u);
    recordControl(u);

    publishFeedback(ytrack, yangle);
    publishStatus(u, ytrack, yangle);
    coreSeq = coreSeq + 1;
}

int selftest(void) {
    float v;
    resetEstimator();
    xhat0 = 0.05;
    xhat2 = 0.02;
    v = lyapunov();
    if (v <= 0.0) return 0;
    if (computeSafeControl() > voltLimit) return 0;
    if (computeSafeControl() < 0.0 - voltLimit) return 0;
    resetEstimator();
    return 1;
}

int main() {
    int period;
    initGains();
    initFilters();
    initShaping();
    initSupply();
    initWatchdogStats();
    initReference();
    initEnergy();
    clearFaults();
    resetEstimator();
    initShm();
    if (selftest() == 0) {
        panicStop();
        return 1;
    }
    if (homeTrolley() == 0) {
        panicStop();
        return 1;
    }
    running = 1;
    while (1) {
        controlStep();
        watchdogCheck();
        pollUiCommands();
        logJitter();
        displayHandshake();
        updateSupply();
        if (logCount >= 100) {
            dumpDiagnostics();
            dumpWatchdogStats();
            logCount = 0;
        }
        period = selectPeriod();
        timerWait(period);
    }
    return 0;
}
"#;
