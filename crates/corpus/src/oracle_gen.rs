//! Seeded, annotation-bearing, multi-translation-unit program generator
//! for the differential oracle (`crates/oracle`).
//!
//! Every program is derived from a single `u64` seed in two steps:
//!
//! 1. [`shape_for_seed`] draws an [`OracleShape`] — region count, helper
//!    chain depth, monitor set, unit split, and which defect patterns to
//!    include — from a [`Gen`] (the workspace's seeded property-test rng);
//! 2. [`generate`] renders the shape to concrete C text, deterministically.
//!
//! Keeping the shape explicit (rather than generating text straight from
//! the rng) is what makes divergence *minimization* possible: the oracle's
//! minimizer shrinks a failing shape field by field via
//! [`shrink_candidates`] and re-renders, instead of trying to edit C text.
//!
//! [`generate_variant`] renders the same shape with one helper constant
//! changed — the "edited file" used to pre-populate a store so the oracle
//! can exercise dirty-region incremental re-analysis.

use safeflow_util::prop::Gen;

/// One monitoring function in a generated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleMonitor {
    /// Index of the region this monitor reads.
    pub region: usize,
    /// Whether the monitor carries `assume(core(...))` for its region.
    /// Unmonitored monitors produce warnings — and, through `main`'s
    /// accumulator, unsafe critical data.
    pub monitored: bool,
}

/// Shape of one generated oracle program. All fields are drawn from the
/// seed; the minimizer shrinks them individually.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleShape {
    /// Number of shared-memory regions (≥ 1).
    pub regions: usize,
    /// Depth of the shared helper call chain (≥ 1).
    pub depth: usize,
    /// Extra branches per helper (path-count pressure).
    pub branches: usize,
    /// The monitoring functions (≥ 1).
    pub monitors: Vec<OracleMonitor>,
    /// Whether `main` reads a region directly (an unmonitored read in the
    /// entry function).
    pub direct_read: bool,
    /// Whether `main` passes region-derived data to `kill` (the paper's
    /// implicit-critical-call pattern).
    pub kill_call: bool,
    /// Number of translation units (1–3): helpers and monitors move into
    /// `#include`d files as the count grows.
    pub units: usize,
    /// Whether the helper arithmetic and monitor clamps go through
    /// function-like macros (`HSCALE(x)`, `MLIM`) instead of literal
    /// expressions — same post-expansion program shape, but the optimized
    /// configs must agree on macro-heavy inputs too.
    pub fn_macros: bool,
    /// Whether `main` gains a config-conditional block (`#define CFG_MODE`
    /// + `#if`/`#elif`/`#else`) selecting an extra unmonitored region read
    ///   — conditional evaluation changes the analyzed program.
    pub config_macros: bool,
    /// Number of declared lattice labels (0 = default two-point policy).
    /// The first `labels` regions bind to `lab0..` via `channel(...)`
    /// annotations and each label gets a `declassifier(labN, trusted)` so
    /// the monitors' `assume(core(...))` scopes stay licensed. Reports
    /// switch to the v2 schema — every optimized configuration must agree
    /// on the labeled documents too.
    pub labels: usize,
    /// Whether monitored monitors over labeled regions use the
    /// `assume(declassify(..., trusted))` spelling instead of
    /// `assume(core(...))` — same semantics, different annotation path.
    pub declassify_ann: bool,
}

impl OracleShape {
    /// A deliberately tiny shape — the floor every [`shrink_candidates`]
    /// chain terminates at.
    pub fn minimal() -> OracleShape {
        OracleShape {
            regions: 1,
            depth: 1,
            branches: 0,
            monitors: vec![OracleMonitor { region: 0, monitored: true }],
            direct_read: false,
            kill_call: false,
            units: 1,
            fn_macros: false,
            config_macros: false,
            labels: 0,
            declassify_ann: false,
        }
    }
}

/// Draws the program shape for `seed`.
pub fn shape_for_seed(seed: u64) -> OracleShape {
    let mut g = Gen::new(seed ^ 0x0AC1_E5EE_D000);
    let regions = g.usize(1, 5);
    let depth = g.usize(1, 5);
    let branches = g.usize(0, 4);
    let monitors = (0..g.usize(1, 5))
        .map(|_| OracleMonitor { region: g.usize(0, regions), monitored: g.chance(0.7) })
        .collect();
    OracleShape {
        regions,
        depth,
        branches,
        monitors,
        direct_read: g.chance(0.4),
        kill_call: g.chance(0.4),
        units: g.usize(1, 4),
        // Drawn after every pre-existing field so old seeds keep their
        // historical region/monitor/unit shapes (checked-in repros and
        // minimized divergences stay reproducible).
        fn_macros: g.chance(0.5),
        config_macros: g.chance(0.5),
        // Policy fields drawn last, same reasoning.
        labels: if g.chance(0.35) { g.usize(1, 4) } else { 0 },
        declassify_ann: g.chance(0.5),
    }
}

/// File names used by the generated program, root first.
const ROOT: &str = "oracle_main.c";
const UTIL: &str = "oracle_util.c";
const MON: &str = "oracle_mon.c";

/// Renders `shape` to its translation units (`(name, text)`, root first).
pub fn generate(shape: &OracleShape) -> Vec<(String, String)> {
    render(shape, false)
}

/// Renders `shape` with one helper constant changed — same file set and
/// names, different content in the unit holding the helper chain. Checking
/// the variant first and the [`generate`] output second against one store
/// forces a dirty-region incremental re-analysis of the helpers and their
/// transitive callers.
pub fn generate_variant(shape: &OracleShape) -> Vec<(String, String)> {
    render(shape, true)
}

/// Convenience: shape + render in one call.
pub fn generate_for_seed(seed: u64) -> Vec<(String, String)> {
    generate(&shape_for_seed(seed))
}

fn render(shape: &OracleShape, variant: bool) -> Vec<(String, String)> {
    let regions = shape.regions.max(1);
    let depth = shape.depth.max(1);
    let units = shape.units.clamp(1, 3);
    // Labeled shapes bind the first `labeled` regions to declared labels.
    let labeled = shape.labels.min(3).min(regions);
    // The variant perturbs the helper chain's arithmetic only: one
    // constant differs, everything else is byte-identical.
    let mul = if variant { "1.046875" } else { "1.03125" };

    let mut helpers = String::new();
    if shape.fn_macros {
        // The variant's constant lives inside the macro body, so the
        // edited-unit contract (only the helper unit's text differs)
        // holds for macro-using shapes too.
        helpers.push_str(&format!("#define HSCALE(x) ((x) * {mul} + 0.5)\n\n"));
    }
    for d in (0..depth).rev() {
        helpers.push_str(&format!("float helper{d}(float x, int which) {{\n"));
        if shape.fn_macros {
            helpers.push_str("    float acc;\n    acc = HSCALE(x);\n");
        } else {
            helpers.push_str(&format!("    float acc;\n    acc = x * {mul} + 0.5;\n"));
        }
        for b in 0..shape.branches {
            helpers.push_str(&format!(
                "    if (which > {b}) {{ acc = acc + {b}.25; }} else {{ acc = acc - 0.125; }}\n"
            ));
        }
        if d + 1 < depth {
            helpers.push_str(&format!("    acc = acc + helper{}(acc, which + 1);\n", d + 1));
        } else {
            helpers.push_str("    acc = acc + reg0->v;\n");
        }
        helpers.push_str("    return acc;\n}\n\n");
    }

    let mut monitors = String::new();
    if shape.fn_macros {
        monitors.push_str("#define MLIM 5.0\n\n");
    }
    for (m, mon) in shape.monitors.iter().enumerate() {
        let r = mon.region.min(regions - 1);
        monitors.push_str(&format!("float monitor{m}(float fallback)\n"));
        if mon.monitored {
            if shape.declassify_ann && r < labeled {
                monitors.push_str(&format!(
                    "/** SafeFlow Annotation assume(declassify(reg{r}, 0, sizeof(Blk), trusted)) */\n"
                ));
            } else {
                monitors.push_str(&format!(
                    "/** SafeFlow Annotation assume(core(reg{r}, 0, sizeof(Blk))) */\n"
                ));
            }
        }
        monitors.push_str("{\n");
        monitors.push_str(&format!("    float v;\n    v = reg{r}->v;\n"));
        if shape.fn_macros {
            monitors.push_str("    if (v > MLIM) return fallback;\n");
            monitors.push_str("    if (v < 0.0 - MLIM) return fallback;\n");
        } else {
            monitors.push_str("    if (v > 5.0) return fallback;\n");
            monitors.push_str("    if (v < 0.0 - 5.0) return fallback;\n");
        }
        monitors.push_str(&format!("    return v + helper0(v, {m});\n"));
        monitors.push_str("}\n\n");
    }

    let mut root = String::new();
    root.push_str("/* oracle-generated core component */\n");
    if shape.config_macros {
        root.push_str(&format!("#define CFG_MODE {regions}\n"));
    }
    root.push_str("typedef struct Blk { float v; int seq; int flag; int pad; } Blk;\n");
    for r in 0..regions {
        root.push_str(&format!("Blk *reg{r};\n"));
    }
    root.push_str("int shmget(int key, int size, int flags);\n");
    root.push_str("void *shmat(int shmid, void *addr, int flags);\n");
    root.push_str("void sink(float v);\n");
    root.push_str("float source(void);\n");
    if shape.kill_call {
        root.push_str("void kill(int pid, int sig);\n");
    }
    root.push('\n');

    root.push_str("void initShm(void)\n/** SafeFlow Annotation shminit */\n{\n");
    root.push_str("    char *cursor;\n    int shmid;\n");
    root.push_str(&format!("    shmid = shmget(77, {regions} * sizeof(Blk), 0);\n"));
    root.push_str("    cursor = (char *) shmat(shmid, 0, 0);\n");
    for r in 0..regions {
        root.push_str(&format!("    reg{r} = (Blk *) cursor;\n"));
        root.push_str("    cursor = cursor + sizeof(Blk);\n");
    }
    root.push_str("    /** SafeFlow Annotation\n");
    for l in 0..labeled {
        root.push_str(&format!("        assume(label(lab{l}))\n"));
    }
    for l in 0..labeled {
        root.push_str(&format!("        assume(declassifier(lab{l}, trusted))\n"));
    }
    for r in 0..regions {
        if r < labeled {
            // A channel endpoint is a labeled non-core region in one fact.
            root.push_str(&format!("        assume(channel(reg{r}, sizeof(Blk), lab{r}))\n"));
        } else {
            root.push_str(&format!("        assume(shmvar(reg{r}, sizeof(Blk)))\n"));
        }
    }
    for r in labeled..regions {
        root.push_str(&format!("        assume(noncore(reg{r}))\n"));
    }
    root.push_str("    */\n}\n\n");

    let mut files: Vec<(String, String)> = Vec::new();
    match units {
        1 => {
            root.push_str(&helpers);
            root.push_str(&monitors);
        }
        2 => {
            root.push_str(&format!("#include \"{UTIL}\"\n\n"));
            let mut util = helpers;
            util.push_str(&monitors);
            files.push((UTIL.to_string(), util));
        }
        _ => {
            root.push_str(&format!("#include \"{UTIL}\"\n"));
            root.push_str(&format!("#include \"{MON}\"\n\n"));
            files.push((UTIL.to_string(), helpers));
            files.push((MON.to_string(), monitors));
        }
    }

    root.push_str("int main() {\n    float u;\n    float s;\n");
    if shape.kill_call {
        root.push_str("    int pid;\n");
    }
    root.push_str("    initShm();\n    s = source();\n    u = 0.0;\n");
    for m in 0..shape.monitors.len() {
        root.push_str(&format!("    u = u + monitor{m}(s);\n"));
    }
    if shape.direct_read {
        root.push_str(&format!("    u = u + reg{}->v;\n", regions - 1));
    }
    if shape.kill_call {
        root.push_str(&format!("    pid = reg{}->seq;\n", regions - 1));
        root.push_str("    kill(pid, 9);\n");
    }
    if shape.config_macros {
        // The conditional selects real program text: on multi-region
        // shapes the taken branch adds an unmonitored read, so the
        // evaluator's verdict is visible in every config's report.
        root.push_str("#if CFG_MODE >= 2 && !defined(CFG_MINIMAL)\n");
        root.push_str("    u = u + reg0->v;\n");
        root.push_str("#elif CFG_MODE == 1\n");
        root.push_str("    u = u * 1.0;\n");
        root.push_str("#else\n");
        root.push_str("    u = u + 0.0;\n");
        root.push_str("#endif\n");
    }
    root.push_str("    /** SafeFlow Annotation assert(safe(u)) */\n");
    root.push_str("    sink(u);\n    return 0;\n}\n");

    files.insert(0, (ROOT.to_string(), root));
    files
}

/// One-step-smaller shapes, in the deterministic order the minimizer tries
/// them: structural shrinks (fewer units, shallower chain, fewer monitors,
/// fewer regions, fewer branches) before feature removals.
pub fn shrink_candidates(shape: &OracleShape) -> Vec<OracleShape> {
    let mut out = Vec::new();
    if shape.units > 1 {
        out.push(OracleShape { units: shape.units - 1, ..shape.clone() });
    }
    if shape.depth > 1 {
        out.push(OracleShape { depth: shape.depth - 1, ..shape.clone() });
    }
    if shape.monitors.len() > 1 {
        let mut s = shape.clone();
        s.monitors.pop();
        out.push(s);
    }
    if shape.regions > 1 {
        let mut s = shape.clone();
        s.regions -= 1;
        for m in &mut s.monitors {
            m.region = m.region.min(s.regions - 1);
        }
        out.push(s);
    }
    if shape.branches > 0 {
        out.push(OracleShape { branches: shape.branches - 1, ..shape.clone() });
    }
    if shape.direct_read {
        out.push(OracleShape { direct_read: false, ..shape.clone() });
    }
    if shape.kill_call {
        out.push(OracleShape { kill_call: false, ..shape.clone() });
    }
    if shape.fn_macros {
        out.push(OracleShape { fn_macros: false, ..shape.clone() });
    }
    if shape.config_macros {
        out.push(OracleShape { config_macros: false, ..shape.clone() });
    }
    if shape.labels > 0 {
        out.push(OracleShape { labels: shape.labels - 1, ..shape.clone() });
    }
    if shape.declassify_ann {
        out.push(OracleShape { declassify_ann: false, ..shape.clone() });
    }
    if let Some(pos) = shape.monitors.iter().position(|m| !m.monitored) {
        let mut s = shape.clone();
        s.monitors[pos].monitored = true;
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_programs_are_deterministic() {
        for seed in 0..64 {
            assert_eq!(shape_for_seed(seed), shape_for_seed(seed));
            assert_eq!(generate_for_seed(seed), generate_for_seed(seed));
        }
    }

    #[test]
    fn seeds_vary_the_shape() {
        let shapes: Vec<OracleShape> = (0..32).map(shape_for_seed).collect();
        assert!(shapes.iter().any(|s| s.units > 1), "some programs must be multi-TU");
        assert!(shapes.iter().any(|s| s.units == 1));
        assert!(shapes.iter().any(|s| s.kill_call));
        assert!(shapes.iter().any(|s| s.monitors.iter().any(|m| !m.monitored)));
        assert!(shapes.iter().any(|s| s.fn_macros), "some shapes must use function-like macros");
        assert!(shapes.iter().any(|s| s.config_macros), "some shapes must use config conditionals");
        assert!(shapes.iter().any(|s| !s.fn_macros && !s.config_macros));
        assert!(shapes.iter().any(|s| s.labels > 0), "some shapes must declare label policies");
        assert!(shapes.iter().any(|s| s.labels == 0), "some shapes must stay two-point");
    }

    #[test]
    fn labeled_shapes_render_policy_annotations() {
        let mut s = OracleShape::minimal();
        s.labels = 2;
        s.regions = 3;
        s.declassify_ann = true;
        let all: String = generate(&s).iter().map(|(_, t)| t.as_str()).collect();
        assert!(all.contains("assume(label(lab0))"));
        assert!(all.contains("assume(label(lab1))"));
        assert!(all.contains("assume(declassifier(lab0, trusted))"));
        assert!(all.contains("assume(channel(reg0, sizeof(Blk), lab0))"));
        assert!(all.contains("assume(channel(reg1, sizeof(Blk), lab1))"));
        // The unlabeled region keeps the historical shmvar/noncore pair.
        assert!(all.contains("assume(shmvar(reg2, sizeof(Blk)))"));
        assert!(all.contains("assume(noncore(reg2))"));
        // Monitored monitor over the labeled region 0 uses the declassify
        // spelling when asked to.
        assert!(all.contains("assume(declassify(reg0, 0, sizeof(Blk), trusted))"));
        // The plain shape renders no policy text at all.
        let plain: String =
            generate(&OracleShape::minimal()).iter().map(|(_, t)| t.as_str()).collect();
        assert!(!plain.contains("label"));
        assert!(!plain.contains("channel"));
    }

    #[test]
    fn macro_shapes_render_macro_text() {
        let mut s = OracleShape::minimal();
        s.fn_macros = true;
        s.config_macros = true;
        s.regions = 2;
        let files = generate(&s);
        let all: String = files.iter().map(|(_, t)| t.as_str()).collect();
        assert!(all.contains("#define HSCALE(x)"));
        assert!(all.contains("HSCALE(x)"));
        assert!(all.contains("#define MLIM"));
        assert!(all.contains("#define CFG_MODE 2"));
        assert!(all.contains("#if CFG_MODE >= 2"));
        // The plain shape renders none of it.
        let plain: String =
            generate(&OracleShape::minimal()).iter().map(|(_, t)| t.as_str()).collect();
        assert!(!plain.contains("#define"));
    }

    #[test]
    fn unit_count_controls_file_set() {
        let mut s = OracleShape::minimal();
        assert_eq!(generate(&s).len(), 1);
        s.units = 2;
        let files = generate(&s);
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].0, "oracle_main.c");
        assert!(files[0].1.contains("#include \"oracle_util.c\""));
        s.units = 3;
        assert_eq!(generate(&s).len(), 3);
    }

    #[test]
    fn variant_differs_only_in_the_helper_unit() {
        let mut s = shape_for_seed(7);
        s.units = 3;
        // Macro shapes keep the contract too: the variant constant lives
        // inside HSCALE's body, which is defined in the helper unit.
        s.fn_macros = true;
        let a = generate(&s);
        let b = generate_variant(&s);
        assert_eq!(a.len(), b.len());
        for ((an, at), (bn, bt)) in a.iter().zip(&b) {
            assert_eq!(an, bn);
            if an == "oracle_util.c" {
                assert_ne!(at, bt, "helper unit must differ");
            } else {
                assert_eq!(at, bt, "{an} must be identical");
            }
        }
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller_and_terminate() {
        let mut shape = shape_for_seed(3);
        let mut steps = 0;
        loop {
            let cands = shrink_candidates(&shape);
            match cands.into_iter().next() {
                Some(next) => {
                    shape = next;
                    steps += 1;
                    assert!(steps < 100, "shrinking must terminate");
                }
                None => break,
            }
        }
        assert_eq!(shape, OracleShape::minimal());
    }
}
