//! Monorepo-scale workload generator: hundreds of translation units,
//! 100k+ LOC, deep shared-header call graphs, and config-macro
//! conditionals — the standing stress corpus for the sharding roadmap
//! item and the `bench-frontend` monorepo column.
//!
//! The layout imitates generated embedded control code organized as a
//! monorepo:
//!
//! ```text
//! main.c            — root TU: includes everything, initShm, main
//! config.h          — include-guarded config macros (object + function-like)
//! shm.h             — include-guarded Blk typedef, region globals, externs
//! lib.c             — shared helper chain every package bottoms out in
//! pkg{p}/unit{u}.c  — staged helper chain + monitored region reads
//! pkg{p}/api.c      — package facade fanning into its units
//! ```
//!
//! Every unit includes `config.h`/`shm.h` itself (guards make the repeats
//! no-ops), uses the function-like `CFG_SCALE`/`CFG_BIAS` macros in its
//! arithmetic, and wraps some branches in `#if CFG_FEATURE_n` / `#else`
//! conditionals, so the preprocessor sees the macro and conditional
//! traffic real headers generate. Package `p` calls package `p-1`'s API,
//! and every deepest stage calls the shared `lib` chain, so the call
//! graph is both deep (stages × packages + lib depth) and shared.
//!
//! Generation is a pure function of [`MonorepoParams`] — byte-identical
//! across runs and machines, no rng — so bench artifacts are comparable
//! and `--jobs` byte-identity tests can parse the same corpus twice.

/// Shape of a generated monorepo.
#[derive(Debug, Clone, Copy)]
pub struct MonorepoParams {
    /// Number of packages (each calls the previous package's API).
    pub packages: usize,
    /// Translation units per package.
    pub units_per_package: usize,
    /// Staged helper functions per unit (the per-unit call-chain depth).
    pub stages: usize,
    /// Branch statements per stage (path-count + LOC pressure).
    pub branches: usize,
    /// Shared-memory regions declared in `shm.h` (units cycle through them).
    pub regions: usize,
    /// `CFG_FEATURE_n` config macros in `config.h` (conditionals cycle
    /// through them; even-numbered features are on, odd off).
    pub configs: usize,
    /// Depth of the shared `lib.c` helper chain.
    pub lib_depth: usize,
}

impl MonorepoParams {
    /// The bench preset: ≥100 TUs and ≥100k LOC (asserted by tests).
    pub fn bench() -> MonorepoParams {
        MonorepoParams {
            packages: 12,
            units_per_package: 11,
            stages: 18,
            branches: 36,
            regions: 16,
            configs: 8,
            lib_depth: 8,
        }
    }

    /// A small preset for unit tests: same structure, seconds-free scale.
    pub fn small() -> MonorepoParams {
        MonorepoParams {
            packages: 3,
            units_per_package: 2,
            stages: 3,
            branches: 2,
            regions: 4,
            configs: 3,
            lib_depth: 2,
        }
    }
}

impl Default for MonorepoParams {
    fn default() -> Self {
        MonorepoParams::bench()
    }
}

/// Renders the monorepo as `(file name, contents)` pairs, root (`main.c`)
/// first — the same contract as `oracle_gen::generate`, ready to load into
/// a `VirtualFs`.
pub fn generate_monorepo(p: MonorepoParams) -> Vec<(String, String)> {
    let packages = p.packages.max(1);
    let units = p.units_per_package.max(1);
    let stages = p.stages.max(1);
    let regions = p.regions.max(1);
    let configs = p.configs.max(1);
    let lib_depth = p.lib_depth.max(1);

    let mut files: Vec<(String, String)> = Vec::new();

    // --- config.h: the config-macro surface every unit includes. ---
    let mut cfg = String::new();
    cfg.push_str("#ifndef CONFIG_H\n#define CONFIG_H\n");
    cfg.push_str(&format!("#define CFG_PACKAGES {packages}\n"));
    cfg.push_str(&format!("#define CFG_REGIONS {regions}\n"));
    cfg.push_str("#define CFG_SCALE(x) ((x) * 1.03125 + 0.25)\n");
    cfg.push_str("#define CFG_BIAS(b, x) ((x) + (b) * 0.125)\n");
    for i in 0..configs {
        cfg.push_str(&format!("#define CFG_FEATURE_{i} {}\n", 1 - (i % 2)));
    }
    cfg.push_str("#endif\n");
    files.push(("config.h".to_string(), cfg));

    // --- shm.h: shared types + region globals, include-guarded so the
    // hundred-odd includes collapse to one definition. ---
    let mut shm = String::new();
    shm.push_str("#ifndef SHM_H\n#define SHM_H\n");
    shm.push_str("typedef struct Blk { float v; int seq; int flag; int pad; } Blk;\n");
    for r in 0..regions {
        shm.push_str(&format!("Blk *reg{r};\n"));
    }
    shm.push_str("int shmget(int key, int size, int flags);\n");
    shm.push_str("void *shmat(int shmid, void *addr, int flags);\n");
    shm.push_str("void sink(float v);\n");
    shm.push_str("float source(void);\n");
    shm.push_str("#endif\n");
    files.push(("shm.h".to_string(), shm));

    // --- lib.c: the shared chain every package bottoms out in. Its head
    // carries the region-0 monitor so the deep reads stay covered. ---
    let mut lib = String::new();
    lib.push_str("#include \"config.h\"\n#include \"shm.h\"\n\n");
    for d in (0..lib_depth).rev() {
        lib.push_str(&format!("float lib_h{d}(float x, int which)\n"));
        if d == 0 {
            lib.push_str("/** SafeFlow Annotation assume(core(reg0, 0, sizeof(Blk))) */\n");
        }
        lib.push_str("{\n    float acc;\n");
        lib.push_str("    acc = CFG_SCALE(x);\n");
        for b in 0..p.branches.min(4) {
            lib.push_str(&format!(
                "    if (which > {b}) {{ acc = CFG_BIAS({b}, acc); }} else {{ acc = acc - 0.0625; }}\n"
            ));
        }
        if d + 1 < lib_depth {
            lib.push_str(&format!("    acc = acc + lib_h{}(acc, which + 1);\n", d + 1));
        } else {
            lib.push_str("#if CFG_FEATURE_0\n    acc = acc + reg0->v;\n#else\n    acc = acc + reg0->seq;\n#endif\n");
        }
        lib.push_str("    return acc;\n}\n\n");
    }
    files.push(("lib.c".to_string(), lib));

    // --- Packages. ---
    for pk in 0..packages {
        for u in 0..units {
            let r = (pk * units + u) % regions;
            let mut unit = String::new();
            unit.push_str("#include \"config.h\"\n#include \"shm.h\"\n\n");
            for s in (0..stages).rev() {
                unit.push_str(&format!("float p{pk}u{u}_s{s}(float x, int which)\n"));
                if s == 0 {
                    // The chain head monitors this unit's region so every
                    // deeper read is covered — keeps the report bounded as
                    // the corpus scales, like `generate_wide`.
                    unit.push_str(&format!(
                        "/** SafeFlow Annotation assume(core(reg{r}, 0, sizeof(Blk))) */\n"
                    ));
                }
                unit.push_str("{\n    float acc;\n");
                unit.push_str(&format!("    acc = CFG_SCALE(x) + {s}.125;\n"));
                for b in 0..p.branches {
                    // A slice of the branches sits behind config
                    // conditionals, cycling through the feature flags.
                    if b % 5 == 0 {
                        let f = (pk + u + b) % configs;
                        unit.push_str(&format!("#if CFG_FEATURE_{f}\n"));
                        unit.push_str(&format!(
                            "    if (which > {b}) {{ acc = CFG_BIAS({b}, acc); }}\n"
                        ));
                        unit.push_str("#else\n");
                        unit.push_str(&format!("    if (which > {b}) {{ acc = acc - {b}.5; }}\n"));
                        unit.push_str("#endif\n");
                    } else {
                        unit.push_str(&format!(
                            "    if (which > {b}) {{ acc = CFG_BIAS({b}, acc); }} else {{ acc = acc - 0.25; }}\n"
                        ));
                    }
                }
                unit.push_str(&format!("    acc = acc + reg{r}->v;\n"));
                if s + 1 < stages {
                    unit.push_str(&format!(
                        "    acc = acc + p{pk}u{u}_s{}(acc, which + 1);\n",
                        s + 1
                    ));
                } else {
                    // Deepest stage: into the shared lib chain, and into
                    // the previous package's facade (cross-package depth).
                    unit.push_str("    acc = acc + lib_h0(acc, which);\n");
                    if pk > 0 && u == 0 {
                        unit.push_str(&format!("    acc = acc + pkg{}_api(acc);\n", pk - 1));
                    }
                }
                unit.push_str("    return acc;\n}\n\n");
            }
            files.push((format!("pkg{pk}/unit{u}.c"), unit));
        }
        let mut api = String::new();
        api.push_str("#include \"config.h\"\n#include \"shm.h\"\n\n");
        api.push_str(&format!("float pkg{pk}_api(float x)\n{{\n    float u;\n    u = 0.0;\n"));
        for u in 0..units {
            api.push_str(&format!("    u = u + p{pk}u{u}_s0(x, {u});\n"));
        }
        api.push_str("    return u;\n}\n");
        files.push((format!("pkg{pk}/api.c"), api));
    }

    // --- main.c: root TU splicing the whole tree in definition order. ---
    let mut root = String::new();
    root.push_str("/* monorepo corpus root (generated) */\n");
    root.push_str("#include \"config.h\"\n#include \"shm.h\"\n\n");
    root.push_str("void initShm(void)\n/** SafeFlow Annotation shminit */\n{\n");
    root.push_str("    char *cursor;\n    int shmid;\n");
    root.push_str("    shmid = shmget(77, CFG_REGIONS * sizeof(Blk), 0);\n");
    root.push_str("    cursor = (char *) shmat(shmid, 0, 0);\n");
    for r in 0..regions {
        root.push_str(&format!("    reg{r} = (Blk *) cursor;\n"));
        root.push_str("    cursor = cursor + sizeof(Blk);\n");
    }
    root.push_str("    /** SafeFlow Annotation\n");
    for r in 0..regions {
        root.push_str(&format!("        assume(shmvar(reg{r}, sizeof(Blk)))\n"));
    }
    for r in 0..regions {
        root.push_str(&format!("        assume(noncore(reg{r}))\n"));
    }
    root.push_str("    */\n}\n\n");
    root.push_str("#include \"lib.c\"\n");
    // Units must precede their package's api (the facade calls them);
    // package p-1's api must precede package p's units (cross-pkg call).
    for pk in 0..packages {
        for u in 0..units {
            root.push_str(&format!("#include \"pkg{pk}/unit{u}.c\"\n"));
        }
        root.push_str(&format!("#include \"pkg{pk}/api.c\"\n"));
    }
    root.push('\n');
    root.push_str("int main() {\n    float u;\n    float s;\n    initShm();\n    s = source();\n    u = 0.0;\n");
    root.push_str(&format!("    u = u + pkg{}_api(s);\n", packages - 1));
    root.push_str("#if CFG_PACKAGES > 1 && CFG_FEATURE_0\n");
    root.push_str("    u = u + pkg0_api(s);\n");
    root.push_str("#endif\n");
    root.push_str("    /** SafeFlow Annotation assert(safe(u)) */\n");
    root.push_str("    sink(u);\n    return 0;\n}\n");
    files.insert(0, ("main.c".to_string(), root));
    files
}

/// Total corpus LOC, by the workspace LOC convention ([`crate::count_loc`]).
pub fn total_loc(files: &[(String, String)]) -> usize {
    files.iter().map(|(_, t)| crate::count_loc(t)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_root_first() {
        let p = MonorepoParams::small();
        let a = generate_monorepo(p);
        let b = generate_monorepo(p);
        assert_eq!(a, b);
        assert_eq!(a[0].0, "main.c");
    }

    #[test]
    fn small_preset_structure() {
        let files = generate_monorepo(MonorepoParams::small());
        let names: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"config.h"));
        assert!(names.contains(&"shm.h"));
        assert!(names.contains(&"lib.c"));
        assert!(names.contains(&"pkg2/unit1.c"));
        assert!(names.contains(&"pkg2/api.c"));
        // Config macros are actually used in the units.
        let unit = &files.iter().find(|(n, _)| n == "pkg0/unit0.c").unwrap().1;
        assert!(unit.contains("CFG_SCALE("));
        assert!(unit.contains("#if CFG_FEATURE_"));
    }

    #[test]
    fn bench_preset_hits_monorepo_scale() {
        let files = generate_monorepo(MonorepoParams::bench());
        let tus = files.iter().filter(|(n, _)| n.ends_with(".c")).count();
        assert!(tus >= 100, "need >=100 TUs, got {tus}");
        let loc = total_loc(&files);
        assert!(loc >= 100_000, "need >=100k LOC, got {loc}");
    }
}
