//! System 2: the **generic Simplex implementation** (Table 1, row 2).
//!
//! Re-creation of the configurable Simplex runtime for simple plants: the
//! core controller is parameterized by a configuration block (plant id,
//! sample rate, controller topology) that — in the original lab system —
//! lives in shared memory written by the deployment tooling. Two §4
//! defects are seeded:
//!
//! * **rigged feedback** — the core publishes sensor values into shared
//!   memory for the non-core controller, then *reads them back* when
//!   clamping the output ("this potential value dependency on non-core
//!   values would be fatal, if the non-core component replaced the sensor
//!   feedback with a hand-crafted value that would 'rig' the
//!   recoverability check");
//! * **kill-pid** — the watchdog kills the pid read from non-core memory.
//!
//! The six Table 1 false positives all arise from control dependence on
//! the unmonitored configuration block (§3.4.1's worked example: "the
//! configuration of the system is present in shared memory ... the
//! critical data is computed correctly in either path of execution, but
//! the control dependence ... reports an erroneous dependency").

use crate::{Defect, PaperRow, System};

/// Returns the Generic Simplex system description.
pub fn system() -> System {
    System {
        name: "Generic Simplex",
        core_file: "generic_core.c",
        core_source: CORE,
        // The paper reports zero source changes for this system — it was
        // written with the monitor already separated; only annotations
        // were added.
        original_source: crate::strip_annotations(CORE),
        paper: PaperRow {
            loc_total: 8057,
            loc_core: 1020,
            source_changes: 0,
            annotation_lines: 22,
            errors: 2,
            warnings: 7,
            false_positives: 6,
        },
        defects: vec![
            Defect {
                id: "gs-rigged-feedback",
                critical: "uOut",
                description: "output clamp re-reads the published sensor feedback from shared \
                              memory; a non-core writer can rig the recoverability limit",
            },
            Defect {
                id: "gs-kill-pid",
                critical: "kill:arg0",
                description: "watchdog kills the pid read from unmonitored non-core shared memory",
            },
        ],
        noncore_seed: 0x6702,
    }
}

/// Annotated core component source.
pub const CORE: &str = r#"
/* ============================================================
 * Generic Simplex - core controller
 *
 * A configurable Simplex runtime for simple (up to 4-state)
 * plants. The plant model, gain set, and controller topology are
 * selected by a configuration block; the complex (non-core)
 * controller proposes commands through shared memory and the
 * verified safety controller takes over whenever the proposal
 * fails the Lyapunov recoverability check.
 * ============================================================ */

enum {
    NSTATE        = 4,
    NOUT          = 2,
    HIST_N        = 64,
    PLANT_CART    = 0,
    PLANT_TANK    = 1,
    PLANT_ARM     = 2,
    MODE_SAFE     = 0,
    MODE_COMPLEX  = 1,
    SIG_TERM      = 15,
    CFG_SLOW_HZ   = 50,
    CFG_FAST_HZ   = 200,
    SHM_KEY       = 7340
};

/* ---- shared memory layout ---------------------------------- */

typedef struct PlantConfig {
    int plantId;
    int sampleRateHz;
    int usesComplexCtrl;
    int strictWatchdog;
    int gainSetSel;
    int pad0;
} PlantConfig;

typedef struct SensorBlock {
    float y0;
    float y1;
    float y2;
    float y3;
    int   seq;
    int   consumerAck;
} SensorBlock;

typedef struct NCCommand {
    float u0;
    float u1;
    int   seq;
    int   valid;
    int   heartbeat;
    int   clientPid;
    int   computeTimeUs;
    int   pad0;
} NCCommand;

typedef struct TuneBlock {
    float proposedKp;
    float proposedKd;
    int   proposedValid;
    int   pad0;
} TuneBlock;

typedef struct CoreStatus {
    float u0;
    float u1;
    float lyap;
    int   mode;
    int   seq;
    int   accepted;
    int   rejected;
    int   pad0;
} CoreStatus;

typedef struct PerfBlock {
    int loopTimeUs;
    int maxLoopTimeUs;
    int overruns;
    int pad0;
} PerfBlock;

typedef struct HistBlock {
    float u[16];
    int head;
    int pad0;
} HistBlock;

PlantConfig *cfgShm;
SensorBlock *sensShm;
NCCommand   *ncShm;
TuneBlock   *tuneShm;
CoreStatus  *statShm;
PerfBlock   *perfShm;
HistBlock   *histShm;

/* ---- external services -------------------------------------- */

int   shmget(int key, int size, int flags);
void *shmat(int shmid, void *addr, int flags);
float readPlantSensor(int channel);
void  sendActuatorChan(int channel, float value);
int   kill(int pid, int sig);
void  logInt(char *tag, int value);
void  logFloat(char *tag, float value);
void  timerWait(int ticks);
int   getTicks(void);
void  panicStop(void);

/* ---- controller state ---------------------------------------- */

float xhat[NSTATE];
float xref[NSTATE];

/* Per-plant LQR gain tables. */
float gainCart[NSTATE];
float gainTank[NSTATE];
float gainArm[NSTATE];

/* Observer matrices for the three supported plants. */
float phiCart[NSTATE][NSTATE];
float phiTank[NSTATE][NSTATE];
float phiArm[NSTATE][NSTATE];
float ell[NSTATE][NOUT];

/* Lyapunov P matrices per plant (upper triangle, flattened). */
float lyapCart[10];
float lyapTank[10];
float lyapArm[10];

float activeGain[NSTATE];
float activePhi[NSTATE][NSTATE];
float activeLyap[10];

float uLimit0;
float uLimit1;
float stateLimit[NSTATE];
float envelopeLimit;
float baseClampLimit;

float histU0[HIST_N];
float histU1[HIST_N];
int   histHead;
int   histCount;

int coreSeq;
int lastNcSeq;
int lastHb;
int missedHeartbeats;
int hbLimitTicks;
int accepted;
int rejected;
int plantKind;
int periodTicks;
int modeCode;
int chanMap0;
int rampRemaining;
int tuneCooldown;
int kpSel;

/* ---- shared memory initialization ----------------------------- */

void initShm(void)
/** SafeFlow Annotation shminit */
{
    void *base;
    char *cursor;
    int   shmid;
    int   total;

    total = sizeof(PlantConfig) + sizeof(SensorBlock) + sizeof(NCCommand)
          + sizeof(TuneBlock) + sizeof(CoreStatus)
          + sizeof(PerfBlock) + sizeof(HistBlock);
    shmid  = shmget(SHM_KEY, total, 0);
    base   = shmat(shmid, 0, 0);
    cursor = (char *) base;

    cfgShm  = (PlantConfig *) cursor;
    cursor  = cursor + sizeof(PlantConfig);
    sensShm = (SensorBlock *) cursor;
    cursor  = cursor + sizeof(SensorBlock);
    ncShm   = (NCCommand *) cursor;
    cursor  = cursor + sizeof(NCCommand);
    tuneShm = (TuneBlock *) cursor;
    cursor  = cursor + sizeof(TuneBlock);
    statShm = (CoreStatus *) cursor;
    cursor  = cursor + sizeof(CoreStatus);
    perfShm = (PerfBlock *) cursor;
    cursor  = cursor + sizeof(PerfBlock);
    histShm = (HistBlock *) cursor;

    /** SafeFlow Annotation
        assume(shmvar(cfgShm, sizeof(PlantConfig)))
        assume(shmvar(sensShm, sizeof(SensorBlock)))
        assume(shmvar(ncShm, sizeof(NCCommand)))
        assume(shmvar(tuneShm, sizeof(TuneBlock)))
        assume(shmvar(statShm, sizeof(CoreStatus)))
        assume(shmvar(perfShm, sizeof(PerfBlock)))
        assume(shmvar(histShm, sizeof(HistBlock)))
        assume(noncore(cfgShm))
        assume(noncore(sensShm))
        assume(noncore(ncShm))
        assume(noncore(tuneShm))
    */
}

/* ---- numerics -------------------------------------------------- */

float clampf(float v, float lo, float hi) {
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
}

float absf(float v) {
    if (v < 0.0) return 0.0 - v;
    return v;
}

float minf(float a, float b) {
    if (a < b) return a;
    return b;
}

float maxf(float a, float b) {
    if (a > b) return a;
    return b;
}

/* ---- gain and model tables -------------------------------------- */

void initCartModel(void) {
    gainCart[0] = 2.9441;
    gainCart[1] = 3.8122;
    gainCart[2] = 31.0247;
    gainCart[3] = 5.4410;

    phiCart[0][0] = 0.9991; phiCart[0][1] = 0.0098;
    phiCart[0][2] = 0.0005; phiCart[0][3] = 0.0000;
    phiCart[1][0] = 0.0488; phiCart[1][1] = 0.9867;
    phiCart[1][2] = 0.1104; phiCart[1][3] = 0.0005;
    phiCart[2][0] = 0.0002; phiCart[2][1] = 0.0000;
    phiCart[2][2] = 0.9988; phiCart[2][3] = 0.0099;
    phiCart[3][0] = 0.0390; phiCart[3][1] = 0.0002;
    phiCart[3][2] = 0.2087; phiCart[3][3] = 0.9871;

    lyapCart[0] = 11.82; lyapCart[1] = 2.87; lyapCart[2] = 9.14;
    lyapCart[3] = 1.39;  lyapCart[4] = 2.04; lyapCart[5] = 3.48;
    lyapCart[6] = 0.70;  lyapCart[7] = 13.6; lyapCart[8] = 2.39;
    lyapCart[9] = 1.25;
}

void initTankModel(void) {
    gainTank[0] = 1.2210;
    gainTank[1] = 0.8471;
    gainTank[2] = 0.0000;
    gainTank[3] = 0.0000;

    phiTank[0][0] = 0.9876; phiTank[0][1] = 0.0000;
    phiTank[0][2] = 0.0000; phiTank[0][3] = 0.0000;
    phiTank[1][0] = 0.0122; phiTank[1][1] = 0.9904;
    phiTank[1][2] = 0.0000; phiTank[1][3] = 0.0000;
    phiTank[2][0] = 0.0000; phiTank[2][1] = 0.0000;
    phiTank[2][2] = 1.0000; phiTank[2][3] = 0.0000;
    phiTank[3][0] = 0.0000; phiTank[3][1] = 0.0000;
    phiTank[3][2] = 0.0000; phiTank[3][3] = 1.0000;

    lyapTank[0] = 4.31; lyapTank[1] = 0.88; lyapTank[2] = 0.00;
    lyapTank[3] = 0.00; lyapTank[4] = 1.93; lyapTank[5] = 0.00;
    lyapTank[6] = 0.00; lyapTank[7] = 0.10; lyapTank[8] = 0.00;
    lyapTank[9] = 0.10;
}

void initArmModel(void) {
    gainArm[0] = 5.0912;
    gainArm[1] = 1.7704;
    gainArm[2] = 12.3321;
    gainArm[3] = 2.0933;

    phiArm[0][0] = 0.9969; phiArm[0][1] = 0.0097;
    phiArm[0][2] = 0.0011; phiArm[0][3] = 0.0001;
    phiArm[1][0] = 0.0821; phiArm[1][1] = 0.9755;
    phiArm[1][2] = 0.1913; phiArm[1][3] = 0.0011;
    phiArm[2][0] = 0.0004; phiArm[2][1] = 0.0000;
    phiArm[2][2] = 0.9981; phiArm[2][3] = 0.0098;
    phiArm[3][0] = 0.0688; phiArm[3][1] = 0.0004;
    phiArm[3][2] = 0.3413; phiArm[3][3] = 0.9792;

    lyapArm[0] = 18.90; lyapArm[1] = 4.22; lyapArm[2] = 13.7;
    lyapArm[3] = 2.05;  lyapArm[4] = 3.11; lyapArm[5] = 5.02;
    lyapArm[6] = 1.04;  lyapArm[7] = 19.8; lyapArm[8] = 3.33;
    lyapArm[9] = 1.77;
}

void initObserverGains(void) {
    ell[0][0] = 0.3291; ell[0][1] = 0.0020;
    ell[1][0] = 0.9855; ell[1][1] = 0.0419;
    ell[2][0] = 0.0017; ell[2][1] = 0.3702;
    ell[3][0] = 0.0348; ell[3][1] = 1.1034;
}

void selectModel(int kind) {
    int i;
    int j;
    for (i = 0; i < NSTATE; i++) {
        if (kind == PLANT_TANK) {
            activeGain[i] = gainTank[i];
        } else if (kind == PLANT_ARM) {
            activeGain[i] = gainArm[i];
        } else {
            activeGain[i] = gainCart[i];
        }
        for (j = 0; j < NSTATE; j++) {
            if (kind == PLANT_TANK) {
                activePhi[i][j] = phiTank[i][j];
            } else if (kind == PLANT_ARM) {
                activePhi[i][j] = phiArm[i][j];
            } else {
                activePhi[i][j] = phiCart[i][j];
            }
        }
    }
    for (i = 0; i < 10; i++) {
        if (kind == PLANT_TANK) {
            activeLyap[i] = lyapTank[i];
        } else if (kind == PLANT_ARM) {
            activeLyap[i] = lyapArm[i];
        } else {
            activeLyap[i] = lyapCart[i];
        }
    }
}

void initLimits(void) {
    int i;
    uLimit0 = 4.95;
    uLimit1 = 4.95;
    envelopeLimit = 52.0;
    baseClampLimit = 4.5;
    for (i = 0; i < NSTATE; i++) {
        stateLimit[i] = 1.5;
        xref[i] = 0.0;
        xhat[i] = 0.0;
    }
}

/* ---- estimation -------------------------------------------------- */

void observerUpdate(float y0, float y1, float u) {
    float nxt[NSTATE];
    float r0;
    float r1;
    int i;
    int j;

    r0 = y0 - xhat[0];
    r1 = y1 - xhat[2];

    for (i = 0; i < NSTATE; i++) {
        nxt[i] = 0.0;
        for (j = 0; j < NSTATE; j++) {
            nxt[i] = nxt[i] + activePhi[i][j] * xhat[j];
        }
    }
    nxt[1] = nxt[1] + 0.0095 * u;
    nxt[3] = nxt[3] + 0.0199 * u;

    for (i = 0; i < NSTATE; i++) {
        xhat[i] = nxt[i] + ell[i][0] * r0 + ell[i][1] * r1;
    }
}

float computeSafeControl(void) {
    float u;
    int i;
    u = 0.0;
    for (i = 0; i < NSTATE; i++) {
        u = u - activeGain[i] * (xhat[i] - xref[i]);
    }
    return clampf(u, 0.0 - uLimit0, uLimit0);
}

float lyapunov(void) {
    float v;
    v = activeLyap[0] * xhat[0] * xhat[0]
      + 2.0 * activeLyap[1] * xhat[0] * xhat[1]
      + 2.0 * activeLyap[2] * xhat[0] * xhat[2]
      + 2.0 * activeLyap[3] * xhat[0] * xhat[3]
      + activeLyap[4] * xhat[1] * xhat[1]
      + 2.0 * activeLyap[5] * xhat[1] * xhat[2]
      + 2.0 * activeLyap[6] * xhat[1] * xhat[3]
      + activeLyap[7] * xhat[2] * xhat[2]
      + 2.0 * activeLyap[8] * xhat[2] * xhat[3]
      + activeLyap[9] * xhat[3] * xhat[3];
    return v;
}

int envelopeOk(float u) {
    float v;
    int i;
    if (u > uLimit0) return 0;
    if (u < 0.0 - uLimit0) return 0;
    for (i = 0; i < NSTATE; i++) {
        if (absf(xhat[i]) > stateLimit[i]) return 0;
    }
    v = lyapunov();
    if (v > envelopeLimit) return 0;
    return 1;
}

/* ---- history ------------------------------------------------------ */

void recordHistory(float u0, float u1) {
    histU0[histHead] = u0;
    histU1[histHead] = u1;
    histHead = histHead + 1;
    if (histHead >= HIST_N) histHead = 0;
    if (histCount < HIST_N) histCount = histCount + 1;
}

float recentMean0(void) {
    float acc;
    int i;
    if (histCount == 0) return 0.0;
    acc = 0.0;
    for (i = 0; i < HIST_N; i++) {
        acc = acc + histU0[i];
    }
    return acc / histCount;
}

/* ---- Simplex decision stage (the monitoring function) ------------- */

float decisionStage(float safeU)
/** SafeFlow Annotation assume(core(ncShm, 0, sizeof(NCCommand))) */
{
    float u;
    int fresh;
    fresh = 0;
    if (ncShm->seq != lastNcSeq) {
        lastNcSeq = ncShm->seq;
        fresh = 1;
    }
    if (fresh == 1 && ncShm->valid == 1) {
        u = ncShm->u0;
        if (envelopeOk(u)) {
            accepted = accepted + 1;
            return u;
        }
    }
    rejected = rejected + 1;
    return safeU;
}

/* ---- sensor publication -------------------------------------------- */

void publishSensors(float y0, float y1) {
    sensShm->y0 = y0;
    sensShm->y1 = y1;
    sensShm->y2 = xhat[1];
    sensShm->y3 = xhat[3];
    sensShm->seq = coreSeq;
}

/* DEFECT (paper §4, generic Simplex): the output clamp re-reads the
 * published sensor value from shared memory. The non-core side can
 * overwrite it ("supposedly read-only, but not enforced") and rig the
 * clamp that the recoverability logic relies on. */
float limitCheck(float u) {
    float fbPos;
    float maxU;
    float uOut;
    fbPos = sensShm->y0;
    maxU = baseClampLimit - 0.5 * absf(fbPos);
    maxU = maxf(maxU, 0.5);
    uOut = clampf(u, 0.0 - maxU, maxU);
    /** SafeFlow Annotation assert(safe(uOut)) */
    return uOut;
}

/* ---- status publication --------------------------------------------- */

void publishStatus(float u0, float u1) {
    statShm->u0 = u0;
    statShm->u1 = u1;
    statShm->lyap = lyapunov();
    statShm->mode = modeCode;
    statShm->seq = coreSeq;
    statShm->accepted = accepted;
    statShm->rejected = rejected;
}

/* ---- watchdog --------------------------------------------------------- */

void watchdogStep(void) {
    int hb;
    int pid;
    hb = ncShm->heartbeat;
    if (hb == lastHb) {
        missedHeartbeats = missedHeartbeats + 1;
    } else {
        missedHeartbeats = 0;
        lastHb = hb;
    }
    if (missedHeartbeats > hbLimitTicks) {
        pid = ncShm->clientPid;
        kill(pid, SIG_TERM);
        missedHeartbeats = 0;
    }
}

/* ---- configuration handling (source of the paper's FPs) --------------- */

void configApply(void)
{
    int rate;
    int complexOn;
    int plantSel;
    int period;
    int mode;
    int chan;
    int ramp;
    int gsel;
    int wd;

    /* Each configuration read below is an unmonitored non-core access;
     * the values only steer control flow, so the reports against the
     * derived critical data are the paper's control-dependence false
     * positives (§3.4.1). */
    rate = cfgShm->sampleRateHz;
    if (rate >= CFG_FAST_HZ) {
        period = 5;
    } else if (rate >= CFG_SLOW_HZ) {
        period = 10;
    } else {
        period = 20;
    }
    /** SafeFlow Annotation assert(safe(period)) */
    periodTicks = period;

    complexOn = cfgShm->usesComplexCtrl;
    if (complexOn == 1) {
        mode = MODE_COMPLEX;
    } else {
        mode = MODE_SAFE;
    }
    /** SafeFlow Annotation assert(safe(mode)) */
    modeCode = mode;

    if (complexOn == 1) {
        ramp = 50;
    } else {
        ramp = 100;
    }
    /** SafeFlow Annotation assert(safe(ramp)) */
    rampRemaining = ramp;

    plantSel = cfgShm->plantId;
    if (plantSel == PLANT_ARM) {
        chan = 1;
    } else {
        chan = 0;
    }
    /** SafeFlow Annotation assert(safe(chan)) */
    chanMap0 = chan;

    if (plantSel == PLANT_TANK) {
        gsel = 1;
    } else {
        gsel = 0;
    }
    /** SafeFlow Annotation assert(safe(gsel)) */
    kpSel = gsel;

    wd = 4;
    if (plantSel == PLANT_ARM) {
        wd = 2;
    }
    hbLimitTicks = wd;
}

/* ---- tuning proposals -------------------------------------------------- */

void tunePoll(void)
{
    int valid;
    int plan;
    valid = tuneShm->proposedValid;
    if (valid == 1) {
        plan = 25;
    } else {
        plan = 0;
    }
    /** SafeFlow Annotation assert(safe(plan)) */
    tuneCooldown = plan;
}


/* ---- sensor calibration -------------------------------------------------- */

float calOffset0;
float calOffset1;
float calScale0;
float calScale1;
float calDrift;

void initCalibration(void) {
    calOffset0 = 0.0031;
    calOffset1 = 0.0009;
    calScale0  = 0.9991;
    calScale1  = 1.0018;
    calDrift   = 0.0;
}

float calibrate0(float raw) {
    float v;
    v = (raw - calOffset0) * calScale0 - calDrift;
    return clampf(v, 0.0 - 2.5, 2.5);
}

float calibrate1(float raw) {
    float v;
    v = (raw - calOffset1) * calScale1 - calDrift;
    return clampf(v, 0.0 - 2.5, 2.5);
}

void updateDrift(float residual) {
    calDrift = 0.999 * calDrift + 0.001 * residual;
    calDrift = clampf(calDrift, 0.0 - 0.01, 0.01);
}

/* ---- fault management ------------------------------------------------------ */

enum {
    FLT_RANGE0 = 0,
    FLT_RANGE1 = 1,
    FLT_STUCK  = 2,
    FLT_SAT    = 3,
    FLT_N      = 4,
    FLT_TRIP   = 6
};

int fltCount[FLT_N];
int fltLatch;
float lastRaw0;
float lastRaw1;
int stuckTicks;
int satTicks;

void clearFaults(void) {
    int i;
    for (i = 0; i < FLT_N; i++) {
        fltCount[i] = 0;
    }
    fltLatch = 0;
    stuckTicks = 0;
    satTicks = 0;
}

void noteFault(int which) {
    if (which < 0) return;
    if (which >= FLT_N) return;
    fltCount[which] = fltCount[which] + 1;
    if (fltCount[which] > FLT_TRIP) {
        fltLatch = 1;
    }
}

void checkSensorFaults(float r0, float r1) {
    if (r0 > 2.4) noteFault(FLT_RANGE0);
    if (r0 < 0.0 - 2.4) noteFault(FLT_RANGE0);
    if (r1 > 2.4) noteFault(FLT_RANGE1);
    if (r1 < 0.0 - 2.4) noteFault(FLT_RANGE1);
    if (absf(r0 - lastRaw0) < 0.000001 && absf(r1 - lastRaw1) < 0.000001) {
        stuckTicks = stuckTicks + 1;
        if (stuckTicks > 60) {
            noteFault(FLT_STUCK);
            stuckTicks = 0;
        }
    } else {
        stuckTicks = 0;
    }
    lastRaw0 = r0;
    lastRaw1 = r1;
}

void checkActuatorFault(float u) {
    if (absf(u) >= uLimit0 - 0.01) {
        satTicks = satTicks + 1;
        if (satTicks > 60) {
            noteFault(FLT_SAT);
            satTicks = 0;
        }
    } else {
        satTicks = 0;
    }
}

/* ---- reference trajectory ---------------------------------------------------- */

float refTarget;
float refCurrent;
float refRate;

void initReference(void) {
    refTarget  = 0.0;
    refCurrent = 0.0;
    refRate    = 0.0015;
}

float referenceStep(void) {
    float d;
    d = refTarget - refCurrent;
    if (d > refRate) {
        refCurrent = refCurrent + refRate;
    } else if (d < 0.0 - refRate) {
        refCurrent = refCurrent - refRate;
    } else {
        refCurrent = refTarget;
    }
    return refCurrent;
}

/* ---- secondary channel PI trim ------------------------------------------------ */

float trimKp;
float trimKi;
float trimIntegral;
float trimLimit;

void initTrim(void) {
    trimKp = 0.42;
    trimKi = 0.05;
    trimIntegral = 0.0;
    trimLimit = 1.2;
}

float trimControl(float err) {
    float u;
    trimIntegral = trimIntegral + trimKi * err;
    trimIntegral = clampf(trimIntegral, 0.0 - trimLimit, trimLimit);
    u = trimKp * err + trimIntegral;
    return clampf(u, 0.0 - uLimit1, uLimit1);
}

/* ---- core-owned shared publications -------------------------------------------- */

void publishPerf(int loopUs) {
    perfShm->loopTimeUs = loopUs;
    if (loopUs > perfShm->maxLoopTimeUs) {
        perfShm->maxLoopTimeUs = loopUs;
    }
    if (loopUs > 1000000 / CFG_FAST_HZ) {
        perfShm->overruns = perfShm->overruns + 1;
    }
}

void publishHistory(float u) {
    int i;
    for (i = 15; i > 0; i = i - 1) {
        histShm->u[i] = histShm->u[i - 1];
    }
    histShm->u[0] = u;
    histShm->head = histShm->head + 1;
}

/* ---- gain blending during mode transitions -------------------------------- */

float blendAlpha;
float blendRate;
int blendActive;

void initBlend(void) {
    blendAlpha = 1.0;
    blendRate = 0.02;
    blendActive = 0;
}

void startBlend(void) {
    blendAlpha = 0.0;
    blendActive = 1;
}

float blendStep(float uNew, float uOld) {
    float u;
    if (blendActive == 0) {
        return uNew;
    }
    blendAlpha = blendAlpha + blendRate;
    if (blendAlpha >= 1.0) {
        blendAlpha = 1.0;
        blendActive = 0;
    }
    u = blendAlpha * uNew + (1.0 - blendAlpha) * uOld;
    return u;
}

float lastCommand;

/* ---- telemetry ---------------------------------------------------------- */

void telemetry(void) {
    logInt("core.seq", coreSeq);
    logInt("core.accepted", accepted);
    logInt("core.rejected", rejected);
    logFloat("core.lyap", lyapunov());
    logFloat("u.mean0", recentMean0());
    logFloat("xhat0", xhat[0]);
    logFloat("xhat1", xhat[1]);
    logFloat("xhat2", xhat[2]);
    logFloat("xhat3", xhat[3]);
}

/* ---- selftest ------------------------------------------------------------ */

int selftest(void) {
    float v;
    int i;
    for (i = 0; i < NSTATE; i++) {
        xhat[i] = 0.01;
    }
    v = lyapunov();
    if (v <= 0.0) return 0;
    if (computeSafeControl() > uLimit0) return 0;
    if (computeSafeControl() < 0.0 - uLimit0) return 0;
    for (i = 0; i < NSTATE; i++) {
        xhat[i] = 0.0;
    }
    return 1;
}

/* ---- main loop ------------------------------------------------------------ */

void controlStep(void) {
    float raw0;
    float raw1;
    float y0;
    float y1;
    float ref;
    float safeU;
    float uRaw;
    float uOut;
    float uTrim;
    int t0;
    int t1;

    t0 = getTicks();
    raw0 = readPlantSensor(0);
    raw1 = readPlantSensor(1);
    checkSensorFaults(raw0, raw1);
    y0 = calibrate0(raw0);
    y1 = calibrate1(raw1);

    ref = referenceStep();
    observerUpdate(y0 - ref, y1, recentMean0());
    updateDrift(y0 - xhat[0]);
    safeU = computeSafeControl();

    uRaw = decisionStage(safeU);
    uOut = limitCheck(uRaw);
    if (fltLatch == 1) {
        uOut = 0.0;
    }
    checkActuatorFault(uOut);

    uOut = blendStep(uOut, lastCommand);
    lastCommand = uOut;
    uTrim = trimControl(0.0 - y1);
    sendActuatorChan(chanMap0, uOut);
    sendActuatorChan(1 - chanMap0, uTrim);
    recordHistory(uRaw, uTrim);

    publishSensors(y0, y1);
    publishStatus(uOut, uTrim);
    publishHistory(uOut);
    coreSeq = coreSeq + 1;
    t1 = getTicks();
    publishPerf(t1 - t0);

    if (rampRemaining > 0) {
        rampRemaining = rampRemaining - 1;
    }
    if (tuneCooldown > 0) {
        tuneCooldown = tuneCooldown - 1;
    }
}

int main() {
    initCartModel();
    initTankModel();
    initArmModel();
    initObserverGains();
    initLimits();
    initCalibration();
    initReference();
    initTrim();
    initBlend();
    clearFaults();
    initShm();
    plantKind = PLANT_CART;
    selectModel(plantKind);
    hbLimitTicks = 4;
    periodTicks = 10;
    if (selftest() == 0) {
        panicStop();
        return 1;
    }
    configApply();
    tunePoll();
    while (1) {
        controlStep();
        watchdogStep();
        if (coreSeq - (coreSeq / 100) * 100 == 0) {
            telemetry();
        }
        timerWait(periodTicks);
    }
    return 0;
}
"#;
