//! `safeflow` — command-line interface to the SafeFlow analyzer.
//!
//! ```text
//! safeflow FILE.c [FILE2.c ...]    analyze C sources (first file is the root)
//! safeflow check FILES --store DIR incremental analysis against a summary store
//! safeflow oracle --seeds A..B     differential oracle: cross-check optimized
//!                                  engines against the reference analyzer
//! safeflow --table1                regenerate the paper's Table 1 on the corpus
//! safeflow --fig2                  analyze the paper's Figure 2 running example
//! safeflow --engine summary ...    use the ESP-style summary engine
//! safeflow --jobs 4 ...            parallel analysis on 4 worker threads
//! safeflow --budget K=V[,..] ...   bound solver/fixpoint/instruction budgets
//! safeflow --format json ...       machine-readable report (stable schema)
//! safeflow --metrics[=json] ...    append the run's observability metrics
//! ```
//!
//! Exit codes form the degradation contract: `0` clean, `1` warnings only,
//! `2` errors/violations (or unusable input), `3` internal error (a
//! contained panic degraded part of the run), `4` a resource budget was
//! exhausted. Degraded runs still print every finding reached plus a
//! `DEGRADED RUN` block naming the affected functions.

use safeflow::{
    AnalysisConfig, AnalysisSession, Analyzer, Budget, CriticalCall, Engine, FaultKind, FaultPlan,
    FaultSite, ImplicitFlowMode, RecvSpec,
};
use safeflow_corpus::{systems, System};
use safeflow_syntax::VirtualFs;
use std::process::ExitCode;

mod serve_cmd;

fn main() -> ExitCode {
    // Last-resort containment: anything that escapes the analyzer's own
    // panic isolation still maps onto the exit-code contract (3 =
    // internal error) instead of the process's default 101.
    match std::panic::catch_unwind(run) {
        Ok(code) => code,
        Err(payload) => {
            eprintln!(
                "safeflow: internal error: {}",
                safeflow_util::pool::panic_message(&*payload)
            );
            ExitCode::from(3)
        }
    }
}

/// How `--metrics` renders the run's observability counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsOut {
    Text,
    Json,
}

/// Output options threaded from the argument parser to the runners.
#[derive(Debug, Clone, Copy, Default)]
struct OutputOpts {
    dot: bool,
    /// `--format json`: print the stable `safeflow-report-v1` document
    /// instead of the human-readable report.
    format_json: bool,
    metrics: Option<MetricsOut>,
}

/// Reports an argument error: the message plus the USAGE block, both on
/// stderr, then exit code 2 (unusable input).
fn usage_error(msg: &str) -> ExitCode {
    eprintln!("safeflow: {msg}");
    eprintln!("\n{USAGE}");
    ExitCode::from(2)
}

fn run() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = Engine::ContextSensitive;
    let mut files: Vec<String> = Vec::new();
    let mut table1 = false;
    let mut fig2 = false;
    let mut out = OutputOpts::default();
    let mut jobs = 1usize;
    let mut budget = Budget::unlimited();
    let mut injects: Vec<(FaultSite, Option<u64>, FaultKind)> = Vec::new();
    let mut fault_seed: Option<(u64, f64)> = None;
    let mut criticals: Vec<CriticalCall> = Vec::new();
    let mut recvs: Vec<RecvSpec> = Vec::new();
    let mut store_dir: Option<String> = None;
    let mut engine_set = false;
    let mut implicit_flow: Option<ImplicitFlowMode> = None;
    let mut shards = 1usize;
    let mut shard_index: Option<usize> = None;

    // `check` and `oracle` are subcommands: they must come first, before
    // any file. `shard-worker` is the internal per-shard process `check
    // --shards N` spawns; it shares `check`'s whole flag grammar so the
    // coordinator can pass its own arguments through verbatim.
    let check_mode = args.first().map(String::as_str) == Some("check");
    let worker_mode = args.first().map(String::as_str) == Some("shard-worker");
    if check_mode || worker_mode {
        args.remove(0);
    }
    if !check_mode && args.first().map(String::as_str) == Some("oracle") {
        args.remove(0);
        return run_oracle(&args);
    }
    if !check_mode && args.first().map(String::as_str) == Some("serve") {
        args.remove(0);
        return serve_cmd::run_serve(&args);
    }

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--table1" => table1 = true,
            "--fig2" => fig2 = true,
            "--dot" => out.dot = true,
            "--metrics" => out.metrics = Some(MetricsOut::Text),
            "--metrics=json" => out.metrics = Some(MetricsOut::Json),
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("json") => out.format_json = true,
                    Some("text") => out.format_json = false,
                    Some(other) => {
                        return usage_error(&format!(
                            "unknown format `{other}` (use `json` or `text`)"
                        ))
                    }
                    None => return usage_error("--format requires an argument (json or text)"),
                }
            }
            "--budget" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    return usage_error("--budget requires an argument (e.g. solver-steps=1000)");
                };
                if let Err(e) = parse_budget(spec, &mut budget) {
                    return usage_error(&format!("--budget: {e}"));
                }
            }
            "--inject" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    return usage_error("--inject requires an argument (SITE[:KEY][:KIND])");
                };
                match parse_inject(spec) {
                    Ok(rule) => injects.push(rule),
                    Err(e) => return usage_error(&format!("--inject: {e}")),
                }
            }
            "--fault-seed" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    return usage_error("--fault-seed requires an argument (SEED[:RATE])");
                };
                match parse_fault_seed(spec) {
                    Ok(sr) => fault_seed = Some(sr),
                    Err(e) => return usage_error(&format!("--fault-seed: {e}")),
                }
            }
            "--store" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => store_dir = Some(dir.clone()),
                    None => return usage_error("--store requires a directory argument"),
                }
            }
            "--shards" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some(n) => match n.parse::<usize>() {
                        Ok(n) if n >= 1 => shards = n,
                        _ => {
                            return usage_error(&format!(
                                "--shards takes a positive integer, got {n:?}"
                            ))
                        }
                    },
                    None => return usage_error("--shards requires an argument (a worker count)"),
                }
            }
            "--shard" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(k) => shard_index = Some(k),
                    None => return usage_error("--shard requires a shard index"),
                }
            }
            "--critical-call" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    return usage_error("--critical-call requires an argument (NAME:ARG[:LABEL])");
                };
                match parse_critical(spec) {
                    Ok(c) => criticals.push(c),
                    Err(e) => return usage_error(&format!("--critical-call: {e}")),
                }
            }
            "--implicit-flow" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some(mode) => match ImplicitFlowMode::parse(mode) {
                        Some(m) => implicit_flow = Some(m),
                        None => {
                            return usage_error(&format!(
                                "unknown implicit-flow mode `{mode}` \
                                 (use strict, taint-only, or report-separately)"
                            ))
                        }
                    },
                    None => {
                        return usage_error(
                            "--implicit-flow requires an argument \
                             (strict, taint-only, or report-separately)",
                        )
                    }
                }
            }
            "--recv" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    return usage_error("--recv requires an argument (NAME:SOCK_ARG:BUF_ARG)");
                };
                match parse_recv(spec) {
                    Ok(r) => recvs.push(r),
                    Err(e) => return usage_error(&format!("--recv: {e}")),
                }
            }
            "--engine" => {
                i += 1;
                engine_set = true;
                match args.get(i).map(String::as_str) {
                    Some("summary") => engine = Engine::Summary,
                    Some("context") | Some("context-sensitive") => {
                        engine = Engine::ContextSensitive
                    }
                    other => {
                        return usage_error(&format!(
                            "unknown engine {other:?} (use `summary` or `context`)"
                        ))
                    }
                }
            }
            "--jobs" | "-j" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("auto") => jobs = safeflow_util::pool::default_jobs(),
                    Some(n) => match n.parse::<usize>() {
                        Ok(n) if n >= 1 => jobs = n,
                        _ => {
                            return usage_error(&format!(
                                "--jobs takes a positive integer or `auto`, got {n:?}"
                            ))
                        }
                    },
                    None => {
                        return usage_error(
                            "--jobs requires an argument (a thread count or `auto`)",
                        )
                    }
                }
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                return usage_error(&format!("unknown flag `{flag}` (try --help)"));
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }

    // `check` defaults to the summary engine: only it populates the
    // per-SCC store. An explicit `--engine context` still works (the
    // whole-program replay manifest is engine-agnostic). Workers must
    // resolve defaults exactly like the coordinator, or their content
    // hashes would never match.
    if (check_mode || worker_mode) && !engine_set {
        engine = Engine::Summary;
    }
    let mut builder = AnalysisConfig::builder().engine(engine).jobs(jobs).budget(budget);
    if let Some(mode) = implicit_flow {
        builder = builder.implicit_flow(mode);
    }
    for call in criticals {
        builder = builder.critical_call(call);
    }
    for spec in recvs {
        builder = builder.recv_function(spec);
    }
    if injects.iter().any(|(s, ..)| matches!(s, FaultSite::ServeRequest | FaultSite::ServeFrame)) {
        return usage_error(
            "serve-request/serve-frame injection sites only apply to the `serve` subcommand",
        );
    }
    if fault_seed.is_some() || !injects.is_empty() {
        let mut plan = match fault_seed {
            Some((seed, rate)) => FaultPlan::seeded(seed, rate),
            None => FaultPlan::new(),
        };
        for (site, key, kind) in injects {
            plan = plan.with_fault(site, key, kind);
        }
        builder = builder.fault_plan(plan);
    }
    let config = builder.build_config();

    if store_dir.is_some() && !check_mode && !worker_mode {
        return usage_error("--store only applies to the `check` subcommand");
    }
    if shards > 1 && !check_mode && !worker_mode {
        return usage_error("--shards only applies to the `check` subcommand");
    }
    if shard_index.is_some() && !worker_mode {
        return usage_error("--shard is internal to the `shard-worker` subcommand");
    }
    if worker_mode {
        let Some(dir) = store_dir else {
            return usage_error("shard-worker requires --store DIR");
        };
        let Some(shard) = shard_index else {
            return usage_error("shard-worker requires --shard K");
        };
        if shard >= shards {
            return usage_error(&format!("--shard {shard} out of range for --shards {shards}"));
        }
        if files.is_empty() {
            return usage_error("shard-worker requires input files");
        }
        return run_shard_worker(config, &files, &dir, shard, shards);
    }
    if table1 {
        return run_table1(&config, &out);
    }
    if fig2 {
        return run_source(&config, "figure2.c", safeflow_corpus::figure2_example(), &out);
    }
    if files.is_empty() {
        print_help();
        return ExitCode::from(2);
    }
    if check_mode {
        // Sharding requires a store (it is the workers' only interchange)
        // and only pre-warms the summary engine's cache; an armed fault
        // plan disables persistence wholesale, so it falls back to the
        // plain in-process path (which handles the injection itself).
        if shards > 1 {
            let Some(dir) = store_dir else {
                return usage_error("--shards requires --store DIR (the workers' interchange)");
            };
            if config.fault_plan.is_none() && engine == Engine::Summary {
                return run_check_sharded(config, &files, &dir, shards, &out, &args);
            }
            return run_check(config, &files, Some(dir), &out);
        }
        return run_check(config, &files, store_dir, &out);
    }
    run_files(&config, &files, &out)
}

/// Parses a `--critical-call` spec: `NAME:ARG[:LABEL]` (zero-based
/// argument index, optional clearance label from the declared policy).
fn parse_critical(spec: &str) -> Result<CriticalCall, String> {
    let (name, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("`{spec}` is not of the form NAME:ARG[:LABEL]"))?;
    if name.is_empty() {
        return Err("function name is empty".to_string());
    }
    let (arg, clearance) = match rest.split_once(':') {
        Some((a, label)) => {
            if label.is_empty() {
                return Err("clearance label is empty".to_string());
            }
            (a, Some(label))
        }
        None => (rest, None),
    };
    let arg = arg.parse::<usize>().map_err(|_| format!("`{arg}` is not an argument index"))?;
    Ok(match clearance {
        Some(label) => CriticalCall::with_clearance(name, arg, label),
        None => CriticalCall::new(name, arg),
    })
}

/// Parses a `--recv` spec: `NAME:SOCK_ARG:BUF_ARG` (zero-based indices).
fn parse_recv(spec: &str) -> Result<RecvSpec, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [name, sock, buf] = parts.as_slice() else {
        return Err(format!("`{spec}` is not of the form NAME:SOCK_ARG:BUF_ARG"));
    };
    if name.is_empty() {
        return Err("function name is empty".to_string());
    }
    let sock = sock.parse::<usize>().map_err(|_| format!("`{sock}` is not an argument index"))?;
    let buf = buf.parse::<usize>().map_err(|_| format!("`{buf}` is not an argument index"))?;
    Ok(RecvSpec::new(*name, sock, buf))
}

/// The `check` subcommand: one incremental session over the input files,
/// replaying from or saving to the persistent store when `--store` is set.
fn run_check(
    config: AnalysisConfig,
    files: &[String],
    store_dir: Option<String>,
    out: &OutputOpts,
) -> ExitCode {
    let mut session = match &store_dir {
        Some(dir) => match AnalysisSession::with_store(config, std::path::Path::new(dir)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("safeflow: {e}");
                return ExitCode::from(2);
            }
        },
        None => AnalysisSession::new(config),
    };
    // DOT output needs a lowered module, which a replayed run never
    // builds; keep the summary seeding, skip the manifest shortcut.
    if out.dot {
        session.set_replay(false);
    }
    match session.check_files(files) {
        Ok(outcome) => {
            if out.format_json {
                println!("{}", outcome.report_json.render());
            } else {
                print!("{}", outcome.rendered);
            }
            if out.dot {
                if let Some(result) = &outcome.result {
                    emit_dot(result);
                }
            }
            match out.metrics {
                Some(MetricsOut::Text) => {
                    println!("-- metrics --");
                    print!("{}", outcome.metrics.render_text());
                }
                Some(MetricsOut::Json) => println!("{}", outcome.metrics.to_json().render()),
                None => {}
            }
            ExitCode::from(outcome.exit_code)
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// The sharded `check` coordinator: probe the store's whole-program
/// manifest, and on a miss spawn one `shard-worker` process per shard to
/// pre-warm the per-SCC store concurrently, then run the exact same
/// in-process check `--shards 1` would. Workers only ever *add* clean
/// summaries, so a worker that fails (or is killed) costs recomputation in
/// the final run, never correctness — their exit statuses are reported on
/// stderr and otherwise ignored.
fn run_check_sharded(
    config: AnalysisConfig,
    files: &[String],
    store_dir: &str,
    shards: usize,
    out: &OutputOpts,
    passthrough: &[String],
) -> ExitCode {
    let mut fs = VirtualFs::new();
    for f in files {
        match std::fs::read_to_string(f) {
            Ok(text) => {
                fs.add(f.as_str(), text);
            }
            Err(e) => {
                eprintln!("cannot read {f}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    // Manifest probe: on a warm manifest the final check replays without
    // analyzing anything, making workers pure overhead. The probe session
    // holds the store's exclusive lock, so it must drop before any worker
    // opens the directory in shared mode.
    let spawn = match AnalysisSession::with_store(config.clone(), std::path::Path::new(store_dir)) {
        Ok(session) => !session.manifest_hit(&files[0], &fs),
        Err(e) => {
            eprintln!("safeflow: {e}");
            return ExitCode::from(2);
        }
    };
    if spawn {
        match std::env::current_exe() {
            Ok(exe) => {
                let mut children = Vec::new();
                for k in 0..shards {
                    let mut cmd = std::process::Command::new(&exe);
                    cmd.arg("shard-worker").arg("--shard").arg(k.to_string());
                    cmd.args(passthrough);
                    cmd.stdout(std::process::Stdio::null());
                    match cmd.spawn() {
                        Ok(c) => children.push((k, c)),
                        Err(e) => eprintln!("safeflow: cannot spawn shard worker {k}: {e}"),
                    }
                }
                for (k, mut c) in children {
                    match c.wait() {
                        Ok(status) if status.success() => {}
                        Ok(status) => eprintln!(
                            "safeflow: shard worker {k} exited with {status}; \
                             its summaries will be recomputed"
                        ),
                        Err(e) => eprintln!("safeflow: cannot wait for shard worker {k}: {e}"),
                    }
                }
            }
            // No path to our own binary: degrade to the unsharded path.
            Err(e) => eprintln!("safeflow: cannot locate own executable ({e}); running unsharded"),
        }
    }
    // The final run opens the store exclusively (absorbing every segment
    // the workers published), analyzes over the warm cache, and compacts
    // the segments on save — identical output to an unsharded run by
    // construction.
    run_check(config, files, Some(store_dir.to_string()), out)
}

/// The internal `shard-worker` subcommand: summarize one shard's compute
/// closure against the shared store (see [`safeflow::shard`]). Exit 0 even
/// when detached — a worker that did nothing is not a failure, just a
/// colder final run.
fn run_shard_worker(
    config: AnalysisConfig,
    files: &[String],
    store_dir: &str,
    shard: usize,
    shards: usize,
) -> ExitCode {
    let mut fs = VirtualFs::new();
    for f in files {
        match std::fs::read_to_string(f) {
            Ok(text) => {
                fs.add(f.as_str(), text);
            }
            Err(e) => {
                eprintln!("cannot read {f}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let dir = std::path::Path::new(store_dir);
    match safeflow::shard::run_worker(&config, &files[0], &fs, dir, shard, shards) {
        Ok(r) => {
            println!(
                "shard {shard}/{shards}: {} sccs, {} owned, {} published, {} fetched{}",
                r.sccs,
                r.owned,
                r.published,
                r.fetched,
                if r.detached { " (detached: store busy)" } else { "" }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// The `oracle` subcommand: generate seeded programs and cross-check every
/// optimized engine configuration against the naive reference analyzer.
/// Exit 0 = every configuration agreed, 2 = at least one divergence (or
/// bad arguments).
fn run_oracle(args: &[String]) -> ExitCode {
    let mut opts = safeflow_oracle::OracleOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    return usage_error("--seeds requires an argument (e.g. 0..32)");
                };
                match parse_seed_range(spec) {
                    Ok((lo, hi)) => {
                        opts.seed_lo = lo;
                        opts.seed_hi = hi;
                    }
                    Err(e) => return usage_error(&format!("--seeds: {e}")),
                }
            }
            "--minimize" => opts.minimize = true,
            "--repro-dir" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => opts.repro_dir = Some(std::path::PathBuf::from(dir)),
                    None => return usage_error("--repro-dir requires a directory argument"),
                }
            }
            "--jobs" | "-j" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("auto") => opts.jobs = safeflow_util::pool::default_jobs(),
                    Some(n) => match n.parse::<usize>() {
                        Ok(n) if n >= 1 => opts.jobs = n,
                        _ => {
                            return usage_error(&format!(
                                "--jobs takes a positive integer or `auto`, got {n:?}"
                            ))
                        }
                    },
                    None => {
                        return usage_error(
                            "--jobs requires an argument (a thread count or `auto`)",
                        )
                    }
                }
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("oracle: unexpected argument `{other}`")),
        }
        i += 1;
    }
    if opts.seed_lo >= opts.seed_hi {
        return usage_error("--seeds range is empty (use LO..HI with LO < HI)");
    }
    let report = safeflow_oracle::run(&opts);
    print!("{}", report.render());
    ExitCode::from(report.exit_code())
}

/// Parses a `--seeds` spec: `LO..HI` (half-open) or a single seed `N`
/// (meaning `N..N+1`).
fn parse_seed_range(spec: &str) -> Result<(u64, u64), String> {
    if let Some((lo, hi)) = spec.split_once("..") {
        let lo = lo.parse::<u64>().map_err(|_| format!("`{lo}` is not a seed number"))?;
        let hi = hi.parse::<u64>().map_err(|_| format!("`{hi}` is not a seed number"))?;
        Ok((lo, hi))
    } else {
        let n = spec.parse::<u64>().map_err(|_| format!("`{spec}` is not a seed number"))?;
        Ok((n, n + 1))
    }
}

/// Parses a `--budget` spec (`key=value[,key=value...]`) into `budget`.
/// Keys: `solver-steps`, `fixpoint-rounds`, `max-insts`, `deadline-ms`.
fn parse_budget(spec: &str, budget: &mut Budget) -> Result<(), String> {
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (key, value) =
            part.split_once('=').ok_or_else(|| format!("`{part}` is not of the form key=value"))?;
        let parse = |what: &str| -> Result<u64, String> {
            value.parse::<u64>().map_err(|_| format!("{what} takes a number, got `{value}`"))
        };
        match key {
            "solver-steps" => budget.solver_steps = Some(parse("solver-steps")?),
            "fixpoint-rounds" => {
                let n = parse("fixpoint-rounds")?;
                budget.fixpoint_rounds =
                    Some(u32::try_from(n).map_err(|_| format!("fixpoint-rounds `{n}` too large"))?);
            }
            "max-insts" => budget.max_function_insts = Some(parse("max-insts")? as usize),
            "deadline-ms" => budget.deadline_ms = Some(parse("deadline-ms")?),
            other => {
                return Err(format!(
                    "unknown budget key `{other}` \
                     (use solver-steps, fixpoint-rounds, max-insts, deadline-ms)"
                ))
            }
        }
    }
    Ok(())
}

/// Parses an `--inject` spec: `SITE[:KEY][:KIND]` where SITE is
/// `scc`/`solver`/`cache` (engine sites) or `serve-request`/`serve-frame`
/// (protocol sites, `serve` subcommand only), KEY a number (omitted or
/// `*` = every key), and KIND `panic` (default) or `budget`.
fn parse_inject(spec: &str) -> Result<(FaultSite, Option<u64>, FaultKind), String> {
    let mut parts = spec.split(':');
    let site = match parts.next() {
        Some("scc") => FaultSite::SccAnalysis,
        Some("solver") => FaultSite::Solver,
        Some("cache") => FaultSite::SummaryCache,
        Some("serve-request") => FaultSite::ServeRequest,
        Some("serve-frame") => FaultSite::ServeFrame,
        other => {
            return Err(format!(
                "unknown site {other:?} \
                 (use scc, solver, cache, serve-request, or serve-frame)"
            ));
        }
    };
    let mut key = None;
    let mut kind = FaultKind::Panic;
    for part in parts {
        match part {
            "panic" => kind = FaultKind::Panic,
            "budget" => kind = FaultKind::BudgetExhaustion,
            "*" => key = None,
            n => {
                key = Some(n.parse::<u64>().map_err(|_| {
                    format!("`{n}` is not a key number, `*`, `panic`, or `budget`")
                })?);
            }
        }
    }
    Ok((site, key, kind))
}

/// Parses a `--fault-seed` spec: `SEED[:RATE]` (rate defaults to 0.1).
fn parse_fault_seed(spec: &str) -> Result<(u64, f64), String> {
    let (seed, rate) = match spec.split_once(':') {
        Some((s, r)) => (s, Some(r)),
        None => (spec, None),
    };
    let seed = seed.parse::<u64>().map_err(|_| format!("seed `{seed}` is not a number"))?;
    let rate = match rate {
        Some(r) => {
            let r = r.parse::<f64>().map_err(|_| format!("rate `{r}` is not a number"))?;
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("rate {r} outside [0, 1]"));
            }
            r
        }
        None => 0.1,
    };
    Ok((seed, rate))
}

/// The USAGE block, shared by `--help` (stdout) and argument-error
/// reporting (stderr).
const USAGE: &str = "USAGE:\n\
     \x20 safeflow [OPTIONS] FILE.c [FILE2.c ...]\n\
     \x20 safeflow check [OPTIONS] FILE.c [FILE2.c ...] [--store DIR] [--shards N]\n\
     \x20 safeflow serve [--listen ADDR] [--store DIR] [--watch[=MS]] ...\n\
     \x20 safeflow serve --connect ADDR FILE.c ... | --ping | --shutdown\n\
     \x20 safeflow oracle --seeds A..B [--minimize] [--repro-dir DIR] [--jobs N]\n\
     \x20 safeflow --table1 | --fig2\n\
     (run `safeflow --help` for the full option list)";

fn print_help() {
    println!(
        "safeflow — static analysis enforcing safe value flow (DSN 2006)\n\
         \n\
         USAGE:\n\
         \x20 safeflow [OPTIONS] FILE.c [FILE2.c ...]\n\
         \x20 safeflow check [OPTIONS] FILE.c [FILE2.c ...] [--store DIR] [--shards N]\n\
         \x20 safeflow serve [--listen ADDR] [--store DIR] [--watch[=MS]] ...\n\
         \x20 safeflow serve --connect ADDR FILE.c ... | --ping | --shutdown\n\
         \x20 safeflow oracle --seeds A..B [--minimize] [--repro-dir DIR] [--jobs N]\n\
         \x20 safeflow --table1 | --fig2\n\
         \n\
         The `check` subcommand runs an incremental session: with --store,\n\
         prior per-SCC summaries are loaded from DIR, only changed SCCs\n\
         (plus their transitive callers) re-analyze, and an unchanged\n\
         input replays the stored report without re-analyzing anything.\n\
         `check` defaults to the summary engine. With --shards N (requires\n\
         --store), the call-graph SCC DAG is partitioned across N worker\n\
         processes that pre-warm the store concurrently through per-worker\n\
         append-only segment files; the final report is produced by the\n\
         same in-process path and is byte-identical to --shards 1 — a\n\
         crashed or killed worker only costs recomputation.\n\
         \n\
         The `serve` subcommand keeps analysis sessions resident in a\n\
         loopback daemon so repeat checks answer at warm-path latency:\n\
         \x20 --listen ADDR:PORT      bind address (default 127.0.0.1:0)\n\
         \x20 --port-file PATH        write the bound address atomically\n\
         \x20 --workers N             request workers (default 2)\n\
         \x20 --queue N               admission queue bound (default 32);\n\
         \x20                         a full queue sheds with `Overloaded`\n\
         \x20 --deadline-ms N         default per-request deadline; overruns\n\
         \x20                         degrade (exit-4 path), never hang\n\
         \x20 --io-timeout-ms N       socket timeout / slow-client guard\n\
         \x20 --watch[=MS]            re-check served roots on file changes\n\
         \x20 --metrics               dump serve.* metrics after the drain\n\
         \x20 --inject serve-request[:KEY][:KIND] | serve-frame[:KEY]\n\
         \x20                         protocol-layer fault drills (testing)\n\
         Client mode: `serve --connect ADDR FILES...` checks via a running\n\
         daemon (statuses 0-4 map onto the exit codes below; a timeout\n\
         exits 4, overload/draining exit 2); `--ping`, `--metrics`, and\n\
         `--shutdown` (graceful drain) are also available. The daemon\n\
         drains on SIGTERM/SIGINT and restarts warm from its --store.\n\
         \n\
         The `oracle` subcommand generates seeded annotation-bearing\n\
         programs and cross-checks the parallel, warm-cache, store-replay,\n\
         incremental, and sharded engine configurations against the naive\n\
         reference analyzer; any report difference (modulo the observability\n\
         contract's stripped sections) is a divergence. --minimize shrinks\n\
         divergent programs; --repro-dir writes them out. Exit 0 = all\n\
         configurations agree, 2 = divergence.\n\
         \n\
         OPTIONS:\n\
         \x20 --store DIR                persistent summary store (check only);\n\
         \x20                            a corrupt/mismatched store degrades to a\n\
         \x20                            cold run, never a stale result\n\
         \x20 --shards N                 check only, with --store: analyze across\n\
         \x20                            N concurrent worker processes sharing the\n\
         \x20                            store; output byte-identical to --shards 1\n\
         \x20 --engine summary|context   phase-3 engine (default: context)\n\
         \x20 --critical-call NAME:ARG[:LABEL]\n\
         \x20                            treat argument ARG of external NAME as\n\
         \x20                            implicitly critical (like kill's pid);\n\
         \x20                            an optional LABEL from the declared\n\
         \x20                            policy clears flows at or below it\n\
         \x20 --implicit-flow MODE       control-dependence policy: strict\n\
         \x20                            (promote to errors), taint-only (track,\n\
         \x20                            don't report), report-separately\n\
         \x20                            (default; distinct control-only kind)\n\
         \x20 --recv NAME:SOCK:BUF       treat external NAME as a receive call\n\
         \x20                            (socket/buffer argument indices, §3.4.3)\n\
         \x20 --jobs N|auto, -j N        worker threads for the parallel phases\n\
         \x20                            (default: 1; reports are identical for any N)\n\
         \x20 --budget K=V[,K=V...]      resource budgets; exhaustion degrades the\n\
         \x20                            affected scope conservatively (exit 4).\n\
         \x20                            Keys: solver-steps, fixpoint-rounds,\n\
         \x20                            max-insts, deadline-ms\n\
         \x20 --inject SITE[:KEY][:KIND] inject a deterministic fault (testing);\n\
         \x20                            SITE: scc|solver|cache, KIND: panic|budget\n\
         \x20 --fault-seed SEED[:RATE]   seeded random fault plan (testing)\n\
         \x20 --format json|text         report format (default: text); json emits\n\
         \x20                            the stable `safeflow-report-v1` document\n\
         \x20                            (v2 when the source declares a label\n\
         \x20                            policy: adds per-finding label/flow_kind)\n\
         \x20 --metrics[=json]           append the run's observability metrics\n\
         \x20                            (counters/work/sched/dist/timings sections)\n\
         \x20 --dot                      emit Graphviz value-flow graphs for errors\n\
         \x20 --table1                   regenerate the paper's Table 1 on the corpus\n\
         \x20 --fig2                     analyze the paper's Figure 2 example\n\
         \n\
         EXIT CODES:\n\
         \x20 0 clean   1 warnings only   2 errors/violations or unusable input\n\
         \x20 3 internal error (contained panic)   4 budget exhausted"
    );
}

/// Renders one completed analysis according to `out`, returning the
/// report's exit code.
fn emit_result(
    analyzer: &Analyzer,
    result: &safeflow::AnalysisResult,
    out: &OutputOpts,
) -> ExitCode {
    if out.format_json {
        println!("{}", analyzer.report_json(result).render());
    } else {
        print!("{}", result.report.render(&result.sources));
    }
    if out.dot {
        emit_dot(result);
    }
    emit_metrics(analyzer, out);
    ExitCode::from(result.report.exit_code())
}

/// Prints the last run's metrics when `--metrics` asked for them.
fn emit_metrics(analyzer: &Analyzer, out: &OutputOpts) {
    match out.metrics {
        Some(MetricsOut::Text) => {
            println!("-- metrics --");
            print!("{}", analyzer.last_metrics().render_text());
        }
        Some(MetricsOut::Json) => println!("{}", analyzer.last_metrics().to_json().render()),
        None => {}
    }
}

fn run_files(config: &AnalysisConfig, files: &[String], out: &OutputOpts) -> ExitCode {
    let mut fs = VirtualFs::new();
    for f in files {
        match std::fs::read_to_string(f) {
            Ok(text) => {
                fs.add(f.as_str(), text);
            }
            Err(e) => {
                eprintln!("cannot read {f}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let analyzer = Analyzer::new(config.clone());
    match analyzer.analyze_program(&files[0], &fs) {
        Ok(result) => emit_result(&analyzer, &result, out),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// Prints one DOT digraph per reported error (the paper's value-flow graph
/// triage aid, §4).
fn emit_dot(result: &safeflow::AnalysisResult) {
    for (i, e) in result.report.errors.iter().enumerate() {
        println!("// value-flow graph {} for critical `{}`", i + 1, e.critical);
        print!("{}", safeflow::flowgraph::error_to_dot(e, &result.sources));
    }
}

fn run_source(config: &AnalysisConfig, name: &str, src: &str, out: &OutputOpts) -> ExitCode {
    let analyzer = Analyzer::new(config.clone());
    match analyzer.analyze_source(name, src) {
        Ok(result) => emit_result(&analyzer, &result, out),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// Regenerates Table 1: one row per corpus system, paper numbers alongside
/// measured numbers.
fn run_table1(config: &AnalysisConfig, out: &OutputOpts) -> ExitCode {
    println!("Table 1: Applying SafeFlow to Control Systems (paper -> measured)\n");
    println!(
        "{:<16} {:>13} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "System",
        "LOC(total)",
        "LOC(core)",
        "SrcChanges",
        "Annot.lines",
        "Errors",
        "Warnings",
        "FPs"
    );
    let analyzer = Analyzer::new(config.clone());
    let mut ok = true;
    for system in systems() {
        match analyzer.analyze_source(system.core_file, system.core_source) {
            Ok(result) => {
                let r = &result.report;
                let confirmed = r
                    .errors
                    .iter()
                    .filter(|e| system.defects.iter().any(|d| d.critical == e.critical))
                    .count();
                let fps = r.errors.len() - confirmed;
                println!(
                    "{:<16} {:>6}>{:<6} {:>5}>{:<6} {:>5}>{:<6} {:>5}>{:<6} {:>4}>{:<5} {:>4}>{:<5} {:>3}>{:<4}",
                    system.name,
                    system.paper.loc_total,
                    system.total_loc(),
                    system.paper.loc_core,
                    system.core_loc(),
                    system.paper.source_changes,
                    system.source_change_lines(),
                    system.paper.annotation_lines,
                    system.annotation_lines(),
                    system.paper.errors,
                    confirmed,
                    system.paper.warnings,
                    r.warnings.len(),
                    system.paper.false_positives,
                    fps,
                );
                if confirmed != system.paper.errors
                    || r.warnings.len() != system.paper.warnings
                    || fps != system.paper.false_positives
                {
                    ok = false;
                }
                print_defects(&system, r);
            }
            Err(e) => {
                eprintln!("{}: analysis failed:\n{e}", system.name);
                ok = false;
            }
        }
    }
    println!("\nfinding counts {} the paper's Table 1", if ok { "MATCH" } else { "DO NOT MATCH" });
    // With --metrics: the registry is per-run, so this shows the last
    // corpus system analyzed — a representative sample for the demo.
    emit_metrics(&analyzer, out);
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_defects(system: &System, report: &safeflow::AnalysisReport) {
    for defect in &system.defects {
        let found = report.errors.iter().any(|e| e.critical == defect.critical);
        println!("    defect {:<26} [{}]", defect.id, if found { "FOUND" } else { "MISSED" },);
    }
}
