//! `safeflow` — command-line interface to the SafeFlow analyzer.
//!
//! ```text
//! safeflow FILE.c [FILE2.c ...]    analyze C sources (first file is the root)
//! safeflow --table1                regenerate the paper's Table 1 on the corpus
//! safeflow --fig2                  analyze the paper's Figure 2 running example
//! safeflow --engine summary ...    use the ESP-style summary engine
//! safeflow --jobs 4 ...            parallel analysis on 4 worker threads
//! ```

use safeflow::{AnalysisConfig, Analyzer, Engine};
use safeflow_corpus::{systems, System};
use safeflow_syntax::VirtualFs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = Engine::ContextSensitive;
    let mut files: Vec<String> = Vec::new();
    let mut table1 = false;
    let mut fig2 = false;
    let mut dot = false;
    let mut jobs = 1usize;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--table1" => table1 = true,
            "--fig2" => fig2 = true,
            "--dot" => dot = true,
            "--engine" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("summary") => engine = Engine::Summary,
                    Some("context") | Some("context-sensitive") => {
                        engine = Engine::ContextSensitive
                    }
                    other => {
                        eprintln!("unknown engine {other:?} (use `summary` or `context`)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--jobs" | "-j" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("auto") => jobs = safeflow_util::pool::default_jobs(),
                    Some(n) => match n.parse::<usize>() {
                        Ok(n) if n >= 1 => jobs = n,
                        _ => {
                            eprintln!("--jobs takes a positive integer or `auto`, got {n:?}");
                            return ExitCode::from(2);
                        }
                    },
                    None => {
                        eprintln!("--jobs requires an argument (a thread count or `auto`)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }

    let config = AnalysisConfig::with_engine(engine).with_jobs(jobs);

    if table1 {
        return run_table1(&config);
    }
    if fig2 {
        return run_source(&config, "figure2.c", safeflow_corpus::figure2_example(), dot);
    }
    if files.is_empty() {
        print_help();
        return ExitCode::from(2);
    }
    run_files(&config, &files, dot)
}

fn print_help() {
    println!(
        "safeflow — static analysis enforcing safe value flow (DSN 2006)\n\
         \n\
         USAGE:\n\
         \x20 safeflow [OPTIONS] FILE.c [FILE2.c ...]\n\
         \x20 safeflow --table1 | --fig2\n\
         \n\
         OPTIONS:\n\
         \x20 --engine summary|context   phase-3 engine (default: context)\n\
         \x20 --jobs N|auto, -j N        worker threads for the parallel phases\n\
         \x20                            (default: 1; reports are identical for any N)\n\
         \x20 --dot                      emit Graphviz value-flow graphs for errors\n\
         \x20 --table1                   regenerate the paper's Table 1 on the corpus\n\
         \x20 --fig2                     analyze the paper's Figure 2 example"
    );
}

fn run_files(config: &AnalysisConfig, files: &[String], dot: bool) -> ExitCode {
    let mut fs = VirtualFs::new();
    for f in files {
        match std::fs::read_to_string(f) {
            Ok(text) => {
                fs.add(f.as_str(), text);
            }
            Err(e) => {
                eprintln!("cannot read {f}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let analyzer = Analyzer::new(config.clone());
    match analyzer.analyze_program(&files[0], &fs) {
        Ok(result) => {
            print!("{}", result.report.render(&result.sources));
            if dot {
                emit_dot(&result);
            }
            if result.report.errors.is_empty() && result.report.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// Prints one DOT digraph per reported error (the paper's value-flow graph
/// triage aid, §4).
fn emit_dot(result: &safeflow::AnalysisResult) {
    for (i, e) in result.report.errors.iter().enumerate() {
        println!("// value-flow graph {} for critical `{}`", i + 1, e.critical);
        print!("{}", safeflow::flowgraph::error_to_dot(e, &result.sources));
    }
}

fn run_source(config: &AnalysisConfig, name: &str, src: &str, dot: bool) -> ExitCode {
    let analyzer = Analyzer::new(config.clone());
    match analyzer.analyze_source(name, src) {
        Ok(result) => {
            print!("{}", result.report.render(&result.sources));
            if dot {
                emit_dot(&result);
            }
            if result.report.errors.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// Regenerates Table 1: one row per corpus system, paper numbers alongside
/// measured numbers.
fn run_table1(config: &AnalysisConfig) -> ExitCode {
    println!("Table 1: Applying SafeFlow to Control Systems (paper -> measured)\n");
    println!(
        "{:<16} {:>13} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "System",
        "LOC(total)",
        "LOC(core)",
        "SrcChanges",
        "Annot.lines",
        "Errors",
        "Warnings",
        "FPs"
    );
    let analyzer = Analyzer::new(config.clone());
    let mut ok = true;
    for system in systems() {
        match analyzer.analyze_source(system.core_file, system.core_source) {
            Ok(result) => {
                let r = &result.report;
                let confirmed = r
                    .errors
                    .iter()
                    .filter(|e| system.defects.iter().any(|d| d.critical == e.critical))
                    .count();
                let fps = r.errors.len() - confirmed;
                println!(
                    "{:<16} {:>6}>{:<6} {:>5}>{:<6} {:>5}>{:<6} {:>5}>{:<6} {:>4}>{:<5} {:>4}>{:<5} {:>3}>{:<4}",
                    system.name,
                    system.paper.loc_total,
                    system.total_loc(),
                    system.paper.loc_core,
                    system.core_loc(),
                    system.paper.source_changes,
                    system.source_change_lines(),
                    system.paper.annotation_lines,
                    system.annotation_lines(),
                    system.paper.errors,
                    confirmed,
                    system.paper.warnings,
                    r.warnings.len(),
                    system.paper.false_positives,
                    fps,
                );
                if confirmed != system.paper.errors
                    || r.warnings.len() != system.paper.warnings
                    || fps != system.paper.false_positives
                {
                    ok = false;
                }
                print_defects(&system, r);
            }
            Err(e) => {
                eprintln!("{}: analysis failed:\n{e}", system.name);
                ok = false;
            }
        }
    }
    println!(
        "\nfinding counts {} the paper's Table 1",
        if ok { "MATCH" } else { "DO NOT MATCH" }
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_defects(system: &System, report: &safeflow::AnalysisReport) {
    for defect in &system.defects {
        let found = report.errors.iter().any(|e| e.critical == defect.critical);
        println!(
            "    defect {:<26} [{}]",
            defect.id,
            if found { "FOUND" } else { "MISSED" },
        );
    }
}
