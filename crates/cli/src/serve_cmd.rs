//! The `serve` subcommand: run (or talk to) the resident analysis daemon.
//!
//! Daemon mode binds a loopback socket and serves check requests until a
//! shutdown frame or SIGTERM/SIGINT, draining the admission queue before
//! exiting. Client mode (`--connect`) sends one request to a running
//! daemon and maps its response status back onto the CLI exit-code
//! contract.

use crate::usage_error;
use safeflow::{AnalysisConfig, Budget, Engine, FaultKind, FaultPlan, FaultSite};
use safeflow_serve::{Client, Daemon, ServeOptions, Status};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the SIGTERM/SIGINT handler; polled by the daemon loop.
static TERM_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_term_handler() {
    // std links libc on unix; binding `signal` directly keeps the
    // workspace dependency-free. The handler only touches an atomic,
    // which is async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_term(_sig: i32) {
        TERM_FLAG.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as *const () as usize);
        signal(SIGINT, on_term as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_term_handler() {}

/// What client mode (`--connect`) should send.
enum ClientAction {
    Check(Vec<String>),
    Ping,
    Metrics,
    Shutdown,
}

pub fn run_serve(args: &[String]) -> ExitCode {
    let mut listen = "127.0.0.1:0".to_string();
    let mut connect: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut workers = 2usize;
    let mut queue = 32usize;
    let mut deadline_ms: Option<u64> = None;
    let mut io_timeout_ms = 10_000u64;
    let mut watch_poll_ms: Option<u64> = None;
    let mut dump_metrics = false;
    let mut engine = Engine::Summary;
    let mut jobs = 1usize;
    let mut budget = Budget::unlimited();
    let mut injects: Vec<(FaultSite, Option<u64>, FaultKind)> = Vec::new();
    let mut fault_seed: Option<(u64, f64)> = None;
    let mut action_ping = false;
    let mut action_shutdown = false;
    let mut files: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                i += 1;
                match args.get(i) {
                    Some(a) => listen = a.clone(),
                    None => return usage_error("--listen requires an ADDR:PORT argument"),
                }
            }
            "--connect" => {
                i += 1;
                match args.get(i) {
                    Some(a) => connect = Some(a.clone()),
                    None => return usage_error("--connect requires an ADDR:PORT argument"),
                }
            }
            "--store" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => store_dir = Some(dir.clone()),
                    None => return usage_error("--store requires a directory argument"),
                }
            }
            "--port-file" => {
                i += 1;
                match args.get(i) {
                    Some(p) => port_file = Some(p.clone()),
                    None => return usage_error("--port-file requires a path argument"),
                }
            }
            "--workers" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => workers = n,
                    _ => return usage_error("--workers takes a positive integer"),
                }
            }
            "--queue" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => queue = n,
                    _ => return usage_error("--queue takes a positive integer"),
                }
            }
            "--deadline-ms" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => deadline_ms = Some(n),
                    _ => return usage_error("--deadline-ms takes a positive integer"),
                }
            }
            "--io-timeout-ms" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => io_timeout_ms = n,
                    _ => return usage_error("--io-timeout-ms takes a positive integer"),
                }
            }
            "--watch" => watch_poll_ms = Some(200),
            flag if flag.starts_with("--watch=") => match flag["--watch=".len()..].parse::<u64>() {
                Ok(n) if n >= 1 => watch_poll_ms = Some(n),
                _ => return usage_error("--watch=MS takes a positive poll interval"),
            },
            "--metrics" => dump_metrics = true,
            "--ping" => action_ping = true,
            "--shutdown" => action_shutdown = true,
            "--engine" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("summary") => engine = Engine::Summary,
                    Some("context") | Some("context-sensitive") => {
                        engine = Engine::ContextSensitive
                    }
                    other => {
                        return usage_error(&format!(
                            "unknown engine {other:?} (use `summary` or `context`)"
                        ))
                    }
                }
            }
            "--jobs" | "-j" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("auto") => jobs = safeflow_util::pool::default_jobs(),
                    Some(n) => match n.parse::<usize>() {
                        Ok(n) if n >= 1 => jobs = n,
                        _ => return usage_error("--jobs takes a positive integer or `auto`"),
                    },
                    None => return usage_error("--jobs requires an argument"),
                }
            }
            "--budget" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    return usage_error("--budget requires an argument (e.g. deadline-ms=500)");
                };
                if let Err(e) = crate::parse_budget(spec, &mut budget) {
                    return usage_error(&format!("--budget: {e}"));
                }
            }
            "--inject" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    return usage_error("--inject requires an argument (SITE[:KEY][:KIND])");
                };
                match crate::parse_inject(spec) {
                    Ok(rule) => injects.push(rule),
                    Err(e) => return usage_error(&format!("--inject: {e}")),
                }
            }
            "--fault-seed" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    return usage_error("--fault-seed requires an argument (SEED[:RATE])");
                };
                match crate::parse_fault_seed(spec) {
                    Ok(sr) => fault_seed = Some(sr),
                    Err(e) => return usage_error(&format!("--fault-seed: {e}")),
                }
            }
            flag if flag.starts_with('-') => {
                return usage_error(&format!("serve: unknown flag `{flag}` (try --help)"));
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }

    if let Some(addr) = connect {
        let action = if action_shutdown {
            ClientAction::Shutdown
        } else if action_ping {
            ClientAction::Ping
        } else if dump_metrics {
            ClientAction::Metrics
        } else if !files.is_empty() {
            ClientAction::Check(files)
        } else {
            return usage_error(
                "serve --connect needs files to check, or --ping/--metrics/--shutdown",
            );
        };
        return run_client(&addr, action, deadline_ms, io_timeout_ms);
    }
    if action_ping || action_shutdown {
        return usage_error("--ping/--shutdown require --connect ADDR");
    }
    if !files.is_empty() {
        return usage_error("daemon mode takes no file arguments (clients send them)");
    }

    // Serve sites go to the protocol-layer plan; engine sites would
    // disable the store (and with it the whole warm path) in every
    // resident session, so refuse them here.
    if injects.iter().any(|(s, ..)| !matches!(s, FaultSite::ServeRequest | FaultSite::ServeFrame)) {
        return usage_error(
            "serve only accepts serve-request/serve-frame injection sites \
             (engine sites would disable the resident store)",
        );
    }
    let fault_plan = if fault_seed.is_some() || !injects.is_empty() {
        let mut plan = match fault_seed {
            Some((seed, rate)) => FaultPlan::seeded(seed, rate),
            None => FaultPlan::new(),
        };
        for (site, key, kind) in injects {
            plan = plan.with_fault(site, key, kind);
        }
        Some(plan)
    } else {
        None
    };

    let analysis =
        AnalysisConfig::builder().engine(engine).jobs(jobs).budget(budget).build_config();
    let opts = ServeOptions {
        analysis,
        store_dir: store_dir.map(std::path::PathBuf::from),
        workers,
        queue_capacity: queue,
        default_deadline_ms: deadline_ms,
        io_timeout_ms,
        watch_poll_ms,
        fault_plan,
    };

    install_term_handler();
    let handle = match Daemon::start(opts, &listen) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("safeflow serve: cannot bind {listen}: {e}");
            return ExitCode::from(2);
        }
    };
    let addr = handle.addr();
    if let Some(path) = &port_file {
        // Written atomically (temp + rename) so a polling script never
        // reads a half-written address.
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, format!("{addr}\n")).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    }
    println!("serve: listening on {addr}");

    // Wait for a shutdown frame (observed via the handle) or a signal.
    loop {
        if TERM_FLAG.load(Ordering::SeqCst) {
            handle.begin_shutdown();
        }
        if handle.is_shutting_down() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let snapshot = handle.wait();
    if dump_metrics {
        println!("-- metrics --");
        print!("{}", snapshot.render_text());
    }
    println!("serve: drained, exiting");
    ExitCode::SUCCESS
}

/// Client mode: one request, response printed, status mapped back onto
/// the exit-code contract (statuses 0–4 pass through; Timeout exits 4
/// like any exhausted budget; Overloaded/BadRequest/ShuttingDown exit 2).
fn run_client(
    addr: &str,
    action: ClientAction,
    deadline_ms: Option<u64>,
    io_timeout_ms: u64,
) -> ExitCode {
    let mut client = match Client::connect(addr, io_timeout_ms) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("safeflow serve: cannot connect to {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    let resp = match action {
        ClientAction::Check(files) => client.check_paths(&files, deadline_ms.unwrap_or(0)),
        ClientAction::Ping => client.ping(),
        ClientAction::Metrics => client.metrics(),
        ClientAction::Shutdown => client.shutdown(),
    };
    match resp {
        Ok(resp) => {
            if !resp.rendered.is_empty() {
                print!("{}", resp.rendered);
                if !resp.rendered.ends_with('\n') {
                    println!();
                }
            }
            if resp.status == Status::Clean
                && !resp.report_json.is_empty()
                && resp.rendered == "metrics"
            {
                println!("{}", resp.report_json);
            }
            let code = match resp.status as u8 {
                c @ 0..=4 => c,
                5 => 4, // Timeout degrades like any exhausted budget
                _ => 2, // Overloaded / BadRequest / ShuttingDown: unusable
            };
            if resp.status == Status::ShuttingDown {
                return ExitCode::SUCCESS; // requested drain: success
            }
            ExitCode::from(code)
        }
        Err(e) => {
            eprintln!("safeflow serve: request failed: {e}");
            ExitCode::from(2)
        }
    }
}
