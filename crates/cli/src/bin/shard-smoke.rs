//! `shard-smoke` — the process-level sharding drill behind `make shard-smoke`.
//!
//! Everything the in-process shard tests cannot exercise with real
//! processes:
//!
//! 1. write the deterministic monorepo corpus to disk and run
//!    `safeflow check --shards 1` and `--shards 4` against separate
//!    stores, asserting the rendered reports are **byte-identical** cold;
//! 2. rerun both warm (manifest replay) and assert all four outputs —
//!    cold/warm × 1/4 shards — are the same bytes, across `--jobs`;
//! 3. SIGKILL one `shard-worker` process mid-run while its three siblings
//!    finish, then run the coordinator's merge check over the surviving
//!    (possibly torn) segments and assert the report is still
//!    byte-identical — a killed worker costs recomputation, never
//!    correctness.
//!
//! Usage: `shard-smoke path/to/safeflow` (the release CLI binary).
//! Exits nonzero with a message on the first violated invariant.

use safeflow_corpus::monorepo::{generate_monorepo, MonorepoParams};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("shard-smoke FAILED: {msg}");
    std::process::exit(1);
}

struct TempTree {
    root: PathBuf,
}

impl TempTree {
    fn new() -> TempTree {
        let root =
            std::env::temp_dir().join(format!("safeflow-shard-smoke-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("src")).expect("create temp tree");
        TempTree { root }
    }
    fn src(&self) -> PathBuf {
        self.root.join("src")
    }
    fn store(&self, name: &str) -> String {
        self.root.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Writes the monorepo corpus under `src/` (headers and packages keep
/// their relative layout) and returns the file arguments in corpus order,
/// root TU first.
fn write_corpus(tree: &TempTree) -> Vec<String> {
    let files = generate_monorepo(MonorepoParams::small());
    let mut names = Vec::new();
    for (name, text) in files {
        let path = tree.src().join(&name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create corpus subdir");
        }
        std::fs::write(&path, text).expect("write corpus file");
        names.push(name);
    }
    names
}

/// One `safeflow check` run from the corpus directory. Returns the raw
/// stdout bytes and the exit code; exit codes >= 3 (degraded / usage /
/// internal error) fail the drill outright.
fn check(safeflow: &Path, tree: &TempTree, files: &[String], extra: &[&str]) -> (Vec<u8>, i32) {
    let out = Command::new(safeflow)
        .arg("check")
        .args(files)
        .args(extra)
        .current_dir(tree.src())
        .stderr(Stdio::inherit())
        .output()
        .unwrap_or_else(|e| fail(&format!("spawn safeflow check: {e}")));
    let code = out.status.code().unwrap_or_else(|| fail("check killed by signal"));
    if code >= 3 {
        fail(&format!("check {extra:?} exited {code}"));
    }
    (out.stdout, code)
}

fn assert_same(label: &str, a: &(Vec<u8>, i32), b: &(Vec<u8>, i32)) {
    if a.1 != b.1 {
        fail(&format!("{label}: exit codes differ ({} vs {})", a.1, b.1));
    }
    if a.0 != b.0 {
        fail(&format!("{label}: rendered reports differ ({} vs {} bytes)", a.0.len(), b.0.len()));
    }
}

fn main() {
    let safeflow = PathBuf::from(
        std::env::args().nth(1).unwrap_or_else(|| fail("usage: shard-smoke path/to/safeflow")),
    );
    if !safeflow.is_file() {
        fail(&format!("{} is not a file (run `make build` first)", safeflow.display()));
    }
    let safeflow =
        safeflow.canonicalize().unwrap_or_else(|e| fail(&format!("canonicalize safeflow: {e}")));
    let tree = TempTree::new();
    let files = write_corpus(&tree);
    let store_a = tree.store("store-a");
    let store_b = tree.store("store-b");

    // 1. Cold: unsharded vs 4-way sharded, separate stores.
    let cold_1 =
        check(&safeflow, &tree, &files, &["--store", &store_a, "--shards", "1", "--jobs", "2"]);
    let cold_4 =
        check(&safeflow, &tree, &files, &["--store", &store_b, "--shards", "4", "--jobs", "2"]);
    assert_same("cold --shards 1 vs --shards 4", &cold_1, &cold_4);
    println!(
        "shard-smoke: cold 4-way sharded report byte-identical to unsharded (exit {})",
        cold_1.1
    );

    // 2. Warm replays over both stores, at a different --jobs level.
    let warm_1 =
        check(&safeflow, &tree, &files, &["--store", &store_a, "--shards", "1", "--jobs", "8"]);
    let warm_4 =
        check(&safeflow, &tree, &files, &["--store", &store_b, "--shards", "4", "--jobs", "8"]);
    assert_same("warm --shards 1 vs cold", &warm_1, &cold_1);
    assert_same("warm --shards 4 vs cold", &warm_4, &cold_1);
    println!("shard-smoke: warm replays byte-identical across stores and --jobs");

    // 3. SIGKILL drill: four shard-worker processes against a fresh store,
    // one killed mid-run (its segment may be torn mid-record). The merge
    // check over the survivors must still produce the same bytes.
    let store_c = tree.store("store-c");
    let worker = |k: usize| {
        let mut cmd = Command::new(&safeflow);
        cmd.arg("shard-worker")
            .arg("--shard")
            .arg(k.to_string())
            .arg("--shards")
            .arg("4")
            .arg("--store")
            .arg(&store_c)
            .arg("--jobs")
            .arg("2")
            .args(&files)
            .current_dir(tree.src())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        cmd.spawn().unwrap_or_else(|e| fail(&format!("spawn shard-worker {k}: {e}")))
    };
    let mut victim = worker(0);
    let mut survivors: Vec<_> = (1..4).map(worker).collect();
    std::thread::sleep(Duration::from_millis(10));
    victim.kill().unwrap_or_else(|e| fail(&format!("SIGKILL worker 0: {e}")));
    let status = victim.wait().unwrap_or_else(|e| fail(&format!("wait killed worker: {e}")));
    if status.success() {
        // It finished before the signal landed; the drill still holds
        // (the store is simply complete), but say so.
        println!("shard-smoke: note — worker 0 finished before SIGKILL landed");
    }
    for (i, child) in survivors.iter_mut().enumerate() {
        let status = child.wait().unwrap_or_else(|e| fail(&format!("wait worker {}: {e}", i + 1)));
        if !status.success() {
            fail(&format!("surviving worker {} exited {status}", i + 1));
        }
    }
    let merged = check(&safeflow, &tree, &files, &["--store", &store_c, "--jobs", "2"]);
    assert_same("post-SIGKILL merge vs cold", &merged, &cold_1);
    println!("shard-smoke: SIGKILLed worker only cost recomputation — merge check byte-identical");
    println!("shard-smoke OK: sharded byte-identity held cold, warm, and through a worker kill");
}
