//! End-to-end tests of `safeflow serve` through the real binary: daemon
//! lifecycle, client mode, byte-identity with one-shot `check`, and the
//! SIGTERM drain path. The deeper robustness drills (overload, faults,
//! SIGKILL) live in `crates/serve/tests/serve.rs` and the `serve-smoke`
//! harness.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn safeflow() -> Command {
    Command::new(env!("CARGO_BIN_EXE_safeflow"))
}

struct Temp {
    root: PathBuf,
}

impl Temp {
    fn new(tag: &str) -> Temp {
        let root =
            std::env::temp_dir().join(format!("safeflow-serve-cli-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        Temp { root }
    }
}

impl Drop for Temp {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Spawns a daemon and waits for its port file; killed on drop unless
/// already waited for.
fn spawn_daemon(tmp: &Temp, extra: &[&str]) -> (Child, String) {
    let port_file = tmp.root.join("port");
    let mut cmd = safeflow();
    cmd.arg("serve")
        .arg("--port-file")
        .arg(&port_file)
        .arg("--store")
        .arg(tmp.root.join("store"))
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    let child = cmd.spawn().expect("spawn daemon");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            let s = s.trim().to_string();
            if !s.is_empty() {
                break s;
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote its port file");
        std::thread::sleep(Duration::from_millis(25));
    };
    (child, addr)
}

fn write_program(tmp: &Temp) -> PathBuf {
    let p = tmp.root.join("prog.c");
    // The Figure 2 example ships in the corpus crate, but this test sees
    // only the binary; a tiny annotated program with one real finding is
    // enough for an end-to-end identity check.
    std::fs::write(
        &p,
        r#"
        typedef struct { int control; } SHMData;
        SHMData *noncoreCtrl;
        void *shmat(int shmid, void *addr, int flags);
        void kill(int pid, int sig);

        void initComm(void)
        /** SafeFlow Annotation shminit */
        {
            noncoreCtrl = (SHMData *) shmat(0, 0, 0);
            /** SafeFlow Annotation
                assume(shmvar(noncoreCtrl, sizeof(SHMData)))
                assume(noncore(noncoreCtrl))
            */
        }

        int main() {
            int pid;
            initComm();
            pid = noncoreCtrl->control;
            kill(pid, 9);
            return 0;
        }
        "#,
    )
    .unwrap();
    p
}

#[test]
fn client_mode_matches_one_shot_check_bytes_and_exit_code() {
    let tmp = Temp::new("client");
    let prog = write_program(&tmp);
    let one_shot = safeflow().arg("check").arg(&prog).output().expect("one-shot runs");

    let (mut daemon, addr) = spawn_daemon(&tmp, &[]);
    let via_daemon =
        safeflow().args(["serve", "--connect", &addr]).arg(&prog).output().expect("client runs");
    assert_eq!(via_daemon.status.code(), one_shot.status.code(), "exit codes must agree");
    assert_eq!(
        String::from_utf8_lossy(&via_daemon.stdout),
        String::from_utf8_lossy(&one_shot.stdout),
        "daemon-served report must be byte-identical to one-shot check"
    );

    // Ping answers clean; shutdown drains and the daemon process exits 0.
    let ping = safeflow().args(["serve", "--connect", &addr, "--ping"]).output().unwrap();
    assert_eq!(ping.status.code(), Some(0), "{}", String::from_utf8_lossy(&ping.stderr));
    let down = safeflow().args(["serve", "--connect", &addr, "--shutdown"]).output().unwrap();
    assert_eq!(down.status.code(), Some(0), "{}", String::from_utf8_lossy(&down.stderr));
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "drained daemon must exit 0, got {status}");
}

#[test]
fn sigterm_drains_the_daemon() {
    let tmp = Temp::new("sigterm");
    let (mut daemon, addr) = spawn_daemon(&tmp, &[]);
    // It is actually serving before we signal it.
    let ping = safeflow().args(["serve", "--connect", &addr, "--ping"]).output().unwrap();
    assert_eq!(ping.status.code(), Some(0));

    let kill = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success());
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = daemon.try_wait().expect("poll daemon") {
            break status;
        }
        assert!(Instant::now() < deadline, "daemon ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "SIGTERM must drain to exit 0, got {status}");
}

#[test]
fn serve_rejects_engine_fault_sites() {
    let out = safeflow().args(["serve", "--inject", "scc:0"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("serve-request"), "must point at the protocol sites: {err}");
}

#[test]
fn engine_mode_rejects_serve_fault_sites() {
    let out = safeflow().args(["--inject", "serve-request", "--fig2"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("serve"), "{err}");
}
