//! End-to-end tests of the `safeflow` binary.

use std::process::Command;

fn safeflow() -> Command {
    Command::new(env!("CARGO_BIN_EXE_safeflow"))
}

#[test]
fn help_prints_usage() {
    let out = safeflow().arg("--help").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("--table1"));
}

#[test]
fn fig2_reports_error_and_exits_nonzero() {
    let out = safeflow().arg("--fig2").output().expect("runs");
    assert_eq!(out.status.code(), Some(2), "errors found => exit 2");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ERROR"), "{text}");
    assert!(text.contains("feedback"), "{text}");
}

#[test]
fn injected_scc_panic_is_contained_and_exits_3() {
    let out = safeflow()
        .args(["--engine", "summary", "--inject", "scc", "--fig2"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(3), "contained panic => exit 3");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DEGRADED RUN"), "{text}");
    assert!(text.contains("internal error (contained)"), "{text}");
}

#[test]
fn bad_budget_spec_exits_2() {
    let out = safeflow().args(["--budget", "warp-factor=9", "--fig2"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown budget key"), "{err}");
}

#[test]
fn bad_inject_site_exits_2() {
    let out = safeflow().args(["--inject", "moon:1", "--fig2"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn table1_matches_and_exits_zero() {
    for engine in ["context", "summary"] {
        let out = safeflow().args(["--engine", engine, "--table1"]).output().expect("runs");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "--table1 with {engine} must match:\n{text}");
        assert!(text.contains("finding counts MATCH"), "{text}");
        assert!(text.contains("[FOUND]"));
        assert!(!text.contains("[MISSED]"));
    }
}

#[test]
fn analyzes_file_from_disk() {
    let dir = std::env::temp_dir().join("safeflow_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("clean.c");
    std::fs::write(
        &path,
        r#"
        typedef struct { float v; } Blk;
        Blk *reg;
        void *shmat(int a, void *b, int c);
        void sink(float v);
        void init(void)
        /** SafeFlow Annotation shminit */
        {
            reg = (Blk *) shmat(0, 0, 0);
            /** SafeFlow Annotation assume(shmvar(reg, sizeof(Blk))) */
        }
        int main() { init(); sink(1.0); return 0; }
        "#,
    )
    .unwrap();
    let out = safeflow().arg(path.to_str().unwrap()).output().expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn dot_flag_emits_graphviz() {
    let out = safeflow().args(["--fig2", "--dot"]).output().expect("runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("digraph valueflow"), "{text}");
}

#[test]
fn unknown_flag_exits_2_and_prints_usage() {
    let out = safeflow().arg("--bogus").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag `--bogus`"), "{err}");
    assert!(err.contains("USAGE"), "argument errors must print usage:\n{err}");
}

#[test]
fn jobs_zero_exits_2_and_prints_usage() {
    let out = safeflow().args(["--jobs", "0", "--fig2"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--jobs"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn trailing_value_flags_exit_2_and_print_usage() {
    for flag in ["--budget", "--inject", "--fault-seed", "--jobs", "--engine", "--format"] {
        let out = safeflow().args(["--fig2", flag]).output().expect("runs");
        assert_eq!(out.status.code(), Some(2), "trailing {flag} must exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("USAGE"), "trailing {flag} must print usage:\n{err}");
    }
}

#[test]
fn metrics_flag_appends_metrics_block() {
    let out = safeflow().args(["--fig2", "--metrics"]).output().expect("runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("-- metrics --"), "{text}");
    assert!(text.contains("counters.report.warnings"), "{text}");
    assert!(text.contains("counters.taint.contexts"), "{text}");
}

#[test]
fn metrics_json_flag_emits_sections() {
    let out = safeflow()
        .args(["--fig2", "--engine", "summary", "--metrics=json"])
        .output()
        .expect("runs");
    let text = String::from_utf8_lossy(&out.stdout);
    for section in ["\"counters\"", "\"work\"", "\"sched\"", "\"dist\"", "\"timings_ns\""] {
        assert!(text.contains(section), "missing {section} in:\n{text}");
    }
    assert!(text.contains("summary.cache_misses"), "{text}");
}

/// Drops the schedule-dependent `metrics` sections (`sched`, `dist`,
/// `timings_ns`) from a rendered `safeflow-report-v1` document. The
/// sections are objects at a fixed indent (4 spaces) of the pretty
/// printer, so a line-based scan is exact.
fn strip_volatile_sections(doc: &str) -> String {
    let mut out = String::new();
    let mut skipping = false;
    for line in doc.lines() {
        if skipping {
            if line == "    }," || line == "    }" {
                skipping = false;
            }
            continue;
        }
        let trimmed = line.trim_start();
        if line.starts_with("    \"")
            && ["\"sched\":", "\"dist\":", "\"timings_ns\":"].iter().any(|s| trimmed.starts_with(s))
        {
            skipping = !trimmed.ends_with("{},") && !trimmed.ends_with("{}");
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[test]
fn format_json_is_byte_identical_across_thread_counts() {
    let run = |jobs: &str| {
        let out = safeflow()
            .args(["--fig2", "--engine", "summary", "--format", "json", "--jobs", jobs])
            .output()
            .expect("runs");
        assert_eq!(out.status.code(), Some(2), "fig2 reports an error");
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(text.contains("\"schema\": \"safeflow-report-v1\""), "{text}");
        strip_volatile_sections(&text)
    };
    let reference = run("1");
    assert!(reference.contains("\"summary.cache_misses\""), "{reference}");
    for jobs in ["4", "8"] {
        assert_eq!(run(jobs), reference, "JSON report diverged at --jobs {jobs}");
    }
}

#[test]
fn parse_error_exits_2() {
    let dir = std::env::temp_dir().join("safeflow_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.c");
    std::fs::write(&path, "int main( { return 0; }").unwrap();
    let out = safeflow().arg(path.to_str().unwrap()).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn oracle_subcommand_agrees_and_is_byte_identical_across_runs_and_jobs() {
    let run = |jobs: &str| {
        let out =
            safeflow().args(["oracle", "--seeds", "0..32", "--jobs", jobs]).output().expect("runs");
        assert_eq!(out.status.code(), Some(0), "oracle found a divergence");
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let first = run("1");
    assert!(first.contains("32 seed(s), 160 comparison(s), 0 divergence(s)"), "{first}");
    // Byte-identical across repeated runs and across worker-thread counts
    // (the single-threaded reference included — parallel lexing must not
    // perturb FileIds or diagnostic order): the oracle's own output
    // participates in the determinism contract.
    assert_eq!(run("1"), first, "oracle output changed between identical runs");
    assert_eq!(run("2"), first, "oracle output changed with --jobs 2");
    assert_eq!(run("8"), first, "oracle output changed with --jobs 8");
}

#[test]
fn oracle_single_seed_and_minimize_flags_are_accepted() {
    let out = safeflow().args(["oracle", "--seeds", "7", "--minimize"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("seeds 7..8"), "{text}");
}

#[test]
fn oracle_rejects_bad_seed_ranges() {
    for bad in [vec!["oracle", "--seeds", "9..3"], vec!["oracle", "--seeds", "x..y"]] {
        let out = safeflow().args(&bad).output().expect("runs");
        assert_eq!(out.status.code(), Some(2), "{bad:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("USAGE"), "{err}");
    }
}

#[test]
fn oracle_help_mentions_subcommand() {
    let out = safeflow().arg("--help").output().expect("runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("safeflow oracle --seeds"), "{text}");
}
