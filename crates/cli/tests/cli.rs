//! End-to-end tests of the `safeflow` binary.

use std::process::Command;

fn safeflow() -> Command {
    Command::new(env!("CARGO_BIN_EXE_safeflow"))
}

#[test]
fn help_prints_usage() {
    let out = safeflow().arg("--help").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("--table1"));
}

#[test]
fn fig2_reports_error_and_exits_nonzero() {
    let out = safeflow().arg("--fig2").output().expect("runs");
    assert_eq!(out.status.code(), Some(2), "errors found => exit 2");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ERROR"), "{text}");
    assert!(text.contains("feedback"), "{text}");
}

#[test]
fn injected_scc_panic_is_contained_and_exits_3() {
    let out = safeflow()
        .args(["--engine", "summary", "--inject", "scc", "--fig2"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(3), "contained panic => exit 3");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DEGRADED RUN"), "{text}");
    assert!(text.contains("internal error (contained)"), "{text}");
}

#[test]
fn bad_budget_spec_exits_2() {
    let out = safeflow().args(["--budget", "warp-factor=9", "--fig2"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown budget key"), "{err}");
}

#[test]
fn bad_inject_site_exits_2() {
    let out = safeflow().args(["--inject", "moon:1", "--fig2"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn table1_matches_and_exits_zero() {
    for engine in ["context", "summary"] {
        let out = safeflow()
            .args(["--engine", engine, "--table1"])
            .output()
            .expect("runs");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "--table1 with {engine} must match:\n{text}"
        );
        assert!(text.contains("finding counts MATCH"), "{text}");
        assert!(text.contains("[FOUND]"));
        assert!(!text.contains("[MISSED]"));
    }
}

#[test]
fn analyzes_file_from_disk() {
    let dir = std::env::temp_dir().join("safeflow_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("clean.c");
    std::fs::write(
        &path,
        r#"
        typedef struct { float v; } Blk;
        Blk *reg;
        void *shmat(int a, void *b, int c);
        void sink(float v);
        void init(void)
        /** SafeFlow Annotation shminit */
        {
            reg = (Blk *) shmat(0, 0, 0);
            /** SafeFlow Annotation assume(shmvar(reg, sizeof(Blk))) */
        }
        int main() { init(); sink(1.0); return 0; }
        "#,
    )
    .unwrap();
    let out = safeflow().arg(path.to_str().unwrap()).output().expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn dot_flag_emits_graphviz() {
    let out = safeflow().args(["--fig2", "--dot"]).output().expect("runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("digraph valueflow"), "{text}");
}

#[test]
fn unknown_flag_exits_2() {
    let out = safeflow().arg("--bogus").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn parse_error_exits_2() {
    let dir = std::env::temp_dir().join("safeflow_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.c");
    std::fs::write(&path, "int main( { return 0; }").unwrap();
    let out = safeflow().arg(path.to_str().unwrap()).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
}
