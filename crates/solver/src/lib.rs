//! # safeflow-solver
//!
//! Affine integer constraint solver — the decision procedure SafeFlow's
//! restriction checker feeds its array-bounds obligations to. The paper
//! (§3.3) hands "the set of affine constraints ... to an integer
//! programming solver such as Omega (paper reference 13)"; this crate implements the core
//! of Pugh's Omega test: normalization, exact equality elimination via the
//! modulo trick, and Fourier–Motzkin variable elimination with real/dark
//! shadows plus splintering, which makes the procedure exact for
//! conjunctions of affine constraints over integers.
//!
//! # Examples
//!
//! ```
//! use safeflow_solver::{System, LinExpr};
//!
//! // 0 <= i < 10 and i == 12 is infeasible.
//! let mut sys = System::new();
//! let i = sys.new_var("i");
//! sys.add_ge(LinExpr::var(i), LinExpr::constant(0));   // i >= 0
//! sys.add_lt(LinExpr::var(i), LinExpr::constant(10));  // i < 10
//! sys.add_eq(LinExpr::var(i), LinExpr::constant(12));  // i == 12
//! assert!(!sys.is_satisfiable());
//! ```

#![warn(missing_docs)]

pub mod expr;
pub mod omega;

pub use expr::{LinExpr, Var};
pub use omega::{Entailment, Feasibility, SolveStats, SolverLimits, System};
