//! The Omega test: exact satisfiability of conjunctions of affine integer
//! constraints (Pugh, 1991). Normalization → equality elimination (unit
//! substitution or the symmetric-modulo trick) → Fourier–Motzkin with
//! real/dark shadows and splintering for the inexact cases.

use crate::expr::{LinExpr, Var};
use std::collections::BTreeMap;

/// Outcome of a feasibility check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// A satisfying integer assignment exists.
    Sat,
    /// No satisfying integer assignment exists.
    Unsat,
    /// The solver gave up (resource bound or arithmetic overflow); callers
    /// must treat this conservatively.
    Unknown,
}

/// Internal constraint: `expr >= 0` or `expr == 0`.
#[derive(Debug, Clone, PartialEq)]
enum C {
    Ge(LinExpr),
    Eq(LinExpr),
}

/// A conjunction of affine constraints over named integer variables.
///
/// # Examples
///
/// ```
/// use safeflow_solver::{System, LinExpr};
///
/// let mut sys = System::new();
/// let i = sys.new_var("i");
/// let n = sys.new_var("n");
/// sys.add_ge(LinExpr::var(i), LinExpr::constant(0));
/// sys.add_lt(LinExpr::var(i), LinExpr::var(n));
/// // The system implies i >= 0 and (trivially) is satisfiable.
/// assert!(sys.is_satisfiable());
/// assert!(sys.implies_ge(LinExpr::var(n), LinExpr::constant(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct System {
    constraints: Vec<C>,
    names: Vec<String>,
}

/// Resource bounds keeping splintering/FM blowup in check.
const MAX_RECURSION: usize = 64;
const MAX_CONSTRAINTS: usize = 4096;

/// Resource limits for a (sequence of) solver invocations.
///
/// `max_steps` counts recursive `solve` activations and is shared across
/// calls through the caller-owned step counter, so one pathological
/// obligation cannot starve the rest of a run: when the pool is spent the
/// solver answers [`Feasibility::Unknown`] instead of grinding on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverLimits {
    /// Total `solve` activations allowed across the shared step counter.
    pub max_steps: u64,
    /// Recursion-depth cap (the historical built-in bound by default).
    pub max_recursion: usize,
    /// Constraint-count cap (the historical built-in bound by default).
    pub max_constraints: usize,
}

impl Default for SolverLimits {
    fn default() -> SolverLimits {
        SolverLimits {
            max_steps: u64::MAX,
            max_recursion: MAX_RECURSION,
            max_constraints: MAX_CONSTRAINTS,
        }
    }
}

impl SolverLimits {
    /// Default limits with a step budget of `max_steps`.
    pub fn steps(max_steps: u64) -> SolverLimits {
        SolverLimits { max_steps, ..SolverLimits::default() }
    }
}

/// Outcome of a budgeted entailment query (see [`System::implies_ge_within`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entailment {
    /// The implication is proved (negation is infeasible).
    Proved,
    /// The implication could not be proved within the solver's intrinsic
    /// bounds (the negation is satisfiable or the solver gave up for a
    /// non-budget reason). Conservative callers treat this as "violation".
    Unproved,
    /// The step budget ran out mid-query. Also "unproved", but worth a
    /// distinct diagnostic: a bigger `--budget` might still prove it.
    BudgetExhausted,
}

/// Aggregate work counters for a (sequence of) solver invocations.
///
/// Like the step counter in [`System::check_within`], a `SolveStats` value
/// is caller-owned and accumulates across calls, so one value can tally a
/// whole run's solver work. All fields are deterministic functions of the
/// queries issued (no wall-clock or scheduling influence).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Recursive `solve` activations — the currency of the step budget.
    pub steps: u64,
    /// Equalities eliminated (unit substitution or the modulo trick).
    pub eq_eliminations: u64,
    /// Variables eliminated by Fourier–Motzkin projection.
    pub fm_eliminations: u64,
    /// `Unknown` verdicts originated: budget/depth/size caps, arithmetic
    /// overflow, or a malformed system with no eliminable variable.
    pub early_exits: u64,
}

impl System {
    /// Creates an empty (trivially satisfiable) system.
    pub fn new() -> System {
        System::default()
    }

    /// Introduces a fresh variable with a debug name.
    pub fn new_var(&mut self, name: impl Into<String>) -> Var {
        let v = Var(self.names.len() as u32);
        self.names.push(name.into());
        v
    }

    /// Number of variables introduced.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints added.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds `lhs >= rhs`.
    pub fn add_ge(&mut self, lhs: LinExpr, rhs: LinExpr) {
        self.constraints.push(C::Ge(lhs - rhs));
    }

    /// Adds `lhs <= rhs`.
    pub fn add_le(&mut self, lhs: LinExpr, rhs: LinExpr) {
        self.constraints.push(C::Ge(rhs - lhs));
    }

    /// Adds `lhs < rhs` (i.e. `lhs <= rhs - 1`).
    pub fn add_lt(&mut self, lhs: LinExpr, rhs: LinExpr) {
        self.constraints.push(C::Ge(rhs - lhs - LinExpr::constant(1)));
    }

    /// Adds `lhs > rhs`.
    pub fn add_gt(&mut self, lhs: LinExpr, rhs: LinExpr) {
        self.constraints.push(C::Ge(lhs - rhs - LinExpr::constant(1)));
    }

    /// Adds `lhs == rhs`.
    pub fn add_eq(&mut self, lhs: LinExpr, rhs: LinExpr) {
        self.constraints.push(C::Eq(lhs - rhs));
    }

    /// Exact feasibility check.
    pub fn check(&self) -> Feasibility {
        let mut steps = 0u64;
        self.check_within(&SolverLimits::default(), &mut steps)
    }

    /// Feasibility check under explicit resource limits. `steps` is a
    /// caller-owned counter accumulated across calls; when it exceeds
    /// `limits.max_steps` the check (and any later check sharing the
    /// counter) returns [`Feasibility::Unknown`].
    pub fn check_within(&self, limits: &SolverLimits, steps: &mut u64) -> Feasibility {
        let mut stats = SolveStats { steps: *steps, ..SolveStats::default() };
        let r = self.check_stats(limits, &mut stats);
        *steps = stats.steps;
        r
    }

    /// Feasibility check under explicit resource limits, accumulating the
    /// full work counters (a superset of [`System::check_within`]'s step
    /// counter) into the caller-owned `stats`.
    pub fn check_stats(&self, limits: &SolverLimits, stats: &mut SolveStats) -> Feasibility {
        let mut next_var = self.names.len() as u32;
        solve(self.constraints.clone(), &mut next_var, 0, limits, stats)
    }

    /// `true` unless the system is *provably* infeasible ([`Feasibility::Unknown`]
    /// counts as satisfiable — the conservative direction for a checker
    /// looking for possible violations).
    pub fn is_satisfiable(&self) -> bool {
        self.check() != Feasibility::Unsat
    }

    /// Whether the system entails `lhs >= rhs`: `self ∧ (lhs < rhs)` must be
    /// provably infeasible.
    pub fn implies_ge(&self, lhs: LinExpr, rhs: LinExpr) -> bool {
        let mut neg = self.clone();
        neg.add_lt(lhs, rhs);
        neg.check() == Feasibility::Unsat
    }

    /// Whether the system entails `lhs < rhs`.
    pub fn implies_lt(&self, lhs: LinExpr, rhs: LinExpr) -> bool {
        let mut neg = self.clone();
        neg.add_ge(lhs, rhs);
        neg.check() == Feasibility::Unsat
    }

    /// Budgeted form of [`System::implies_ge`]: distinguishes "unproved"
    /// from "step budget ran out". Both are conservative (not proved).
    pub fn implies_ge_within(
        &self,
        lhs: LinExpr,
        rhs: LinExpr,
        limits: &SolverLimits,
        steps: &mut u64,
    ) -> Entailment {
        let mut stats = SolveStats { steps: *steps, ..SolveStats::default() };
        let r = self.implies_ge_stats(lhs, rhs, limits, &mut stats);
        *steps = stats.steps;
        r
    }

    /// Budgeted form of [`System::implies_lt`].
    pub fn implies_lt_within(
        &self,
        lhs: LinExpr,
        rhs: LinExpr,
        limits: &SolverLimits,
        steps: &mut u64,
    ) -> Entailment {
        let mut stats = SolveStats { steps: *steps, ..SolveStats::default() };
        let r = self.implies_lt_stats(lhs, rhs, limits, &mut stats);
        *steps = stats.steps;
        r
    }

    /// [`System::implies_ge_within`] with full work counters.
    pub fn implies_ge_stats(
        &self,
        lhs: LinExpr,
        rhs: LinExpr,
        limits: &SolverLimits,
        stats: &mut SolveStats,
    ) -> Entailment {
        let mut neg = self.clone();
        neg.add_lt(lhs, rhs);
        entailment_of(neg.check_stats(limits, stats), limits, stats.steps)
    }

    /// [`System::implies_lt_within`] with full work counters.
    pub fn implies_lt_stats(
        &self,
        lhs: LinExpr,
        rhs: LinExpr,
        limits: &SolverLimits,
        stats: &mut SolveStats,
    ) -> Entailment {
        let mut neg = self.clone();
        neg.add_ge(lhs, rhs);
        entailment_of(neg.check_stats(limits, stats), limits, stats.steps)
    }

    /// Verifies a satisfying assignment (testing hook).
    pub fn satisfied_by(&self, assignment: &BTreeMap<Var, i64>) -> bool {
        self.constraints.iter().all(|c| match c {
            C::Ge(e) => e.eval(assignment) >= 0,
            C::Eq(e) => e.eval(assignment) == 0,
        })
    }
}

/// Symmetric modulo: `a mod̂ m ∈ (-m/2, m/2]`.
fn smod(a: i64, m: i64) -> i64 {
    let r = a.rem_euclid(m);
    if 2 * r > m {
        r - m
    } else {
        r
    }
}

fn entailment_of(result: Feasibility, limits: &SolverLimits, steps: u64) -> Entailment {
    match result {
        Feasibility::Unsat => Entailment::Proved,
        Feasibility::Unknown if steps > limits.max_steps => Entailment::BudgetExhausted,
        Feasibility::Sat | Feasibility::Unknown => Entailment::Unproved,
    }
}

fn solve(
    mut cs: Vec<C>,
    next_var: &mut u32,
    depth: usize,
    limits: &SolverLimits,
    stats: &mut SolveStats,
) -> Feasibility {
    stats.steps += 1;
    if stats.steps > limits.max_steps {
        stats.early_exits += 1;
        return Feasibility::Unknown;
    }
    if depth > limits.max_recursion || cs.len() > limits.max_constraints {
        stats.early_exits += 1;
        return Feasibility::Unknown;
    }

    // ---- normalize -------------------------------------------------------
    let mut i = 0;
    while i < cs.len() {
        let keep = match &mut cs[i] {
            C::Ge(e) => {
                let g = e.coeff_gcd();
                if g == 0 {
                    if e.constant_term() < 0 {
                        return Feasibility::Unsat;
                    }
                    false // trivially true
                } else {
                    if g > 1 {
                        // Divide: coefficients exactly, constant by floor.
                        let mut ne = LinExpr::constant(e.constant_term().div_euclid(g));
                        for (v, c) in e.terms() {
                            ne.add_term(v, c / g);
                        }
                        *e = ne;
                    }
                    true
                }
            }
            C::Eq(e) => {
                let g = e.coeff_gcd();
                if g == 0 {
                    if e.constant_term() != 0 {
                        return Feasibility::Unsat;
                    }
                    false
                } else {
                    if e.constant_term() % g != 0 {
                        return Feasibility::Unsat; // no integer solution
                    }
                    if g > 1 {
                        let mut ne = LinExpr::constant(e.constant_term() / g);
                        for (v, c) in e.terms() {
                            ne.add_term(v, c / g);
                        }
                        *e = ne;
                    }
                    true
                }
            }
        };
        if keep {
            i += 1;
        } else {
            cs.swap_remove(i);
        }
    }

    // ---- equality elimination ---------------------------------------------
    if let Some(pos) = cs.iter().position(|c| matches!(c, C::Eq(_))) {
        let C::Eq(eq) = cs.swap_remove(pos) else { unreachable!() };
        // Find a variable with |coeff| == 1 for direct substitution.
        if let Some((v, c)) = eq.terms().find(|(_, c)| c.abs() == 1) {
            // c*v + rest = 0  →  v = -rest/c = -c*rest (since c = ±1).
            let mut rest = eq.clone();
            rest.add_term(v, -c);
            let replacement = rest.scaled(-c);
            let new_cs: Vec<C> = cs
                .into_iter()
                .map(|cons| match cons {
                    C::Ge(e) => C::Ge(e.substitute(v, &replacement)),
                    C::Eq(e) => C::Eq(e.substitute(v, &replacement)),
                })
                .collect();
            stats.eq_eliminations += 1;
            return solve(new_cs, next_var, depth + 1, limits, stats);
        }
        // Pugh's modulo trick: shrink coefficients with a fresh variable.
        let Some((k, ak)) = choose_modulo_pivot(&eq) else {
            // A variable-free equality here means normalize was bypassed
            // (e.g. substitution degenerated the system); degrade instead
            // of panicking — Unknown is always a sound answer.
            stats.early_exits += 1;
            return Feasibility::Unknown;
        };
        // Ensure positive pivot coefficient by negating if needed.
        let eq = if ak < 0 { eq.scaled(-1) } else { eq };
        let ak = eq.coeff(k);
        let m = ak + 1;
        let sigma = Var(*next_var);
        *next_var += 1;
        // x_k = -m·σ + Σ_{i≠k} smod(a_i, m)·x_i ... derived from
        // σ = (Σ smod(a_i,m)·x_i + smod(c,m)) / m with smod(a_k,m) = -1.
        let mut replacement = LinExpr::term(sigma, -m);
        for (v, c) in eq.terms() {
            if v != k {
                replacement.add_term(v, smod(c, m));
            }
        }
        replacement.add_constant(smod(eq.constant_term(), m));
        // Substitute into the original equality too (it becomes smaller).
        let mut new_cs: Vec<C> = cs
            .into_iter()
            .map(|cons| match cons {
                C::Ge(e) => C::Ge(e.substitute(k, &replacement)),
                C::Eq(e) => C::Eq(e.substitute(k, &replacement)),
            })
            .collect();
        new_cs.push(C::Eq(eq.substitute(k, &replacement)));
        stats.eq_eliminations += 1;
        return solve(new_cs, next_var, depth + 1, limits, stats);
    }

    // ---- only inequalities left: Fourier–Motzkin ---------------------------
    // Collect variables.
    let mut vars: Vec<Var> = Vec::new();
    for c in &cs {
        let C::Ge(e) = c else { unreachable!() };
        for (v, _) in e.terms() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    if vars.is_empty() {
        // All constraints are constant and were validated in normalize.
        return Feasibility::Sat;
    }

    // Choose the variable minimizing lowers×uppers. A system with no
    // eliminable candidate is malformed; degrade to Unknown (conservative
    // top) rather than panicking into the containment layer.
    let Some((x, lowers, uppers)) = choose_elimination_var(&vars, &cs) else {
        stats.early_exits += 1;
        return Feasibility::Unknown;
    };
    stats.fm_eliminations += 1;

    // Unbounded on one side: drop all constraints involving x.
    if lowers.is_empty() || uppers.is_empty() {
        let rest: Vec<C> = cs
            .iter()
            .filter(|c| {
                let C::Ge(e) = c else { return true };
                e.coeff(x) == 0
            })
            .cloned()
            .collect();
        return solve(rest, next_var, depth + 1, limits, stats);
    }

    // Shadows.
    let mut real: Vec<C> = Vec::new();
    let mut dark: Vec<C> = Vec::new();
    let mut exact = true;
    let mut max_upper_coeff: i64 = 0;
    for c in &cs {
        let C::Ge(e) = c else { unreachable!() };
        if e.coeff(x) == 0 {
            real.push(C::Ge(e.clone()));
            dark.push(C::Ge(e.clone()));
        } else if e.coeff(x) < 0 {
            max_upper_coeff = max_upper_coeff.max(-e.coeff(x));
        }
    }
    for &li in &lowers {
        let C::Ge(low) = &cs[li] else { unreachable!() };
        let a = low.coeff(x); // a > 0:  a·x + e1 >= 0
        let mut e1 = low.clone();
        e1.add_term(x, -a);
        for &ui in &uppers {
            let C::Ge(up) = &cs[ui] else { unreachable!() };
            let b = -up.coeff(x); // b > 0: -b·x + e2 >= 0
            let mut e2 = up.clone();
            e2.add_term(x, b);
            // Overflow guard on the products.
            if a.checked_mul(b).is_none() {
                stats.early_exits += 1;
                return Feasibility::Unknown;
            }
            // Real shadow: b·e1 + a·e2 >= 0.
            let rs = e1.scaled(b) + e2.scaled(a);
            // Dark shadow: b·e1 + a·e2 >= (a-1)(b-1).
            let ds = rs.clone() - LinExpr::constant((a - 1) * (b - 1));
            if a > 1 && b > 1 {
                exact = false;
            }
            real.push(C::Ge(rs));
            dark.push(C::Ge(ds));
        }
    }

    if exact {
        return solve(real, next_var, depth + 1, limits, stats);
    }

    // Inexact: dark-shadow SAT ⇒ SAT; real-shadow UNSAT ⇒ UNSAT.
    match solve(dark, next_var, depth + 1, limits, stats) {
        Feasibility::Sat => return Feasibility::Sat,
        Feasibility::Unknown => return Feasibility::Unknown,
        Feasibility::Unsat => {}
    }
    match solve(real.clone(), next_var, depth + 1, limits, stats) {
        Feasibility::Unsat => return Feasibility::Unsat,
        Feasibility::Unknown => return Feasibility::Unknown,
        Feasibility::Sat => {}
    }

    // Splinter: any solution must sit close above some lower bound.
    // For each lower bound a·x >= -e1, try a·x = -e1 + i for
    // i in 0 ..= (a·bmax - a - bmax)/bmax.
    for &li in &lowers {
        let C::Ge(low) = &cs[li] else { unreachable!() };
        let a = low.coeff(x);
        let mut e1 = low.clone();
        e1.add_term(x, -a);
        let bmax = max_upper_coeff;
        let hi = (a * bmax - a - bmax).div_euclid(bmax);
        for i in 0..=hi.max(0) {
            let mut splinter = cs.clone();
            // a·x + e1 - i == 0
            let mut eqe = LinExpr::term(x, a) + e1.clone();
            eqe.add_constant(-i);
            splinter.push(C::Eq(eqe));
            match solve(splinter, next_var, depth + 1, limits, stats) {
                Feasibility::Sat => return Feasibility::Sat,
                Feasibility::Unknown => return Feasibility::Unknown,
                Feasibility::Unsat => {}
            }
        }
    }
    Feasibility::Unsat
}

/// Picks the pivot for Pugh's modulo trick: the variable of `eq` with the
/// smallest |coefficient|. `None` when the equality has no variables left —
/// callers must degrade to [`Feasibility::Unknown`] rather than assume
/// `normalize` already removed the constraint (a degenerate equality can be
/// produced by substitution after normalization ran).
fn choose_modulo_pivot(eq: &LinExpr) -> Option<(Var, i64)> {
    eq.terms().min_by_key(|(_, c)| c.abs())
}

/// Picks the Fourier–Motzkin elimination variable minimizing the
/// lowers×uppers product, returning it with the indices of its lower- and
/// upper-bound constraints. `None` when there is no candidate to
/// eliminate — callers must degrade to [`Feasibility::Unknown`].
fn choose_elimination_var(vars: &[Var], cs: &[C]) -> Option<(Var, Vec<usize>, Vec<usize>)> {
    let mut best: Option<(Var, Vec<usize>, Vec<usize>)> = None;
    for &v in vars {
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        for (i, c) in cs.iter().enumerate() {
            let C::Ge(e) = c else { continue };
            let cf = e.coeff(v);
            if cf > 0 {
                lo.push(i);
            } else if cf < 0 {
                hi.push(i);
            }
        }
        let cost = lo.len() * hi.len();
        let better = match &best {
            None => true,
            Some((_, bl, bh)) => cost < bl.len() * bh.len(),
        };
        if better {
            best = Some((v, lo, hi));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var_sys(n: usize) -> (System, Vec<Var>) {
        let mut s = System::new();
        let vars = (0..n).map(|i| s.new_var(format!("v{i}"))).collect();
        (s, vars)
    }

    #[test]
    fn empty_system_sat() {
        assert_eq!(System::new().check(), Feasibility::Sat);
    }

    #[test]
    fn contradictory_constants() {
        let mut s = System::new();
        s.add_ge(LinExpr::constant(-1), LinExpr::constant(0));
        assert_eq!(s.check(), Feasibility::Unsat);
    }

    #[test]
    fn simple_box_sat() {
        let (mut s, v) = var_sys(1);
        s.add_ge(LinExpr::var(v[0]), LinExpr::constant(0));
        s.add_lt(LinExpr::var(v[0]), LinExpr::constant(10));
        assert_eq!(s.check(), Feasibility::Sat);
    }

    #[test]
    fn empty_interval_unsat() {
        let (mut s, v) = var_sys(1);
        s.add_gt(LinExpr::var(v[0]), LinExpr::constant(5));
        s.add_lt(LinExpr::var(v[0]), LinExpr::constant(6));
        // 5 < x < 6 has no integer solution.
        assert_eq!(s.check(), Feasibility::Unsat);
    }

    #[test]
    fn equality_gcd_infeasible() {
        // 2x + 4y == 3 has no integer solution.
        let (mut s, v) = var_sys(2);
        s.add_eq(LinExpr::term(v[0], 2) + LinExpr::term(v[1], 4), LinExpr::constant(3));
        assert_eq!(s.check(), Feasibility::Unsat);
    }

    #[test]
    fn equality_substitution() {
        // x == 2y, x == 7 → y == 3.5: unsat.
        let (mut s, v) = var_sys(2);
        s.add_eq(LinExpr::var(v[0]), LinExpr::term(v[1], 2));
        s.add_eq(LinExpr::var(v[0]), LinExpr::constant(7));
        assert_eq!(s.check(), Feasibility::Unsat);
        // x == 2y, x == 8 is fine.
        let (mut s, v) = var_sys(2);
        s.add_eq(LinExpr::var(v[0]), LinExpr::term(v[1], 2));
        s.add_eq(LinExpr::var(v[0]), LinExpr::constant(8));
        assert_eq!(s.check(), Feasibility::Sat);
    }

    #[test]
    fn mod_trick_needed() {
        // 7x + 12y == 17 (all |coeff| > 1): solvable over Z (x = -1, y = 2).
        let (mut s, v) = var_sys(2);
        s.add_eq(LinExpr::term(v[0], 7) + LinExpr::term(v[1], 12), LinExpr::constant(17));
        assert_eq!(s.check(), Feasibility::Sat);
    }

    #[test]
    fn dark_shadow_classic() {
        // The classic Omega example: 0 <= x; 2x <= 7; 3x >= 8 → x in
        // [8/3, 7/2] → x = 3 exists.
        let (mut s, v) = var_sys(1);
        s.add_ge(LinExpr::var(v[0]), LinExpr::constant(0));
        s.add_le(LinExpr::term(v[0], 2), LinExpr::constant(7));
        s.add_ge(LinExpr::term(v[0], 3), LinExpr::constant(8));
        assert_eq!(s.check(), Feasibility::Sat);
    }

    #[test]
    fn integer_hole_between_rationals() {
        // 3x >= 7 and 2x <= 5: rational solutions in [7/3, 5/2] but no
        // integer.
        let (mut s, v) = var_sys(1);
        s.add_ge(LinExpr::term(v[0], 3), LinExpr::constant(7));
        s.add_le(LinExpr::term(v[0], 2), LinExpr::constant(5));
        assert_eq!(s.check(), Feasibility::Unsat);
    }

    #[test]
    fn two_var_projection() {
        // x + y >= 10, x <= 3, y <= 4 → max x+y = 7 < 10: unsat.
        let (mut s, v) = var_sys(2);
        s.add_ge(LinExpr::var(v[0]) + LinExpr::var(v[1]), LinExpr::constant(10));
        s.add_le(LinExpr::var(v[0]), LinExpr::constant(3));
        s.add_le(LinExpr::var(v[1]), LinExpr::constant(4));
        assert_eq!(s.check(), Feasibility::Unsat);
    }

    #[test]
    fn array_bounds_obligation_in_bounds() {
        // The A1/A2 shape: 0 <= i < n, n == 16, index expr = i → prove
        // 0 <= i and i < 16.
        let (mut s, v) = var_sys(2);
        let (i, n) = (v[0], v[1]);
        s.add_ge(LinExpr::var(i), LinExpr::constant(0));
        s.add_lt(LinExpr::var(i), LinExpr::var(n));
        s.add_eq(LinExpr::var(n), LinExpr::constant(16));
        assert!(s.implies_ge(LinExpr::var(i), LinExpr::constant(0)));
        assert!(s.implies_lt(LinExpr::var(i), LinExpr::constant(16)));
        assert!(!s.implies_lt(LinExpr::var(i), LinExpr::constant(15)));
    }

    #[test]
    fn array_bounds_obligation_violation() {
        // 0 <= i < n, n == 16, access a[i + 1]: i + 1 < 16 is NOT implied
        // (i = 15 → 16).
        let (mut s, v) = var_sys(2);
        let (i, n) = (v[0], v[1]);
        s.add_ge(LinExpr::var(i), LinExpr::constant(0));
        s.add_lt(LinExpr::var(i), LinExpr::var(n));
        s.add_eq(LinExpr::var(n), LinExpr::constant(16));
        assert!(!s.implies_lt(LinExpr::var(i) + LinExpr::constant(1), LinExpr::constant(16)));
    }

    #[test]
    fn affine_transformed_index() {
        // 0 <= i < 8, index = 2i + 1 → index < 16 holds, index < 15 fails.
        let (mut s, v) = var_sys(1);
        let i = v[0];
        s.add_ge(LinExpr::var(i), LinExpr::constant(0));
        s.add_lt(LinExpr::var(i), LinExpr::constant(8));
        let idx = LinExpr::term(i, 2) + LinExpr::constant(1);
        assert!(s.implies_lt(idx.clone(), LinExpr::constant(16)));
        assert!(!s.implies_lt(idx, LinExpr::constant(15)));
    }

    #[test]
    fn satisfied_by_checks_assignments() {
        let (mut s, v) = var_sys(2);
        s.add_ge(LinExpr::var(v[0]), LinExpr::var(v[1]));
        let mut ok = BTreeMap::new();
        ok.insert(v[0], 5);
        ok.insert(v[1], 3);
        assert!(s.satisfied_by(&ok));
        let mut bad = BTreeMap::new();
        bad.insert(v[0], 2);
        bad.insert(v[1], 3);
        assert!(!s.satisfied_by(&bad));
    }

    #[test]
    fn smod_symmetric_range() {
        assert_eq!(smod(5, 8), 5 - 8);
        assert_eq!(smod(4, 8), 4);
        assert_eq!(smod(-3, 8), -3);
        assert_eq!(smod(7, 3), 1);
        assert_eq!(smod(8, 3), -1);
    }

    #[test]
    fn unbounded_variable_dropped() {
        // y unconstrained below: x >= y alone is satisfiable.
        let (mut s, v) = var_sys(2);
        s.add_ge(LinExpr::var(v[0]), LinExpr::var(v[1]));
        assert_eq!(s.check(), Feasibility::Sat);
    }

    #[test]
    fn zero_step_budget_is_unknown() {
        let (mut s, v) = var_sys(1);
        s.add_ge(LinExpr::var(v[0]), LinExpr::constant(0));
        let mut steps = 0u64;
        assert_eq!(s.check_within(&SolverLimits::steps(0), &mut steps), Feasibility::Unknown);
        assert_eq!(
            s.implies_ge_within(
                LinExpr::var(v[0]),
                LinExpr::constant(0),
                &SolverLimits::steps(0),
                &mut steps
            ),
            Entailment::BudgetExhausted
        );
    }

    #[test]
    fn generous_budget_matches_unbudgeted() {
        let (mut s, v) = var_sys(2);
        let (i, n) = (v[0], v[1]);
        s.add_ge(LinExpr::var(i), LinExpr::constant(0));
        s.add_lt(LinExpr::var(i), LinExpr::var(n));
        s.add_eq(LinExpr::var(n), LinExpr::constant(16));
        let limits = SolverLimits::steps(1_000_000);
        let mut steps = 0u64;
        assert_eq!(
            s.implies_lt_within(LinExpr::var(i), LinExpr::constant(16), &limits, &mut steps),
            Entailment::Proved
        );
        assert_eq!(
            s.implies_lt_within(LinExpr::var(i), LinExpr::constant(15), &limits, &mut steps),
            Entailment::Unproved
        );
        assert!(steps > 0 && steps < 1_000_000);
    }

    #[test]
    fn shared_step_counter_spends_across_calls() {
        // A counter already past the limit makes the next query exhausted
        // immediately: the pool is shared, not per-call.
        let (mut s, v) = var_sys(1);
        s.add_ge(LinExpr::var(v[0]), LinExpr::constant(0));
        let limits = SolverLimits::steps(5);
        let mut steps = 100u64;
        assert_eq!(
            s.implies_ge_within(LinExpr::var(v[0]), LinExpr::constant(0), &limits, &mut steps),
            Entailment::BudgetExhausted
        );
    }

    #[test]
    fn chained_inequalities_transitive() {
        // a < b, b < c, c < a is a cycle: unsat.
        let (mut s, v) = var_sys(3);
        s.add_lt(LinExpr::var(v[0]), LinExpr::var(v[1]));
        s.add_lt(LinExpr::var(v[1]), LinExpr::var(v[2]));
        s.add_lt(LinExpr::var(v[2]), LinExpr::var(v[0]));
        assert_eq!(s.check(), Feasibility::Unsat);
    }

    #[test]
    fn chooser_with_no_candidates_is_none() {
        // Regression: the inlined chooser ended in `best.unwrap()`, which
        // panics with no candidate variables; the extracted helper must
        // report the case so `solve` can degrade to Unknown instead.
        assert!(choose_elimination_var(&[], &[]).is_none());
        let cs = [C::Ge(LinExpr::constant(1))];
        assert!(choose_elimination_var(&[], &cs).is_none());
    }

    #[test]
    fn modulo_pivot_with_no_vars_is_none() {
        // Regression: the equality-elimination pivot used to be
        // `.expect("equality with no vars was handled in normalize")`,
        // which panics on a variable-free equality; the extracted helper
        // must report the case so `solve` degrades to Unknown instead.
        assert!(choose_modulo_pivot(&LinExpr::constant(0)).is_none());
        assert!(choose_modulo_pivot(&LinExpr::constant(7)).is_none());
        let (k, ak) = choose_modulo_pivot(&LinExpr::term(Var(0), -3)).expect("has a var");
        assert_eq!((k, ak), (Var(0), -3));
    }

    #[test]
    fn degenerate_equalities_never_panic_solve() {
        // Variable-free equalities anywhere in the system must be absorbed
        // (0 = 0 is vacuous, 0 = c contradictory) — never routed into the
        // modulo-pivot, which used to panic on them.
        let mut next_var = 0u32;
        let mut stats = SolveStats::default();
        let cs = vec![C::Eq(LinExpr::constant(0)), C::Eq(LinExpr::term(Var(0), 2))];
        let f = solve(cs, &mut next_var, 0, &SolverLimits::default(), &mut stats);
        assert_eq!(f, Feasibility::Sat);

        let cs = vec![C::Eq(LinExpr::constant(7))];
        let f = solve(cs, &mut next_var, 0, &SolverLimits::default(), &mut stats);
        assert_eq!(f, Feasibility::Unsat);
        assert_eq!(stats.early_exits, 0, "{stats:?}");
    }

    #[test]
    fn stats_count_solver_work() {
        let (mut s, v) = var_sys(2);
        let (i, n) = (v[0], v[1]);
        s.add_ge(LinExpr::var(i), LinExpr::constant(0));
        s.add_lt(LinExpr::var(i), LinExpr::var(n));
        s.add_eq(LinExpr::var(n), LinExpr::constant(16));
        let mut stats = SolveStats::default();
        assert_eq!(s.check_stats(&SolverLimits::default(), &mut stats), Feasibility::Sat);
        assert!(stats.steps > 0);
        assert!(stats.eq_eliminations > 0, "{stats:?}");
        assert!(stats.fm_eliminations > 0, "{stats:?}");
        assert_eq!(stats.early_exits, 0, "{stats:?}");
        // The stats-based entailment agrees with the steps-based one and
        // spends from the same pool.
        let before = stats.steps;
        assert_eq!(
            s.implies_lt_stats(
                LinExpr::var(i),
                LinExpr::constant(16),
                &SolverLimits::default(),
                &mut stats
            ),
            Entailment::Proved
        );
        assert!(stats.steps > before);
    }

    #[test]
    fn exhausted_budget_counts_as_early_exit() {
        let (mut s, v) = var_sys(1);
        s.add_ge(LinExpr::var(v[0]), LinExpr::constant(0));
        let mut stats = SolveStats::default();
        assert_eq!(s.check_stats(&SolverLimits::steps(0), &mut stats), Feasibility::Unknown);
        assert_eq!(stats.early_exits, 1);
    }
}
