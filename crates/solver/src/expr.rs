//! Linear (affine) integer expressions.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An integer variable in a [`System`](crate::System).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// An affine expression `Σ cᵢ·xᵢ + c` with integer coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    terms: BTreeMap<Var, i64>,
    constant: i64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> LinExpr {
        LinExpr { terms: BTreeMap::new(), constant: c }
    }

    /// The expression `1·v`.
    pub fn var(v: Var) -> LinExpr {
        LinExpr::term(v, 1)
    }

    /// The expression `c·v`.
    pub fn term(v: Var, c: i64) -> LinExpr {
        let mut terms = BTreeMap::new();
        if c != 0 {
            terms.insert(v, c);
        }
        LinExpr { terms, constant: 0 }
    }

    /// The coefficient of `v` (0 if absent).
    pub fn coeff(&self, v: Var) -> i64 {
        self.terms.get(&v).copied().unwrap_or(0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Iterates `(variable, nonzero coefficient)` pairs in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (Var, i64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of variables with nonzero coefficient.
    pub fn num_vars(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds `c·v` in place.
    pub fn add_term(&mut self, v: Var, c: i64) {
        let entry = self.terms.entry(v).or_insert(0);
        *entry += c;
        if *entry == 0 {
            self.terms.remove(&v);
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: i64) {
        self.constant += c;
    }

    /// Multiplies the whole expression by `k`.
    pub fn scaled(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self.terms.iter().map(|(&v, &c)| (v, c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Substitutes `v := replacement` (replacement is an affine expression).
    pub fn substitute(&self, v: Var, replacement: &LinExpr) -> LinExpr {
        let c = self.coeff(v);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(&v);
        out = out + replacement.scaled(c);
        out
    }

    /// Evaluates under an assignment (missing variables default to 0).
    pub fn eval(&self, assignment: &BTreeMap<Var, i64>) -> i64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * assignment.get(v).copied().unwrap_or(0))
                .sum::<i64>()
    }

    /// Greatest common divisor of the variable coefficients (0 when
    /// constant).
    pub fn coeff_gcd(&self) -> i64 {
        self.terms.values().fold(0i64, |acc, &c| gcd(acc, c.abs()))
    }
}

/// Euclid's gcd on nonnegative integers (gcd(0, x) = x).
pub fn gcd(mut a: i64, mut b: i64) -> i64 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        let mut out = self;
        for (v, c) in rhs.terms {
            out.add_term(v, c);
        }
        out.constant += rhs.constant;
        out
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    #[allow(clippy::suspicious_arithmetic_impl)] // a - b == a + (-b)
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + rhs.neg()
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scaled(-1)
    }
}

impl Mul<i64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, k: i64) -> LinExpr {
        self.scaled(k)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                if *c == 1 {
                    write!(f, "{v}")?;
                } else if *c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}{v}")?;
                }
                first = false;
            } else if *c >= 0 {
                if *c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}{v}")?;
                }
            } else if *c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_cancellation() {
        let x = Var(0);
        let y = Var(1);
        let e = LinExpr::term(x, 2) + LinExpr::term(y, 3) + LinExpr::constant(5);
        let f = e.clone() - LinExpr::term(x, 2);
        assert_eq!(f.coeff(x), 0);
        assert_eq!(f.coeff(y), 3);
        assert_eq!(f.constant_term(), 5);
        assert_eq!(f.num_vars(), 1);
    }

    #[test]
    fn substitution() {
        let x = Var(0);
        let y = Var(1);
        // e = 2x + 1; substitute x := y + 3 → 2y + 7.
        let e = LinExpr::term(x, 2) + LinExpr::constant(1);
        let r = LinExpr::var(y) + LinExpr::constant(3);
        let s = e.substitute(x, &r);
        assert_eq!(s.coeff(y), 2);
        assert_eq!(s.constant_term(), 7);
        assert_eq!(s.coeff(x), 0);
    }

    #[test]
    fn eval_and_gcd() {
        let x = Var(0);
        let y = Var(1);
        let e = LinExpr::term(x, 4) + LinExpr::term(y, 6) + LinExpr::constant(2);
        assert_eq!(e.coeff_gcd(), 2);
        let mut asn = BTreeMap::new();
        asn.insert(x, 1);
        asn.insert(y, 2);
        assert_eq!(e.eval(&asn), 4 + 12 + 2);
    }

    #[test]
    fn display_formats() {
        let x = Var(0);
        let y = Var(1);
        let e = LinExpr::term(x, 1) + LinExpr::term(y, -2) + LinExpr::constant(-3);
        assert_eq!(e.to_string(), "x0 - 2x1 - 3");
        assert_eq!(LinExpr::constant(7).to_string(), "7");
        assert_eq!(LinExpr::zero().to_string(), "0");
    }

    #[test]
    fn gcd_edge_cases() {
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
    }
}
