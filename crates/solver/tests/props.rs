//! Property tests: the Omega test agrees with brute-force enumeration on
//! small boxed systems.

use proptest::prelude::*;
use safeflow_solver::{Feasibility, LinExpr, System, Var};
use std::collections::BTreeMap;

/// A random constraint over `nvars` variables with small coefficients.
#[derive(Debug, Clone)]
struct RandConstraint {
    coeffs: Vec<i64>,
    constant: i64,
    is_eq: bool,
}

fn constraint_strategy(nvars: usize) -> impl Strategy<Value = RandConstraint> {
    (
        prop::collection::vec(-4i64..=4, nvars),
        -12i64..=12,
        prop::bool::weighted(0.25),
    )
        .prop_map(|(coeffs, constant, is_eq)| RandConstraint { coeffs, constant, is_eq })
}

/// Builds the system `cs` plus box constraints `-B <= v <= B` so brute
/// force is finite and both procedures decide the same question.
fn build(nvars: usize, cs: &[RandConstraint], bound: i64) -> (System, Vec<Var>) {
    let mut sys = System::new();
    let vars: Vec<Var> = (0..nvars).map(|i| sys.new_var(format!("v{i}"))).collect();
    for &v in &vars {
        sys.add_ge(LinExpr::var(v), LinExpr::constant(-bound));
        sys.add_le(LinExpr::var(v), LinExpr::constant(bound));
    }
    for c in cs {
        let mut e = LinExpr::constant(c.constant);
        for (i, &cf) in c.coeffs.iter().enumerate() {
            e.add_term(vars[i], cf);
        }
        if c.is_eq {
            sys.add_eq(e, LinExpr::zero());
        } else {
            sys.add_ge(e, LinExpr::zero());
        }
    }
    (sys, vars)
}

fn brute_force_sat(sys: &System, vars: &[Var], bound: i64) -> bool {
    // Enumerate the box.
    fn rec(sys: &System, vars: &[Var], bound: i64, i: usize, asn: &mut BTreeMap<Var, i64>) -> bool {
        if i == vars.len() {
            return sys.satisfied_by(asn);
        }
        for v in -bound..=bound {
            asn.insert(vars[i], v);
            if rec(sys, vars, bound, i + 1, asn) {
                return true;
            }
        }
        asn.remove(&vars[i]);
        false
    }
    let mut asn = BTreeMap::new();
    rec(sys, vars, bound, 0, &mut asn)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// 2-variable systems: Omega agrees exactly with brute force.
    #[test]
    fn omega_matches_brute_force_2vars(
        cs in prop::collection::vec(constraint_strategy(2), 1..5)
    ) {
        let bound = 6;
        let (sys, vars) = build(2, &cs, bound);
        let expected = brute_force_sat(&sys, &vars, bound);
        match sys.check() {
            Feasibility::Sat => prop_assert!(expected, "omega says SAT, brute force says UNSAT"),
            Feasibility::Unsat => prop_assert!(!expected, "omega says UNSAT, brute force found a solution"),
            Feasibility::Unknown => {} // allowed, but should be rare
        }
    }

    /// 3-variable systems with tighter bounds.
    #[test]
    fn omega_matches_brute_force_3vars(
        cs in prop::collection::vec(constraint_strategy(3), 1..4)
    ) {
        let bound = 3;
        let (sys, vars) = build(3, &cs, bound);
        let expected = brute_force_sat(&sys, &vars, bound);
        match sys.check() {
            Feasibility::Sat => prop_assert!(expected),
            Feasibility::Unsat => prop_assert!(!expected),
            Feasibility::Unknown => {}
        }
    }

    /// implies_ge is consistent with check(): if the system is SAT and
    /// implies e >= 0, then adding e < 0 must be UNSAT.
    #[test]
    fn implication_consistency(
        cs in prop::collection::vec(constraint_strategy(2), 1..4),
        target in prop::collection::vec(-3i64..=3, 2),
        tc in -6i64..=6,
    ) {
        let bound = 5;
        let (sys, vars) = build(2, &cs, bound);
        let mut e = LinExpr::constant(tc);
        for (i, &cf) in target.iter().enumerate() {
            e.add_term(vars[i], cf);
        }
        if sys.implies_ge(e.clone(), LinExpr::zero()) {
            let mut neg = sys.clone();
            neg.add_lt(e, LinExpr::zero());
            prop_assert_eq!(neg.check(), Feasibility::Unsat);
        }
    }
}
