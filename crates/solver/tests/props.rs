//! Property tests: the Omega test agrees with brute-force enumeration on
//! small boxed systems.

use safeflow_solver::{Feasibility, LinExpr, System, Var};
use safeflow_util::prop::{run_cases, Gen};
use std::collections::BTreeMap;

/// A random constraint over `nvars` variables with small coefficients.
#[derive(Debug, Clone)]
struct RandConstraint {
    coeffs: Vec<i64>,
    constant: i64,
    is_eq: bool,
}

fn gen_constraint(g: &mut Gen, nvars: usize) -> RandConstraint {
    RandConstraint {
        coeffs: (0..nvars).map(|_| g.i64(-4, 5)).collect(),
        constant: g.i64(-12, 13),
        is_eq: g.chance(0.25),
    }
}

/// Builds the system `cs` plus box constraints `-B <= v <= B` so brute
/// force is finite and both procedures decide the same question.
fn build(nvars: usize, cs: &[RandConstraint], bound: i64) -> (System, Vec<Var>) {
    let mut sys = System::new();
    let vars: Vec<Var> = (0..nvars).map(|i| sys.new_var(format!("v{i}"))).collect();
    for &v in &vars {
        sys.add_ge(LinExpr::var(v), LinExpr::constant(-bound));
        sys.add_le(LinExpr::var(v), LinExpr::constant(bound));
    }
    for c in cs {
        let mut e = LinExpr::constant(c.constant);
        for (i, &cf) in c.coeffs.iter().enumerate() {
            e.add_term(vars[i], cf);
        }
        if c.is_eq {
            sys.add_eq(e, LinExpr::zero());
        } else {
            sys.add_ge(e, LinExpr::zero());
        }
    }
    (sys, vars)
}

fn brute_force_sat(sys: &System, vars: &[Var], bound: i64) -> bool {
    // Enumerate the box.
    fn rec(sys: &System, vars: &[Var], bound: i64, i: usize, asn: &mut BTreeMap<Var, i64>) -> bool {
        if i == vars.len() {
            return sys.satisfied_by(asn);
        }
        for v in -bound..=bound {
            asn.insert(vars[i], v);
            if rec(sys, vars, bound, i + 1, asn) {
                return true;
            }
        }
        asn.remove(&vars[i]);
        false
    }
    let mut asn = BTreeMap::new();
    rec(sys, vars, bound, 0, &mut asn)
}

/// 2-variable systems: Omega agrees exactly with brute force.
#[test]
fn omega_matches_brute_force_2vars() {
    run_cases(200, |g| {
        let cs = g.vec_of(1, 5, |g| gen_constraint(g, 2));
        let bound = 6;
        let (sys, vars) = build(2, &cs, bound);
        let expected = brute_force_sat(&sys, &vars, bound);
        match sys.check() {
            Feasibility::Sat => assert!(expected, "omega says SAT, brute force says UNSAT"),
            Feasibility::Unsat => {
                assert!(!expected, "omega says UNSAT, brute force found a solution")
            }
            Feasibility::Unknown => {} // allowed, but should be rare
        }
    });
}

/// 3-variable systems with tighter bounds.
#[test]
fn omega_matches_brute_force_3vars() {
    run_cases(200, |g| {
        let cs = g.vec_of(1, 4, |g| gen_constraint(g, 3));
        let bound = 3;
        let (sys, vars) = build(3, &cs, bound);
        let expected = brute_force_sat(&sys, &vars, bound);
        match sys.check() {
            Feasibility::Sat => assert!(expected),
            Feasibility::Unsat => assert!(!expected),
            Feasibility::Unknown => {}
        }
    });
}

/// implies_ge is consistent with check(): if the system is SAT and
/// implies e >= 0, then adding e < 0 must be UNSAT.
#[test]
fn implication_consistency() {
    run_cases(200, |g| {
        let cs = g.vec_of(1, 4, |g| gen_constraint(g, 2));
        let target: Vec<i64> = (0..2).map(|_| g.i64(-3, 4)).collect();
        let tc = g.i64(-6, 7);
        let bound = 5;
        let (sys, vars) = build(2, &cs, bound);
        let mut e = LinExpr::constant(tc);
        for (i, &cf) in target.iter().enumerate() {
            e.add_term(vars[i], cf);
        }
        if sys.implies_ge(e.clone(), LinExpr::zero()) {
            let mut neg = sys.clone();
            neg.add_lt(e, LinExpr::zero());
            assert_eq!(neg.check(), Feasibility::Unsat);
        }
    });
}
