//! Property tests for the interner and bump arena (ISSUE 6 satellite).
//!
//! Pinned properties:
//!
//! * intern/resolve round-trips for seeded identifier sets;
//! * no two distinct strings collide onto one `Symbol` across 10k seeded
//!   idents;
//! * `Symbol` assignment is deterministic where determinism is promised:
//!   owned `Interner`s assign identical ids for identical insertion
//!   orders, and the process-global interner maps a given string to the
//!   same `Symbol` regardless of which thread interned it first or how
//!   many threads race.

use safeflow_util::arena::Bump;
use safeflow_util::intern::{Interner, Symbol};
use safeflow_util::prop::{run_cases, Gen};
use std::collections::HashMap;

const IDENT_ALPHABET: &[char] =
    &['a', 'b', 'c', 'd', 'e', 'f', 'g', 'x', 'y', 'z', 'A', 'B', 'C', '_', '0', '1', '2', '9'];

fn seeded_ident(g: &mut Gen) -> String {
    // C-identifier shaped: letter/underscore head, then ident chars.
    let head = *g.pick(&['a', 'b', 'c', 'q', 's', '_', 'Z']);
    let tail = g.string_of(IDENT_ALPHABET, 0, 24);
    format!("{head}{tail}")
}

#[test]
fn intern_resolve_round_trips() {
    run_cases(64, |g| {
        let mut interner = Interner::new();
        let idents = g.vec_of(1, 200, seeded_ident);
        let syms: Vec<Symbol> = idents.iter().map(|s| interner.intern(s)).collect();
        for (ident, sym) in idents.iter().zip(&syms) {
            assert_eq!(interner.resolve(*sym), ident, "round-trip broke");
        }
    });
}

#[test]
fn no_collisions_across_10k_seeded_idents() {
    // One big deterministic draw: 10k idents, dedup by string, then the
    // symbol space must be exactly as large as the distinct-string space
    // and resolve must invert intern on every member.
    let mut g = Gen::new(0xC0117);
    let idents: Vec<String> = (0..10_000).map(|_| seeded_ident(&mut g)).collect();
    let mut interner = Interner::new();
    let mut by_symbol: HashMap<u32, &str> = HashMap::new();
    for ident in &idents {
        let sym = interner.intern(ident);
        match by_symbol.get(&sym.index()) {
            Some(prev) => assert_eq!(*prev, ident.as_str(), "two strings share a Symbol"),
            None => {
                by_symbol.insert(sym.index(), ident);
            }
        }
    }
    let distinct: std::collections::HashSet<&str> = idents.iter().map(String::as_str).collect();
    assert_eq!(interner.len(), distinct.len(), "symbol space != distinct string space");
}

#[test]
fn owned_interners_assign_identical_ids_for_identical_order() {
    // The determinism the owned interner promises: ids are a pure function
    // of insertion order.
    run_cases(64, |g| {
        let idents = g.vec_of(1, 300, seeded_ident);
        let mut a = Interner::new();
        let mut b = Interner::new();
        let ia: Vec<u32> = idents.iter().map(|s| a.intern(s).index()).collect();
        let ib: Vec<u32> = idents.iter().map(|s| b.intern(s).index()).collect();
        assert_eq!(ia, ib, "same insertion order must assign the same ids");
    });
}

#[test]
fn global_symbols_identical_regardless_of_thread_count_and_order() {
    // The determinism the *global* interner promises: string -> Symbol is
    // a function (stable within the process), no matter how many threads
    // intern concurrently or in what order. Raw id values are explicitly
    // NOT promised to be reproducible across runs; the property is that
    // every thread observes the same mapping.
    let mut g = Gen::new(0x5AFE);
    let idents: Vec<String> =
        (0..2_000).map(|_| format!("tprobe_{}", seeded_ident(&mut g))).collect();
    let maps: Vec<Vec<(String, Symbol)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let idents = &idents;
                scope.spawn(move || {
                    // Each thread interns in a different order.
                    let mut order: Vec<&String> = idents.iter().collect();
                    order.rotate_left(t * 251 % idents.len());
                    order.into_iter().map(|s| (s.clone(), Symbol::intern(s))).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let reference: HashMap<&str, Symbol> =
        maps[0].iter().map(|(s, sym)| (s.as_str(), *sym)).collect();
    for map in &maps[1..] {
        for (s, sym) in map {
            assert_eq!(reference[s.as_str()], *sym, "thread disagreed on `{s}`");
        }
    }
    for (s, sym) in &maps[0] {
        assert_eq!(sym.as_str(), s, "global resolve must invert intern");
    }
}

#[test]
fn arena_slices_stay_valid_and_disjoint_under_seeded_load() {
    run_cases(32, |g| {
        let arena = Bump::new();
        let inputs = g.vec_of(1, 400, |g| g.arbitrary_string(120));
        let held: Vec<&str> = inputs.iter().map(|s| arena.alloc_str(s)).collect();
        // Contents survive arbitrary later growth...
        for (want, got) in inputs.iter().zip(&held) {
            assert_eq!(want, got);
        }
        // ...and non-empty allocations never alias.
        let mut ranges: Vec<(usize, usize)> = held
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| {
                let lo = s.as_ptr() as usize;
                (lo, lo + s.len())
            })
            .collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "arena allocations overlap");
        }
        assert_eq!(arena.allocated_bytes(), inputs.iter().map(|s| s.len()).sum::<usize>());
    });
}
