//! A hand-rolled bump arena for byte/string allocation.
//!
//! [`Bump`] hands out slices carved from large chunks instead of one heap
//! allocation per string. Chunks are append-only and never reallocated or
//! freed while the arena lives, so every returned slice stays valid for
//! the arena's lifetime — that stability is what lets the interner build
//! its lookup table over slices of its own storage.
//!
//! This is deliberately minimal: byte and `str` allocation only, no typed
//! allocation and no `Drop` bookkeeping. The AST uses index arenas
//! (`Vec`-backed node tables with `u32` ids) rather than lifetime-threaded
//! `&'arena` references; the bump arena's job in this workspace is string
//! storage behind [`crate::intern`].

use std::cell::RefCell;

/// First chunk size; later chunks double up to [`MAX_CHUNK`].
const MIN_CHUNK: usize = 4 * 1024;
/// Chunk growth cap, so a long parse does not balloon allocation sizes.
const MAX_CHUNK: usize = 512 * 1024;

/// A bump allocator for bytes and strings.
///
/// Not `Sync`: share across threads by wrapping in a `Mutex` (as the
/// global interner does).
///
/// # Examples
///
/// ```
/// use safeflow_util::arena::Bump;
///
/// let arena = Bump::new();
/// let a = arena.alloc_str("feedback");
/// let b = arena.alloc_str("noncoreCtrl");
/// assert_eq!(a, "feedback");
/// assert_eq!(b, "noncoreCtrl");
/// assert_eq!(arena.allocated_bytes(), "feedback".len() + "noncoreCtrl".len());
/// ```
#[derive(Debug, Default)]
pub struct Bump {
    state: RefCell<State>,
}

#[derive(Debug, Default)]
struct State {
    /// Filled chunks plus the currently-open last chunk. Each `Vec` is
    /// created with its final capacity and only ever extended within it,
    /// so chunk buffers never move.
    chunks: Vec<Vec<u8>>,
    /// Total payload bytes handed out (excludes chunk slack).
    allocated: usize,
}

impl Bump {
    /// Creates an empty arena (no chunk is allocated until first use).
    pub fn new() -> Bump {
        Bump::default()
    }

    /// Copies `bytes` into the arena and returns the stable copy.
    pub fn alloc_bytes(&self, bytes: &[u8]) -> &[u8] {
        let mut st = self.state.borrow_mut();
        let need = bytes.len();
        let fits = st.chunks.last().is_some_and(|c| c.capacity() - c.len() >= need);
        if !fits {
            let grown = (MIN_CHUNK << st.chunks.len().min(7)).min(MAX_CHUNK);
            st.chunks.push(Vec::with_capacity(need.max(grown)));
        }
        let chunk = st.chunks.last_mut().expect("chunk ensured above");
        let start = chunk.len();
        chunk.extend_from_slice(bytes);
        let ptr = unsafe { chunk.as_ptr().add(start) };
        st.allocated += need;
        // SAFETY: the chunk buffer was created with enough capacity and is
        // only extended within it (never reallocated), chunks are never
        // removed or shrunk, and the arena is not `Sync` — so the returned
        // slice is stable and disjoint from every other allocation for as
        // long as `self` lives.
        unsafe { std::slice::from_raw_parts(ptr, need) }
    }

    /// Copies `s` into the arena and returns the stable copy.
    pub fn alloc_str(&self, s: &str) -> &str {
        let bytes = self.alloc_bytes(s.as_bytes());
        // SAFETY: `bytes` is a verbatim copy of a valid `&str`.
        unsafe { std::str::from_utf8_unchecked(bytes) }
    }

    /// Total payload bytes allocated (excludes unused chunk capacity).
    pub fn allocated_bytes(&self) -> usize {
        self.state.borrow().allocated
    }

    /// Number of chunks backing the arena.
    pub fn chunk_count(&self) -> usize {
        self.state.borrow().chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_content() {
        let arena = Bump::new();
        let s = arena.alloc_str("assert(safe(output))");
        assert_eq!(s, "assert(safe(output))");
        let b = arena.alloc_bytes(&[0, 159, 146, 150]);
        assert_eq!(b, &[0, 159, 146, 150]);
    }

    #[test]
    fn survives_chunk_boundaries() {
        let arena = Bump::new();
        // Allocate well past several chunk boundaries, keeping every
        // returned slice, then verify none was invalidated by later growth.
        let strings: Vec<String> =
            (0..4000).map(|i| format!("ident_{i}_{}", "x".repeat(i % 97))).collect();
        let held: Vec<&str> = strings.iter().map(|s| arena.alloc_str(s)).collect();
        assert!(arena.chunk_count() > 1, "test must actually cross chunks");
        for (want, got) in strings.iter().zip(&held) {
            assert_eq!(want, got);
        }
    }

    #[test]
    fn oversized_allocation_gets_its_own_chunk() {
        let arena = Bump::new();
        let big = "y".repeat(3 * MAX_CHUNK);
        let kept = arena.alloc_str(&big);
        assert_eq!(kept.len(), big.len());
        let after = arena.alloc_str("small");
        assert_eq!(after, "small");
    }

    #[test]
    fn allocations_are_disjoint() {
        let arena = Bump::new();
        let a = arena.alloc_str("aaaa");
        let b = arena.alloc_str("bbbb");
        let ar = a.as_ptr() as usize..a.as_ptr() as usize + a.len();
        assert!(!ar.contains(&(b.as_ptr() as usize)));
    }
}
