//! String interning: `Symbol(u32)` keys for identifiers and literals.
//!
//! The frontend lexes straight off the source buffer and interns each
//! identifier/string slice once; everything downstream (AST, parser
//! scopes, lowering) carries a copyable [`Symbol`] instead of an owned
//! `String`. Two interfaces:
//!
//! * [`Interner`] — an owned instance. Symbol ids are **deterministic in
//!   insertion order**: two interners fed the same strings in the same
//!   order assign identical ids. This is the determinism the property
//!   tests pin.
//! * [`Symbol::intern`] / [`Symbol::as_str`] — the process-global interner
//!   (an `Interner` behind a `Mutex`), used by the lexer. Under parallel
//!   translation-unit lexing the *numeric* ids depend on thread
//!   interleaving, so global ids are only promised to be **stable** (the
//!   same string always maps to the same `Symbol` within a process) —
//!   never to be reproducible across runs. Nothing in the byte-identity
//!   contract may order or print raw symbol ids; canonical output must go
//!   through [`Symbol::as_str`].
//!
//! Storage lives in a [`crate::arena::Bump`], so interning a novel string
//! costs one bump-copy and a [`crate::hash::Fnv64`]-hashed map insert; a
//! repeat costs only the lookup.

use crate::arena::Bump;
use crate::hash::Fnv64;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Mutex, OnceLock};

/// An interned string key. `Copy`, 4 bytes, O(1) equality.
///
/// Symbols obtained from [`Symbol::intern`] resolve via
/// [`Symbol::as_str`]; symbols from an owned [`Interner`] resolve through
/// that interner. The two id spaces are unrelated — do not mix them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Interns `s` in the process-global interner.
    pub fn intern(s: &str) -> Symbol {
        global().lock().expect("interner lock").intern(s)
    }

    /// Resolves a globally-interned symbol.
    ///
    /// The `'static` lifetime is real: the global interner's arena is
    /// never dropped.
    pub fn as_str(self) -> &'static str {
        let g = global().lock().expect("interner lock");
        // SAFETY of the transmute-free 'static claim: `g` is the global
        // interner, which lives (leaked in a `OnceLock`) for the whole
        // process, and its arena never frees or moves storage.
        let s: &str = g.resolve(self);
        unsafe { std::mem::transmute::<&str, &'static str>(s) }
    }

    /// The raw id (for index-map use; not stable across runs for globally
    /// interned symbols under parallel lexing).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// FNV-backed `HashMap` so lookups don't pay SipHash on short keys.
type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// `Hasher` adapter over [`Fnv64`] (the `Default` impl `HashMap` needs).
#[derive(Default)]
pub struct FnvHasher(Fnv64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0.value()
    }
    fn write(&mut self, bytes: &[u8]) {
        self.0.write(bytes);
    }
}

/// An owned string interner with insertion-order-deterministic ids.
#[derive(Debug, Default)]
pub struct Interner {
    arena: Bump,
    /// Keys borrow from `arena`; the `'static` is an internal lifetime
    /// erasure, never exposed — see the SAFETY note in [`Interner::intern`].
    lookup: FnvMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `s`, returning the existing symbol if `s` was seen before.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&id) = self.lookup.get(s) {
            return Symbol(id);
        }
        let stored = self.arena.alloc_str(s);
        // SAFETY: `stored` points into `self.arena`, whose chunks never
        // move or free while `self` lives. The erased-lifetime reference
        // never escapes: `resolve` reborrows it at `&self`'s lifetime, and
        // dropping the interner drops map and table before any use.
        let stored: &'static str = unsafe { std::mem::transmute::<&str, &'static str>(stored) };
        let id = self.strings.len() as u32;
        self.strings.push(stored);
        self.lookup.insert(stored, id);
        Symbol(id)
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner's id space.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.strings[sym.0 as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Total bytes of string payload held by the arena.
    pub fn allocated_bytes(&self) -> usize {
        self.arena.allocated_bytes()
    }
}

fn global() -> &'static Mutex<Interner> {
    static GLOBAL: OnceLock<Mutex<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Interner::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut i = Interner::new();
        let a = i.intern("feedback");
        let b = i.intern("noncoreCtrl");
        let a2 = i.intern("feedback");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "feedback");
        assert_eq!(i.resolve(b), "noncoreCtrl");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn global_symbols_are_stable() {
        let a = Symbol::intern("global_stability_probe");
        let b = Symbol::intern("global_stability_probe");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "global_stability_probe");
    }

    #[test]
    fn ids_are_insertion_ordered() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a").index(), 0);
        assert_eq!(i.intern("b").index(), 1);
        assert_eq!(i.intern("a").index(), 0);
    }
}
