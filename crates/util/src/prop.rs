//! A miniature deterministic property-test harness.
//!
//! Replaces the external `proptest` dependency with seeded-case loops: a
//! property runs once per seed with a [`Gen`] drawing from [`SplitMix64`],
//! and a failing case re-raises its panic wrapped with the seed so the
//! exact input can be replayed (`Gen::new(seed)`). No shrinking — the
//! generators in this workspace are built to keep cases small instead.

use crate::rng::SplitMix64;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A source of random test data (thin wrapper over [`SplitMix64`] with
/// generator-style helpers).
#[derive(Debug, Clone)]
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// A generator for `seed` (replays the case `run_cases` reported).
    pub fn new(seed: u64) -> Gen {
        // Seeds 0, 1, 2 … are fine for SplitMix64 (the increment mixing
        // decorrelates consecutive seeds).
        Gen { rng: SplitMix64::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) ^ 0x5AFE_F10A) }
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.usize_range(lo, hi)
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn i64(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.i64_range(lo, hi)
    }

    /// Uniform `i32` in `[lo, hi)`.
    pub fn i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.rng.i32_range(lo, hi)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.f64_range(lo, hi)
    }

    /// A uniformly random bool.
    pub fn bool(&mut self) -> bool {
        self.rng.bool()
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        self.rng.pick(items)
    }

    /// A vector of `len ∈ [min_len, max_len)` elements drawn from `f`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }

    /// A string of `len ∈ [min_len, max_len)` chars from `alphabet`.
    pub fn string_of(&mut self, alphabet: &[char], min_len: usize, max_len: usize) -> String {
        let len = self.usize(min_len, max_len);
        (0..len).map(|_| *self.pick(alphabet)).collect()
    }

    /// Arbitrary (mostly-ASCII, occasionally exotic) string up to
    /// `max_len` chars — the fuzzing workhorse.
    pub fn arbitrary_string(&mut self, max_len: usize) -> String {
        let len = self.usize(0, max_len + 1);
        (0..len)
            .map(|_| match self.usize(0, 10) {
                0 => char::from_u32(self.u64() as u32 % 0xD800).unwrap_or('\u{FFFD}'),
                1 => *self.pick(&['\n', '\t', '\r', '\0', '\\', '"', '\'']),
                _ => (self.usize(0x20, 0x7F) as u8) as char,
            })
            .collect()
    }

    /// Next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// Runs `property` once per seed in `0..cases`. On failure, re-raises the
/// panic annotated with the failing seed so the case can be replayed with
/// `Gen::new(seed)`.
pub fn run_cases(cases: u64, property: impl Fn(&mut Gen)) {
    for seed in 0..cases {
        let mut gen = Gen::new(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut gen))) {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            eprintln!("property failed at seed {seed}: {msg}");
            eprintln!("replay with `Gen::new({seed})`");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut a = Gen::new(5);
        let mut b = Gen::new(5);
        for _ in 0..32 {
            assert_eq!(a.usize(0, 100), b.usize(0, 100));
        }
    }

    #[test]
    fn run_cases_passes_trivial_property() {
        run_cases(64, |g| {
            let v = g.vec_of(0, 10, |g| g.i64(-5, 5));
            assert!(v.len() < 10);
            assert!(v.iter().all(|x| (-5..5).contains(x)));
        });
    }

    #[test]
    #[should_panic]
    fn run_cases_propagates_failures() {
        run_cases(16, |g| {
            assert!(g.usize(0, 10) < 5, "eventually draws >= 5");
        });
    }

    #[test]
    fn arbitrary_strings_bounded() {
        run_cases(64, |g| {
            let s = g.arbitrary_string(40);
            assert!(s.chars().count() <= 40);
        });
    }
}
