//! A work-stealing thread pool with dependency-DAG scheduling.
//!
//! [`run_dag`] executes `n` tasks subject to a dependency relation: task
//! `i` may start only after every task in `deps[i]` has completed. Ready
//! tasks are distributed over per-worker deques; an idle worker first pops
//! from its own deque (LIFO, for locality — a task it just unblocked), then
//! steals from the other workers' deques (FIFO, taking the oldest work),
//! then parks on a condition variable until new work is enqueued or the
//! run completes.
//!
//! Results are returned **indexed by task**, so the output is a pure
//! function of the task closure — independent of worker count, scheduling
//! order, and steal interleavings. This is what the analysis engine's
//! determinism guarantee rests on: parallelism changes only *when* a task
//! runs, never *what* is returned.
//!
//! Panics inside tasks are handled according to a [`PoolPolicy`]:
//! [`run_dag`] uses [`PoolPolicy::Propagate`] (fail-stop: remaining tasks
//! are abandoned, all workers drain, and the panic is re-raised on the
//! caller's thread), while [`run_dag_isolated`] uses
//! [`PoolPolicy::Isolate`] (the panicking task is recorded as a
//! [`TaskPanic`] in its result slot, its dependents still run, and every
//! independent task completes normally). Isolation is what lets the
//! analysis engine contain a fault to one SCC instead of losing the whole
//! run.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Schedule-dependent execution statistics for pool runs.
///
/// A caller-owned `PoolStats` passed to the `_observed` entry points
/// accumulates across runs. Every field here depends on thread timing and
/// steal interleavings, so these numbers are **not** covered by the pool's
/// determinism guarantee — they belong in a report's schedule-class
/// metrics section, never in byte-compared output.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Tasks executed.
    pub tasks: AtomicU64,
    /// Successful steals (a worker taking a task from another's deque).
    pub steals: AtomicU64,
    /// High-water mark of any single worker's queue depth.
    pub max_queue_depth: AtomicU64,
    /// Total wall-clock nanoseconds spent inside task closures, summed
    /// over all workers.
    pub busy_ns: AtomicU64,
}

impl PoolStats {
    fn note_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    fn record_task(&self, busy_ns: u64) {
        self.tasks.fetch_add(1, Ordering::Relaxed);
        self.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
    }
}

/// What the pool does when a task panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolPolicy {
    /// Fail-stop: abandon remaining tasks and re-raise the panic on the
    /// caller's thread (the historical [`run_dag`] behavior).
    Propagate,
    /// Contain: record the panic as a [`TaskPanic`] in the task's result
    /// slot and keep going — dependents and independent tasks still run.
    Isolate,
}

/// A contained task panic (see [`PoolPolicy::Isolate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the task that panicked.
    pub index: usize,
    /// The panic payload rendered as a string (`&str` / `String` payloads
    /// are preserved verbatim; anything else becomes a fixed placeholder
    /// so reports stay deterministic).
    pub message: String,
}

/// Locks `m`, recovering the guard when a panicking task poisoned it.
///
/// The pool's mutexes guard plain scheduling state (deques of task
/// indices, result slots, the park token): a panic while one is held
/// cannot leave that state logically torn, and panic containment
/// ([`PoolPolicy::Isolate`]) requires every other worker to keep draining
/// the run rather than cascade the poison into its own `unwrap`.
fn lock_recover<U>(m: &Mutex<U>) -> std::sync::MutexGuard<'_, U> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Renders a panic payload as a deterministic string: `&str` / `String`
/// payloads are preserved verbatim, anything else becomes a fixed
/// placeholder. Exposed so other crates containing panics themselves
/// (e.g. via `catch_unwind`) normalize messages the same way.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `n = deps.len()` tasks respecting `deps` (a DAG: `deps[i]` are the
/// task indices that must complete before task `i` starts), on `jobs`
/// worker threads. Returns the task results indexed by task.
///
/// With `jobs <= 1` the tasks run sequentially on the caller's thread in
/// a deterministic topological order (ready tasks by ascending index) —
/// the reference schedule the parallel runs must agree with.
///
/// # Panics
///
/// Panics if `deps` contains an out-of-range index or a dependency cycle,
/// or if a task panics (the task's panic is propagated).
pub fn run_dag<T, F>(jobs: usize, deps: &[Vec<usize>], task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_dag_inner(jobs, deps, PoolPolicy::Propagate, None, task)
        .into_iter()
        .map(|r| r.expect("Propagate policy re-raises panics before returning"))
        .collect()
}

/// Like [`run_dag`], but with [`PoolPolicy::Isolate`]: a panicking task is
/// recorded as `Err(TaskPanic)` in its result slot instead of aborting the
/// run. Dependents of a panicked task still run (they observe whatever
/// side channel the caller uses to publish results — under this pool the
/// only signal is the `Err` slot), and all independent tasks complete
/// normally.
///
/// The returned vector is still a pure function of the task closure and
/// the panic set — independent of worker count and scheduling, so the
/// determinism guarantee survives containment.
pub fn run_dag_isolated<T, F>(
    jobs: usize,
    deps: &[Vec<usize>],
    task: F,
) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_dag_inner(jobs, deps, PoolPolicy::Isolate, None, task)
}

/// [`run_dag_isolated`] accumulating execution statistics into `stats`.
/// The returned results are unaffected by observation.
pub fn run_dag_isolated_observed<T, F>(
    jobs: usize,
    deps: &[Vec<usize>],
    stats: &PoolStats,
    task: F,
) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_dag_inner(jobs, deps, PoolPolicy::Isolate, Some(stats), task)
}

fn run_dag_inner<T, F>(
    jobs: usize,
    deps: &[Vec<usize>],
    policy: PoolPolicy,
    stats: Option<&PoolStats>,
    task: F,
) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = deps.len();
    if n == 0 {
        return Vec::new();
    }
    for ds in deps {
        for &d in ds {
            assert!(d < n, "run_dag: dependency index {d} out of range (n = {n})");
        }
    }
    let jobs = jobs.max(1).min(n);
    if jobs == 1 {
        return run_sequential(deps, policy, stats, task);
    }
    // Workers park while waiting for dependencies; a cyclic "DAG" would
    // park them forever. Reject it up front (cheap Kahn pass).
    assert_acyclic(deps);

    let dependents = invert(deps);
    let remaining: Vec<AtomicUsize> = deps.iter().map(|d| AtomicUsize::new(d.len())).collect();
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    let results: Vec<Mutex<Option<Result<T, TaskPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    // Seed: initially-ready tasks round-robin over the workers.
    {
        let mut w = 0;
        for (i, ds) in deps.iter().enumerate() {
            if ds.is_empty() {
                lock_recover(&queues[w]).push_back(i);
                w = (w + 1) % jobs;
            }
        }
    }

    let shared = Shared {
        dependents: &dependents,
        remaining: &remaining,
        queues: &queues,
        results: &results,
        done: AtomicUsize::new(0),
        total: n,
        idle: Mutex::new(()),
        wake: Condvar::new(),
        panic: Mutex::new(None),
        policy,
        stats,
    };

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let shared = &shared;
            let task = &task;
            scope.spawn(move || worker(w, jobs, shared, task));
        }
    });

    if let Some(payload) = shared.panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
        resume_unwind(payload);
    }
    let completed = shared.done.load(Ordering::SeqCst);
    assert_eq!(completed, n, "run_dag: dependency cycle ({completed}/{n} tasks ran)");
    results
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("completed task has a result")
        })
        .collect()
}

/// Runs `n` independent tasks on `jobs` workers ([`run_dag`] with no
/// dependencies). Results are indexed by task.
pub fn run_map<T, F>(jobs: usize, n: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_dag(jobs, &vec![Vec::new(); n], task)
}

/// [`run_map`] accumulating execution statistics into `stats`. The
/// returned results are unaffected by observation.
pub fn run_map_observed<T, F>(jobs: usize, n: usize, stats: &PoolStats, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_dag_inner(jobs, &vec![Vec::new(); n], PoolPolicy::Propagate, Some(stats), task)
        .into_iter()
        .map(|r| r.expect("Propagate policy re-raises panics before returning"))
        .collect()
}

/// A sensible default worker count for this machine.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

fn run_sequential<T, F>(
    deps: &[Vec<usize>],
    policy: PoolPolicy,
    stats: Option<&PoolStats>,
    task: F,
) -> Vec<Result<T, TaskPanic>>
where
    F: Fn(usize) -> T,
{
    let n = deps.len();
    let dependents = invert(deps);
    let mut remaining: Vec<usize> = deps.iter().map(Vec::len).collect();
    // Ready tasks processed in ascending index order (min-heap).
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> =
        (0..n).filter(|&i| remaining[i] == 0).map(std::cmp::Reverse).collect();
    let mut results: Vec<Option<Result<T, TaskPanic>>> = (0..n).map(|_| None).collect();
    let mut ran = 0usize;
    while let Some(std::cmp::Reverse(i)) = ready.pop() {
        if let Some(s) = stats {
            s.note_depth(ready.len() as u64 + 1);
        }
        let t0 = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| task(i))) {
            Ok(value) => results[i] = Some(Ok(value)),
            Err(payload) => match policy {
                PoolPolicy::Propagate => resume_unwind(payload),
                PoolPolicy::Isolate => {
                    results[i] =
                        Some(Err(TaskPanic { index: i, message: panic_message(&*payload) }));
                }
            },
        }
        if let Some(s) = stats {
            s.record_task(t0.elapsed().as_nanos() as u64);
        }
        ran += 1;
        for &j in &dependents[i] {
            remaining[j] -= 1;
            if remaining[j] == 0 {
                ready.push(std::cmp::Reverse(j));
            }
        }
    }
    assert_eq!(ran, n, "run_dag: dependency cycle ({ran}/{n} tasks ran)");
    results.into_iter().map(|r| r.unwrap()).collect()
}

fn assert_acyclic(deps: &[Vec<usize>]) {
    let n = deps.len();
    let dependents = invert(deps);
    let mut remaining: Vec<usize> = deps.iter().map(Vec::len).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
    let mut ran = 0usize;
    while let Some(i) = ready.pop() {
        ran += 1;
        for &j in &dependents[i] {
            remaining[j] -= 1;
            if remaining[j] == 0 {
                ready.push(j);
            }
        }
    }
    assert_eq!(ran, n, "run_dag: dependency cycle ({ran}/{n} tasks reachable)");
}

fn invert(deps: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); deps.len()];
    for (i, ds) in deps.iter().enumerate() {
        for &d in ds {
            dependents[d].push(i);
        }
    }
    dependents
}

struct Shared<'a, T> {
    dependents: &'a [Vec<usize>],
    remaining: &'a [AtomicUsize],
    queues: &'a [Mutex<VecDeque<usize>>],
    results: &'a [Mutex<Option<Result<T, TaskPanic>>>],
    done: AtomicUsize,
    total: usize,
    idle: Mutex<()>,
    wake: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    policy: PoolPolicy,
    stats: Option<&'a PoolStats>,
}

impl<T> Shared<'_, T> {
    fn finished(&self) -> bool {
        self.done.load(Ordering::SeqCst) >= self.total
    }

    /// Records a task panic and releases every worker.
    fn abort(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = lock_recover(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
        drop(slot);
        // Drain: mark the run complete so workers exit their loops.
        self.done.store(self.total, Ordering::SeqCst);
        let _g = lock_recover(&self.idle);
        self.wake.notify_all();
    }
}

fn worker<T, F>(me: usize, jobs: usize, shared: &Shared<'_, T>, task: &F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    loop {
        if shared.finished() {
            return;
        }
        // 1. Own deque, newest first (locality: tasks this worker just
        //    unblocked are hot in cache).
        let mut next = lock_recover(&shared.queues[me]).pop_back();
        // 2. Steal oldest work from the other workers.
        if next.is_none() {
            for k in 1..jobs {
                let victim = (me + k) % jobs;
                if let Some(i) = lock_recover(&shared.queues[victim]).pop_front() {
                    if let Some(s) = shared.stats {
                        s.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    next = Some(i);
                    break;
                }
            }
        }
        let Some(i) = next else {
            // 3. Park until new work is enqueued or the run finishes. The
            //    re-check under the idle lock closes the lost-wakeup race:
            //    every enqueue acquires this lock before notifying.
            let mut guard = lock_recover(&shared.idle);
            loop {
                if shared.finished() || shared.queues.iter().any(|q| !lock_recover(q).is_empty()) {
                    break;
                }
                guard = shared.wake.wait(guard).unwrap_or_else(|e| e.into_inner());
            }
            continue;
        };

        let t0 = Instant::now();
        let outcome = match catch_unwind(AssertUnwindSafe(|| task(i))) {
            Ok(value) => Ok(value),
            Err(payload) => match shared.policy {
                PoolPolicy::Propagate => {
                    shared.abort(payload);
                    return;
                }
                PoolPolicy::Isolate => {
                    Err(TaskPanic { index: i, message: panic_message(&*payload) })
                }
            },
        };
        if let Some(s) = shared.stats {
            s.record_task(t0.elapsed().as_nanos() as u64);
        }
        *lock_recover(&shared.results[i]) = Some(outcome);
        // Release dependents whose last dependency this was. Under Isolate
        // a panicked task still releases its dependents: they run and see
        // the `Err` slot instead of being silently abandoned.
        let mut released = false;
        for &j in &shared.dependents[i] {
            if shared.remaining[j].fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut q = lock_recover(&shared.queues[me]);
                q.push_back(j);
                if let Some(s) = shared.stats {
                    s.note_depth(q.len() as u64);
                }
                drop(q);
                released = true;
            }
        }
        let now_done = shared.done.fetch_add(1, Ordering::SeqCst) + 1;
        if released || now_done >= shared.total {
            let _g = lock_recover(&shared.idle);
            shared.wake.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn map_returns_indexed_results() {
        for jobs in [1, 2, 4, 8] {
            let out = run_map(jobs, 100, |i| i * i);
            assert_eq!(out.len(), 100);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * i, "jobs = {jobs}");
            }
        }
    }

    #[test]
    fn dag_respects_dependencies() {
        // Chain 0 -> 1 -> 2 -> ... : each task observes its predecessor's
        // completion flag.
        let n = 64;
        let deps: Vec<Vec<usize>> =
            (0..n).map(|i| if i == 0 { vec![] } else { vec![i - 1] }).collect();
        for jobs in [1, 3, 8] {
            let flags: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
            let out = run_dag(jobs, &deps, |i| {
                if i > 0 {
                    assert!(flags[i - 1].load(Ordering::SeqCst), "dep of {i} not done");
                }
                flags[i].store(true, Ordering::SeqCst);
                i
            });
            assert_eq!(out, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn diamond_and_fan_shapes() {
        // 0 -> {1..=8} -> 9.
        let mut deps = vec![vec![]];
        for _ in 0..8 {
            deps.push(vec![0]);
        }
        deps.push((1..=8).collect());
        let sum_at_join: Vec<usize> = run_dag(4, &deps, |i| i);
        assert_eq!(sum_at_join.iter().sum::<usize>(), (0..=9).sum());
    }

    #[test]
    fn parallel_matches_sequential() {
        let deps: Vec<Vec<usize>> =
            (0..50).map(|i| (0..i).filter(|d| i % (d + 2) == 0).collect()).collect();
        let seq = run_dag(1, &deps, |i| i * 3 + 1);
        for jobs in [2, 4, 7] {
            assert_eq!(run_dag(jobs, &deps, |i| i * 3 + 1), seq);
        }
    }

    #[test]
    fn empty_dag() {
        let out: Vec<usize> = run_dag(4, &[], |i| i);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates() {
        run_dag(4, &vec![vec![]; 16], |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn isolated_panic_is_contained() {
        // 0 -> 1 -> 2 with 1 panicking: 0 and 2 still run, 1 is an Err.
        let deps = vec![vec![], vec![0], vec![1]];
        for jobs in [1, 2, 4] {
            let out = run_dag_isolated(jobs, &deps, |i| {
                if i == 1 {
                    panic!("scc 1 exploded");
                }
                i * 10
            });
            assert_eq!(out[0].as_ref().unwrap(), &0, "jobs = {jobs}");
            let e = out[1].as_ref().unwrap_err();
            assert_eq!((e.index, e.message.as_str()), (1, "scc 1 exploded"));
            assert_eq!(out[2].as_ref().unwrap(), &20, "dependent of panicked task must run");
        }
    }

    #[test]
    fn isolated_results_independent_of_jobs() {
        let deps: Vec<Vec<usize>> =
            (0..40).map(|i| (0..i).filter(|d| i % (d + 2) == 0).collect()).collect();
        let run = |jobs| {
            run_dag_isolated(jobs, &deps, |i| {
                if i % 7 == 3 {
                    panic!("task {i} down");
                }
                i * 2
            })
        };
        let seq = run(1);
        for jobs in [2, 4, 8] {
            assert_eq!(run(jobs), seq);
        }
    }

    #[test]
    fn isolated_nonstring_payload_is_normalized() {
        let out = run_dag_isolated(1, &[vec![]], |_| -> usize { std::panic::panic_any(42i32) });
        assert_eq!(out[0].as_ref().unwrap_err().message, "non-string panic payload");
    }

    #[test]
    #[should_panic(expected = "boom-seq")]
    fn task_panic_propagates_sequential() {
        run_dag(1, &vec![vec![]; 4], |i| {
            if i == 2 {
                panic!("boom-seq");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected_sequential() {
        let _ = run_dag(1, &[vec![1], vec![0]], |i| i);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected_parallel() {
        let _ = run_dag(4, &[vec![1], vec![0], vec![]], |i| i);
    }

    /// Poisons `m` the way a real fault would: a panic raised while the
    /// lock is held.
    fn poison<U>(m: &Mutex<U>) {
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("injected fault while holding the lock");
        }));
        assert!(m.is_poisoned());
    }

    #[test]
    fn lock_recover_survives_poisoning() {
        let q: Mutex<VecDeque<usize>> = Mutex::new(VecDeque::from([7]));
        poison(&q);
        assert_eq!(lock_recover(&q).pop_back(), Some(7));
        lock_recover(&q).push_back(9);
        assert_eq!(lock_recover(&q).pop_front(), Some(9));
    }

    /// Regression: a poisoned queue mutex used to cascade — the next
    /// worker to probe it panicked on `unwrap()`, poisoning the idle lock
    /// and taking down every parked worker instead of the PR 2
    /// conservative-top degradation. A worker facing a poisoned victim
    /// queue must recover the guard, steal the task, and drain the DAG.
    #[test]
    fn worker_drains_despite_poisoned_queue() {
        let deps: Vec<Vec<usize>> = vec![vec![], vec![0]];
        let dependents = invert(&deps);
        let remaining: Vec<AtomicUsize> = deps.iter().map(|d| AtomicUsize::new(d.len())).collect();
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..2).map(|_| Mutex::new(VecDeque::new())).collect();
        // The ready task sits in worker 1's deque, which a fault poisons
        // before worker 0 gets to steal from it.
        queues[1].lock().unwrap().push_back(0);
        poison(&queues[1]);
        let results: Vec<Mutex<Option<Result<usize, TaskPanic>>>> =
            (0..2).map(|_| Mutex::new(None)).collect();
        let shared = Shared {
            dependents: &dependents,
            remaining: &remaining,
            queues: &queues,
            results: &results,
            done: AtomicUsize::new(0),
            total: 2,
            idle: Mutex::new(()),
            wake: Condvar::new(),
            panic: Mutex::new(None),
            policy: PoolPolicy::Isolate,
            stats: None,
        };
        worker(0, 2, &shared, &|i| i * 10);
        assert_eq!(lock_recover(&results[0]).take(), Some(Ok(0)));
        assert_eq!(lock_recover(&results[1]).take(), Some(Ok(10)));
    }

    /// Many concurrent panicking tasks at several worker counts: the
    /// containment machinery (abort/notify, result publication, dependent
    /// release) must fill every slot without a poisoning cascade.
    #[test]
    fn panic_storm_fills_every_slot() {
        let deps: Vec<Vec<usize>> =
            (0..64).map(|i| (0..i).filter(|d| i % (d + 2) == 0).collect()).collect();
        for jobs in [2, 4, 8] {
            let out = run_dag_isolated(jobs, &deps, |i| {
                if i % 2 == 0 {
                    panic!("task {i} down");
                }
                i
            });
            assert_eq!(out.len(), 64, "jobs = {jobs}");
            for (i, r) in out.iter().enumerate() {
                assert_eq!(r.is_err(), i % 2 == 0, "jobs = {jobs}, task {i}");
            }
        }
    }
}
