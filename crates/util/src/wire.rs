//! Little-endian binary encoding helpers shared by the persistent summary
//! store and the `safeflow serve` socket protocol.
//!
//! Both consumers face untrusted bytes (a disk file another process may
//! have damaged, a socket an arbitrary client writes to), so the decoding
//! side is a [`ByteReader`]: a bounded cursor whose every accessor returns
//! `None` past the end of the buffer — decoders built on it never panic on
//! garbage, truncation, or overlong length fields.

/// Bounded cursor over an untrusted byte buffer. Every accessor returns
/// `None` past the end — readers built on this never panic on garbage.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Takes the next `n` bytes, or `None` if fewer remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// A `u32` length that must be plausible against the remaining buffer,
    /// for pre-allocating collections without trusting the wire.
    pub fn seq_len(&mut self) -> Option<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            return None;
        }
        Some(n)
    }

    /// `true` once the cursor has consumed the whole buffer.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Appends one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_strings() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_str(&mut buf, "héllo");
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 1));
        assert_eq!(r.str().as_deref(), Some("héllo"));
        assert!(r.done());
    }

    #[test]
    fn truncation_yields_none_not_panic() {
        let mut buf = Vec::new();
        put_str(&mut buf, "abcdef");
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            assert!(r.str().is_none(), "cut at {cut} must fail cleanly");
        }
    }

    #[test]
    fn overlong_length_is_rejected_by_len() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1_000_000); // claims a million entries
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.seq_len(), None, "length beyond the buffer is implausible");
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(ByteReader::new(&buf).str(), None);
    }
}
