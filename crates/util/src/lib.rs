//! # safeflow-util
//!
//! Dependency-free shared infrastructure for the SafeFlow workspace:
//!
//! * [`rng`] — a small, fast, deterministic PRNG (SplitMix64) used by the
//!   corpus generators and the Simplex simulation, so results are
//!   bit-reproducible across platforms and runs;
//! * [`hash`] — a stable 64-bit FNV-1a hasher used for content-addressed
//!   summary caching (stability across processes matters, which rules out
//!   the randomly-keyed std hasher);
//! * [`arena`] — a hand-rolled bump arena for string storage (backs the
//!   interner; chunks never move, so handed-out slices are stable);
//! * [`intern`] — `Symbol(u32)` string interning for the zero-copy
//!   frontend (owned deterministic [`intern::Interner`] plus a
//!   process-global instance behind [`intern::Symbol::intern`]);
//! * [`pool`] — a work-stealing thread pool with dependency-DAG
//!   scheduling, used by the parallel analysis engine to run call-graph
//!   SCCs concurrently, with per-task panic containment
//!   ([`pool::PoolPolicy`]);
//! * [`prop`] — a miniature deterministic property-test harness
//!   (seeded-case loops with seed reporting on failure);
//! * [`fault`] — deterministic fault injection ([`fault::FaultPlan`]) for
//!   exercising the analyzer's degradation paths;
//! * [`metrics`] — a lock-cheap metrics registry (counters, histograms,
//!   wall-clock spans) whose entries are classified by determinism, so
//!   observability output can participate in the byte-identity contract;
//! * [`json`] — a minimal JSON document model + deterministic pretty
//!   printer backing `--format json` and `--metrics=json`;
//! * [`wire`] — little-endian binary encoding helpers with a panic-free
//!   bounded reader, shared by the persistent summary store and the
//!   `safeflow serve` socket protocol.
//!
//! Everything here is built on `std` only: the workspace builds and tests
//! fully offline.

#![warn(missing_docs)]

pub mod arena;
pub mod fault;
pub mod hash;
pub mod intern;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod wire;

pub use arena::Bump;
pub use fault::{FaultKind, FaultPlan, FaultSite};
pub use hash::Fnv64;
pub use intern::{Interner, Symbol};
pub use json::Json;
pub use metrics::{Class, Histogram, Metrics, MetricsSnapshot};
pub use pool::{run_dag, run_dag_isolated, run_map, PoolPolicy, PoolStats, TaskPanic};
pub use rng::SplitMix64;
