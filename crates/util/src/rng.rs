//! Deterministic pseudo-random number generation.
//!
//! SplitMix64 (Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
//! Generators", OOPSLA 2014): a 64-bit state PRNG with excellent
//! statistical quality for non-cryptographic use, one multiply-xorshift
//! chain per output, and trivially reproducible across platforms. All
//! randomized corpus generation and simulation noise in the workspace
//! draws from this generator so every artifact is bit-stable.

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Requires `lo < hi`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `u64` in `[0, n)` via Lemire-style rejection (unbiased).
    /// Requires `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection zone to remove modulo bias.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`. Requires `lo < hi`.
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`. Requires `lo < hi`.
    pub fn i64_range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform `i32` in `[lo, hi)`. Requires `lo < hi`.
    pub fn i32_range(&mut self, lo: i32, hi: i32) -> i32 {
        self.i64_range(lo as i64, hi as i64) as i32
    }

    /// A uniformly random bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_range(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(SplitMix64::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_vector() {
        // First outputs for seed 0 (reference SplitMix64 values).
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let u = r.usize_range(3, 9);
            assert!((3..9).contains(&u));
            let i = r.i64_range(-5, 5);
            assert!((-5..5).contains(&i));
            let f = r.f64_range(0.25, 0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = SplitMix64::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
