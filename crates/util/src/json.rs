//! A minimal JSON document model with a deterministic pretty-printer.
//!
//! The workspace is `std`-only (no serde), so machine-readable output is
//! built from this small value type. Objects preserve **insertion order**,
//! which makes the rendered text a pure function of construction order —
//! the property the `--format json` byte-identity contract rests on.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (rendered without exponent).
    Int(i64),
    /// An unsigned integer (rendered without exponent).
    UInt(u64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a member to an object; on any other variant this is a
    /// logic error and panics.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) {
        match self {
            Json::Obj(members) => members.push((key.into(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Looks up a member of an object (testing convenience).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Removes a member of an object, returning it if present.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        match self {
            Json::Obj(members) => {
                let i = members.iter().position(|(k, _)| k == key)?;
                Some(members.remove(i).1)
            }
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent, `\n`
    /// separators, no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::from(7u64).render(), "7");
        assert_eq!(Json::from("a\"b\\c\nd\u{1}").render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let mut o = Json::obj();
        o.set("z", 1u64);
        o.set("a", 2u64);
        assert_eq!(o.render(), "{\n  \"z\": 1,\n  \"a\": 2\n}");
        assert_eq!(o.get("a"), Some(&Json::UInt(2)));
        assert_eq!(o.get("missing"), None);
    }

    #[test]
    fn nested_pretty_printing() {
        let mut inner = Json::obj();
        inner.set("k", "v");
        let mut o = Json::obj();
        o.set("list", vec![Json::from(1u64), Json::from(2u64)]);
        o.set("empty", Vec::<Json>::new());
        o.set("obj", inner);
        assert_eq!(
            o.render(),
            "{\n  \"list\": [\n    1,\n    2\n  ],\n  \"empty\": [],\n  \"obj\": {\n    \"k\": \"v\"\n  }\n}"
        );
    }

    #[test]
    fn remove_drops_member() {
        let mut o = Json::obj();
        o.set("keep", 1u64);
        o.set("drop", 2u64);
        assert_eq!(o.remove("drop"), Some(Json::UInt(2)));
        assert_eq!(o.remove("drop"), None);
        assert_eq!(o.render(), "{\n  \"keep\": 1\n}");
    }
}
