//! A minimal JSON document model with a deterministic pretty-printer.
//!
//! The workspace is `std`-only (no serde), so machine-readable output is
//! built from this small value type. Objects preserve **insertion order**,
//! which makes the rendered text a pure function of construction order —
//! the property the `--format json` byte-identity contract rests on.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (rendered without exponent).
    Int(i64),
    /// An unsigned integer (rendered without exponent).
    UInt(u64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a member to an object; on any other variant this is a
    /// logic error and panics.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) {
        match self {
            Json::Obj(members) => members.push((key.into(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Looks up a member of an object (testing convenience).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Removes a member of an object, returning it if present.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        match self {
            Json::Obj(members) => {
                let i = members.iter().position(|(k, _)| k == key)?;
                Some(members.remove(i).1)
            }
            _ => None,
        }
    }

    /// Parses a JSON text into a [`Json`] value.
    ///
    /// Accepts the subset the renderer emits (null, booleans, integers,
    /// strings, arrays, objects) plus arbitrary inter-token whitespace, so
    /// `Json::parse(&v.render())` round-trips for every value without a
    /// float member. Numbers with a fraction or exponent, trailing input,
    /// and malformed escapes are rejected — this parser feeds the
    /// persistent-store replay path, which must fail closed on anything it
    /// does not fully understand.
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] (byte offset + reason) on malformed
    /// input.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }

    /// Renders the value as pretty-printed JSON (2-space indent, `\n`
    /// separators, no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Error from [`Json::parse`]: the byte offset where parsing stopped and
/// what was wrong there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonParseError {}

/// Nesting cap: deeper documents are rejected rather than risking stack
/// exhaustion on adversarial store files.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> JsonParseError {
        JsonParseError { offset: self.pos, reason: reason.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consumes `lit` (used for `null`/`true`/`false`).
    fn literal(&mut self, lit: &str) -> Result<(), JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("value nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null").map(|()| Json::Null),
            Some(b't') => self.literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.pos += 1; // '['
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.pos += 1; // '{'
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits in number"));
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("fractional/exponent numbers are not supported"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if negative {
            let n = text.parse::<i64>().map_err(|_| self.err("integer out of i64 range"))?;
            Ok(Json::Int(n))
        } else {
            let n = text.parse::<u64>().map_err(|_| self.err("integer out of u64 range"))?;
            Ok(Json::UInt(n))
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue; // unicode_escape consumed its digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy one (possibly multi-byte) UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the four hex digits after `\u` (combining surrogate pairs),
    /// leaving `pos` just past the escape.
    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following `\uXXXX` low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::from(7u64).render(), "7");
        assert_eq!(Json::from("a\"b\\c\nd\u{1}").render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let mut o = Json::obj();
        o.set("z", 1u64);
        o.set("a", 2u64);
        assert_eq!(o.render(), "{\n  \"z\": 1,\n  \"a\": 2\n}");
        assert_eq!(o.get("a"), Some(&Json::UInt(2)));
        assert_eq!(o.get("missing"), None);
    }

    #[test]
    fn nested_pretty_printing() {
        let mut inner = Json::obj();
        inner.set("k", "v");
        let mut o = Json::obj();
        o.set("list", vec![Json::from(1u64), Json::from(2u64)]);
        o.set("empty", Vec::<Json>::new());
        o.set("obj", inner);
        assert_eq!(
            o.render(),
            "{\n  \"list\": [\n    1,\n    2\n  ],\n  \"empty\": [],\n  \"obj\": {\n    \"k\": \"v\"\n  }\n}"
        );
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let mut inner = Json::obj();
        inner.set("k", "v\"with\\escapes\n\u{1}");
        inner.set("n", Json::Int(-42));
        let mut o = Json::obj();
        o.set("list", vec![Json::from(1u64), Json::Null, Json::Bool(false)]);
        o.set("empty_arr", Vec::<Json>::new());
        o.set("empty_obj", Json::obj());
        o.set("big", Json::UInt(u64::MAX));
        o.set("obj", inner);
        let text = o.render();
        assert_eq!(Json::parse(&text).unwrap(), o);
    }

    #[test]
    fn parse_accepts_compact_and_spaced_forms() {
        let v = Json::parse("{\"a\":[1,2],\"b\":null}").unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![Json::UInt(1), Json::UInt(2)])));
        assert_eq!(v.get("b"), Some(&Json::Null));
        assert_eq!(Json::parse("  [ true , false ]  ").unwrap().render(), "[\n  true,\n  false\n]");
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(Json::parse("\"\\u0041\\u00e9\"").unwrap(), Json::Str("Aé".to_string()));
        // Surrogate pair for U+1F600.
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".to_string()));
        assert!(Json::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.5",
            "1e3",
            "[1] extra",
            "\"unending",
            "{1: 2}",
            "\"\\q\"",
            "[01]x",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "must reject {bad:?}");
        }
        // Integer range edges.
        assert!(Json::parse("18446744073709551616").is_err()); // u64::MAX + 1
        assert!(Json::parse("-9223372036854775809").is_err()); // i64::MIN - 1
        assert_eq!(Json::parse("-9223372036854775808").unwrap(), Json::Int(i64::MIN));
    }

    #[test]
    fn parse_depth_cap_rejects_pathological_nesting() {
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn remove_drops_member() {
        let mut o = Json::obj();
        o.set("keep", 1u64);
        o.set("drop", 2u64);
        assert_eq!(o.remove("drop"), Some(Json::UInt(2)));
        assert_eq!(o.remove("drop"), None);
        assert_eq!(o.render(), "{\n  \"keep\": 1\n}");
    }
}
