//! Deterministic fault injection for the analysis pipeline.
//!
//! A [`FaultPlan`] decides, for a named [`FaultSite`] and a *stable* key
//! (an SCC index, a function id — never a global occurrence counter),
//! whether to inject a [`FaultKind`] there. Decisions are a pure function
//! of `(plan, site, key)`, so the same plan injects the same faults at
//! `--jobs 1` and `--jobs 8` regardless of scheduling — which is what lets
//! the fault-injection suite assert byte-identical degraded reports across
//! thread counts.
//!
//! Plans come in two flavors that compose:
//!
//! * **targeted rules** ([`FaultPlan::with_fault`] / [`FaultPlan::panic_at`])
//!   pin a fault to one site+key — used by the golden degraded-report
//!   snapshots and the CLI `--inject` flag;
//! * **seeded plans** ([`FaultPlan::seeded`]) draw per-(site, key)
//!   decisions from a [`SplitMix64`] stream keyed by a hash of the
//!   coordinates — used by the monotone-conservatism property test to
//!   sweep many fault combinations.

use crate::rng::SplitMix64;

/// A named injection point in the analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// The per-SCC summary-analysis task (key: SCC index).
    SccAnalysis,
    /// A constraint-solver invocation (key: function id).
    Solver,
    /// The summary cache (key: SCC index).
    SummaryCache,
    /// A `safeflow serve` request being executed (key: the request's
    /// stable coalescing hash). A panic here exercises the daemon's
    /// per-request containment; budget exhaustion forces the request onto
    /// the degraded path.
    ServeRequest,
    /// A `safeflow serve` response frame being written (key: the request's
    /// stable coalescing hash). Injection truncates the frame mid-write —
    /// the client-visible version of a torn wire.
    ServeFrame,
}

/// What kind of fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (exercises containment).
    Panic,
    /// Force the site's resource budget to read as exhausted (exercises
    /// graceful degradation).
    BudgetExhaustion,
}

#[derive(Debug, Clone)]
struct FaultRule {
    site: FaultSite,
    /// `None` matches every key at the site.
    key: Option<u64>,
    kind: FaultKind,
}

/// A deterministic schedule of injected faults (see module docs).
///
/// The default plan injects nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    seeded: Option<(u64, f64)>,
}

fn site_salt(site: FaultSite) -> u64 {
    match site {
        FaultSite::SccAnalysis => 0x5CC0_0001,
        FaultSite::Solver => 0x501F_0002,
        FaultSite::SummaryCache => 0xCAC8_0003,
        FaultSite::ServeRequest => 0x5E4E_0004,
        FaultSite::ServeFrame => 0xF4A3_0005,
    }
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a targeted rule: inject `kind` at `site` for `key` (or every
    /// key there if `key` is `None`).
    pub fn with_fault(mut self, site: FaultSite, key: Option<u64>, kind: FaultKind) -> FaultPlan {
        self.rules.push(FaultRule { site, key, kind });
        self
    }

    /// A plan with a single targeted panic at `site`/`key`.
    pub fn panic_at(site: FaultSite, key: u64) -> FaultPlan {
        FaultPlan::new().with_fault(site, Some(key), FaultKind::Panic)
    }

    /// A plan with a single targeted budget exhaustion at `site`/`key`.
    pub fn exhaust_at(site: FaultSite, key: u64) -> FaultPlan {
        FaultPlan::new().with_fault(site, Some(key), FaultKind::BudgetExhaustion)
    }

    /// A seeded plan: each `(site, key)` pair independently faults with
    /// probability `rate`, choosing panic vs budget exhaustion by a second
    /// coin flip. Decisions depend only on `(seed, site, key)`.
    pub fn seeded(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan { rules: Vec::new(), seeded: Some((seed, rate)) }
    }

    /// `true` if the plan injects nothing anywhere.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.seeded.is_none()
    }

    /// The fault (if any) this plan injects at `site` for `key`.
    pub fn fault_at(&self, site: FaultSite, key: u64) -> Option<FaultKind> {
        for r in &self.rules {
            if r.site == site && r.key.is_none_or(|k| k == key) {
                return Some(r.kind);
            }
        }
        if let Some((seed, rate)) = self.seeded {
            // Key the stream by the coordinates, not by call order: the
            // decision must not depend on scheduling.
            let mix = seed
                ^ site_salt(site).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ key.wrapping_mul(0xA24B_AED4_963E_E407);
            let mut rng = SplitMix64::seed_from_u64(mix);
            if rng.chance(rate) {
                return Some(if rng.bool() {
                    FaultKind::Panic
                } else {
                    FaultKind::BudgetExhaustion
                });
            }
        }
        None
    }

    /// Panics with a deterministic message if the plan injects
    /// [`FaultKind::Panic`] at `site`/`key`; returns `true` if it injects
    /// [`FaultKind::BudgetExhaustion`] there (the caller degrades), and
    /// `false` if the site is clean.
    pub fn trip(&self, site: FaultSite, key: u64) -> bool {
        match self.fault_at(site, key) {
            Some(FaultKind::Panic) => {
                panic!("injected fault: panic at {site:?} (key {key})")
            }
            Some(FaultKind::BudgetExhaustion) => true,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targeted_rule_hits_only_its_key() {
        let plan = FaultPlan::panic_at(FaultSite::SccAnalysis, 3);
        assert_eq!(plan.fault_at(FaultSite::SccAnalysis, 3), Some(FaultKind::Panic));
        assert_eq!(plan.fault_at(FaultSite::SccAnalysis, 2), None);
        assert_eq!(plan.fault_at(FaultSite::Solver, 3), None);
    }

    #[test]
    fn wildcard_rule_hits_every_key() {
        let plan =
            FaultPlan::new().with_fault(FaultSite::Solver, None, FaultKind::BudgetExhaustion);
        for key in [0u64, 1, 99, u64::MAX] {
            assert_eq!(plan.fault_at(FaultSite::Solver, key), Some(FaultKind::BudgetExhaustion));
        }
    }

    #[test]
    fn seeded_decisions_are_stable_and_order_independent() {
        let plan = FaultPlan::seeded(42, 0.5);
        let forward: Vec<_> = (0..64).map(|k| plan.fault_at(FaultSite::SccAnalysis, k)).collect();
        let backward: Vec<_> =
            (0..64).rev().map(|k| plan.fault_at(FaultSite::SccAnalysis, k)).collect();
        let mut backward_rev = backward;
        backward_rev.reverse();
        assert_eq!(forward, backward_rev);
        // A 0.5-rate plan over 64 keys should fault somewhere and stay
        // clean somewhere.
        assert!(forward.iter().any(Option::is_some));
        assert!(forward.iter().any(Option::is_none));
    }

    #[test]
    fn seeded_sites_are_decorrelated() {
        let plan = FaultPlan::seeded(7, 0.5);
        let a: Vec<_> = (0..64).map(|k| plan.fault_at(FaultSite::SccAnalysis, k)).collect();
        let b: Vec<_> = (0..64).map(|k| plan.fault_at(FaultSite::SummaryCache, k)).collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "injected fault: panic at SccAnalysis (key 5)")]
    fn trip_panics_deterministically() {
        FaultPlan::panic_at(FaultSite::SccAnalysis, 5).trip(FaultSite::SccAnalysis, 5);
    }
}
