//! Stable 64-bit hashing for content-addressed caching.
//!
//! The std `DefaultHasher` is explicitly not guaranteed stable across Rust
//! releases, and `HashMap`'s per-instance random keys make it useless for
//! cache keys that must be reproducible across processes. FNV-1a is tiny,
//! fast on the short keys the analysis hashes (IR instruction streams,
//! names, id lists), and bit-stable forever.

use std::hash::Hasher;

/// 64-bit FNV-1a hasher. Implements [`std::hash::Hasher`] so `#[derive(Hash)]`
/// types can feed it directly.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Fnv64 {
    /// A fresh hasher.
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    /// Feeds a string (length-prefixed, so `("ab","c")` ≠ `("a","bc")`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Current hash value (same as [`Hasher::finish`], without consuming).
    pub fn value(&self) -> u64 {
        self.state
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// Hash of a byte slice.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Hash of a string.
pub fn hash_str(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

/// Combines two hashes order-sensitively (for Merkle-style chains).
pub fn combine(a: u64, b: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(a);
    h.write_u64(b);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer() {
        // FNV-1a 64 reference vectors.
        assert_eq!(hash_str(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_str("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_str("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn write_str_is_length_prefixed() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }
}
