//! A lock-cheap metrics registry for the analysis pipeline.
//!
//! One [`Metrics`] value collects everything a run wants to observe —
//! counters, histograms, and wall-clock spans — and classifies each datum
//! by **how deterministic it is**, because the analyzer's byte-identity
//! contract ("same report for any `--jobs` and any cache state") extends
//! to the observability output:
//!
//! * [`Class::Counter`] — invariant across worker counts *and* cache
//!   state: pure functions of the analyzed program (restriction checks,
//!   solver work, taint rounds).
//! * [`Class::Work`] — invariant across worker counts but dependent on
//!   cache state: a warm summary cache skips recomputation, so these move
//!   between cold and warm runs (cache hits/misses, summarize calls,
//!   summary fixpoint rounds).
//! * [`Class::Sched`] — schedule-dependent: steals, queue depths,
//!   per-worker busy time. Never compared across runs.
//!
//! Wall-clock spans ([`Metrics::time`]) and histograms
//! ([`Metrics::observe`]) land in their own sections (`timings_ns`,
//! `dist`) and are likewise excluded from determinism comparisons.
//!
//! The registry is a single `Mutex` around plain `BTreeMap`s: callers are
//! expected to aggregate locally (e.g. per SCC task) and flush a handful
//! of values per lock acquisition — see [`Metrics::add_many`] — so the
//! lock is cold even under a saturated worker pool.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Determinism class of a counter (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Invariant across worker counts and cache state.
    Counter,
    /// Invariant across worker counts; moves with cache state.
    Work,
    /// Schedule-dependent; never compared across runs.
    Sched,
}

/// A summarized histogram: count/sum/min/max plus sixteen power-of-16
/// magnitude buckets (bucket `k` counts observations below `2^(4(k+1))`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Magnitude buckets (see type docs).
    pub buckets: [u64; 16],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; 16] }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bits = 64 - value.leading_zeros() as usize; // 0..=64
        self.buckets[(bits.saturating_sub(1) / 4).min(15)] += 1;
    }

    fn to_json(self) -> Json {
        let mut o = Json::obj();
        o.set("count", self.count);
        o.set("sum", self.sum);
        o.set("min", if self.count == 0 { 0 } else { self.min });
        o.set("max", self.max);
        o.set("buckets", self.buckets.iter().map(|&b| Json::UInt(b)).collect::<Vec<_>>());
        o
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    work: BTreeMap<String, u64>,
    sched: BTreeMap<String, u64>,
    dist: BTreeMap<String, Histogram>,
    timings_ns: BTreeMap<String, u64>,
}

/// The metrics registry for one analysis run.
///
/// `&Metrics` is `Sync`; phase code shares it freely with pool tasks.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Locks the registry, recovering from poisoning. A contained panic
    /// elsewhere (an isolated SCC fault, a shedding serve worker) must not
    /// take down metrics reporting on drain: every map here is a plain
    /// accumulator, so the worst a poisoned lock hides is the one
    /// increment that panicked mid-flush.
    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `n` to the counter `key` in `class`.
    pub fn add(&self, class: Class, key: &str, n: u64) {
        self.add_many(class, &[(key, n)]);
    }

    /// Adds a batch of counter increments under one lock acquisition —
    /// the preferred shape for per-task flushes from pool workers.
    pub fn add_many(&self, class: Class, entries: &[(&str, u64)]) {
        let mut inner = self.locked();
        let map = match class {
            Class::Counter => &mut inner.counters,
            Class::Work => &mut inner.work,
            Class::Sched => &mut inner.sched,
        };
        for &(key, n) in entries {
            *map.entry(key.to_string()).or_insert(0) += n;
        }
    }

    /// Records one observation into the histogram `key` (the `dist`
    /// section; excluded from determinism comparisons).
    pub fn observe(&self, key: &str, value: u64) {
        self.locked().dist.entry(key.to_string()).or_default().observe(value);
    }

    /// Adds `ns` nanoseconds to the span `key` (the `timings_ns`
    /// section; excluded from determinism comparisons).
    pub fn record_ns(&self, key: &str, ns: u64) {
        let mut inner = self.locked();
        *inner.timings_ns.entry(key.to_string()).or_insert(0) += ns;
    }

    /// Times `f` and records the elapsed wall-clock under the span `key`.
    pub fn time<T>(&self, key: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let r = f();
        self.record_ns(key, t0.elapsed().as_nanos() as u64);
        r
    }

    /// An immutable copy of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.locked();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            work: inner.work.clone(),
            sched: inner.sched.clone(),
            dist: inner.dist.clone(),
            timings_ns: inner.timings_ns.clone(),
        }
    }
}

/// A point-in-time copy of a [`Metrics`] registry, ready to render.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// [`Class::Counter`] values, sorted by key.
    pub counters: BTreeMap<String, u64>,
    /// [`Class::Work`] values, sorted by key.
    pub work: BTreeMap<String, u64>,
    /// [`Class::Sched`] values, sorted by key.
    pub sched: BTreeMap<String, u64>,
    /// Histograms, sorted by key.
    pub dist: BTreeMap<String, Histogram>,
    /// Wall-clock spans in nanoseconds, sorted by key.
    pub timings_ns: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object with one sub-object per
    /// section, in a fixed order: deterministic sections first
    /// (`counters`, `work`), then the volatile ones (`sched`, `dist`,
    /// `timings_ns`) that consumers strip before byte-comparing runs.
    pub fn to_json(&self) -> Json {
        fn section(map: &BTreeMap<String, u64>) -> Json {
            let mut o = Json::obj();
            for (k, v) in map {
                o.set(k.clone(), *v);
            }
            o
        }
        let mut o = Json::obj();
        o.set("counters", section(&self.counters));
        o.set("work", section(&self.work));
        o.set("sched", section(&self.sched));
        let mut dist = Json::obj();
        for (k, h) in &self.dist {
            dist.set(k.clone(), h.to_json());
        }
        o.set("dist", dist);
        o.set("timings_ns", section(&self.timings_ns));
        o
    }

    /// Renders the snapshot as aligned `section.key  value` text lines,
    /// in the same section order as [`MetricsSnapshot::to_json`].
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let sections: [(&str, &BTreeMap<String, u64>); 4] = [
            ("counters", &self.counters),
            ("work", &self.work),
            ("sched", &self.sched),
            ("timings_ns", &self.timings_ns),
        ];
        for (name, map) in sections {
            for (k, v) in map {
                out.push_str(&format!("{name}.{k}  {v}\n"));
            }
        }
        for (k, h) in &self.dist {
            out.push_str(&format!(
                "dist.{k}  count={} sum={} min={} max={}\n",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_class() {
        let m = Metrics::new();
        m.add(Class::Counter, "a", 1);
        m.add(Class::Counter, "a", 2);
        m.add(Class::Work, "a", 5);
        m.add_many(Class::Sched, &[("s", 1), ("t", 2)]);
        let s = m.snapshot();
        assert_eq!(s.counters["a"], 3);
        assert_eq!(s.work["a"], 5);
        assert_eq!(s.sched["s"], 1);
        assert_eq!(s.sched["t"], 2);
    }

    #[test]
    fn histogram_tracks_bounds_and_buckets() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(15);
        h.observe(16);
        h.observe(u64::MAX);
        assert_eq!((h.count, h.min, h.max), (4, 0, u64::MAX));
        assert_eq!(h.buckets[0], 2); // 0 and 15 are below 2^4
        assert_eq!(h.buckets[1], 1); // 16 is below 2^8
        assert_eq!(h.buckets[15], 1);
    }

    #[test]
    fn time_records_span() {
        let m = Metrics::new();
        let out = m.time("phase.x", || 42);
        assert_eq!(out, 42);
        assert!(m.snapshot().timings_ns.contains_key("phase.x"));
    }

    #[test]
    fn json_sections_in_fixed_order() {
        let m = Metrics::new();
        m.add(Class::Counter, "c", 1);
        m.observe("d", 7);
        let json = m.snapshot().to_json();
        let Json::Obj(members) = &json else { panic!() };
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["counters", "work", "sched", "dist", "timings_ns"]);
    }

    /// Regression: a panic raised while the registry lock was held used
    /// to poison it, and every later `add`/`snapshot` then panicked on
    /// `unwrap()` — so a single contained fault silenced all metrics
    /// reporting on drain. The registry must recover and keep rendering.
    #[test]
    fn poisoned_registry_still_records_and_renders() {
        let m = Metrics::new();
        m.add(Class::Counter, "before", 1);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.inner.lock().unwrap();
            panic!("injected fault while holding the registry lock");
        }));
        assert!(m.inner.is_poisoned());
        m.add(Class::Counter, "after", 2);
        m.observe("d", 3);
        m.record_ns("t", 5);
        let s = m.snapshot();
        assert_eq!(s.counters["before"], 1);
        assert_eq!(s.counters["after"], 2);
        assert_eq!(s.dist["d"].count, 1);
        assert!(s.render_text().contains("counters.after  2"));
        assert!(s.to_json().render().contains("\"after\""));
    }

    #[test]
    fn snapshots_of_equal_runs_compare_equal() {
        let run = || {
            let m = Metrics::new();
            m.add(Class::Counter, "x", 2);
            m.add(Class::Work, "y", 3);
            let mut s = m.snapshot();
            s.timings_ns.clear(); // the only machine-dependent section
            s
        };
        assert_eq!(run(), run());
    }
}
