//! # safeflow-oracle
//!
//! Differential + metamorphic testing of the optimized analysis engines.
//!
//! PRs 1–4 stacked three aggressive layers on top of the reference
//! semantics: work-stealing parallel SCC scheduling, content-hashed
//! summary caching, and persistent-store incremental replay. This crate
//! keeps them honest. For every seed it generates an annotation-bearing,
//! (possibly) multi-translation-unit program
//! ([`safeflow_corpus::oracle_gen`]), analyzes it with the deliberately
//! naive **reference** configuration ([`AnalysisConfig::reference`]: summary
//! engine, single thread, fresh analyzer, no store), and then re-analyzes
//! it under each optimized configuration:
//!
//! * **parallel** — same config with `jobs = N` worker threads;
//! * **warm-cache** — the same analyzer run twice, comparing the
//!   cache-warm second run;
//! * **store-replay** — a persisted session replayed from its manifest;
//! * **incremental** — a store populated from an edited *variant* of the
//!   program, then the real program checked against it (dirty-region
//!   re-analysis over a seeded cache);
//! * **sharded** — the call-graph SCC DAG partitioned across several shard
//!   workers that populate a shared store through segment files (run
//!   in-process, seed-varied worker count), then the coordinator's final
//!   check over the merged store.
//!
//! A **divergence** is any difference in the `safeflow-report-v1` JSON
//! document after stripping the sections the observability contract
//! exempts ([`stripped`]): `metrics.sched`/`dist`/`timings_ns` always, plus
//! `metrics.work` and the top-level `cache` when the two sides differ in
//! cache state. Divergences are minimized by shrinking the generator
//! *shape* ([`minimize`]) and emitted as repro files.

#![warn(missing_docs)]

use safeflow::{AnalysisConfig, AnalysisSession, Analyzer, Json, SessionRun};
use safeflow_corpus::oracle_gen::{
    generate, generate_variant, shape_for_seed, shrink_candidates, OracleShape,
};
use safeflow_syntax::VirtualFs;
use std::path::{Path, PathBuf};

/// The optimized configurations the oracle checks against the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleConfig {
    /// `jobs = N` worker threads, cold cache, no store.
    Parallel,
    /// The same analyzer run twice; the cache-warm second run is compared.
    WarmCache,
    /// A persisted session replayed from its whole-program manifest.
    StoreReplay,
    /// A store populated from an edited variant, then the real program
    /// checked against it (dirty-region re-analysis).
    Incremental,
    /// Shard workers (2–4, seed-varied) populate a shared store through
    /// segment files, then the coordinator's final check runs over the
    /// merged store — the in-process equivalent of `check --shards N`.
    Sharded,
}

/// All configurations, in the fixed order the oracle runs them.
pub const ALL_CONFIGS: [OracleConfig; 5] = [
    OracleConfig::Parallel,
    OracleConfig::WarmCache,
    OracleConfig::StoreReplay,
    OracleConfig::Incremental,
    OracleConfig::Sharded,
];

impl OracleConfig {
    /// Stable name used in reports and repro file names.
    pub fn name(self) -> &'static str {
        match self {
            OracleConfig::Parallel => "parallel",
            OracleConfig::WarmCache => "warm-cache",
            OracleConfig::StoreReplay => "store-replay",
            OracleConfig::Incremental => "incremental",
            OracleConfig::Sharded => "sharded",
        }
    }

    /// Whether comparing this configuration against the reference crosses
    /// cache states (which widens the stripping contract). `Sharded`
    /// qualifies: its final run hits the worker-populated store where the
    /// reference runs cold.
    fn across_cache_states(self) -> bool {
        !matches!(self, OracleConfig::Parallel)
    }
}

/// Options for one oracle run.
#[derive(Debug, Clone)]
pub struct OracleOptions {
    /// First seed (inclusive).
    pub seed_lo: u64,
    /// Last seed (exclusive).
    pub seed_hi: u64,
    /// Worker threads for the parallel configuration.
    pub jobs: usize,
    /// Whether to minimize divergent programs before reporting.
    pub minimize: bool,
    /// Where to write repro files for divergences (`None` = don't write).
    pub repro_dir: Option<PathBuf>,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions { seed_lo: 0, seed_hi: 32, jobs: 4, minimize: false, repro_dir: None }
    }
}

/// One confirmed reference/optimized mismatch.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The seed whose program diverged.
    pub seed: u64,
    /// The optimized configuration that disagreed with the reference.
    pub config: OracleConfig,
    /// The generator shape that produced the divergence (minimized when
    /// [`OracleOptions::minimize`] was set).
    pub shape: OracleShape,
    /// The reference document (stripped per the contract).
    pub expected: String,
    /// The optimized configuration's document (stripped identically).
    pub actual: String,
    /// Repro files written for this divergence (empty without a repro dir).
    pub repro_files: Vec<PathBuf>,
}

/// The outcome of an oracle run.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// The seed window that ran: `[lo, hi)`.
    pub seeds: (u64, u64),
    /// Total reference/optimized comparisons performed.
    pub comparisons: u64,
    /// Every confirmed divergence, in seed order.
    pub divergences: Vec<Divergence>,
}

impl OracleReport {
    /// Exit code under the CLI contract: 0 all configurations agree,
    /// 2 at least one divergence.
    pub fn exit_code(&self) -> u8 {
        if self.divergences.is_empty() {
            0
        } else {
            2
        }
    }

    /// Deterministic human-readable summary: no timings, no paths outside
    /// the repro directory, byte-identical across runs and `--jobs`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let configs: Vec<&str> = ALL_CONFIGS.iter().map(|c| c.name()).collect();
        out.push_str(&format!(
            "safeflow-oracle: seeds {}..{}, configurations: {}\n",
            self.seeds.0,
            self.seeds.1,
            configs.join(", ")
        ));
        for d in &self.divergences {
            out.push_str(&format!(
                "  DIVERGENCE seed {} config {}: optimized report differs from reference\n",
                d.seed,
                d.config.name()
            ));
            out.push_str(&format!("    shape: {:?}\n", d.shape));
            for f in &d.repro_files {
                out.push_str(&format!("    repro: {}\n", f.display()));
            }
        }
        out.push_str(&format!(
            "oracle summary: {} seed(s), {} comparison(s), {} divergence(s)\n",
            self.seeds.1.saturating_sub(self.seeds.0),
            self.comparisons,
            self.divergences.len()
        ));
        out
    }
}

/// Strips a `safeflow-report-v1` document down to the parts the
/// observability contract requires to be identical, and renders it.
///
/// `metrics.sched`, `metrics.dist`, and `metrics.timings_ns` are always
/// schedule-/machine-dependent and always stripped. When
/// `across_cache_states` is set (comparing a warm/replayed/incremental run
/// against a cold one), `metrics.work` and the top-level `cache` section
/// are stripped too — cache bookkeeping is *supposed* to differ there.
pub fn stripped(doc: &Json, across_cache_states: bool) -> String {
    let mut doc = doc.clone();
    if let Json::Obj(members) = &mut doc {
        if across_cache_states {
            members.retain(|(k, _)| k != "cache");
        }
        for (k, v) in members.iter_mut() {
            if k == "metrics" {
                if let Json::Obj(sections) = v {
                    sections.retain(|(k, _)| {
                        k != "sched"
                            && k != "dist"
                            && k != "timings_ns"
                            && (!across_cache_states || k != "work")
                    });
                }
            }
        }
    }
    doc.render()
}

fn vfs(files: &[(String, String)]) -> VirtualFs {
    let mut fs = VirtualFs::new();
    for (name, text) in files {
        fs.add(name.as_str(), text.clone());
    }
    fs
}

fn root_of(files: &[(String, String)]) -> &str {
    files.first().map(|(n, _)| n.as_str()).unwrap_or_default()
}

/// The reference document for `files`: fresh analyzer, reference config,
/// single cold run. Analysis errors render as a deterministic error
/// document so they too participate in the comparison.
fn reference_doc(files: &[(String, String)]) -> String {
    let analyzer = Analyzer::new(AnalysisConfig::reference());
    run_doc(&analyzer, files)
}

fn run_doc(analyzer: &Analyzer, files: &[(String, String)]) -> String {
    match analyzer.analyze_program(root_of(files), &vfs(files)) {
        Ok(result) => analyzer.report_json(&result).render(),
        Err(e) => format!("{{\"analysis_error\":\"{e}\"}}"),
    }
}

/// A per-seed scratch directory for store-backed configurations. Unique
/// per process and seed so parallel test binaries never collide.
fn scratch_dir(seed: u64, tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("safeflow-oracle-{}-{seed}-{tag}", std::process::id()))
}

/// Runs one optimized configuration over `shape` and returns the stripped
/// (reference, optimized) documents.
fn compare_config(
    shape: &OracleShape,
    config: OracleConfig,
    seed: u64,
    jobs: usize,
) -> (String, String) {
    let files = generate(shape);
    let reference = reference_doc(&files);
    let reference = stripped_str(&reference, config.across_cache_states());
    let actual = match config {
        OracleConfig::Parallel => {
            let analyzer = Analyzer::new(AnalysisConfig::reference().with_jobs(jobs.max(2)));
            run_doc(&analyzer, &files)
        }
        OracleConfig::WarmCache => {
            let analyzer = Analyzer::new(AnalysisConfig::reference());
            let _ = analyzer.analyze_program(root_of(&files), &vfs(&files));
            run_doc(&analyzer, &files)
        }
        OracleConfig::StoreReplay => {
            let dir = scratch_dir(seed, "replay");
            let doc = store_replay_doc(&files, &dir);
            let _ = std::fs::remove_dir_all(&dir);
            doc
        }
        OracleConfig::Incremental => {
            let dir = scratch_dir(seed, "incr");
            let doc = incremental_doc(shape, &files, &dir);
            let _ = std::fs::remove_dir_all(&dir);
            doc
        }
        OracleConfig::Sharded => {
            let dir = scratch_dir(seed, "shard");
            let doc = sharded_doc(&files, &dir, seed);
            let _ = std::fs::remove_dir_all(&dir);
            doc
        }
    };
    let actual = stripped_str(&actual, config.across_cache_states());
    (reference, actual)
}

/// Parses-and-strips when the document is JSON; passes error strings
/// through untouched.
fn stripped_str(doc: &str, across_cache_states: bool) -> String {
    match Json::parse(doc) {
        Ok(json) => stripped(&json, across_cache_states),
        Err(_) => doc.to_string(),
    }
}

fn store_replay_doc(files: &[(String, String)], dir: &Path) -> String {
    let _ = std::fs::remove_dir_all(dir);
    let fs = vfs(files);
    let root = root_of(files);
    let cold = match AnalysisSession::with_store(AnalysisConfig::reference(), dir) {
        Ok(mut s) => s.check(root, &fs),
        Err(e) => return format!("{{\"analysis_error\":\"{e}\"}}"),
    };
    if let Err(e) = cold {
        return format!("{{\"analysis_error\":\"{e}\"}}");
    }
    match AnalysisSession::with_store(AnalysisConfig::reference(), dir) {
        Ok(mut warm) => match warm.check(root, &fs) {
            Ok(outcome) => {
                debug_assert_eq!(outcome.run, SessionRun::Replayed);
                outcome.report_json.render()
            }
            Err(e) => format!("{{\"analysis_error\":\"{e}\"}}"),
        },
        Err(e) => format!("{{\"analysis_error\":\"{e}\"}}"),
    }
}

fn incremental_doc(shape: &OracleShape, files: &[(String, String)], dir: &Path) -> String {
    let _ = std::fs::remove_dir_all(dir);
    let variant = generate_variant(shape);
    let root = root_of(files);
    match AnalysisSession::with_store(AnalysisConfig::reference(), dir) {
        Ok(mut s) => {
            let _ = s.check(root_of(&variant), &vfs(&variant));
        }
        Err(e) => return format!("{{\"analysis_error\":\"{e}\"}}"),
    }
    // A brand-new session over the same store: the real program's dirty
    // region (the edited helper unit and its transitive callers)
    // recomputes over the store-seeded cache.
    match AnalysisSession::with_store(AnalysisConfig::reference(), dir) {
        Ok(mut s) => match s.check(root, &vfs(files)) {
            Ok(outcome) => outcome.report_json.render(),
            Err(e) => format!("{{\"analysis_error\":\"{e}\"}}"),
        },
        Err(e) => format!("{{\"analysis_error\":\"{e}\"}}"),
    }
}

/// The sharded-coordination pipeline run in-process: every shard worker
/// summarizes its compute closure into `dir`'s segment files (exactly the
/// code path `safeflow shard-worker` runs, minus the process boundary),
/// then a fresh session's exclusive open merges the segments and the final
/// check runs over the warm store. The worker count varies with the seed
/// (2–4) so the window exercises every supported fan-out.
fn sharded_doc(files: &[(String, String)], dir: &Path, seed: u64) -> String {
    let _ = std::fs::remove_dir_all(dir);
    let fs = vfs(files);
    let root = root_of(files);
    let shards = 2 + (seed as usize % 3);
    for shard in 0..shards {
        if let Err(e) =
            safeflow::shard::run_worker(&AnalysisConfig::reference(), root, &fs, dir, shard, shards)
        {
            return format!("{{\"analysis_error\":\"{e}\"}}");
        }
    }
    match AnalysisSession::with_store(AnalysisConfig::reference(), dir) {
        Ok(mut s) => match s.check(root, &fs) {
            Ok(outcome) => outcome.report_json.render(),
            Err(e) => format!("{{\"analysis_error\":\"{e}\"}}"),
        },
        Err(e) => format!("{{\"analysis_error\":\"{e}\"}}"),
    }
}

/// Greedily shrinks `shape` while `still_diverges` holds, one
/// [`shrink_candidates`] step at a time. Deterministic: candidates are
/// tried in their fixed order and the first still-diverging one is taken.
pub fn minimize(
    shape: &OracleShape,
    mut still_diverges: impl FnMut(&OracleShape) -> bool,
) -> OracleShape {
    let mut cur = shape.clone();
    loop {
        let mut advanced = false;
        for cand in shrink_candidates(&cur) {
            if still_diverges(&cand) {
                cur = cand;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return cur;
        }
    }
}

/// Flattens a (possibly multi-TU) generated program into one `.c` file by
/// splicing generated `#include`s in place — the form repros are checked
/// in as.
pub fn flatten(files: &[(String, String)]) -> String {
    let (_, root) = &files[0];
    let mut out = String::new();
    for line in root.lines() {
        let spliced = files[1..].iter().find_map(|(name, text)| {
            let t = line.trim();
            (t == format!("#include \"{name}\"")).then_some(text.as_str())
        });
        match spliced {
            Some(text) => {
                out.push_str(text);
                if !text.ends_with('\n') {
                    out.push('\n');
                }
            }
            None => {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

/// Writes the repro artifacts for a divergence: the flattened program and
/// both stripped documents. Returns the written paths (program first).
fn write_repro(
    dir: &Path,
    seed: u64,
    config: OracleConfig,
    shape: &OracleShape,
    expected: &str,
    actual: &str,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let stem = format!("seed-{seed}-{}", config.name());
    let program = dir.join(format!("{stem}.c"));
    std::fs::write(&program, flatten(&generate(shape)))?;
    let exp = dir.join(format!("{stem}.expected.json"));
    std::fs::write(&exp, expected)?;
    let act = dir.join(format!("{stem}.actual.json"));
    std::fs::write(&act, actual)?;
    Ok(vec![program, exp, act])
}

/// Runs the oracle over `opts.seed_lo..opts.seed_hi`.
///
/// For each seed: generate the program, compute the reference document,
/// and compare every configuration in [`ALL_CONFIGS`] against it. With
/// `opts.minimize`, each divergence is shrunk before being reported (and
/// written to `opts.repro_dir` when set).
pub fn run(opts: &OracleOptions) -> OracleReport {
    let mut divergences = Vec::new();
    let mut comparisons = 0u64;
    for seed in opts.seed_lo..opts.seed_hi {
        let shape = shape_for_seed(seed);
        for &config in &ALL_CONFIGS {
            comparisons += 1;
            let (expected, actual) = compare_config(&shape, config, seed, opts.jobs);
            if expected == actual {
                continue;
            }
            let shape = if opts.minimize {
                minimize(&shape, |cand| {
                    let (e, a) = compare_config(cand, config, seed, opts.jobs);
                    e != a
                })
            } else {
                shape.clone()
            };
            // Re-derive the documents for the reported shape (minimization
            // may have changed them).
            let (expected, actual) = if opts.minimize {
                compare_config(&shape, config, seed, opts.jobs)
            } else {
                (expected, actual)
            };
            let repro_files = match &opts.repro_dir {
                Some(dir) => {
                    write_repro(dir, seed, config, &shape, &expected, &actual).unwrap_or_default()
                }
                None => Vec::new(),
            };
            divergences.push(Divergence { seed, config, shape, expected, actual, repro_files });
        }
    }
    OracleReport { seeds: (opts.seed_lo, opts.seed_hi), comparisons, divergences }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_seed_window_has_no_divergences() {
        let report = run(&OracleOptions { seed_lo: 0, seed_hi: 6, ..Default::default() });
        assert_eq!(report.comparisons, 30);
        assert!(
            report.divergences.is_empty(),
            "optimized engines diverged from reference:\n{}",
            report.render()
        );
        assert_eq!(report.exit_code(), 0);
    }

    #[test]
    fn render_is_deterministic_across_runs_and_jobs() {
        let a = run(&OracleOptions { seed_lo: 3, seed_hi: 5, jobs: 2, ..Default::default() });
        let b = run(&OracleOptions { seed_lo: 3, seed_hi: 5, jobs: 8, ..Default::default() });
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn minimize_shrinks_to_the_smallest_still_failing_shape() {
        // A synthetic divergence predicate: "diverges" iff the program has
        // at least 2 helper levels and a kill call. The minimizer must
        // strip everything else.
        let mut start = shape_for_seed(11);
        start.depth = start.depth.max(3);
        start.kill_call = true;
        let min = minimize(&start, |s| s.depth >= 2 && s.kill_call);
        assert_eq!(min.depth, 2);
        assert!(min.kill_call);
        assert_eq!(min.units, 1);
        assert_eq!(min.monitors.len(), 1);
        assert_eq!(min.regions, 1);
        assert_eq!(min.branches, 0);
        assert!(!min.direct_read);
    }

    #[test]
    fn flatten_splices_includes_in_place() {
        let mut shape = shape_for_seed(2);
        shape.units = 3;
        let files = generate(&shape);
        assert!(files.len() == 3);
        let flat = flatten(&files);
        assert!(!flat.contains("#include"));
        assert!(flat.contains("helper0"));
        assert!(flat.contains("int main()"));
        // The flattened program must analyze to the same stripped report
        // as the multi-TU original.
        let multi = reference_doc(&files);
        let single = reference_doc(&[("flat.c".to_string(), flat)]);
        // Spans shift between layouts, so compare only the finding counts
        // via exit codes embedded in the documents.
        let exit = |doc: &str| {
            Json::parse(doc).ok().and_then(|j| j.get("exit_code").cloned().map(|e| e.render()))
        };
        assert_eq!(exit(&multi), exit(&single));
    }

    #[test]
    fn stripped_removes_contract_sections() {
        let mut doc = Json::obj();
        doc.set("schema", "safeflow-report-v1");
        doc.set("cache", Json::obj());
        let mut metrics = Json::obj();
        metrics.set("counters", Json::obj());
        metrics.set("sched", Json::obj());
        metrics.set("work", Json::obj());
        metrics.set("timings_ns", Json::obj());
        doc.set("metrics", metrics);
        let same_state = stripped(&doc, false);
        assert!(!same_state.contains("sched"));
        assert!(!same_state.contains("timings_ns"));
        assert!(same_state.contains("cache"));
        assert!(same_state.contains("work"));
        let across = stripped(&doc, true);
        assert!(!across.contains("cache"));
        assert!(!across.contains("work"));
        assert!(across.contains("counters"));
    }
}
