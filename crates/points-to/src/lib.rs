//! # safeflow-points-to
//!
//! Module-wide points-to analysis standing in for the paper's use of Data
//! Structure Analysis (DSA, paper reference 15): context-insensitive here, but
//! field-sensitive and flow-insensitive, with a typed memory-object model.
//! SafeFlow's phase 3 uses it for two things:
//!
//! * resolving which abstract memory objects an indirect load/store may
//!   touch (so taint stored through one pointer is observed through an
//!   alias), and
//! * deciding whether unsafe data is reachable from critical pointer data
//!   (§3.4.1).
//!
//! Array elements collapse into their base object, matching the paper's
//! "array is treated as a single unit" rule.
//!
//! # Examples
//!
//! ```
//! use safeflow_syntax::{parse_source, diag::Diagnostics};
//! use safeflow_ir::build_module;
//! use safeflow_points_to::PointsTo;
//!
//! let pr = parse_source("p.c", "int g; int *take(void) { return &g; }");
//! let mut diags = Diagnostics::new();
//! let module = build_module(&pr.unit, &mut diags);
//! let pt = PointsTo::analyze(&module);
//! let f = module.function_by_name("take").unwrap();
//! assert_eq!(pt.return_points_to(f).len(), 1);
//! ```

#![warn(missing_docs)]

use safeflow_ir::{Callee, FuncId, GlobalId, InstId, InstKind, Module, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Interned id of an abstract memory object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

/// An abstract memory object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Obj {
    /// A global variable.
    Global(GlobalId),
    /// A stack slot (`Alloca`) in a function.
    Stack(FuncId, InstId),
    /// The object returned by an external call (e.g. the `shmat` segment);
    /// one per call site.
    ExternRet(FuncId, InstId),
    /// A named field of another object (keyed by the struct layout it was
    /// accessed through — sound because restriction P3 forbids viewing the
    /// same shared memory through incompatible struct types).
    Field(ObjId, u32, u32),
    /// The catch-all unknown object (escaped / external memory).
    Unknown,
}

/// A constraint variable: an SSA value in a specific function, a function's
/// merged return, or the pointer contents of a memory object.
///
/// Ordered so the solver visits copy edges in a stable order: field objects
/// are interned lazily *during* solving, so `ObjId` numbering (and with it
/// the summary-cache content hashes) must not depend on map iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum VarKey {
    Inst(FuncId, InstId),
    Param(FuncId, u32),
    Ret(FuncId),
    Contents(ObjId),
}

/// Results of the points-to analysis.
#[derive(Debug)]
pub struct PointsTo {
    objects: Vec<Obj>,
    obj_ids: HashMap<Obj, ObjId>,
    sets: HashMap<VarKey, BTreeSet<ObjId>>,
    escaped: BTreeSet<ObjId>,
}

impl PointsTo {
    /// Runs the analysis over every defined function in `module`.
    pub fn analyze(module: &Module) -> PointsTo {
        let mut a = Analyzer {
            pt: PointsTo {
                objects: Vec::new(),
                obj_ids: HashMap::new(),
                sets: HashMap::new(),
                escaped: BTreeSet::new(),
            },
            edges: BTreeMap::new(),
            field_edges: Vec::new(),
            complex_loads: Vec::new(),
            complex_stores: Vec::new(),
            extern_args: Vec::new(),
        };
        a.pt.intern(Obj::Unknown);
        a.build_constraints(module);
        a.solve();
        a.pt
    }

    fn intern(&mut self, o: Obj) -> ObjId {
        if let Some(&id) = self.obj_ids.get(&o) {
            return id;
        }
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(o.clone());
        self.obj_ids.insert(o, id);
        id
    }

    /// The object stored under `id`.
    pub fn object(&self, id: ObjId) -> &Obj {
        &self.objects[id.0 as usize]
    }

    /// All interned objects.
    pub fn objects(&self) -> impl Iterator<Item = (ObjId, &Obj)> {
        self.objects.iter().enumerate().map(|(i, o)| (ObjId(i as u32), o))
    }

    /// The base object of `id` with field derivations stripped.
    pub fn base_of(&self, mut id: ObjId) -> ObjId {
        loop {
            match self.object(id) {
                Obj::Field(parent, _, _) => id = *parent,
                _ => return id,
            }
        }
    }

    /// Points-to set of `value` as seen in `func` (empty for non-pointers).
    pub fn points_to(&self, func: FuncId, value: &Value) -> BTreeSet<ObjId> {
        match value {
            Value::Inst(id) => self.lookup(VarKey::Inst(func, *id)),
            Value::Param(i) => self.lookup(VarKey::Param(func, *i)),
            Value::Global(g) => self
                .obj_ids
                .get(&Obj::Global(*g))
                .map(|&id| std::iter::once(id).collect())
                .unwrap_or_default(),
            _ => BTreeSet::new(),
        }
    }

    /// Points-to set of `func`'s merged return value.
    pub fn return_points_to(&self, func: FuncId) -> BTreeSet<ObjId> {
        self.lookup(VarKey::Ret(func))
    }

    /// The pointer contents of object `o` (what loads from `o` may yield).
    pub fn contents(&self, o: ObjId) -> BTreeSet<ObjId> {
        self.lookup(VarKey::Contents(o))
    }

    /// Whether `o`'s address escaped into an external function.
    pub fn is_escaped(&self, o: ObjId) -> bool {
        self.escaped.contains(&o) || matches!(self.object(o), Obj::Unknown)
    }

    /// All objects transitively reachable from `roots` through pointer
    /// contents and field children (the "unsafe data reachable from
    /// critical pointer data" check, §3.4.1).
    pub fn reachable(&self, roots: &BTreeSet<ObjId>) -> BTreeSet<ObjId> {
        // Precompute field children.
        let mut children: HashMap<ObjId, Vec<ObjId>> = HashMap::new();
        for (i, obj) in self.objects.iter().enumerate() {
            if let Obj::Field(parent, _, _) = obj {
                children.entry(*parent).or_default().push(ObjId(i as u32));
            }
        }
        let mut seen: BTreeSet<ObjId> = BTreeSet::new();
        let mut work: Vec<ObjId> = roots.iter().copied().collect();
        while let Some(o) = work.pop() {
            if !seen.insert(o) {
                continue;
            }
            work.extend(self.contents(o));
            if let Some(kids) = children.get(&o) {
                work.extend(kids.iter().copied());
            }
        }
        seen
    }

    fn lookup(&self, key: VarKey) -> BTreeSet<ObjId> {
        self.sets.get(&key).cloned().unwrap_or_default()
    }

    /// Human-readable description of an object.
    pub fn describe(&self, module: &Module, id: ObjId) -> String {
        match self.object(id) {
            Obj::Global(g) => format!("global `{}`", module.global(*g).name),
            Obj::Stack(f, i) => {
                let func = module.function(*f);
                let name = match &func.inst(*i).kind {
                    InstKind::Alloca { name, .. } => name.clone(),
                    _ => format!("{i:?}"),
                };
                format!("local `{name}` in `{}`", func.name)
            }
            Obj::ExternRet(f, i) => {
                let func = module.function(*f);
                let callee = match &func.inst(*i).kind {
                    InstKind::Call { callee: Callee::External(n), .. } => n.clone(),
                    InstKind::Call { callee: Callee::Local(lf), .. } => {
                        module.function(*lf).name.clone()
                    }
                    _ => "<extern>".to_string(),
                };
                format!("memory returned by `{callee}` in `{}`", func.name)
            }
            Obj::Field(parent, s, f) => {
                format!("{}.struct{}.field{}", self.describe(module, *parent), s, f)
            }
            Obj::Unknown => "unknown memory".to_string(),
        }
    }
}

/// Pending constraint: `dst ⊇ contents(o)` for every `o ∈ pts(src)`.
struct ComplexLoad {
    dst: VarKey,
    src: VarKey,
}
/// Pending constraint: `contents(o) ⊇ pts(src)` for every `o ∈ pts(dst_ptr)`.
struct ComplexStore {
    dst_ptr: VarKey,
    src: VarKey,
}

struct Analyzer {
    pt: PointsTo,
    /// Copy edges: pts(to) ⊇ pts(from), keyed in deterministic order (see
    /// [`VarKey`]).
    edges: BTreeMap<VarKey, Vec<VarKey>>,
    /// FieldAddr derivations: (func, result inst, base value, struct id,
    /// field index).
    field_edges: Vec<(FuncId, InstId, Value, u32, u32)>,
    complex_loads: Vec<ComplexLoad>,
    complex_stores: Vec<ComplexStore>,
    /// Pointer values passed to external calls: their pointees escape.
    extern_args: Vec<VarKey>,
}

impl Analyzer {
    fn add_edge(&mut self, from: VarKey, to: VarKey) {
        self.edges.entry(from).or_default().push(to);
    }

    fn add_obj(&mut self, var: VarKey, obj: Obj) {
        let id = self.pt.intern(obj);
        self.pt.sets.entry(var).or_default().insert(id);
    }

    /// Copies pts(value) into `dst`.
    fn value_into(&mut self, func: FuncId, value: &Value, dst: VarKey) {
        match value {
            Value::Inst(id) => self.add_edge(VarKey::Inst(func, *id), dst),
            Value::Param(i) => self.add_edge(VarKey::Param(func, *i), dst),
            Value::Global(g) => self.add_obj(dst, Obj::Global(*g)),
            _ => {}
        }
    }

    fn value_key(&self, func: FuncId, v: &Value) -> Option<VarKey> {
        match v {
            Value::Inst(id) => Some(VarKey::Inst(func, *id)),
            Value::Param(i) => Some(VarKey::Param(func, *i)),
            _ => None,
        }
    }

    fn build_constraints(&mut self, module: &Module) {
        // Every global gets an object up front, so `points_to` on a
        // global's address is never empty (scalar globals are store/load
        // targets for the taint analysis even when no pointer constraints
        // mention them).
        for (i, _) in module.globals.iter().enumerate() {
            self.pt.intern(Obj::Global(GlobalId(i as u32)));
        }
        for fid in module.definitions() {
            let func = module.function(fid);
            for (iid, inst) in func.iter_insts() {
                let this = VarKey::Inst(fid, iid);
                match &inst.kind {
                    InstKind::Alloca { .. } => {
                        self.add_obj(this, Obj::Stack(fid, iid));
                    }
                    InstKind::FieldAddr { base, struct_id, field } => {
                        self.field_edges.push((fid, iid, base.clone(), struct_id.0, *field));
                    }
                    InstKind::ElemAddr { base, .. } => {
                        // Array elements collapse into the base object.
                        self.value_into(fid, base, this);
                    }
                    InstKind::Cast { value, .. } => {
                        if inst.ty.is_ptr() {
                            self.value_into(fid, value, this);
                        }
                    }
                    InstKind::Load { ptr } => {
                        if inst.ty.is_ptr() {
                            match self.value_key(fid, ptr) {
                                Some(src) => {
                                    self.complex_loads.push(ComplexLoad { dst: this, src })
                                }
                                None => {
                                    if let Value::Global(g) = ptr {
                                        let o = self.pt.intern(Obj::Global(*g));
                                        self.add_edge(VarKey::Contents(o), this);
                                    }
                                }
                            }
                        }
                    }
                    InstKind::Store { ptr, value } => {
                        let vt = module.value_type(func, value);
                        if vt.is_ptr() {
                            match self.value_key(fid, ptr) {
                                Some(dst_ptr) => {
                                    // The stored value may itself be a
                                    // global address: route via a copy into
                                    // a per-store scratch var.
                                    let src = match self.value_key(fid, value) {
                                        Some(k) => k,
                                        None => {
                                            let scratch = VarKey::Inst(fid, iid);
                                            self.value_into(fid, value, scratch);
                                            scratch
                                        }
                                    };
                                    self.complex_stores.push(ComplexStore { dst_ptr, src });
                                }
                                None => {
                                    if let Value::Global(g) = ptr {
                                        let o = self.pt.intern(Obj::Global(*g));
                                        self.value_into(fid, value, VarKey::Contents(o));
                                    }
                                }
                            }
                        }
                    }
                    InstKind::Phi { incoming } => {
                        for (_, v) in incoming {
                            self.value_into(fid, v, this);
                        }
                    }
                    InstKind::Call { callee, args } => match callee {
                        Callee::Local(target) if module.function(*target).is_definition => {
                            for (i, arg) in args.iter().enumerate() {
                                let at = module.value_type(func, arg);
                                if at.is_ptr() {
                                    self.value_into(fid, arg, VarKey::Param(*target, i as u32));
                                }
                            }
                            if inst.ty.is_ptr() {
                                self.add_edge(VarKey::Ret(*target), this);
                            }
                        }
                        _ => {
                            if inst.ty.is_ptr() {
                                self.add_obj(this, Obj::ExternRet(fid, iid));
                            }
                            for arg in args {
                                let at = module.value_type(func, arg);
                                if at.is_ptr() {
                                    match self.value_key(fid, arg) {
                                        Some(k) => self.extern_args.push(k),
                                        None => {
                                            if let Value::Global(g) = arg {
                                                let o = self.pt.intern(Obj::Global(*g));
                                                self.pt.escaped.insert(o);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    },
                    InstKind::Bin { .. } | InstKind::Cmp { .. } | InstKind::AssertSafe { .. } => {}
                }
            }
            for (_, block) in func.iter_blocks() {
                if let safeflow_ir::Terminator::Ret(Some(v)) = &block.terminator {
                    let vt = module.value_type(func, v);
                    if vt.is_ptr() {
                        self.value_into(fid, v, VarKey::Ret(fid));
                    }
                }
            }
        }
    }

    fn solve(&mut self) {
        let mut changed = true;
        let mut guard = 0usize;
        while changed {
            changed = false;
            guard += 1;
            if guard > 10_000 {
                break; // defensive: should converge long before this
            }
            // Copy edges.
            let edges: Vec<(VarKey, VarKey)> =
                self.edges.iter().flat_map(|(f, tos)| tos.iter().map(move |t| (*f, *t))).collect();
            for (from, to) in edges {
                let src = self.pt.sets.get(&from).cloned().unwrap_or_default();
                if src.is_empty() {
                    continue;
                }
                let dst = self.pt.sets.entry(to).or_default();
                let before = dst.len();
                dst.extend(src.iter().copied());
                if dst.len() != before {
                    changed = true;
                }
            }
            // Field derivations.
            let fes = self.field_edges.clone();
            for (fid, iid, base, sid, field) in fes {
                let base_set = match &base {
                    Value::Inst(id) => self.pt.lookup(VarKey::Inst(fid, *id)),
                    Value::Param(i) => self.pt.lookup(VarKey::Param(fid, *i)),
                    Value::Global(g) => {
                        let o = self.pt.intern(Obj::Global(*g));
                        std::iter::once(o).collect()
                    }
                    _ => BTreeSet::new(),
                };
                for b in base_set {
                    let fo = if matches!(self.pt.object(b), Obj::Unknown) {
                        b
                    } else {
                        self.pt.intern(Obj::Field(b, sid, field))
                    };
                    let dst = self.pt.sets.entry(VarKey::Inst(fid, iid)).or_default();
                    if dst.insert(fo) {
                        changed = true;
                    }
                }
            }
            // Complex loads.
            for i in 0..self.complex_loads.len() {
                let (dst, src) = (self.complex_loads[i].dst, self.complex_loads[i].src);
                let ptr_set = self.pt.lookup(src);
                for o in ptr_set {
                    let mut add = self.pt.lookup(VarKey::Contents(o));
                    if self.pt.is_escaped(o) {
                        add.insert(self.pt.intern(Obj::Unknown));
                    }
                    if add.is_empty() {
                        continue;
                    }
                    let dset = self.pt.sets.entry(dst).or_default();
                    let before = dset.len();
                    dset.extend(add);
                    if dset.len() != before {
                        changed = true;
                    }
                }
            }
            // Complex stores.
            for i in 0..self.complex_stores.len() {
                let (dst_ptr, src) = (self.complex_stores[i].dst_ptr, self.complex_stores[i].src);
                let ptr_set = self.pt.lookup(dst_ptr);
                let val_set = self.pt.lookup(src);
                if val_set.is_empty() {
                    continue;
                }
                for o in ptr_set {
                    let cset = self.pt.sets.entry(VarKey::Contents(o)).or_default();
                    let before = cset.len();
                    cset.extend(val_set.iter().copied());
                    if cset.len() != before {
                        changed = true;
                    }
                }
            }
            // Escape propagation.
            let roots: Vec<VarKey> = self.extern_args.clone();
            for k in roots {
                for o in self.pt.lookup(k) {
                    if self.pt.escaped.insert(o) {
                        changed = true;
                    }
                }
            }
            let escaped: Vec<ObjId> = self.pt.escaped.iter().copied().collect();
            for o in escaped {
                for c in self.pt.lookup(VarKey::Contents(o)) {
                    if self.pt.escaped.insert(c) {
                        changed = true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeflow_ir::build_module;
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;

    fn analyze(src: &str) -> (Module, PointsTo) {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors(), "{:?}", pr.diags);
        let mut diags = Diagnostics::new();
        let m = build_module(&pr.unit, &mut diags);
        assert!(!diags.has_errors(), "{diags:?}");
        let pt = PointsTo::analyze(&m);
        (m, pt)
    }

    #[test]
    fn address_of_global_points_to_global() {
        let (m, pt) = analyze("int g; int *take(void) { return &g; }");
        let fid = m.function_by_name("take").unwrap();
        let ret = pt.return_points_to(fid);
        assert_eq!(ret.len(), 1);
        let d = pt.describe(&m, *ret.iter().next().unwrap());
        assert!(d.contains("global `g`"), "{d}");
    }

    #[test]
    fn pointer_flows_through_call() {
        let (m, pt) =
            analyze("int g;\nint *id(int *p) { return p; }\nint *f(void) { return id(&g); }");
        let fid = m.function_by_name("f").unwrap();
        let ret = pt.return_points_to(fid);
        assert!(ret.iter().any(|&o| pt.describe(&m, o).contains("global `g`")));
    }

    #[test]
    fn extern_call_returns_fresh_object() {
        let (m, pt) = analyze(
            "void *shmat(int id, void *a, int f);\nvoid *f(void) { return shmat(0, 0, 0); }",
        );
        let fid = m.function_by_name("f").unwrap();
        let ret = pt.return_points_to(fid);
        assert_eq!(ret.len(), 1);
        let d = pt.describe(&m, *ret.iter().next().unwrap());
        assert!(d.contains("shmat"), "{d}");
    }

    #[test]
    fn global_pointer_contents_tracked() {
        // Fig. 2 pattern: a global pointer initialized from shmat.
        let (m, pt) = analyze(
            r#"
            typedef struct { float c; } D;
            D *feedback;
            void *shmat(int id, void *a, int f);
            void init(void) { feedback = (D *) shmat(0, 0, 0); }
            float use(void) { return feedback->c; }
            "#,
        );
        let use_fid = m.function_by_name("use").unwrap();
        let f = m.function(use_fid);
        let mut found = false;
        for (_, inst) in f.iter_insts() {
            if let InstKind::FieldAddr { base, .. } = &inst.kind {
                for o in pt.points_to(use_fid, base) {
                    if pt.describe(&m, o).contains("shmat") {
                        found = true;
                    }
                }
            }
        }
        assert!(found, "feedback must point to the shmat segment");
    }

    #[test]
    fn field_sensitivity_distinguishes_fields() {
        let (m, pt) = analyze(
            r#"
            typedef struct { int *a; int *b; } P;
            int x; int y;
            P p;
            void setup(void) { p.a = &x; p.b = &y; }
            int *geta(void) { return p.a; }
            "#,
        );
        let fid = m.function_by_name("geta").unwrap();
        let ret = pt.return_points_to(fid);
        let descs: Vec<String> = ret.iter().map(|&o| pt.describe(&m, o)).collect();
        assert!(descs.iter().any(|d| d.contains("global `x`")), "{descs:?}");
        assert!(
            !descs.iter().any(|d| d.contains("global `y`")),
            "field-sensitive: p.a must not alias p.b: {descs:?}"
        );
    }

    #[test]
    fn array_elements_collapse() {
        let (m, pt) = analyze(
            "int g;\nint *arr[4];\nvoid set(int i) { arr[i] = &g; }\nint *get(int j) { return arr[j]; }",
        );
        let fid = m.function_by_name("get").unwrap();
        let ret = pt.return_points_to(fid);
        assert!(ret.iter().any(|&o| pt.describe(&m, o).contains("global `g`")));
    }

    #[test]
    fn escaped_pointer_contents_unknown() {
        let (m, pt) =
            analyze("void mystery(int **p);\nint *f(void) { int *q; mystery(&q); return q; }");
        let fid = m.function_by_name("f").unwrap();
        let ret = pt.return_points_to(fid);
        assert!(
            ret.iter().any(|&o| matches!(pt.object(o), Obj::Unknown)),
            "contents written by an external callee must be Unknown: {:?}",
            ret.iter().map(|&o| pt.describe(&m, o)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reachability_through_contents() {
        let (m, pt) = analyze(
            r#"
            int target;
            int *mid;
            void setup(void) { mid = &target; }
            "#,
        );
        let mid_g = m.global_by_name("mid").unwrap();
        let mid_obj = pt
            .objects()
            .find(|(_, o)| matches!(o, Obj::Global(g) if *g == mid_g))
            .map(|(id, _)| id)
            .unwrap();
        let roots: BTreeSet<ObjId> = std::iter::once(mid_obj).collect();
        let reach = pt.reachable(&roots);
        assert!(reach.iter().any(|&o| pt.describe(&m, o).contains("global `target`")));
    }

    #[test]
    fn locals_are_distinct_objects() {
        let (m, pt) = analyze("void g(int *p, int *q);\nvoid f(void) { int a; int b; g(&a, &b); }");
        let fid = m.function_by_name("f").unwrap();
        let stacks: Vec<ObjId> = pt
            .objects()
            .filter(|(_, o)| matches!(o, Obj::Stack(ff, _) if *ff == fid))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(stacks.len(), 2);
    }

    #[test]
    fn base_of_strips_fields() {
        let (m, pt) = analyze(
            r#"
            typedef struct { int *a; } P;
            P p; int x;
            void s(void) { p.a = &x; }
            "#,
        );
        let field_obj = pt
            .objects()
            .find(|(_, o)| matches!(o, Obj::Field(..)))
            .map(|(id, _)| id)
            .expect("field object exists");
        let base = pt.base_of(field_obj);
        assert!(pt.describe(&m, base).contains("global `p`"));
    }
}
