//! Minimal dense linear algebra for small control-sized matrices.
//!
//! Everything the Simplex simulation needs: products, transposes, and the
//! inversion used by the discrete Riccati iteration. Sizes are tiny (≤ 6),
//! so naive algorithms are the right tool.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Mat {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major nested slice.
    ///
    /// # Panics
    ///
    /// Panics if the rows have uneven lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Mat {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        let mut m = Mat::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Column vector from a slice.
    pub fn col_vec(v: &[f64]) -> Mat {
        let mut m = Mat::zeros(v.len(), 1);
        for (i, &x) in v.iter().enumerate() {
            m[(i, 0)] = x;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix sum.
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut out = self.clone();
        for (o, b) in out.data.iter_mut().zip(other.data.iter()) {
            *o += b;
        }
        out
    }

    /// Matrix difference.
    pub fn sub(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut out = self.clone();
        for (o, b) in out.data.iter_mut().zip(other.data.iter()) {
            *o -= b;
        }
        out
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Mat {
        let mut out = self.clone();
        for o in out.data.iter_mut() {
            *o *= k;
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Inverse by Gauss–Jordan with partial pivoting.
    ///
    /// Returns `None` for singular (or nearly singular) matrices.
    pub fn inverse(&self) -> Option<Mat> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Mat::identity(n);
        for col in 0..n {
            // Pivot.
            let mut pivot = col;
            for r in col + 1..n {
                if a[(r, col)].abs() > a[(pivot, col)].abs() {
                    pivot = r;
                }
            }
            if a[(pivot, col)].abs() < 1e-12 {
                return None;
            }
            if pivot != col {
                for j in 0..n {
                    a.data.swap(col * n + j, pivot * n + j);
                    inv.data.swap(col * n + j, pivot * n + j);
                }
            }
            let d = a[(col, col)];
            for j in 0..n {
                a[(col, j)] /= d;
                inv[(col, j)] /= d;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a[(r, col)];
                if f == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let acj = a[(col, j)];
                    let icj = inv[(col, j)];
                    a[(r, j)] -= f * acj;
                    inv[(r, j)] -= f * icj;
                }
            }
        }
        Some(inv)
    }

    /// Frobenius norm of the difference to `other`.
    pub fn distance(&self, other: &Mat) -> f64 {
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }

    /// Quadratic form `x' M x` for a vector `x`.
    pub fn quad_form(&self, x: &[f64]) -> f64 {
        assert_eq!(self.rows, x.len());
        assert_eq!(self.cols, x.len());
        let mut acc = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                acc += x[i] * self[(i, j)] * x[j];
            }
        }
        acc
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Mat::identity(2);
        assert_eq!(a.mul(&i), a);
        assert_eq!(i.mul(&a), a);
    }

    #[test]
    fn product_known_values() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn inverse_round_trip() {
        let a = Mat::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.inverse().unwrap();
        let prod = a.mul(&inv);
        assert!(prod.distance(&Mat::identity(2)) < 1e-9);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn quad_form_matches_manual() {
        let p = Mat::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let x = [3.0, -1.0];
        // 2*9 + 0.5*3*(-1)*2 + 1*1 = 18 - 3 + 1 = 16.
        assert!((p.quad_form(&x) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }
}
