//! Run-time monitors: the Simplex recoverability checks that SafeFlow's
//! `assume(core(...))` annotations describe.
//!
//! The primary monitor is the Lyapunov stability envelope of paper reference 22 (as used
//! by the paper's running example): a proposed non-core control is
//! accepted only if applying it for one period provably keeps the state
//! inside the sublevel set `V(x) = x'Px ≤ c` from which the verified
//! safety controller can recover.

use crate::linalg::Mat;

/// Outcome of a monitor check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The non-core value may be used.
    Accept,
    /// The value was rejected; the reason says why.
    Reject(RejectReason),
}

/// Why a monitor rejected a proposed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Outside the permissible actuation range.
    RangeViolation,
    /// Not a finite number.
    NotFinite,
    /// Predicted next state leaves the Lyapunov envelope.
    EnvelopeViolation,
    /// The proposal is stale (sequence number unchanged).
    Stale,
}

/// Lyapunov-envelope monitor for a discrete linear model.
#[derive(Debug, Clone)]
pub struct LyapunovMonitor {
    /// Discrete model used for the one-step prediction.
    a: Mat,
    b: Mat,
    /// Lyapunov matrix (from the safety controller's Riccati solution).
    p: Mat,
    /// Envelope level: states with `V(x) ≤ threshold` are recoverable.
    pub threshold: f64,
    /// Permissible actuation range (volts).
    pub u_limit: f64,
}

impl LyapunovMonitor {
    /// Builds a monitor from the model and Lyapunov matrix.
    pub fn new(a: Mat, b: Mat, p: Mat, threshold: f64, u_limit: f64) -> LyapunovMonitor {
        LyapunovMonitor { a, b, p, threshold, u_limit }
    }

    /// The Lyapunov function value at `x`.
    pub fn lyapunov(&self, x: &[f64]) -> f64 {
        self.p.quad_form(x)
    }

    /// Checks whether applying `u` at state `x` keeps the system
    /// recoverable (paper §1: "verify that the system remains in a
    /// recoverable state if a non-core value is utilized").
    pub fn check(&self, x: &[f64], u: f64) -> Decision {
        if !u.is_finite() {
            return Decision::Reject(RejectReason::NotFinite);
        }
        if u.abs() > self.u_limit {
            return Decision::Reject(RejectReason::RangeViolation);
        }
        // One-step prediction under the proposal.
        let xv = Mat::col_vec(x);
        let next = self.a.mul(&xv).add(&self.b.scale(u));
        let next_vec: Vec<f64> = (0..next.rows()).map(|i| next[(i, 0)]).collect();
        let v_next = self.p.quad_form(&next_vec);
        if v_next > self.threshold {
            return Decision::Reject(RejectReason::EnvelopeViolation);
        }
        Decision::Accept
    }
}

/// Simple range monitor for configuration-style values.
#[derive(Debug, Clone, Copy)]
pub struct RangeMonitor {
    /// Smallest acceptable value.
    pub lo: f64,
    /// Largest acceptable value.
    pub hi: f64,
}

impl RangeMonitor {
    /// Checks a scalar against the range.
    pub fn check(&self, v: f64) -> Decision {
        if !v.is_finite() {
            Decision::Reject(RejectReason::NotFinite)
        } else if v < self.lo || v > self.hi {
            Decision::Reject(RejectReason::RangeViolation)
        } else {
            Decision::Accept
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lqr::dlqr;
    use crate::plant::{CartPole, Plant};

    fn monitor_for_cartpole() -> (LyapunovMonitor, CartPole) {
        let plant = CartPole::default();
        let (a, b) = plant.linearized(0.01);
        let q = Mat::from_rows(&[
            &[10.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 100.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        let d = dlqr(&a, &b, &q, 0.5, 50_000).unwrap();
        let m = LyapunovMonitor::new(a, b, d.p, 50.0, 5.0);
        (m, plant)
    }

    #[test]
    fn sane_control_near_upright_accepted() {
        let (m, _) = monitor_for_cartpole();
        let x = [0.0, 0.0, 0.02, 0.0];
        assert_eq!(m.check(&x, 0.1), Decision::Accept);
    }

    #[test]
    fn out_of_range_rejected() {
        let (m, _) = monitor_for_cartpole();
        let x = [0.0, 0.0, 0.0, 0.0];
        assert_eq!(m.check(&x, 12.0), Decision::Reject(RejectReason::RangeViolation));
        assert_eq!(m.check(&x, f64::NAN), Decision::Reject(RejectReason::NotFinite));
    }

    #[test]
    fn envelope_violation_rejected() {
        let (m, _) = monitor_for_cartpole();
        // Already near the envelope boundary; a hard shove must be refused.
        let x = [1.0, 0.3, 0.25, 0.6];
        match m.check(&x, 4.9) {
            Decision::Reject(RejectReason::EnvelopeViolation) => {}
            other => panic!("expected envelope rejection, got {other:?}"),
        }
    }

    #[test]
    fn lyapunov_value_zero_at_origin() {
        let (m, _) = monitor_for_cartpole();
        assert!(m.lyapunov(&[0.0; 4]).abs() < 1e-12);
        assert!(m.lyapunov(&[0.1, 0.0, 0.1, 0.0]) > 0.0);
    }

    #[test]
    fn range_monitor_basics() {
        let r = RangeMonitor { lo: -5.0, hi: 5.0 };
        assert_eq!(r.check(1.0), Decision::Accept);
        assert_eq!(r.check(6.0), Decision::Reject(RejectReason::RangeViolation));
        assert_eq!(r.check(f64::INFINITY), Decision::Reject(RejectReason::NotFinite));
    }

    #[test]
    fn accepted_controls_preserve_recoverability() {
        // Property: from a mildly disturbed state, any accepted proposal
        // leaves the safety controller able to recover.
        let (m, mut plant) = monitor_for_cartpole();
        let (a, b) = plant.linearized(0.01);
        let q = Mat::identity(4);
        let d = dlqr(&a, &b, &q, 1.0, 50_000).unwrap();
        plant.set_state(&[0.1, 0.0, 0.05, 0.0]);
        // Adversarial proposal sweep; apply only accepted ones.
        for i in 0..200 {
            let proposal = ((i as f64) * 0.37).sin() * 6.0; // often out of range
            let u = match m.check(plant.state(), proposal) {
                Decision::Accept => proposal,
                Decision::Reject(_) => crate::lqr::feedback(&d.k, plant.state()).clamp(-5.0, 5.0),
            };
            plant.step(u, 0.01);
            assert!(!plant.failed(), "monitored system must never fail");
        }
    }
}
