//! Plant models: the physical systems the Simplex controllers balance.

use crate::linalg::Mat;

/// A continuous-time plant integrated by the simulation.
pub trait Plant {
    /// Number of state variables.
    fn state_dim(&self) -> usize;
    /// Current state vector.
    fn state(&self) -> &[f64];
    /// Overwrites the state (used by tests and fault scenarios).
    fn set_state(&mut self, state: &[f64]);
    /// Advances the plant by `dt` seconds under control input `u`.
    fn step(&mut self, u: f64, dt: f64);
    /// Measured outputs (what the sensors report).
    fn outputs(&self) -> Vec<f64>;
    /// Whether the plant has left the physically recoverable envelope
    /// (pendulum fallen, cart off the track, ...).
    fn failed(&self) -> bool;
}

/// The inverted pendulum on a cart (Figure 1 of the paper): nonlinear
/// dynamics integrated with RK4.
///
/// State: `[x, x_dot, theta, theta_dot]` with `theta = 0` upright.
#[derive(Debug, Clone)]
pub struct CartPole {
    state: [f64; 4],
    /// Cart mass (kg).
    pub cart_mass: f64,
    /// Pendulum mass (kg).
    pub pole_mass: f64,
    /// Pendulum half-length (m).
    pub pole_length: f64,
    /// Track half-extent; |x| beyond this is failure (m).
    pub track_limit: f64,
    /// |theta| beyond this is failure (rad).
    pub angle_limit: f64,
    /// Force per volt of control input (N/V).
    pub volts_to_force: f64,
}

impl Default for CartPole {
    fn default() -> Self {
        CartPole {
            state: [0.0, 0.0, 0.05, 0.0],
            cart_mass: 1.0,
            pole_mass: 0.1,
            pole_length: 0.5,
            track_limit: 1.5,
            angle_limit: 0.6,
            volts_to_force: 2.0,
        }
    }
}

impl CartPole {
    /// A pendulum starting at `theta0` radians from upright.
    pub fn with_initial_angle(theta0: f64) -> CartPole {
        let mut p = CartPole::default();
        p.state[2] = theta0;
        p
    }

    fn derivatives(&self, s: &[f64; 4], force: f64) -> [f64; 4] {
        let g = 9.81;
        let mc = self.cart_mass;
        let mp = self.pole_mass;
        let l = self.pole_length;
        let theta = s[2];
        let theta_dot = s[3];
        let sin = theta.sin();
        let cos = theta.cos();
        let total = mc + mp;
        // Standard cart-pole equations (Barto et al. convention, theta
        // measured from upright).
        let tmp = (force + mp * l * theta_dot * theta_dot * sin) / total;
        let theta_acc = (g * sin - cos * tmp) / (l * (4.0 / 3.0 - mp * cos * cos / total));
        let x_acc = tmp - mp * l * theta_acc * cos / total;
        [s[1], x_acc, s[3], theta_acc]
    }

    /// Linearized discrete model `(A, B)` about the upright equilibrium,
    /// for LQR design (zero-order hold by Euler with the given dt — fine
    /// at control rates).
    pub fn linearized(&self, dt: f64) -> (Mat, Mat) {
        let g = 9.81;
        let mc = self.cart_mass;
        let mp = self.pole_mass;
        let l = self.pole_length;
        let total = mc + mp;
        let denom = l * (4.0 / 3.0 - mp / total);
        // Continuous-time A, B (linearized around theta=0).
        let a21 = -mp * g / (total * (4.0 / 3.0 - mp / total) * (4.0 / 3.0));
        let _ = a21; // kept simple below
        let a_theta = g / denom;
        let b_x = 1.0 / total;
        let b_theta = -1.0 / (total * denom);
        let a = Mat::from_rows(&[
            &[1.0, dt, 0.0, 0.0],
            &[0.0, 1.0, -dt * mp * l * a_theta * 0.75 / total, 0.0],
            &[0.0, 0.0, 1.0, dt],
            &[0.0, 0.0, dt * a_theta, 1.0],
        ]);
        let b = Mat::col_vec(&[
            0.0,
            dt * b_x * self.volts_to_force,
            0.0,
            dt * b_theta * self.volts_to_force,
        ]);
        (a, b)
    }
}

impl Plant for CartPole {
    fn state_dim(&self) -> usize {
        4
    }

    fn state(&self) -> &[f64] {
        &self.state
    }

    fn set_state(&mut self, state: &[f64]) {
        self.state.copy_from_slice(state);
    }

    fn step(&mut self, u: f64, dt: f64) {
        let force = u * self.volts_to_force;
        // RK4.
        let s = self.state;
        let k1 = self.derivatives(&s, force);
        let s2 = add_scaled(&s, &k1, dt / 2.0);
        let k2 = self.derivatives(&s2, force);
        let s3 = add_scaled(&s, &k2, dt / 2.0);
        let k3 = self.derivatives(&s3, force);
        let s4 = add_scaled(&s, &k3, dt);
        let k4 = self.derivatives(&s4, force);
        for i in 0..4 {
            self.state[i] = s[i] + dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }

    fn outputs(&self) -> Vec<f64> {
        vec![self.state[0], self.state[2]]
    }

    fn failed(&self) -> bool {
        self.state[0].abs() > self.track_limit || self.state[2].abs() > self.angle_limit
    }
}

fn add_scaled(s: &[f64; 4], d: &[f64; 4], h: f64) -> [f64; 4] {
    [s[0] + h * d[0], s[1] + h * d[1], s[2] + h * d[2], s[3] + h * d[3]]
}

/// A generic discrete linear plant `x' = A x + B u` (the "simple plants"
/// of the generic Simplex system).
#[derive(Debug, Clone)]
pub struct LinearPlant {
    a: Mat,
    b: Mat,
    state: Vec<f64>,
    /// Failure bound on every state component.
    pub state_limit: f64,
}

impl LinearPlant {
    /// Creates the plant with zero initial state.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square or `b`'s shape mismatches.
    pub fn new(a: Mat, b: Mat, state_limit: f64) -> LinearPlant {
        assert_eq!(a.rows(), a.cols());
        assert_eq!(b.rows(), a.rows());
        assert_eq!(b.cols(), 1);
        let n = a.rows();
        LinearPlant { a, b, state: vec![0.0; n], state_limit }
    }

    /// The discrete system matrices.
    pub fn model(&self) -> (&Mat, &Mat) {
        (&self.a, &self.b)
    }
}

impl Plant for LinearPlant {
    fn state_dim(&self) -> usize {
        self.state.len()
    }

    fn state(&self) -> &[f64] {
        &self.state
    }

    fn set_state(&mut self, state: &[f64]) {
        self.state.copy_from_slice(state);
    }

    fn step(&mut self, u: f64, _dt: f64) {
        // Discrete plant: one step per call.
        let x = Mat::col_vec(&self.state);
        let next = self.a.mul(&x).add(&self.b.scale(u));
        for i in 0..self.state.len() {
            self.state[i] = next[(i, 0)];
        }
    }

    fn outputs(&self) -> Vec<f64> {
        self.state.clone()
    }

    fn failed(&self) -> bool {
        self.state.iter().any(|v| v.abs() > self.state_limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontrolled_pendulum_falls() {
        let mut p = CartPole::with_initial_angle(0.05);
        for _ in 0..1000 {
            p.step(0.0, 0.01);
            if p.failed() {
                break;
            }
        }
        assert!(p.failed(), "an uncontrolled inverted pendulum must fall");
    }

    #[test]
    fn upright_equilibrium_is_stationary() {
        let mut p = CartPole::default();
        p.set_state(&[0.0, 0.0, 0.0, 0.0]);
        for _ in 0..100 {
            p.step(0.0, 0.01);
        }
        assert!(p.state()[2].abs() < 1e-9, "exact upright is an equilibrium");
    }

    #[test]
    fn force_accelerates_cart() {
        let mut p = CartPole::default();
        p.set_state(&[0.0, 0.0, 0.0, 0.0]);
        p.step(1.0, 0.01);
        assert!(p.state()[1] > 0.0, "positive volts push the cart forward");
    }

    #[test]
    fn linear_plant_steps_by_model() {
        let a = Mat::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]);
        let b = Mat::col_vec(&[0.0, 0.1]);
        let mut p = LinearPlant::new(a, b, 10.0);
        p.set_state(&[1.0, 0.0]);
        p.step(1.0, 0.01);
        assert!((p.state()[0] - 1.0).abs() < 1e-12);
        assert!((p.state()[1] - 0.1).abs() < 1e-12);
        assert!(!p.failed());
    }

    #[test]
    fn linearized_model_shapes() {
        let p = CartPole::default();
        let (a, b) = p.linearized(0.01);
        assert_eq!(a.rows(), 4);
        assert_eq!(a.cols(), 4);
        assert_eq!(b.rows(), 4);
        assert_eq!(b.cols(), 1);
        // Unstable pole: the angle dynamics must feed back positively.
        assert!(a[(3, 2)] > 0.0);
    }
}

/// The double inverted pendulum on a cart (the third corpus system):
/// two serial links balanced above a cart, linearized about upright.
///
/// State: `[x, x_dot, th1, th1_dot, th2, th2_dot]` with both angles
/// measured from upright. The model integrates the *linearized* dynamics
/// (adequate near the balancing regime the Double IP controller operates
/// in) with an optional cubic gravity correction so large excursions
/// diverge like the real plant.
#[derive(Debug, Clone)]
pub struct DoublePendulum {
    state: [f64; 6],
    /// Cart mass (kg).
    pub cart_mass: f64,
    /// Mass of each link (kg).
    pub link_mass: f64,
    /// Half-length of each link (m).
    pub link_length: f64,
    /// Track half-extent (m).
    pub track_limit: f64,
    /// Failure angle for either link (rad).
    pub angle_limit: f64,
    /// Force per volt (N/V).
    pub volts_to_force: f64,
}

impl Default for DoublePendulum {
    fn default() -> Self {
        DoublePendulum {
            state: [0.0, 0.0, 0.03, 0.0, 0.02, 0.0],
            cart_mass: 1.2,
            link_mass: 0.15,
            link_length: 0.35,
            track_limit: 1.2,
            angle_limit: 0.5,
            volts_to_force: 2.5,
        }
    }
}

impl DoublePendulum {
    /// A double pendulum starting with the given link angles.
    pub fn with_initial_angles(th1: f64, th2: f64) -> DoublePendulum {
        let mut p = DoublePendulum::default();
        p.state[2] = th1;
        p.state[4] = th2;
        p
    }

    /// Linearized discrete model `(A, B)` about upright for LQR design,
    /// from the small-angle Lagrangian of the serial double pendulum on a
    /// cart (point-mass links): `D q̈ = G q + H F` with
    /// `q = [x, θ1, θ2]`, discretized by forward Euler.
    pub fn linearized(&self, dt: f64) -> (Mat, Mat) {
        let g = 9.81;
        let mc = self.cart_mass;
        let m1 = self.link_mass;
        let m2 = self.link_mass;
        let l1 = self.link_length;
        let l2 = self.link_length;
        // Mass matrix.
        let d = Mat::from_rows(&[
            &[mc + m1 + m2, (m1 + m2) * l1, m2 * l2],
            &[(m1 + m2) * l1, (m1 + m2) * l1 * l1, m2 * l1 * l2],
            &[m2 * l2, m2 * l1 * l2, m2 * l2 * l2],
        ]);
        let dinv = d.inverse().expect("mass matrix is invertible");
        // Gravity stiffness (destabilizing about upright).
        let grav = [0.0, (m1 + m2) * g * l1, m2 * g * l2];
        // Input map (force on the cart).
        let force = self.volts_to_force;
        // Continuous 6-state A, B: state [x, ẋ, θ1, θ̇1, θ2, θ̇2].
        // Accelerations: q̈_i = Σ_j Dinv[i][j] * (grav_j · q_j + H_j F).
        let mut a = Mat::identity(6);
        let mut b = Mat::zeros(6, 1);
        // Position rows integrate velocities.
        a[(0, 1)] = dt;
        a[(2, 3)] = dt;
        a[(4, 5)] = dt;
        // Velocity rows get the acceleration terms.
        let qpos = [0usize, 2, 4]; // state index of q_j
        let vrow = [1usize, 3, 5]; // state row of q̈_i
        for i in 0..3 {
            for j in 0..3 {
                a[(vrow[i], qpos[j])] += dt * dinv[(i, j)] * grav[j];
            }
            b[(vrow[i], 0)] = dt * dinv[(i, 0)] * force;
        }
        (a, b)
    }
}

impl Plant for DoublePendulum {
    fn state_dim(&self) -> usize {
        6
    }

    fn state(&self) -> &[f64] {
        &self.state
    }

    fn set_state(&mut self, state: &[f64]) {
        self.state.copy_from_slice(state);
    }

    fn step(&mut self, u: f64, dt: f64) {
        let (a, b) = self.linearized(dt);
        let x = Mat::col_vec(&self.state);
        let next = a.mul(&x).add(&b.scale(u));
        for i in 0..6 {
            self.state[i] = next[(i, 0)];
        }
        // Cubic gravity correction: beyond small angles the real plant
        // diverges faster than the linear model.
        let th1 = self.state[2];
        let th2 = self.state[4];
        self.state[3] += dt * 2.0 * th1 * th1 * th1;
        self.state[5] += dt * 2.5 * th2 * th2 * th2;
    }

    fn outputs(&self) -> Vec<f64> {
        vec![self.state[0], self.state[2], self.state[4]]
    }

    fn failed(&self) -> bool {
        self.state[0].abs() > self.track_limit
            || self.state[2].abs() > self.angle_limit
            || self.state[4].abs() > self.angle_limit
    }
}

#[cfg(test)]
mod double_pendulum_tests {
    use super::*;
    use crate::lqr::{dlqr, feedback};

    #[test]
    fn uncontrolled_double_pendulum_falls() {
        let mut p = DoublePendulum::with_initial_angles(0.03, 0.02);
        for _ in 0..2000 {
            p.step(0.0, 0.005);
            if p.failed() {
                break;
            }
        }
        assert!(p.failed(), "an uncontrolled double pendulum must fall");
    }

    #[test]
    fn lqr_balances_double_pendulum() {
        let plant = DoublePendulum::default();
        let dt = 0.005;
        let (a, b) = plant.linearized(dt);
        let mut q = Mat::identity(6);
        q[(0, 0)] = 5.0;
        q[(2, 2)] = 200.0;
        q[(4, 4)] = 200.0;
        let d = dlqr(&a, &b, &q, 0.1, 200_000).expect("double-IP LQR converges");
        let mut p = DoublePendulum::with_initial_angles(0.04, 0.02);
        for _ in 0..4000 {
            let u = feedback(&d.k, p.state()).clamp(-5.0, 5.0);
            p.step(u, dt);
            assert!(!p.failed(), "LQR must balance both links: {:?}", p.state());
        }
        assert!(p.state()[2].abs() < 0.05, "{:?}", p.state());
        assert!(p.state()[4].abs() < 0.05, "{:?}", p.state());
    }

    #[test]
    fn outputs_report_three_measurements() {
        let p = DoublePendulum::default();
        assert_eq!(p.outputs().len(), 3);
        assert_eq!(p.state_dim(), 6);
    }
}
