//! The Simplex executive: the simulated counterpart of the paper's core
//! controller loop (Figure 2), wired to the shared-memory bus, the
//! Lyapunov monitor, and a (possibly faulty or malicious) non-core
//! controller.
//!
//! Reproduces Figure 1's architecture end-to-end: sensor → core safety
//! controller + non-core proposal → decision module (monitor) → actuator,
//! with fault injection to demonstrate both what the monitor catches and
//! what only SafeFlow's static analysis catches (the rigged feedback and
//! pid defects flow through code paths the runtime monitor never sees).

use crate::linalg::Mat;
use crate::lqr::{dlqr, feedback, LqrDesign};
use crate::monitor::{Decision, LyapunovMonitor};
use crate::plant::{CartPole, DoublePendulum, Plant};
use crate::shmem::{Fault, SharedBus, WriterId};
use safeflow_util::SplitMix64;

/// Which controller produced the applied command at a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeUsed {
    /// The verified safety controller.
    Safety,
    /// The accepted non-core proposal.
    Complex,
}

/// One step of the executive's trace.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Simulation time (s).
    pub t: f64,
    /// Plant state after the step.
    pub state: Vec<f64>,
    /// Applied control (volts).
    pub u: f64,
    /// Which controller was used.
    pub mode: ModeUsed,
    /// Lyapunov value after the step.
    pub lyapunov: f64,
    /// Monitor decision on the non-core proposal this step.
    pub decision: Decision,
}

/// Aggregate results of a run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Steps simulated.
    pub steps: usize,
    /// Steps on the complex (non-core) controller.
    pub complex_steps: usize,
    /// Steps where the monitor rejected the proposal.
    pub rejections: usize,
    /// Whether the plant ever left its recoverable envelope.
    pub plant_failed: bool,
    /// Largest Lyapunov value observed.
    pub max_lyapunov: f64,
    /// Whether the core watchdog ended up killing the core's own pid (the
    /// §4 kill-pid defect firing at run time).
    pub killed_self: bool,
    /// With `track_taint`: how many applied commands were influenced by a
    /// non-core-tainted value that bypassed the monitor.
    pub tainted_actuations: usize,
    /// Full trace (one entry per step).
    pub trace: Vec<TraceStep>,
}

/// Configuration of the simulated system.
#[derive(Debug, Clone)]
pub struct ExecutiveConfig {
    /// Control period (s).
    pub dt: f64,
    /// Steps to simulate.
    pub steps: usize,
    /// Fault scenario for the non-core side.
    pub fault: Fault,
    /// Initial pendulum angle (rad).
    pub initial_angle: f64,
    /// Lyapunov envelope threshold.
    pub envelope: f64,
    /// RNG seed (the non-core controller adds exploration noise).
    pub seed: u64,
    /// Whether the *unsafe* core variant is used: it re-reads published
    /// feedback from shared memory inside the clamp (the generic-Simplex
    /// defect) and trusts the shared pid (kill-pid defect). With the safe
    /// variant those code paths use core-local copies.
    pub unsafe_core: bool,
    /// Track run-time value provenance (taint bits) alongside every value,
    /// emulating the run-time alternative the paper contrasts with static
    /// analysis ("run-time error dependency detection incurs performance
    /// penalties").
    pub track_taint: bool,
}

impl Default for ExecutiveConfig {
    fn default() -> Self {
        ExecutiveConfig {
            dt: 0.01,
            steps: 2000,
            fault: Fault::None,
            initial_angle: 0.08,
            envelope: 50.0,
            seed: 42,
            unsafe_core: false,
            track_taint: false,
        }
    }
}

/// The simulated Simplex system.
pub struct SimplexExecutive {
    cfg: ExecutiveConfig,
    plant: Box<dyn Plant>,
    safety: LqrDesign,
    complex: LqrDesign,
    monitor: LyapunovMonitor,
    bus: SharedBus,
    rng: SplitMix64,
    core_pid: f64,
    noncore_pid: f64,
    hb_counter: f64,
    /// Taint bits per bus cell region (only when track_taint).
    taint: std::collections::HashMap<(String, usize), bool>,
    /// Count of tainted values that reached the actuator (runtime
    /// equivalent of a SafeFlow error).
    pub tainted_actuations: usize,
}

impl SimplexExecutive {
    /// Builds the single-pendulum system of Figure 1: designs both
    /// controllers, declares the bus layout of Figure 3 (feedback +
    /// non-core control regions).
    pub fn new(cfg: ExecutiveConfig) -> SimplexExecutive {
        let plant = CartPole::with_initial_angle(cfg.initial_angle);
        let (a, b) = plant.linearized(cfg.dt);
        let q_safety = Mat::from_rows(&[
            &[10.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 100.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        // The "complex" controller optimizes jitter (tighter angle cost).
        let q_complex = Mat::from_rows(&[
            &[30.0, 0.0, 0.0, 0.0],
            &[0.0, 3.0, 0.0, 0.0],
            &[0.0, 0.0, 400.0, 0.0],
            &[0.0, 0.0, 0.0, 3.0],
        ]);
        Self::with_plant(cfg, Box::new(plant), a, b, &q_safety, &q_complex)
    }

    /// Builds the Double IP variant: the same executive balancing the
    /// six-state double pendulum (the third Table 1 system's plant).
    pub fn new_double(cfg: ExecutiveConfig) -> SimplexExecutive {
        let plant = DoublePendulum::with_initial_angles(cfg.initial_angle, cfg.initial_angle / 2.0);
        let (a, b) = plant.linearized(cfg.dt);
        let mut q_safety = Mat::identity(6);
        q_safety[(0, 0)] = 5.0;
        q_safety[(2, 2)] = 200.0;
        q_safety[(4, 4)] = 200.0;
        let mut q_complex = Mat::identity(6);
        q_complex[(0, 0)] = 15.0;
        q_complex[(2, 2)] = 600.0;
        q_complex[(4, 4)] = 600.0;
        Self::with_plant(cfg, Box::new(plant), a, b, &q_safety, &q_complex)
    }

    /// Generic constructor: any plant with its discrete model and the two
    /// controllers' state costs.
    pub fn with_plant(
        cfg: ExecutiveConfig,
        plant: Box<dyn Plant>,
        a: Mat,
        b: Mat,
        q_safety: &Mat,
        q_complex: &Mat,
    ) -> SimplexExecutive {
        let safety = dlqr(&a, &b, q_safety, 0.5, 200_000).expect("safety LQR");
        let complex = dlqr(&a, &b, q_complex, 0.2, 200_000).expect("complex LQR");
        let monitor = LyapunovMonitor::new(a, b, safety.p.clone(), cfg.envelope, 5.0);
        let n = plant.state_dim();
        let mut bus = SharedBus::new();
        // Figure 3 layout: feedback (full state + seq + ack) + non-core
        // control; pid/heartbeat cells live in the non-core control block
        // like the corpus systems.
        bus.declare("feedback", n + 2, true);
        bus.declare("ncctrl", 6, true); // control, seq, valid, hb, pid, computeTime
        bus.declare("status", 4, false);
        let seed = cfg.seed;
        SimplexExecutive {
            cfg,
            plant,
            safety,
            complex,
            monitor,
            bus,
            rng: SplitMix64::seed_from_u64(seed),
            core_pid: 1000.0,
            noncore_pid: 2000.0,
            hb_counter: 0.0,
            taint: std::collections::HashMap::new(),
            tainted_actuations: 0,
        }
    }

    fn taint_set(&mut self, region: &str, idx: usize, tainted: bool) {
        if self.cfg.track_taint {
            self.taint.insert((region.to_string(), idx), tainted);
        }
    }

    fn taint_get(&self, region: &str, idx: usize) -> bool {
        *self.taint.get(&(region.to_string(), idx)).unwrap_or(&false)
    }

    /// Runs the scenario to completion.
    pub fn run(&mut self) -> RunSummary {
        let mut trace = Vec::with_capacity(self.cfg.steps);
        let mut complex_steps = 0;
        let mut rejections = 0;
        let mut max_v: f64 = 0.0;
        let mut killed_self = false;
        let mut plant_failed = false;
        let mut last_seq = -1.0;

        for step in 0..self.cfg.steps {
            let t = step as f64 * self.cfg.dt;

            // --- core publishes feedback (full state) --------------------
            let state: Vec<f64> = self.plant.state().to_vec();
            for (i, &v) in state.iter().enumerate() {
                self.bus.write("feedback", i, v, WriterId::Core);
                self.taint_set("feedback", i, false);
            }
            self.bus.write("feedback", state.len(), step as f64, WriterId::Core);

            // --- non-core side acts (and maybe misbehaves) ----------------
            self.noncore_step(step);

            // --- core decision module ------------------------------------
            let safe_u = feedback(&self.safety.k, &state).clamp(-5.0, 5.0);
            let proposal = self.bus.read("ncctrl", 0);
            let seq = self.bus.read("ncctrl", 1);
            let valid = self.bus.read("ncctrl", 2);
            let fresh = seq != last_seq;
            last_seq = seq;

            let decision = if !fresh || valid < 0.5 {
                Decision::Reject(crate::monitor::RejectReason::Stale)
            } else {
                self.monitor.check(&state, proposal)
            };

            let (mut u, mode) = match decision {
                Decision::Accept => (proposal, ModeUsed::Complex),
                Decision::Reject(_) => {
                    rejections += 1;
                    (safe_u, ModeUsed::Safety)
                }
            };
            let mut u_tainted = match mode {
                ModeUsed::Complex => false, // monitored (the whole point)
                ModeUsed::Safety => false,
            };

            // --- the unsafe-core defects (what only SafeFlow catches) ----
            if self.cfg.unsafe_core {
                // Rigged feedback: clamp limit derived from a *re-read* of
                // published feedback — which the non-core side may have
                // overwritten between publish and read-back.
                let fb_pos = self.bus.read("feedback", 0);
                let max_u = (4.5 - 0.5 * fb_pos.abs()).max(0.5);
                u = u.clamp(-max_u, max_u);
                if self.cfg.track_taint {
                    u_tainted = u_tainted || self.taint_get("feedback", 0);
                }
                // Kill-pid: watchdog on heartbeat.
                let hb = self.bus.read("ncctrl", 3);
                if hb == self.hb_counter && step > 10 {
                    let pid = self.bus.read("ncctrl", 4);
                    if (pid - self.core_pid).abs() < 0.5 {
                        killed_self = true;
                    }
                }
                self.hb_counter = hb;
            }

            if self.cfg.track_taint && u_tainted {
                self.tainted_actuations += 1;
            }

            // --- actuate ---------------------------------------------------
            self.plant.step(u, self.cfg.dt);
            let v = self.monitor.lyapunov(self.plant.state());
            max_v = max_v.max(v);
            if self.plant.failed() {
                plant_failed = true;
            }
            if mode == ModeUsed::Complex {
                complex_steps += 1;
            }
            self.bus.write("status", 0, u, WriterId::Core);
            self.bus.write("status", 1, v, WriterId::Core);

            trace.push(TraceStep {
                t,
                state: self.plant.state().to_vec(),
                u,
                mode,
                lyapunov: v,
                decision,
            });
            if plant_failed || killed_self {
                break;
            }
        }

        RunSummary {
            steps: trace.len(),
            complex_steps,
            rejections,
            plant_failed,
            max_lyapunov: max_v,
            killed_self,
            tainted_actuations: self.tainted_actuations,
            trace,
        }
    }

    /// The non-core component's behaviour for one period.
    fn noncore_step(&mut self, step: usize) {
        let state: Vec<f64> = self.plant.state().to_vec();
        if self.cfg.fault == Fault::Stale {
            // Stops publishing after a while.
            if step > 50 {
                return;
            }
        }
        // Normal behaviour: the complex controller proposes its command
        // (with a little exploration noise — it is "new and untested").
        let mut proposal = feedback(&self.complex.k, &state);
        proposal += self.rng.f64_range(-0.05, 0.05);

        match self.cfg.fault {
            Fault::GarbageCommands => {
                if step % 37 == 13 {
                    proposal = 80.0; // absurd magnitude
                }
                if step % 101 == 50 {
                    proposal = f64::NAN;
                }
            }
            Fault::RigFeedback { value } => {
                // Overwrite the published feedback AFTER the core published
                // it (data race the core cannot see).
                self.bus.write("feedback", 0, value, WriterId::NonCore);
                self.taint_set("feedback", 0, true);
            }
            Fault::RigPid { pid } => {
                self.bus.write("ncctrl", 4, pid, WriterId::NonCore);
                // And stop heartbeating so the watchdog fires.
                if step > 20 {
                    self.bus.write("ncctrl", 1, step as f64, WriterId::NonCore);
                    self.bus.write("ncctrl", 0, proposal.clamp(-5.0, 5.0), WriterId::NonCore);
                    self.bus.write("ncctrl", 2, 1.0, WriterId::NonCore);
                    return; // heartbeat cell left stale
                }
            }
            _ => {}
        }

        self.bus.write("ncctrl", 0, proposal, WriterId::NonCore);
        self.bus.write("ncctrl", 1, step as f64, WriterId::NonCore);
        self.bus.write("ncctrl", 2, 1.0, WriterId::NonCore);
        self.bus.write("ncctrl", 3, step as f64, WriterId::NonCore);
        if !matches!(self.cfg.fault, Fault::RigPid { .. }) {
            self.bus.write("ncctrl", 4, self.noncore_pid, WriterId::NonCore);
        }
        self.bus.write("ncctrl", 5, 120.0 + (step % 7) as f64, WriterId::NonCore);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_run_balances_and_uses_complex_controller() {
        let summary = SimplexExecutive::new(ExecutiveConfig::default()).run();
        assert!(!summary.plant_failed, "monitored Simplex must keep the pendulum up");
        assert!(
            summary.complex_steps > summary.steps / 2,
            "a well-behaved complex controller should usually be in control: {}/{}",
            summary.complex_steps,
            summary.steps
        );
    }

    #[test]
    fn garbage_commands_are_rejected_and_plant_survives() {
        let cfg = ExecutiveConfig { fault: Fault::GarbageCommands, ..Default::default() };
        let summary = SimplexExecutive::new(cfg).run();
        assert!(!summary.plant_failed);
        assert!(summary.rejections > 0, "garbage must be rejected");
    }

    #[test]
    fn stale_noncore_falls_back_to_safety() {
        let cfg = ExecutiveConfig { fault: Fault::Stale, ..Default::default() };
        let summary = SimplexExecutive::new(cfg).run();
        assert!(!summary.plant_failed);
        // After the non-core side stops, every step is a rejection.
        assert!(summary.rejections > summary.steps / 2);
    }

    #[test]
    fn rigged_pid_kills_unsafe_core_but_not_safe_core() {
        let rig = Fault::RigPid { pid: 1000.0 };
        let unsafe_cfg = ExecutiveConfig { fault: rig, unsafe_core: true, ..Default::default() };
        let summary = SimplexExecutive::new(unsafe_cfg).run();
        assert!(summary.killed_self, "the kill-pid defect must fire on the unsafe core");

        let safe_cfg = ExecutiveConfig { fault: rig, unsafe_core: false, ..Default::default() };
        let summary = SimplexExecutive::new(safe_cfg).run();
        assert!(!summary.killed_self, "the safe core never trusts the shared pid");
    }

    #[test]
    fn rigged_feedback_reaches_actuator_only_in_unsafe_core() {
        let rig = Fault::RigFeedback { value: 0.0 };
        let unsafe_cfg = ExecutiveConfig {
            fault: rig,
            unsafe_core: true,
            track_taint: true,
            steps: 300,
            ..Default::default()
        };
        let summary = SimplexExecutive::new(unsafe_cfg).run();
        assert!(
            summary.tainted_actuations > 0,
            "the rigged feedback must reach the actuator through the unsafe clamp"
        );

        let safe_cfg = ExecutiveConfig {
            fault: rig,
            unsafe_core: false,
            track_taint: true,
            steps: 300,
            ..Default::default()
        };
        let summary = SimplexExecutive::new(safe_cfg).run();
        assert_eq!(
            summary.tainted_actuations, 0,
            "the safe core never re-reads published feedback"
        );
        assert!(!summary.plant_failed);
    }

    #[test]
    fn trace_is_complete_and_monotone_in_time() {
        let cfg = ExecutiveConfig { steps: 100, ..Default::default() };
        let summary = SimplexExecutive::new(cfg).run();
        assert_eq!(summary.trace.len(), 100);
        for w in summary.trace.windows(2) {
            assert!(w[1].t > w[0].t);
        }
    }
}

#[cfg(test)]
mod double_tests {
    use super::*;

    #[test]
    fn double_pendulum_simplex_balances() {
        let cfg = ExecutiveConfig {
            dt: 0.005,
            steps: 1500,
            initial_angle: 0.03,
            envelope: 80.0,
            ..Default::default()
        };
        let summary = SimplexExecutive::new_double(cfg).run();
        assert!(!summary.plant_failed, "the Double IP Simplex must balance both links");
        assert!(summary.complex_steps > 0);
    }

    #[test]
    fn double_pendulum_survives_garbage_commands() {
        let cfg = ExecutiveConfig {
            dt: 0.005,
            steps: 1500,
            initial_angle: 0.02,
            envelope: 80.0,
            fault: Fault::GarbageCommands,
            ..Default::default()
        };
        let summary = SimplexExecutive::new_double(cfg).run();
        assert!(!summary.plant_failed);
        assert!(summary.rejections > 0);
    }
}
