//! Discrete-time LQR synthesis via Riccati iteration.
//!
//! Produces both the feedback gain (the paper's verified safety
//! controller) and the cost-to-go matrix `P`, which doubles as the
//! Lyapunov function of the Simplex stability envelope (paper reference 22).

use crate::linalg::Mat;

/// Result of LQR synthesis.
#[derive(Debug, Clone)]
pub struct LqrDesign {
    /// State-feedback gain row vector: `u = -K x`.
    pub k: Mat,
    /// Riccati solution (positive definite); `V(x) = x' P x` decreases
    /// along closed-loop trajectories.
    pub p: Mat,
    /// Iterations until convergence.
    pub iterations: usize,
}

/// Solves the discrete algebraic Riccati equation by fixed-point iteration
/// and returns the optimal gain.
///
/// `a`/`b` is the discrete model, `q` the state cost (PSD), `r > 0` the
/// scalar input cost.
///
/// Returns `None` when the iteration fails to converge (e.g. an
/// unstabilizable model) or a required inverse does not exist.
pub fn dlqr(a: &Mat, b: &Mat, q: &Mat, r: f64, max_iter: usize) -> Option<LqrDesign> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!(b.rows(), n);
    assert_eq!(b.cols(), 1);
    assert_eq!(q.rows(), n);

    let at = a.transpose();
    let bt = b.transpose();
    let mut p = q.clone();
    for it in 0..max_iter {
        // K = (R + B'PB)^-1 B'PA  (scalar input: the inverse is a division)
        let btpb = bt.mul(&p).mul(b)[(0, 0)];
        let denom = r + btpb;
        if denom.abs() < 1e-12 {
            return None;
        }
        let k = bt.mul(&p).mul(a).scale(1.0 / denom);
        // P' = A'PA - A'PB K + Q
        let next = at.mul(&p).mul(a).sub(&at.mul(&p).mul(b).mul(&k)).add(q);
        let delta = next.distance(&p);
        p = next;
        if delta < 1e-10 {
            let btpb = bt.mul(&p).mul(b)[(0, 0)];
            let k = bt.mul(&p).mul(a).scale(1.0 / (r + btpb));
            return Some(LqrDesign { k, p, iterations: it + 1 });
        }
    }
    None
}

/// Evaluates the feedback law `u = -K x`.
pub fn feedback(k: &Mat, x: &[f64]) -> f64 {
    let xv = Mat::col_vec(x);
    -k.mul(&xv)[(0, 0)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plant::{CartPole, Plant};

    fn double_integrator() -> (Mat, Mat) {
        let dt = 0.1;
        let a = Mat::from_rows(&[&[1.0, dt], &[0.0, 1.0]]);
        let b = Mat::col_vec(&[0.5 * dt * dt, dt]);
        (a, b)
    }

    #[test]
    fn riccati_converges_on_double_integrator() {
        let (a, b) = double_integrator();
        let q = Mat::identity(2);
        let d = dlqr(&a, &b, &q, 1.0, 10_000).expect("converges");
        assert!(d.iterations > 1);
        // P must be positive definite: check the quadratic form on axes.
        assert!(d.p.quad_form(&[1.0, 0.0]) > 0.0);
        assert!(d.p.quad_form(&[0.0, 1.0]) > 0.0);
    }

    #[test]
    fn closed_loop_double_integrator_is_stable() {
        let (a, b) = double_integrator();
        let q = Mat::identity(2);
        let d = dlqr(&a, &b, &q, 1.0, 10_000).unwrap();
        let mut x = vec![1.0, 0.0];
        for _ in 0..400 {
            let u = feedback(&d.k, &x);
            let xv = Mat::col_vec(&x);
            let next = a.mul(&xv).add(&b.scale(u));
            x = (0..2).map(|i| next[(i, 0)]).collect();
        }
        assert!(x[0].abs() < 1e-3, "position must regulate to zero: {x:?}");
        assert!(x[1].abs() < 1e-3);
    }

    #[test]
    fn lyapunov_decreases_along_closed_loop() {
        let (a, b) = double_integrator();
        let q = Mat::identity(2);
        let d = dlqr(&a, &b, &q, 1.0, 10_000).unwrap();
        let mut x = vec![1.0, -0.5];
        let mut v_prev = d.p.quad_form(&x);
        for _ in 0..50 {
            let u = feedback(&d.k, &x);
            let next = a.mul(&Mat::col_vec(&x)).add(&b.scale(u));
            x = (0..2).map(|i| next[(i, 0)]).collect();
            let v = d.p.quad_form(&x);
            assert!(v <= v_prev + 1e-9, "V must be non-increasing");
            v_prev = v;
        }
    }

    #[test]
    fn cartpole_lqr_balances_nonlinear_plant() {
        let plant = CartPole::default();
        let dt = 0.01;
        let (a, b) = plant.linearized(dt);
        let q = Mat::from_rows(&[
            &[10.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 100.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        let d = dlqr(&a, &b, &q, 0.5, 50_000).expect("cart-pole LQR converges");
        let mut p = CartPole::with_initial_angle(0.1);
        for _ in 0..2000 {
            let u = feedback(&d.k, p.state()).clamp(-5.0, 5.0);
            p.step(u, dt);
            assert!(!p.failed(), "LQR must keep the pendulum up: state {:?}", p.state());
        }
        assert!(p.state()[2].abs() < 0.05, "angle regulated: {:?}", p.state());
    }
}
