//! # simplex-sim
//!
//! Simulation substrate for the SafeFlow reproduction: the physical/runtime
//! side of the paper's world that we cannot obtain (the UIUC lab's
//! inverted pendulum hardware and Simplex runtime).
//!
//! Provides:
//!
//! * plant models ([`plant::CartPole`] — Figure 1's pendulum — and
//!   [`plant::LinearPlant`] for the generic Simplex),
//! * LQR synthesis via Riccati iteration ([`lqr::dlqr`]) — the verified
//!   safety controller, whose Riccati solution doubles as the Lyapunov
//!   envelope,
//! * run-time monitors ([`monitor::LyapunovMonitor`]) implementing the
//!   Simplex recoverability check the paper's `assume(core(...))`
//!   annotations describe,
//! * a simulated shared-memory bus with §4-style fault injection
//!   ([`shmem`]), and
//! * the Simplex executive ([`executive::SimplexExecutive`]) reproducing
//!   Figure 2's control loop, with safe/unsafe core variants demonstrating
//!   the defects SafeFlow catches statically.
//!
//! # Examples
//!
//! ```
//! use simplex_sim::executive::{ExecutiveConfig, SimplexExecutive};
//!
//! let summary = SimplexExecutive::new(ExecutiveConfig {
//!     steps: 500,
//!     ..Default::default()
//! })
//! .run();
//! assert!(!summary.plant_failed);
//! ```

#![warn(missing_docs)]

pub mod executive;
pub mod linalg;
pub mod lqr;
pub mod monitor;
pub mod plant;
pub mod shmem;

pub use executive::{ExecutiveConfig, ModeUsed, RunSummary, SimplexExecutive};
pub use monitor::{Decision, LyapunovMonitor, RangeMonitor, RejectReason};
pub use plant::{CartPole, DoublePendulum, LinearPlant, Plant};
pub use shmem::{Fault, SharedBus, WriterId};
