//! Simulated shared memory: the communication substrate between core and
//! non-core components, with fault injection reproducing the paper's §4
//! failure scenarios.
//!
//! The paper's systems communicate through UNIX shared memory; here the
//! segment is a plain buffer with named regions and *writer identities*, so
//! scenarios can model a non-core component scribbling over memory it was
//! never supposed to touch ("supposedly read-only, but not enforced").

use std::collections::HashMap;

/// Who performed a write (used by fault accounting, not enforcement — the
/// whole point of the paper is that shared memory is NOT enforced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriterId {
    /// The core component.
    Core,
    /// A non-core component (complex controller, UI, tooling).
    NonCore,
}

/// A named region within the simulated segment.
#[derive(Debug, Clone)]
struct Region {
    offset: usize,
    len: usize,
    noncore: bool,
}

/// The simulated shared-memory segment.
#[derive(Debug, Clone)]
pub struct SharedBus {
    cells: Vec<f64>,
    regions: HashMap<String, Region>,
    /// Count of writes by non-core components into regions the core
    /// believed it owned (the rigged-feedback scenario).
    pub noncore_overwrites: usize,
}

impl SharedBus {
    /// Creates an empty segment.
    pub fn new() -> SharedBus {
        SharedBus { cells: Vec::new(), regions: HashMap::new(), noncore_overwrites: 0 }
    }

    /// Declares a region of `len` cells; `noncore` marks regions non-core
    /// components legitimately write.
    pub fn declare(&mut self, name: &str, len: usize, noncore: bool) {
        let offset = self.cells.len();
        self.cells.extend(std::iter::repeat_n(0.0, len));
        self.regions.insert(name.to_string(), Region { offset, len, noncore });
    }

    /// Whether `name` is declared.
    pub fn has_region(&self, name: &str) -> bool {
        self.regions.contains_key(name)
    }

    /// Whether the region is writable by non-core components.
    pub fn is_noncore(&self, name: &str) -> bool {
        self.regions.get(name).map(|r| r.noncore).unwrap_or(false)
    }

    /// Reads cell `idx` of region `name`.
    ///
    /// # Panics
    ///
    /// Panics on unknown region or out-of-bounds index (the simulation
    /// equivalent of the paper's A1 violation).
    pub fn read(&self, name: &str, idx: usize) -> f64 {
        let r = &self.regions[name];
        assert!(idx < r.len, "A1 violation: {name}[{idx}] out of bounds");
        self.cells[r.offset + idx]
    }

    /// Writes cell `idx` of region `name` as `writer`.
    ///
    /// Writes are never *blocked* (shared memory has no enforcement); a
    /// non-core write into a core-owned region is tallied in
    /// [`SharedBus::noncore_overwrites`].
    pub fn write(&mut self, name: &str, idx: usize, value: f64, writer: WriterId) {
        let r = self.regions.get(name).unwrap_or_else(|| panic!("unknown region {name}"));
        assert!(idx < r.len, "A1 violation: {name}[{idx}] out of bounds");
        if writer == WriterId::NonCore && !r.noncore {
            self.noncore_overwrites += 1;
        }
        let off = r.offset + idx;
        self.cells[off] = value;
    }

    /// Reads a whole region.
    pub fn read_region(&self, name: &str) -> Vec<f64> {
        let r = &self.regions[name];
        self.cells[r.offset..r.offset + r.len].to_vec()
    }
}

impl Default for SharedBus {
    fn default() -> Self {
        SharedBus::new()
    }
}

/// Fault scenarios from the paper's §4 narrative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// No fault: the non-core side behaves.
    None,
    /// The non-core controller emits garbage commands (buggy
    /// implementation): huge magnitudes and occasional NaNs.
    GarbageCommands,
    /// The non-core side overwrites the published sensor feedback with a
    /// crafted value that makes the plant look perfectly centered —
    /// rigging any check that re-reads the feedback (generic Simplex
    /// defect).
    RigFeedback {
        /// Value written over every feedback cell.
        value: f64,
    },
    /// The non-core side replaces its advertised client pid with the
    /// core's own pid, so a watchdog `kill` fires at the core itself
    /// (kill-pid defect).
    RigPid {
        /// The pid planted in shared memory.
        pid: f64,
    },
    /// The non-core controller stops updating (stale data / heartbeat
    /// loss).
    Stale,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_read_write_round_trip() {
        let mut bus = SharedBus::new();
        bus.declare("fb", 4, true);
        bus.declare("status", 2, false);
        bus.write("fb", 2, 3.5, WriterId::Core);
        assert_eq!(bus.read("fb", 2), 3.5);
        assert_eq!(bus.read("fb", 0), 0.0);
        assert!(bus.has_region("status"));
        assert!(bus.is_noncore("fb"));
        assert!(!bus.is_noncore("status"));
    }

    #[test]
    fn noncore_overwrite_of_core_region_is_tallied_not_blocked() {
        let mut bus = SharedBus::new();
        bus.declare("status", 2, false);
        bus.write("status", 0, 9.0, WriterId::NonCore);
        assert_eq!(bus.noncore_overwrites, 1);
        // The write still lands — no enforcement, as in real shared memory.
        assert_eq!(bus.read("status", 0), 9.0);
    }

    #[test]
    #[should_panic(expected = "A1 violation")]
    fn out_of_bounds_read_panics() {
        let mut bus = SharedBus::new();
        bus.declare("fb", 2, true);
        let _ = bus.read("fb", 2);
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut bus = SharedBus::new();
        bus.declare("a", 3, false);
        bus.declare("b", 3, false);
        bus.write("a", 2, 1.0, WriterId::Core);
        assert_eq!(bus.read("b", 0), 0.0, "InitCheck: regions must be disjoint");
    }
}
