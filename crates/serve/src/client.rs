//! A small blocking client for the serve protocol, used by the CLI's
//! `serve --client` paths, the smoke harness, and the tests.

use crate::proto::{self, Request, Response, Status};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// One connection to a running daemon. Requests are issued sequentially
/// on the connection; open one client per concurrent request.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7433`) with `timeout_ms` on
    /// the connect and on every subsequent read/write.
    ///
    /// # Errors
    ///
    /// Connection failures and invalid addresses.
    pub fn connect(addr: &str, timeout_ms: u64) -> io::Result<Client> {
        let sockaddr: std::net::SocketAddr = addr
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: {e}")))?;
        let timeout = Duration::from_millis(timeout_ms.max(1));
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        let body = proto::encode_request(req)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        proto::write_frame(&mut self.stream, &body)?;
        let body = proto::read_frame(&mut self.stream)?;
        proto::decode_response(&body)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed response frame"))
    }

    /// Checks an inline virtual file set (`root` resolved against
    /// `files`). `deadline_ms = 0` uses the server default.
    ///
    /// # Errors
    ///
    /// Transport failures (including torn frames and timeouts).
    pub fn check(
        &mut self,
        root: &str,
        files: &[(String, String)],
        deadline_ms: u64,
    ) -> io::Result<Response> {
        self.round_trip(&Request::Check {
            root: root.to_string(),
            files: files.to_vec(),
            deadline_ms,
        })
    }

    /// Checks on-disk files by path (first path is the root unit); the
    /// daemon reads them server-side and registers them for `--watch`.
    ///
    /// # Errors
    ///
    /// Transport failures (including torn frames and timeouts).
    pub fn check_paths(&mut self, paths: &[String], deadline_ms: u64) -> io::Result<Response> {
        self.round_trip(&Request::CheckPaths { paths: paths.to_vec(), deadline_ms })
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn ping(&mut self) -> io::Result<Response> {
        self.round_trip(&Request::Ping)
    }

    /// Fetches the daemon's metrics snapshot (JSON in `report_json`).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn metrics(&mut self) -> io::Result<Response> {
        self.round_trip(&Request::Metrics)
    }

    /// Requests a graceful drain; the response arrives after the queue
    /// empties.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        let resp = self.round_trip(&Request::Shutdown)?;
        if resp.status != Status::ShuttingDown {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected shutdown status {:?}", resp.status),
            ));
        }
        Ok(resp)
    }
}
