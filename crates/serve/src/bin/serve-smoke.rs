//! `serve-smoke` — the process-level daemon drill behind `make serve-smoke`.
//!
//! Everything the in-process tests cannot exercise with real processes:
//!
//! 1. start a release `safeflow serve` daemon (with one injected
//!    protocol fault armed);
//! 2. drive 32 concurrent client requests over a generated workload,
//!    asserting every rendered report is **byte-identical** to the
//!    one-shot `safeflow check` output for the same input, and that the
//!    one faulted request answers status 3 without harming its neighbors;
//! 3. SIGKILL the daemon mid-life, restart it on the same store, and
//!    assert the first request replays warm (crash-safe sessions);
//! 4. drain the second daemon with a shutdown frame and assert it exits 0.
//!
//! Usage: `serve-smoke path/to/safeflow` (the release CLI binary).
//! Exits nonzero with a message on the first violated invariant.

use safeflow_serve::{paths_key, Client, RunKind, Status};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const REQUESTS: usize = 32;

fn fail(msg: &str) -> ! {
    eprintln!("serve-smoke FAILED: {msg}");
    std::process::exit(1);
}

struct TempTree {
    root: PathBuf,
}

impl TempTree {
    fn new() -> TempTree {
        let root =
            std::env::temp_dir().join(format!("safeflow-serve-smoke-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("src")).expect("create temp tree");
        std::fs::create_dir_all(root.join("store")).expect("create temp tree");
        TempTree { root }
    }
    fn src(&self, name: &str) -> PathBuf {
        self.root.join("src").join(name)
    }
    fn store(&self) -> PathBuf {
        self.root.join("store")
    }
    fn port_file(&self) -> PathBuf {
        self.root.join("port")
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// The workload: figure 2 plus three content variants (distinct manifest
/// keys, same verdicts) and one extra program reserved for the injected
/// fault.
fn write_workload(tree: &TempTree) -> Vec<PathBuf> {
    let fig2 = safeflow_corpus::figure2_example();
    let mut paths = Vec::new();
    for v in 0..4 {
        let p = tree.src(&format!("prog{v}.c"));
        std::fs::write(&p, format!("// workload variant {v}\n{fig2}")).expect("write program");
        paths.push(p);
    }
    let faulted = tree.src("faulted.c");
    std::fs::write(&faulted, format!("// faulted request\n{fig2}")).expect("write program");
    paths.push(faulted);
    paths
}

/// One-shot `safeflow check FILE` (no store): the byte-identity reference.
fn one_shot(safeflow: &Path, file: &Path) -> String {
    let out = Command::new(safeflow)
        .arg("check")
        .arg(file)
        .output()
        .unwrap_or_else(|e| fail(&format!("cannot run one-shot CLI: {e}")));
    String::from_utf8(out.stdout)
        .unwrap_or_else(|e| fail(&format!("one-shot CLI wrote non-UTF-8 output: {e}")))
}

fn start_daemon(safeflow: &Path, tree: &TempTree, inject: Option<&str>) -> (Child, String) {
    let _ = std::fs::remove_file(tree.port_file());
    let mut cmd = Command::new(safeflow);
    cmd.arg("serve")
        .arg("--store")
        .arg(tree.store())
        .arg("--port-file")
        .arg(tree.port_file())
        .args(["--workers", "4", "--queue", "16"])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    if let Some(spec) = inject {
        cmd.args(["--inject", spec]);
    }
    let child = cmd.spawn().unwrap_or_else(|e| fail(&format!("cannot spawn daemon: {e}")));

    // The daemon writes its bound address atomically once listening.
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(tree.port_file()) {
            let s = s.trim().to_string();
            if !s.is_empty() {
                break s;
            }
        }
        if Instant::now() > deadline {
            fail("daemon never wrote its port file");
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    (child, addr)
}

fn main() {
    let safeflow = PathBuf::from(
        std::env::args().nth(1).unwrap_or_else(|| fail("usage: serve-smoke path/to/safeflow")),
    );
    if !safeflow.is_file() {
        fail(&format!("{} is not a file (run `make build` first)", safeflow.display()));
    }

    let tree = TempTree::new();
    let programs = write_workload(&tree);
    let faulted = programs.last().unwrap().clone();
    let workload: Vec<PathBuf> = programs[..programs.len() - 1].to_vec();

    // Byte-identity references from the one-shot CLI.
    let references: Vec<String> = workload.iter().map(|p| one_shot(&safeflow, p)).collect();

    // Phase 1: daemon with one protocol fault armed — a mid-request panic
    // aimed at exactly the `faulted.c` request key.
    let faulted_key = paths_key(&[faulted.to_string_lossy().to_string()]);
    let inject = format!("serve-request:{faulted_key}:panic");
    let (mut child, addr) = start_daemon(&safeflow, &tree, Some(&inject));

    let mut threads = Vec::new();
    for i in 0..REQUESTS {
        let addr = addr.clone();
        let path = workload[i % workload.len()].clone();
        let expect = references[i % workload.len()].clone();
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr, 60_000)
                .unwrap_or_else(|e| fail(&format!("request {i}: connect: {e}")));
            let resp = c
                .check_paths(&[path.to_string_lossy().to_string()], 0)
                .unwrap_or_else(|e| fail(&format!("request {i}: transport: {e}")));
            if !resp.status.is_report() {
                fail(&format!("request {i}: unexpected status {:?}", resp.status));
            }
            if resp.rendered != expect {
                fail(&format!(
                    "request {i} ({}): daemon report differs from one-shot CLI\n\
                     --- daemon ---\n{}\n--- one-shot ---\n{}",
                    path.display(),
                    resp.rendered,
                    expect
                ));
            }
        }));
    }
    // The faulted request rides along with the storm.
    let fault_thread = {
        let addr = addr.clone();
        let path = faulted.to_string_lossy().to_string();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, 60_000)
                .unwrap_or_else(|e| fail(&format!("faulted request: connect: {e}")));
            let resp = c
                .check_paths(&[path], 0)
                .unwrap_or_else(|e| fail(&format!("faulted request: transport: {e}")));
            if resp.status != Status::DegradedFault {
                fail(&format!(
                    "faulted request: expected DegradedFault (3), got {:?}",
                    resp.status
                ));
            }
        })
    };
    for t in threads {
        if t.join().is_err() {
            fail("a client thread panicked");
        }
    }
    if fault_thread.join().is_err() {
        fail("the faulted client thread panicked");
    }
    println!(
        "serve-smoke: {REQUESTS} concurrent requests byte-identical to one-shot CLI, \
         injected panic contained"
    );

    // Phase 2: SIGKILL (no drain, no goodbye) and restart on the same
    // store. The first request of the new daemon must replay warm: the
    // store's atomic writes survived the kill, and the OS released the
    // writer lock with the process.
    child.kill().unwrap_or_else(|e| fail(&format!("cannot SIGKILL daemon: {e}")));
    let _ = child.wait();
    let (mut child2, addr2) = start_daemon(&safeflow, &tree, None);
    let mut c = Client::connect(&addr2, 60_000)
        .unwrap_or_else(|e| fail(&format!("restarted daemon: connect: {e}")));
    let resp = c
        .check_paths(&[workload[0].to_string_lossy().to_string()], 0)
        .unwrap_or_else(|e| fail(&format!("restarted daemon: transport: {e}")));
    if resp.run != RunKind::Replayed {
        fail(&format!("restart after SIGKILL was not warm: run = {:?}", resp.run));
    }
    if resp.rendered != references[0] {
        fail("restarted daemon served a report that differs from the one-shot CLI");
    }
    println!("serve-smoke: warm replay after SIGKILL restart");

    // Phase 3: graceful drain via the protocol; the process must exit 0.
    let resp = c.shutdown().unwrap_or_else(|e| fail(&format!("shutdown frame: {e}")));
    if resp.status != Status::ShuttingDown {
        fail(&format!("shutdown frame answered {:?}", resp.status));
    }
    let status = child2.wait().unwrap_or_else(|e| fail(&format!("waiting for daemon: {e}")));
    if !status.success() {
        fail(&format!("drained daemon exited with {status}"));
    }
    println!("serve-smoke OK: byte-identity, fault containment, SIGKILL warm restart, clean drain");
}
