//! The resident analysis daemon.
//!
//! One [`Daemon`] owns a TCP listener (loopback), a bounded admission
//! queue, a pool of request workers, and a map of per-root resident
//! [`AnalysisSession`]s. The robustness contract, piece by piece:
//!
//! * **Deadlines** — every check carries a deadline (its own or the server
//!   default). Expiry *in the queue* answers [`Status::Timeout`] without
//!   running; expiry *mid-run* rides PR 2's budget machinery (the session
//!   deadline is set to the remaining time), so the analysis degrades
//!   conservatively to exit code 4 instead of hanging.
//! * **Backpressure** — the admission queue is bounded; a full queue
//!   answers [`Status::Overloaded`] immediately. The daemon sheds load,
//!   it never buffers without bound.
//! * **Coalescing** — concurrent checks of identical inputs (same stable
//!   request hash) attach to the in-flight leader and share its result;
//!   followers are marked [`RunKind::Coalesced`].
//! * **Panic isolation** — each request runs under `catch_unwind`. A
//!   poisoned request answers status 3 (the exit-code contract's
//!   "internal error") and the affected session is discarded; the store's
//!   clean state survives, so the next request for that root warms back
//!   up from disk.
//! * **Crash safety** — sessions persist through the PR 4 store (atomic
//!   temp-file + rename writes, checksummed reads, advisory writer lock).
//!   A SIGKILLed daemon leaves nothing torn: the OS drops the lock, a new
//!   daemon replays warm from the store.
//! * **Graceful drain** — a [`Request::Shutdown`] frame (or the CLI's
//!   SIGTERM handler calling [`DaemonHandle::begin_shutdown`]) stops
//!   admission, finishes the queue, answers the shutdown request, and
//!   exits with a final metrics snapshot.
//! * **Watch mode** — with a poll interval configured, roots registered by
//!   [`Request::CheckPaths`] are re-checked through the same admission
//!   queue whenever an input file's mtime or length moves, keeping the
//!   store warm so the next client request replays.

use crate::proto::{self, Request, Response, RunKind, Status};
use safeflow::{AnalysisConfig, AnalysisSession, SessionRun};
use safeflow_syntax::VirtualFs;
use safeflow_util::fault::{FaultKind, FaultPlan, FaultSite};
use safeflow_util::hash::Fnv64;
use safeflow_util::metrics::{Class, Metrics, MetricsSnapshot};
use safeflow_util::pool::panic_message;
use std::collections::{HashMap, VecDeque};
use std::hash::Hasher;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Configuration for a [`Daemon`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Base analysis configuration for every resident session. Its
    /// `fault_plan` should stay `None` — protocol-layer faults belong in
    /// [`ServeOptions::fault_plan`]; an engine-level plan would disable
    /// the store and the warm path with it.
    pub analysis: AnalysisConfig,
    /// Persistent store root; each analyzed root gets its own
    /// subdirectory. `None` = memory-only sessions (still warm across
    /// requests, cold across restarts).
    pub store_dir: Option<PathBuf>,
    /// Request-execution worker threads (distinct from the analysis
    /// config's `jobs`, which sizes the per-run SCC pool).
    pub workers: usize,
    /// Admission-queue capacity; a full queue sheds with `Overloaded`.
    pub queue_capacity: usize,
    /// Default per-request deadline (ms); `None` = no deadline unless the
    /// request carries one.
    pub default_deadline_ms: Option<u64>,
    /// Socket read/write timeout (ms) — the slow-loris guard: a client
    /// that trickles a frame slower than this is disconnected.
    pub io_timeout_ms: u64,
    /// Watch-mode poll interval (ms); `None` disables watching.
    pub watch_poll_ms: Option<u64>,
    /// Protocol-layer fault injection ([`FaultSite::ServeRequest`],
    /// [`FaultSite::ServeFrame`]); engine sites in this plan are ignored.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            analysis: AnalysisConfig::with_engine(safeflow::Engine::Summary).normalized(),
            store_dir: None,
            workers: 2,
            queue_capacity: 32,
            default_deadline_ms: None,
            io_timeout_ms: 10_000,
            watch_poll_ms: None,
            fault_plan: None,
        }
    }
}

/// The stable coalescing key of an inline [`Request::Check`]: a pure
/// function of the request contents (file order does not matter),
/// independent of arrival order or time. Public so tests and the smoke
/// harness can aim [`FaultSite::ServeRequest`] / [`FaultSite::ServeFrame`]
/// injections at one specific request.
pub fn inline_key(root: &str, files: &[(String, String)]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u8(0);
    h.write_str(root);
    let mut sorted: Vec<(&str, &str)> =
        files.iter().map(|(n, c)| (n.as_str(), c.as_str())).collect();
    sorted.sort();
    for (name, content) in sorted {
        h.write_str(name);
        h.write_u64(safeflow_util::hash::hash_str(content));
    }
    h.finish()
}

/// The stable coalescing key of a [`Request::CheckPaths`] (path order
/// matters: the first path is the root unit).
pub fn paths_key(paths: &[String]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u8(1);
    for p in paths {
        h.write_str(p);
    }
    h.finish()
}

/// One queued check request.
struct Job {
    /// Stable coalescing hash of the request contents.
    key: u64,
    kind: CheckKind,
    /// Absolute queue deadline, if any.
    deadline: Option<Instant>,
    /// Milliseconds granted (for the mid-run budget handoff).
    deadline_ms: Option<u64>,
    enqueued: Instant,
    /// Response channels: the leader first, coalesced followers after.
    /// Empty for internal (watch) re-checks.
    waiters: Vec<std::sync::mpsc::Sender<Response>>,
}

/// What a job analyzes.
#[derive(Clone)]
enum CheckKind {
    Inline { root: String, files: Vec<(String, String)> },
    Paths { paths: Vec<String> },
}

/// A root registered for watch-mode re-checking: its paths and the
/// (mtime, length) fingerprints last seen.
struct WatchedRoot {
    paths: Vec<String>,
    fingerprints: Vec<Option<(SystemTime, u64)>>,
}

/// Queue + lifecycle state shared by every daemon thread.
struct Shared {
    opts: ServeOptions,
    queue: Mutex<QueueState>,
    /// Signaled on enqueue and on shutdown.
    work: Condvar,
    /// Signaled when the queue drains during shutdown.
    drained: Condvar,
    shutting_down: AtomicBool,
    metrics: Metrics,
    /// root name → its resident session, created lazily. The per-entry
    /// mutex serializes concurrent checks of the same root; different
    /// roots analyze concurrently.
    sessions: Mutex<HashMap<String, Arc<Mutex<AnalysisSession>>>>,
    /// Live (queued or running) jobs by coalescing key.
    live: Mutex<HashMap<u64, Arc<Mutex<Option<Job>>>>>,
    watched: Mutex<HashMap<String, WatchedRoot>>,
}

struct QueueState {
    jobs: VecDeque<Arc<Mutex<Option<Job>>>>,
    /// Jobs admitted but not yet completed (queued + running). Drain
    /// completion means this is zero with an empty queue.
    in_flight: usize,
}

/// A running daemon: bound address plus the thread handles needed to wait
/// for (or force) termination.
pub struct DaemonHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

/// The resident analysis daemon. See the module docs.
pub struct Daemon;

impl Daemon {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop, workers, and (if configured) the watch
    /// poller. Returns immediately with a [`DaemonHandle`].
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener.
    pub fn start(opts: ServeOptions, addr: &str) -> std::io::Result<DaemonHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let workers = opts.workers.max(1);
        let watch_poll = opts.watch_poll_ms;
        let shared = Arc::new(Shared {
            opts,
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), in_flight: 0 }),
            work: Condvar::new(),
            drained: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            metrics: Metrics::new(),
            sessions: Mutex::new(HashMap::new()),
            live: Mutex::new(HashMap::new()),
            watched: Mutex::new(HashMap::new()),
        });

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || accept_loop(listener, shared))?,
            );
        }
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(shared))?,
            );
        }
        if let Some(poll_ms) = watch_poll {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-watch".into())
                    .spawn(move || watch_loop(shared, poll_ms))?,
            );
        }
        Ok(DaemonHandle { addr: local, shared, threads })
    }
}

impl DaemonHandle {
    /// The bound listener address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Initiates a graceful drain from outside the protocol (the CLI's
    /// SIGTERM path): admission stops, queued work finishes, threads exit.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// `true` once a shutdown (frame or signal) has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Waits for the daemon to finish draining and returns the final
    /// metrics snapshot. Call [`DaemonHandle::begin_shutdown`] first (or
    /// send a shutdown frame) or this blocks until a client does.
    pub fn wait(self) -> MetricsSnapshot {
        for t in self.threads {
            let _ = t.join();
        }
        self.shared.metrics.snapshot()
    }
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        let _g = self.queue.lock().unwrap();
        self.work.notify_all();
        self.drained.notify_all();
    }

    /// Computes the stable coalescing key for a check.
    fn coalesce_key(&self, kind: &CheckKind) -> u64 {
        match kind {
            CheckKind::Inline { root, files } => inline_key(root, files),
            CheckKind::Paths { paths } => paths_key(paths),
        }
    }

    /// Admits a check into the queue (or coalesces it onto an identical
    /// live job). `Err(status)` = shed (`Overloaded`/`ShuttingDown`).
    /// `with_waiter` = false enqueues an internal watch re-check with no
    /// response channel.
    fn submit(
        &self,
        kind: CheckKind,
        deadline_ms: Option<u64>,
        with_waiter: bool,
    ) -> Result<Option<std::sync::mpsc::Receiver<Response>>, Status> {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(Status::ShuttingDown);
        }
        let key = self.coalesce_key(&kind);
        let (tx, rx) = std::sync::mpsc::channel();

        // Coalesce onto a live identical job if one exists.
        if with_waiter {
            let live = self.live.lock().unwrap();
            if let Some(slot) = live.get(&key) {
                let mut job = slot.lock().unwrap();
                if let Some(job) = job.as_mut() {
                    job.waiters.push(tx);
                    self.metrics.add(Class::Sched, "serve.coalesced", 1);
                    return Ok(Some(rx));
                }
            }
        }

        let mut q = self.queue.lock().unwrap();
        if q.jobs.len() >= self.opts.queue_capacity {
            self.metrics.add(Class::Sched, "serve.shed_overloaded", 1);
            return Err(Status::Overloaded);
        }
        let now = Instant::now();
        let job = Job {
            key,
            kind,
            deadline: deadline_ms.map(|ms| now + Duration::from_millis(ms)),
            deadline_ms,
            enqueued: now,
            waiters: if with_waiter { vec![tx] } else { Vec::new() },
        };
        let slot = Arc::new(Mutex::new(Some(job)));
        q.jobs.push_back(Arc::clone(&slot));
        q.in_flight += 1;
        self.metrics.observe("serve.queue_depth", q.jobs.len() as u64);
        // Publish to the live map before releasing the queue lock, so a
        // worker can never pop-and-retire this job before it is visible
        // to coalescers (which would strand a closed slot in the map).
        self.live.lock().unwrap().insert(key, slot);
        drop(q);
        self.work.notify_one();
        Ok(with_waiter.then_some(rx))
    }

    /// The resident session for `root`, created (and store-attached) on
    /// first use.
    fn session_for(&self, root: &str) -> Arc<Mutex<AnalysisSession>> {
        let mut sessions = self.sessions.lock().unwrap();
        if let Some(s) = sessions.get(root) {
            return Arc::clone(s);
        }
        let config = self.opts.analysis.clone();
        let session = match &self.opts.store_dir {
            Some(dir) => {
                let sub = dir.join(format!("root-{:016x}", safeflow_util::hash::hash_str(root)));
                AnalysisSession::with_store(config.clone(), &sub)
                    .unwrap_or_else(|_| AnalysisSession::new(config))
            }
            None => AnalysisSession::new(config),
        };
        let slot = Arc::new(Mutex::new(session));
        sessions.insert(root.to_string(), Arc::clone(&slot));
        slot
    }

    /// Drops `root`'s resident session (after a contained panic): the next
    /// request rebuilds it, warm from the store's last clean state.
    fn evict_session(&self, root: &str) {
        self.sessions.lock().unwrap().remove(root);
    }
}

// ------------------------------------------------------------ accept side

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                // Connection threads are detached: they die with the
                // process, and every blocking read carries the io timeout.
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_connection(stream, shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Serves one client connection: a loop of request frames until EOF, an
/// I/O error, a malformed frame, or shutdown.
fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let timeout = Duration::from_millis(shared.opts.io_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);

    loop {
        let body = match proto::read_frame(&mut stream) {
            Ok(b) => b,
            Err(e) => {
                // EOF between frames is a normal close; anything else —
                // timeouts (slow-loris), torn frames, hostile lengths —
                // counts as a dropped client. Either way the daemon serves
                // the next connection unperturbed.
                if e.kind() != std::io::ErrorKind::UnexpectedEof {
                    shared.metrics.add(Class::Sched, "serve.conn_errors", 1);
                }
                return;
            }
        };
        let Some(req) = proto::decode_request(&body) else {
            shared.metrics.add(Class::Sched, "serve.bad_requests", 1);
            let resp = Response::message(Status::BadRequest, "malformed or mismatched frame");
            let _ = write_response(&mut stream, &shared, 0, &resp);
            return;
        };
        let done = matches!(req, Request::Shutdown);
        if !serve_request(&mut stream, &shared, req) || done {
            return;
        }
    }
}

/// Handles one decoded request; `false` = close the connection.
fn serve_request(stream: &mut TcpStream, shared: &Arc<Shared>, req: Request) -> bool {
    shared.metrics.add(Class::Sched, "serve.requests", 1);
    match req {
        Request::Ping => {
            let resp = Response::message(Status::Clean, "pong");
            write_response(stream, shared, 0, &resp).is_ok()
        }
        Request::Metrics => {
            let mut resp = Response::message(Status::Clean, "metrics");
            resp.report_json = shared.metrics.snapshot().to_json().render();
            write_response(stream, shared, 0, &resp).is_ok()
        }
        Request::Shutdown => {
            shared.begin_shutdown();
            // Wait for the queue to drain so the client knows every
            // admitted request was answered.
            let mut q = shared.queue.lock().unwrap();
            while q.in_flight > 0 {
                q = shared.drained.wait(q).unwrap();
            }
            drop(q);
            let resp = Response::message(Status::ShuttingDown, "drained");
            let _ = write_response(stream, shared, 0, &resp);
            false
        }
        Request::Check { root, files, deadline_ms } => {
            let kind = CheckKind::Inline { root, files };
            dispatch_check(stream, shared, kind, deadline_ms)
        }
        Request::CheckPaths { paths, deadline_ms } => {
            if paths.is_empty() {
                let resp = Response::message(Status::BadRequest, "no input paths");
                return write_response(stream, shared, 0, &resp).is_ok();
            }
            let kind = CheckKind::Paths { paths };
            dispatch_check(stream, shared, kind, deadline_ms)
        }
    }
}

fn dispatch_check(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    kind: CheckKind,
    deadline_ms: u64,
) -> bool {
    let key = shared.coalesce_key(&kind);
    let deadline = match deadline_ms {
        0 => shared.opts.default_deadline_ms,
        ms => Some(ms),
    };
    match shared.submit(kind, deadline, true) {
        Ok(Some(rx)) => match rx.recv() {
            Ok(resp) => write_response(stream, shared, key, &resp).is_ok(),
            // Worker side hung up without responding (cannot happen under
            // normal operation; be defensive anyway).
            Err(_) => false,
        },
        Ok(None) => unreachable!("submit(with_waiter = true) always returns a receiver"),
        Err(status) => {
            let msg = match status {
                Status::Overloaded => "admission queue full, request shed",
                Status::ShuttingDown => "daemon is draining",
                _ => "rejected",
            };
            let resp = Response::message(status, msg);
            write_response(stream, shared, key, &resp).is_ok()
        }
    }
}

/// Writes `resp` as one frame, honoring an armed [`FaultSite::ServeFrame`]
/// injection by truncating the frame instead (the torn-wire drill).
fn write_response(
    stream: &mut TcpStream,
    shared: &Shared,
    key: u64,
    resp: &Response,
) -> std::io::Result<()> {
    // An un-encodable response (a report too large for the wire's length
    // fields) degrades to a short BadRequest message rather than a frame
    // with silently wrapped lengths.
    let body = proto::encode_response(resp).unwrap_or_else(|e| {
        proto::encode_response(&Response::message(
            Status::BadRequest,
            format!("unsendable response: {e}"),
        ))
        .expect("short message response always encodes")
    });
    let fault = shared
        .opts
        .fault_plan
        .as_ref()
        .and_then(|p| p.fault_at(FaultSite::ServeFrame, key))
        .is_some();
    if fault {
        shared.metrics.add(Class::Sched, "serve.frame_faults", 1);
        proto::write_truncated_frame(stream, &body)?;
        // A torn frame is unrecoverable for this connection; sever it so
        // the client sees the truncation immediately.
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "injected torn frame"));
    }
    proto::write_frame(stream, &body)
}

// ------------------------------------------------------------ worker side

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let slot = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(slot) = q.jobs.pop_front() {
                    break slot;
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.work.wait(q).unwrap();
            }
        };
        // Take the job out of its slot: from here on, late coalescers see
        // a closed slot and enqueue fresh.
        let job = slot.lock().unwrap().take();
        let Some(job) = job else {
            finish_one(&shared);
            continue;
        };
        let response = execute_job(&shared, &job);
        shared.live.lock().unwrap().remove(&job.key);
        let queue_ns = job.enqueued.elapsed().as_nanos() as u64;
        shared.metrics.observe("serve.wait_ns", queue_ns);
        for (i, tx) in job.waiters.iter().enumerate() {
            let mut resp = response.clone();
            resp.queue_ns = queue_ns;
            if i > 0 && resp.run != RunKind::None {
                resp.run = RunKind::Coalesced;
            }
            let _ = tx.send(resp);
        }
        finish_one(&shared);
    }
}

/// Marks one admitted job complete, waking drain waiters at zero.
fn finish_one(shared: &Shared) {
    let mut q = shared.queue.lock().unwrap();
    q.in_flight -= 1;
    if q.in_flight == 0 {
        shared.drained.notify_all();
    }
}

fn execute_job(shared: &Arc<Shared>, job: &Job) -> Response {
    // 1. Queue-expiry: a request whose deadline passed while waiting is
    // answered Timeout without burning analysis time on it.
    let now = Instant::now();
    let mut remaining_ms = job.deadline_ms;
    if let Some(deadline) = job.deadline {
        if now >= deadline {
            shared.metrics.add(Class::Sched, "serve.timeouts", 1);
            return Response {
                status: Status::Timeout,
                rendered: "deadline expired while queued".into(),
                queue_ns: job.enqueued.elapsed().as_nanos() as u64,
                ..Response::default()
            };
        }
        remaining_ms = Some(((deadline - now).as_millis() as u64).max(1));
    }

    // 2. Injected mid-request faults (deterministic, keyed by the stable
    // request hash): a panic exercises containment below; budget
    // exhaustion forces the remaining deadline to the floor so the run
    // degrades through the ordinary budget machinery.
    if let Some(plan) = &shared.opts.fault_plan {
        match plan.fault_at(FaultSite::ServeRequest, job.key) {
            Some(FaultKind::BudgetExhaustion) => remaining_ms = Some(1),
            Some(FaultKind::Panic) => {
                // Raise inside the contained section below.
            }
            None => {}
        }
    }

    let root = match &job.kind {
        CheckKind::Inline { root, .. } => root.clone(),
        CheckKind::Paths { paths } => paths[0].clone(),
    };
    let session_slot = shared.session_for(&root);
    let t0 = Instant::now();
    let outcome = {
        // A previous panic poisons the mutex; the poison flag carries no
        // information we don't already handle (the session was evicted),
        // so clear it.
        let mut session = session_slot.lock().unwrap_or_else(|p| p.into_inner());
        catch_unwind(AssertUnwindSafe(|| {
            if let Some(plan) = &shared.opts.fault_plan {
                // Deterministic mid-request panic, inside containment.
                if matches!(plan.fault_at(FaultSite::ServeRequest, job.key), Some(FaultKind::Panic))
                {
                    panic!("injected fault: panic at ServeRequest (key {})", job.key);
                }
            }
            session.set_deadline_ms(remaining_ms);
            match &job.kind {
                CheckKind::Inline { root, files } => {
                    let mut fs = VirtualFs::new();
                    for (name, content) in files {
                        fs.add(name.as_str(), content.as_str());
                    }
                    session.check(root, &fs)
                }
                CheckKind::Paths { paths } => session.check_files(paths),
            }
        }))
    };
    let run_ns = t0.elapsed().as_nanos() as u64;
    shared.metrics.observe("serve.run_ns", run_ns);

    match outcome {
        Ok(Ok(outcome)) => {
            if outcome.exit_code == 4 {
                shared.metrics.add(Class::Sched, "serve.deadline_degraded", 1);
            }
            if let CheckKind::Paths { paths } = &job.kind {
                register_watch(shared, paths);
            }
            Response {
                status: Status::from_exit_code(outcome.exit_code),
                rendered: outcome.rendered,
                report_json: outcome.report_json.render(),
                run: match outcome.run {
                    SessionRun::Analyzed => RunKind::Analyzed,
                    SessionRun::Replayed => RunKind::Replayed,
                },
                queue_ns: 0, // filled by the caller per waiter
                run_ns,
            }
        }
        // Analysis errors (unreadable path, parse failure, store write)
        // map to exit code 2 — unusable input — like the one-shot CLI.
        Ok(Err(e)) => Response {
            status: Status::Errors,
            rendered: format!("{e}\n"),
            run: RunKind::Analyzed,
            run_ns,
            ..Response::default()
        },
        Err(payload) => {
            // Contained request panic: answer the exit-code contract's
            // "internal error" and discard the (possibly inconsistent)
            // session. The store still holds the last clean state, so the
            // next request warms back up from disk.
            shared.metrics.add(Class::Sched, "serve.panics_contained", 1);
            shared.evict_session(&root);
            Response {
                status: Status::DegradedFault,
                rendered: format!("internal error: {}\n", panic_message(&*payload)),
                run: RunKind::Analyzed,
                run_ns,
                ..Response::default()
            }
        }
    }
}

// ------------------------------------------------------------- watch side

/// Fingerprints `path` for change detection: (mtime, length).
fn fingerprint(path: &str) -> Option<(SystemTime, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

/// Registers (or refreshes) a successfully checked path set for watching.
fn register_watch(shared: &Shared, paths: &[String]) {
    if shared.opts.watch_poll_ms.is_none() {
        return;
    }
    let fingerprints = paths.iter().map(|p| fingerprint(p)).collect();
    shared
        .watched
        .lock()
        .unwrap()
        .insert(paths[0].clone(), WatchedRoot { paths: paths.to_vec(), fingerprints });
}

fn watch_loop(shared: Arc<Shared>, poll_ms: u64) {
    let interval = Duration::from_millis(poll_ms.max(10));
    loop {
        std::thread::sleep(interval);
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        // Collect dirty roots under the lock, re-check outside it.
        let mut dirty: Vec<Vec<String>> = Vec::new();
        {
            let mut watched = shared.watched.lock().unwrap();
            for root in watched.values_mut() {
                let fresh: Vec<Option<(SystemTime, u64)>> =
                    root.paths.iter().map(|p| fingerprint(p)).collect();
                if fresh != root.fingerprints {
                    root.fingerprints = fresh;
                    dirty.push(root.paths.clone());
                }
            }
        }
        for paths in dirty {
            // Dirty roots go through the same bounded admission queue as
            // client traffic; under overload the re-check is skipped this
            // round and the next poll retries.
            shared.metrics.add(Class::Sched, "serve.watch_rechecks", 1);
            if shared.submit(CheckKind::Paths { paths }, None, false).is_err() {
                shared.metrics.add(Class::Sched, "serve.watch_shed", 1);
            }
        }
    }
}

/// Reads everything the peer sends until EOF, for tests that need to see
/// a torn frame from the client side.
#[doc(hidden)]
pub fn drain_stream(stream: &mut TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf);
    buf
}
