//! `safeflow-serve` — the resident analysis daemon behind `safeflow serve`.
//!
//! A long-lived process keeps [`safeflow::AnalysisSession`]s warm per
//! analyzed root and answers check requests over a loopback socket,
//! turning the CLI's cold-start cost into a per-request cache lookup.
//! The crate is std-only like the rest of the workspace.
//!
//! Three layers:
//!
//! * [`proto`] — the versioned, length-prefixed frame protocol. Response
//!   statuses 0–4 mirror the CLI exit-code contract exactly; 5–8 are
//!   service-level outcomes (timeout, overload, bad request, draining).
//! * [`daemon`] — the server: bounded admission queue, per-request
//!   deadlines and panic containment, request coalescing, graceful drain,
//!   optional mtime watching, and deterministic protocol-level fault
//!   injection for the recovery drills.
//! * [`client`] — a minimal blocking client used by the CLI and tests.
//!
//! The robustness contract in one line: under overload the daemon sheds
//! (`Overloaded`), past a deadline it degrades (`Timeout` or the engine's
//! exit-4 budget path), across a panic it answers status 3 and rebuilds
//! the session from the crash-safe store — it never hangs, never serves
//! stale results, and never leaves torn state behind.

pub mod client;
pub mod daemon;
pub mod proto;

pub use client::Client;
pub use daemon::{inline_key, paths_key, Daemon, DaemonHandle, ServeOptions};
pub use proto::{Request, Response, RunKind, Status, PROTO_VERSION};
