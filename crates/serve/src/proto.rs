//! The `safeflow serve` wire protocol: versioned, length-prefixed frames.
//!
//! Every message on the socket is one **frame**: a little-endian `u32`
//! body length followed by that many bytes. Frame bodies start with the
//! protocol version ([`PROTO_VERSION`]); a version the server does not
//! speak yields a [`Status::BadRequest`] response rather than a guess.
//! Bodies are encoded with the same panic-free helpers as the persistent
//! summary store ([`safeflow_util::wire`]), so a truncated, oversized, or
//! garbage frame decodes to `None` — never a server panic.
//!
//! ## Status codes
//!
//! [`Status`] values `0..=4` are exactly the CLI's exit-code contract —
//! a daemon response and a one-shot `safeflow check` of the same inputs
//! agree on both the code and the report bytes. Values `5..` are
//! serve-layer conditions that a one-shot run cannot produce:
//!
//! | status | meaning                                              |
//! |--------|------------------------------------------------------|
//! | 0–2    | clean / warnings-only / errors (or unusable input)   |
//! | 3      | internal error (contained panic degraded the run)    |
//! | 4      | a resource budget (incl. the deadline) was exhausted |
//! | 5      | deadline expired before the request ran (`Timeout`)  |
//! | 6      | admission queue full, request shed (`Overloaded`)    |
//! | 7      | malformed or version-mismatched frame (`BadRequest`) |
//! | 8      | daemon is draining (`ShuttingDown`)                  |

use safeflow_util::wire::{put_str, put_u32, put_u64, put_u8, ByteReader};
use std::io::{Read, Write};

/// Protocol version spoken by this build. Bumped on any frame-layout
/// change; mismatches are answered with [`Status::BadRequest`].
pub const PROTO_VERSION: u32 = 1;

/// Upper bound on a frame body. A length prefix beyond this is treated as
/// a protocol violation and the connection is dropped — load-shed, never
/// OOM on a hostile length field.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Upper bound on the file/path count of one check request. Far above any
/// real program (the monorepo stress corpus is 146 translation units) but
/// low enough that a hostile count can neither balloon an allocation nor
/// wrap the wire's `u32` length fields.
pub const MAX_FILES: usize = 4096;

/// A message that cannot be encoded without corrupting the wire: a length
/// exceeds the format's `u32` field (or the [`MAX_FILES`] cap), so the
/// bare `as u32` cast would silently wrap into a well-formed frame with
/// truncated contents. Callers refuse to send — the server side answers
/// [`Status::BadRequest`] — instead of emitting the malformed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A string field longer than `u32::MAX` bytes.
    TooLong {
        /// Which field overflowed.
        what: &'static str,
        /// Its length in bytes.
        len: usize,
    },
    /// A sequence with more entries than [`MAX_FILES`].
    TooMany {
        /// Which sequence overflowed.
        what: &'static str,
        /// Its entry count.
        count: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::TooLong { what, len } => {
                write!(f, "{what} is {len} bytes, which exceeds the u32 wire limit")
            }
            EncodeError::TooMany { what, count } => {
                write!(f, "{what} has {count} entries, which exceeds the {MAX_FILES} cap")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// [`put_str`] with the length checked instead of silently wrapped.
fn put_checked_str(out: &mut Vec<u8>, what: &'static str, s: &str) -> Result<(), EncodeError> {
    if s.len() > u32::MAX as usize {
        return Err(EncodeError::TooLong { what, len: s.len() });
    }
    put_str(out, s);
    Ok(())
}

/// A sequence length checked against [`MAX_FILES`] before the cast.
fn put_checked_len(out: &mut Vec<u8>, what: &'static str, n: usize) -> Result<(), EncodeError> {
    if n > MAX_FILES {
        return Err(EncodeError::TooMany { what, count: n });
    }
    put_u32(out, n as u32);
    Ok(())
}

/// Response status (see the module docs for the full table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum Status {
    /// Exit code 0: no findings.
    Clean = 0,
    /// Exit code 1: warnings only.
    Warnings = 1,
    /// Exit code 2: errors / violations, or unusable input.
    Errors = 2,
    /// Exit code 3: a contained panic degraded part of the run.
    DegradedFault = 3,
    /// Exit code 4: a resource budget (incl. the deadline) was exhausted
    /// mid-run; the report is conservative for the affected scopes.
    DegradedBudget = 4,
    /// The request's deadline expired before it reached a worker; the
    /// analysis never ran.
    Timeout = 5,
    /// The admission queue was full; the request was shed unexecuted.
    Overloaded = 6,
    /// The frame was malformed, oversized, or version-mismatched.
    #[default]
    BadRequest = 7,
    /// The daemon is draining and accepts no new work.
    ShuttingDown = 8,
}

impl Status {
    /// The status for a completed analysis with CLI exit code `code`.
    pub fn from_exit_code(code: u8) -> Status {
        match code {
            0 => Status::Clean,
            1 => Status::Warnings,
            2 => Status::Errors,
            3 => Status::DegradedFault,
            _ => Status::DegradedBudget,
        }
    }

    fn from_u8(v: u8) -> Option<Status> {
        Some(match v {
            0 => Status::Clean,
            1 => Status::Warnings,
            2 => Status::Errors,
            3 => Status::DegradedFault,
            4 => Status::DegradedBudget,
            5 => Status::Timeout,
            6 => Status::Overloaded,
            7 => Status::BadRequest,
            8 => Status::ShuttingDown,
            _ => return None,
        })
    }

    /// `true` for statuses that carry a completed analysis report
    /// (the `0..=4` exit-code band).
    pub fn is_report(self) -> bool {
        (self as u8) <= 4
    }
}

/// How the daemon produced a check response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum RunKind {
    /// Not a check response (ping, metrics, shed, ...).
    #[default]
    None = 0,
    /// The full pipeline ran (possibly with summary-cache hits).
    Analyzed = 1,
    /// The store's whole-program manifest matched; the report was
    /// replayed without analyzing anything.
    Replayed = 2,
    /// This request was coalesced onto an identical in-flight request
    /// and shares its result.
    Coalesced = 3,
}

impl RunKind {
    fn from_u8(v: u8) -> Option<RunKind> {
        Some(match v {
            0 => RunKind::None,
            1 => RunKind::Analyzed,
            2 => RunKind::Replayed,
            3 => RunKind::Coalesced,
            _ => return None,
        })
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Analyze an inline file set (name → content pairs; `root` names the
    /// root translation unit). Hermetic: the daemon touches no disk paths.
    Check {
        /// Root translation unit (must name one of `files`).
        root: String,
        /// The complete input file set, inline.
        files: Vec<(String, String)>,
        /// Per-request deadline in milliseconds; `0` = the server default.
        deadline_ms: u64,
    },
    /// Analyze on-disk paths (first path is the root). The daemon reads
    /// the files itself; successful roots are registered for `--watch`.
    CheckPaths {
        /// Input file paths; the first is the root translation unit.
        paths: Vec<String>,
        /// Per-request deadline in milliseconds; `0` = the server default.
        deadline_ms: u64,
    },
    /// Liveness probe; answered immediately from the accept thread.
    Ping,
    /// A snapshot of the daemon's metrics registry, as a JSON document.
    Metrics,
    /// Begin a graceful drain: stop admitting, finish the queue, respond
    /// once the last queued request completed, then exit.
    Shutdown,
}

/// A daemon response.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Response {
    /// Outcome status (see the module table). Defaults to `BadRequest`
    /// only via `Default`, which is never sent.
    pub status: Status,
    /// For report statuses: the rendered report, byte-identical to the
    /// one-shot CLI's stdout for the same inputs. Otherwise a short
    /// human-readable message.
    pub rendered: String,
    /// For report statuses: the `safeflow-report-v1` JSON document (or the
    /// metrics document for [`Request::Metrics`]); empty otherwise.
    pub report_json: String,
    /// How the result was produced.
    pub run: RunKind,
    /// Nanoseconds the request waited in the admission queue.
    pub queue_ns: u64,
    /// Nanoseconds the analysis ran (0 for replays shed, ping, ...).
    pub run_ns: u64,
}

impl Response {
    /// A non-report response: a status plus a short message.
    pub fn message(status: Status, msg: impl Into<String>) -> Response {
        Response { status, rendered: msg.into(), ..Response::default() }
    }
}

// ------------------------------------------------------------- encoding

const KIND_CHECK: u8 = 0;
const KIND_CHECK_PATHS: u8 = 1;
const KIND_PING: u8 = 2;
const KIND_METRICS: u8 = 3;
const KIND_SHUTDOWN: u8 = 4;

/// Encodes `req` as a frame body (no length prefix).
///
/// # Errors
///
/// [`EncodeError`] when a length exceeds the wire's `u32` fields or the
/// file count exceeds [`MAX_FILES`] — the cases a bare cast used to wrap
/// silently into a truncated frame.
pub fn encode_request(req: &Request) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::new();
    put_u32(&mut out, PROTO_VERSION);
    match req {
        Request::Check { root, files, deadline_ms } => {
            put_u8(&mut out, KIND_CHECK);
            put_checked_str(&mut out, "root name", root)?;
            put_checked_len(&mut out, "file set", files.len())?;
            for (name, content) in files {
                put_checked_str(&mut out, "file name", name)?;
                put_checked_str(&mut out, "file content", content)?;
            }
            put_u64(&mut out, *deadline_ms);
        }
        Request::CheckPaths { paths, deadline_ms } => {
            put_u8(&mut out, KIND_CHECK_PATHS);
            put_checked_len(&mut out, "path set", paths.len())?;
            for p in paths {
                put_checked_str(&mut out, "path", p)?;
            }
            put_u64(&mut out, *deadline_ms);
        }
        Request::Ping => put_u8(&mut out, KIND_PING),
        Request::Metrics => put_u8(&mut out, KIND_METRICS),
        Request::Shutdown => put_u8(&mut out, KIND_SHUTDOWN),
    }
    Ok(out)
}

/// Decodes a request frame body. `None` = malformed or wrong version
/// (the caller answers [`Status::BadRequest`]).
pub fn decode_request(body: &[u8]) -> Option<Request> {
    let mut r = ByteReader::new(body);
    if r.u32()? != PROTO_VERSION {
        return None;
    }
    let req = match r.u8()? {
        KIND_CHECK => {
            let root = r.str()?;
            let n = r.seq_len()?;
            if n > MAX_FILES {
                return None;
            }
            let mut files = Vec::with_capacity(n);
            for _ in 0..n {
                files.push((r.str()?, r.str()?));
            }
            Request::Check { root, files, deadline_ms: r.u64()? }
        }
        KIND_CHECK_PATHS => {
            let n = r.seq_len()?;
            if n > MAX_FILES {
                return None;
            }
            let mut paths = Vec::with_capacity(n);
            for _ in 0..n {
                paths.push(r.str()?);
            }
            Request::CheckPaths { paths, deadline_ms: r.u64()? }
        }
        KIND_PING => Request::Ping,
        KIND_METRICS => Request::Metrics,
        KIND_SHUTDOWN => Request::Shutdown,
        _ => return None,
    };
    if !r.done() {
        return None; // trailing garbage
    }
    Some(req)
}

/// Encodes `resp` as a frame body (no length prefix).
///
/// # Errors
///
/// [`EncodeError::TooLong`] when a rendered report exceeds the wire's
/// `u32` length fields (the server substitutes a short error response
/// rather than sending a silently truncated one).
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::new();
    put_u32(&mut out, PROTO_VERSION);
    put_u8(&mut out, resp.status as u8);
    put_checked_str(&mut out, "rendered report", &resp.rendered)?;
    put_checked_str(&mut out, "report JSON", &resp.report_json)?;
    put_u8(&mut out, resp.run as u8);
    put_u64(&mut out, resp.queue_ns);
    put_u64(&mut out, resp.run_ns);
    Ok(out)
}

/// Decodes a response frame body. `None` = malformed or wrong version.
pub fn decode_response(body: &[u8]) -> Option<Response> {
    let mut r = ByteReader::new(body);
    if r.u32()? != PROTO_VERSION {
        return None;
    }
    let status = Status::from_u8(r.u8()?)?;
    let rendered = r.str()?;
    let report_json = r.str()?;
    let run = RunKind::from_u8(r.u8()?)?;
    let queue_ns = r.u64()?;
    let run_ns = r.u64()?;
    if !r.done() {
        return None;
    }
    Some(Response { status, rendered, report_json, run, queue_ns, run_ns })
}

// ---------------------------------------------------------------- frames

/// Reads one length-prefixed frame body from `stream`.
///
/// # Errors
///
/// I/O errors (including read timeouts — the slow-loris guard) pass
/// through; a length prefix over [`MAX_FRAME_LEN`] or EOF mid-body is
/// `InvalidData` (a torn or hostile frame).
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "truncated frame body")
        } else {
            e
        }
    })?;
    Ok(body)
}

/// Writes `body` as one length-prefixed frame.
///
/// # Errors
///
/// `InvalidData` when `body` exceeds [`MAX_FRAME_LEN`] — the cast to the
/// `u32` prefix would otherwise wrap and emit a torn frame the peer
/// misparses at some arbitrary boundary.
pub fn write_frame(stream: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    if body.len() > MAX_FRAME_LEN as usize {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame body of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap", body.len()),
        ));
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    stream.write_all(&frame)?;
    stream.flush()
}

/// Writes a deliberately **truncated** frame: the length prefix claims the
/// full body but only the first half is sent. This is the
/// [`safeflow_util::fault::FaultSite::ServeFrame`] injection — the
/// client-visible version of a torn wire — used to prove clients detect
/// torn responses and the daemon survives writing them.
pub fn write_truncated_frame(stream: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    if body.len() > MAX_FRAME_LEN as usize {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame body of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap", body.len()),
        ));
    }
    let mut frame = Vec::with_capacity(4 + body.len() / 2);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body[..body.len() / 2]);
    stream.write_all(&frame)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let body = encode_request(&req).unwrap();
        assert_eq!(decode_request(&body).as_ref(), Some(&req));
        // Every truncation must fail cleanly, never panic.
        for cut in 0..body.len() {
            let _ = decode_request(&body[..cut]);
        }
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Check {
            root: "core.c".into(),
            files: vec![("core.c".into(), "int main() {}".into()), ("h.h".into(), "".into())],
            deadline_ms: 250,
        });
        round_trip_request(Request::CheckPaths {
            paths: vec!["/tmp/a.c".into(), "/tmp/b.c".into()],
            deadline_ms: 0,
        });
    }

    #[test]
    fn responses_round_trip() {
        let resp = Response {
            status: Status::Warnings,
            rendered: "SafeFlow report\n".into(),
            report_json: "{}".into(),
            run: RunKind::Replayed,
            queue_ns: 12,
            run_ns: 34,
        };
        let body = encode_response(&resp).unwrap();
        assert_eq!(decode_response(&body).as_ref(), Some(&resp));
        for cut in 0..body.len() {
            let _ = decode_response(&body[..cut]);
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut body = encode_request(&Request::Ping).unwrap();
        body[0] ^= 1;
        assert_eq!(decode_request(&body), None);
        let mut body = encode_response(&Response::message(Status::Clean, "ok")).unwrap();
        body[0] ^= 1;
        assert_eq!(decode_response(&body), None);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut body = encode_request(&Request::Ping).unwrap();
        body.push(0);
        assert_eq!(decode_request(&body), None);
    }

    /// Regression: `files.len() as u32` used to wrap silently. An
    /// over-the-cap file set must be an [`EncodeError::TooMany`] on the
    /// encode side and a clean `None` (→ `BadRequest`) on the decode side.
    #[test]
    fn oversized_file_set_is_rejected_both_ways() {
        let files: Vec<(String, String)> =
            (0..MAX_FILES + 1).map(|i| (format!("f{i}.c"), String::new())).collect();
        let req = Request::Check { root: "f0.c".into(), files, deadline_ms: 0 };
        assert_eq!(
            encode_request(&req),
            Err(EncodeError::TooMany { what: "file set", count: MAX_FILES + 1 })
        );
        let paths: Vec<String> = (0..MAX_FILES + 1).map(|i| format!("/p/{i}.c")).collect();
        let req = Request::CheckPaths { paths, deadline_ms: 0 };
        let err = encode_request(&req).unwrap_err();
        assert!(matches!(err, EncodeError::TooMany { what: "path set", .. }), "{err}");

        // A hand-built frame claiming an over-the-cap count (with a body
        // large enough that `seq_len`'s plausibility bound passes) must
        // decode to None, never allocate-and-truncate.
        let mut body = Vec::new();
        put_u32(&mut body, PROTO_VERSION);
        put_u8(&mut body, 1); // KIND_CHECK_PATHS
        put_u32(&mut body, (MAX_FILES + 1) as u32);
        body.resize(body.len() + MAX_FILES + 2, 0);
        assert_eq!(decode_request(&body), None);
    }

    #[test]
    fn encode_error_renders_both_variants() {
        let long = EncodeError::TooLong { what: "file content", len: usize::MAX };
        assert!(long.to_string().contains("file content"));
        assert!(long.to_string().contains("u32"));
        let many = EncodeError::TooMany { what: "file set", count: 5000 };
        assert!(many.to_string().contains("5000"));
        assert!(many.to_string().contains(&MAX_FILES.to_string()));
    }

    /// Regression: `body.len() as u32` in the frame writers used to wrap
    /// for >4GiB bodies and emit a torn frame. Anything over the (much
    /// smaller) frame cap is now refused before a byte hits the wire.
    #[test]
    fn over_cap_frame_body_is_refused_by_writers() {
        let body = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &body).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(sink.is_empty(), "no partial frame may be written");
        let err = write_truncated_frame(&mut sink, &body).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(sink.is_empty());
    }

    #[test]
    fn oversized_frame_length_is_invalid_data() {
        let mut buf: &[u8] = &[0xff, 0xff, 0xff, 0xff];
        let err = read_frame(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_body_is_invalid_data() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        let mut cut: &[u8] = &wire[..wire.len() - 2];
        let err = read_frame(&mut cut).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor: &[u8] = &wire;
        assert_eq!(read_frame(&mut cursor).unwrap(), b"abc");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
    }

    #[test]
    fn statuses_cover_the_exit_code_contract() {
        for code in 0u8..=4 {
            let s = Status::from_exit_code(code);
            assert_eq!(s as u8, code, "status {code} must mirror the exit code");
            assert!(s.is_report());
        }
        assert!(!Status::Timeout.is_report());
        assert!(!Status::Overloaded.is_report());
    }
}
