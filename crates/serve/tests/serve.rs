//! Integration tests for the resident daemon: the robustness contract
//! end to end over real sockets.
//!
//! Everything here runs in-process (daemon threads + client sockets over
//! loopback); the process-level drills (SIGKILL, racing CLI) live in the
//! `serve-smoke` harness.

use safeflow::{AnalysisConfig, AnalysisSession, Engine};
use safeflow_corpus::figure2_example;
use safeflow_corpus::synthetic::{generate_core, SyntheticParams};
use safeflow_serve::proto::{self, Request};
use safeflow_serve::{inline_key, Client, Daemon, DaemonHandle, RunKind, ServeOptions, Status};
use safeflow_syntax::VirtualFs;
use safeflow_util::fault::{FaultPlan, FaultSite};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn default_opts() -> ServeOptions {
    ServeOptions::default()
}

fn start(opts: ServeOptions) -> DaemonHandle {
    Daemon::start(opts, "127.0.0.1:0").expect("bind loopback")
}

fn client(handle: &DaemonHandle) -> Client {
    Client::connect(&handle.addr().to_string(), 10_000).expect("connect")
}

fn fig2_files() -> Vec<(String, String)> {
    vec![("figure2.c".to_string(), figure2_example().to_string())]
}

/// A program heavy enough to occupy a worker for a visible stretch.
fn slow_files(tag: u32) -> Vec<(String, String)> {
    let core = generate_core(SyntheticParams { regions: 24, monitors: 24, depth: 12, branches: 3 });
    vec![(format!("slow{tag}.c"), format!("// variant {tag}\n{core}"))]
}

fn shutdown(handle: DaemonHandle) -> safeflow::MetricsSnapshot {
    handle.begin_shutdown();
    handle.wait()
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("safeflow-serve-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn check_matches_one_shot_session_byte_for_byte() {
    let handle = start(default_opts());
    let files = fig2_files();
    let resp = client(&handle).check("figure2.c", &files, 0).unwrap();

    let config = AnalysisConfig::with_engine(Engine::Summary).normalized();
    let mut session = AnalysisSession::new(config);
    let mut fs = VirtualFs::new();
    for (n, c) in &files {
        fs.add(n.as_str(), c.as_str());
    }
    let outcome = session.check("figure2.c", &fs).unwrap();

    assert_eq!(resp.status, Status::from_exit_code(outcome.exit_code));
    assert_eq!(resp.rendered, outcome.rendered, "daemon report must be byte-identical");
    assert_eq!(resp.run, RunKind::Analyzed);
    shutdown(handle);
}

#[test]
fn second_identical_check_replays_warm() {
    let dir = tmp_dir("warm");
    let opts = ServeOptions { store_dir: Some(dir.clone()), ..default_opts() };
    let handle = start(opts);
    let files = fig2_files();
    let mut c = client(&handle);
    let first = c.check("figure2.c", &files, 0).unwrap();
    let second = c.check("figure2.c", &files, 0).unwrap();
    assert_eq!(first.run, RunKind::Analyzed);
    assert_eq!(second.run, RunKind::Replayed, "warm path must replay from the store");
    // Byte-identical findings; the report JSON differs only in its
    // metrics/timings sections, which the observability contract strips.
    assert_eq!(first.rendered, second.rendered);
    shutdown(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_restart_after_graceful_shutdown() {
    let dir = tmp_dir("restart");
    let files = fig2_files();

    let a = start(ServeOptions { store_dir: Some(dir.clone()), ..default_opts() });
    let cold = client(&a).check("figure2.c", &files, 0).unwrap();
    assert_eq!(cold.run, RunKind::Analyzed);
    shutdown(a);

    let b = start(ServeOptions { store_dir: Some(dir.clone()), ..default_opts() });
    let warm = client(&b).check("figure2.c", &files, 0).unwrap();
    assert_eq!(warm.run, RunKind::Replayed, "a new daemon must warm up from the store");
    assert_eq!(warm.rendered, cold.rendered);
    shutdown(b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tight_deadline_degrades_instead_of_hanging() {
    let handle = start(default_opts());
    let files = slow_files(1);
    let mut c = client(&handle);
    let resp = c.check("slow1.c", &files, 1).unwrap();
    assert!(
        matches!(resp.status, Status::Timeout | Status::DegradedBudget),
        "a 1ms deadline on a heavy program must degrade, got {:?}",
        resp.status
    );
    // The daemon is unharmed: the next (undeadlined) request succeeds.
    let ok = c.check("figure2.c", &fig2_files(), 0).unwrap();
    assert!(ok.status.is_report());
    shutdown(handle);
}

#[test]
fn zero_capacity_queue_sheds_with_overloaded() {
    let opts = ServeOptions { queue_capacity: 0, ..default_opts() };
    let handle = start(opts);
    let mut c = client(&handle);
    let resp = c.check("figure2.c", &fig2_files(), 0).unwrap();
    assert_eq!(resp.status, Status::Overloaded);
    // Control-plane requests bypass the queue and still work.
    assert_eq!(c.ping().unwrap().status, Status::Clean);
    let snapshot = shutdown(handle);
    assert!(snapshot.sched.get("serve.shed_overloaded").copied().unwrap_or(0) >= 1);
}

#[test]
fn identical_queued_requests_coalesce() {
    // One worker; a slow job occupies it while two identical requests
    // queue behind it — the second must attach to the first. The slow job
    // is grown until the window is wide enough (keeps the test honest on
    // very fast machines without sleeping for seconds on slow ones).
    for attempt in 0..5u32 {
        let opts = ServeOptions { workers: 1, ..default_opts() };
        let handle = start(opts);
        let slow = slow_files(100 + attempt);
        let dup = fig2_files();

        let addr = handle.addr().to_string();
        let blocker = {
            let addr = addr.clone();
            let slow = slow.clone();
            std::thread::spawn(move || {
                let name = slow[0].0.clone();
                Client::connect(&addr, 60_000).unwrap().check(&name, &slow, 0).unwrap()
            })
        };
        // Give the blocker time to enter the worker.
        std::thread::sleep(Duration::from_millis(100));
        let followers: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                let dup = dup.clone();
                std::thread::spawn(move || {
                    Client::connect(&addr, 60_000).unwrap().check("figure2.c", &dup, 0).unwrap()
                })
            })
            .collect();
        let blocked = blocker.join().unwrap();
        assert!(blocked.status.is_report());
        let resps: Vec<_> = followers.into_iter().map(|f| f.join().unwrap()).collect();
        assert_eq!(resps[0].rendered, resps[1].rendered);
        let coalesced = resps.iter().filter(|r| r.run == RunKind::Coalesced).count();
        shutdown(handle);
        if coalesced == 1 {
            return; // exactly one leader, one follower
        }
    }
    panic!("identical queued requests never coalesced in 5 attempts");
}

#[test]
fn injected_panic_is_contained_and_daemon_recovers() {
    let files = fig2_files();
    let key = inline_key("figure2.c", &files);
    let plan = FaultPlan::panic_at(FaultSite::ServeRequest, key);
    let opts = ServeOptions { fault_plan: Some(plan), ..default_opts() };
    let handle = start(opts);
    let mut c = client(&handle);

    let poisoned = c.check("figure2.c", &files, 0).unwrap();
    assert_eq!(poisoned.status, Status::DegradedFault);
    assert!(poisoned.rendered.contains("internal error"), "got: {}", poisoned.rendered);

    // A different request (different key) on the same root runs clean in
    // a rebuilt session.
    let other = vec![("figure2.c".to_string(), format!("// retry\n{}", figure2_example()))];
    let ok = c.check("figure2.c", &other, 0).unwrap();
    assert!(ok.status.is_report(), "got {:?}", ok.status);
    assert_ne!(ok.status, Status::DegradedFault);

    let snapshot = shutdown(handle);
    assert_eq!(snapshot.sched.get("serve.panics_contained").copied(), Some(1));
}

#[test]
fn injected_budget_fault_forces_degraded_path() {
    let files = slow_files(2);
    let key = inline_key("slow2.c", &files);
    let plan = FaultPlan::exhaust_at(FaultSite::ServeRequest, key);
    let opts = ServeOptions { fault_plan: Some(plan), ..default_opts() };
    let handle = start(opts);
    let resp = client(&handle).check("slow2.c", &files, 0).unwrap();
    assert_eq!(resp.status, Status::DegradedBudget, "rendered: {}", resp.rendered);
    shutdown(handle);
}

#[test]
fn truncated_response_frame_fails_one_client_not_the_daemon() {
    let files = fig2_files();
    let key = inline_key("figure2.c", &files);
    let plan = FaultPlan::new().with_fault(
        FaultSite::ServeFrame,
        Some(key),
        safeflow_util::fault::FaultKind::Panic,
    );
    let opts = ServeOptions { fault_plan: Some(plan), ..default_opts() };
    let handle = start(opts);

    let err = client(&handle).check("figure2.c", &files, 0).unwrap_err();
    assert!(
        matches!(err.kind(), std::io::ErrorKind::UnexpectedEof | std::io::ErrorKind::InvalidData),
        "torn frame must surface as a hard transport error, got: {err}"
    );

    // Other connections (and other requests) are unaffected.
    let mut c = client(&handle);
    assert_eq!(c.ping().unwrap().status, Status::Clean);
    let snapshot = shutdown(handle);
    assert_eq!(snapshot.sched.get("serve.frame_faults").copied(), Some(1));
}

#[test]
fn slow_loris_client_is_disconnected() {
    let opts = ServeOptions { io_timeout_ms: 100, ..default_opts() };
    let handle = start(opts);

    let mut loris = TcpStream::connect(handle.addr()).unwrap();
    // A frame header promising 1000 bytes, then silence.
    loris.write_all(&1000u32.to_le_bytes()).unwrap();
    loris.write_all(&[1, 2, 3]).unwrap();
    std::thread::sleep(Duration::from_millis(400));

    // The daemon must have hung up on the loris...
    loris.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
    let mut buf = [0u8; 16];
    match loris.read(&mut buf) {
        Ok(0) => {} // clean close
        Ok(n) => panic!("expected disconnect, read {n} bytes"),
        Err(_) => {} // reset also fine
    }
    // ...while honest clients are served.
    assert_eq!(client(&handle).ping().unwrap().status, Status::Clean);
    shutdown(handle);
}

#[test]
fn malformed_and_mismatched_frames_answer_bad_request() {
    let handle = start(default_opts());

    // Garbage body: decodes to no request.
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    proto::write_frame(&mut s, &[0xFF, 0xEE, 0xDD]).unwrap();
    let body = proto::read_frame(&mut s).unwrap();
    let resp = proto::decode_response(&body).unwrap();
    assert_eq!(resp.status, Status::BadRequest);

    // Wrong protocol version: same answer.
    let mut good = proto::encode_request(&Request::Ping).unwrap();
    good[0] = (proto::PROTO_VERSION + 1) as u8;
    let mut s2 = TcpStream::connect(handle.addr()).unwrap();
    proto::write_frame(&mut s2, &good).unwrap();
    let body2 = proto::read_frame(&mut s2).unwrap();
    assert_eq!(proto::decode_response(&body2).unwrap().status, Status::BadRequest);

    let snapshot = shutdown(handle);
    assert!(snapshot.sched.get("serve.bad_requests").copied().unwrap_or(0) >= 2);
}

#[test]
fn drain_refuses_new_work_but_answers_it_politely() {
    let handle = start(default_opts());
    let mut c = client(&handle);
    assert_eq!(c.ping().unwrap().status, Status::Clean);

    handle.begin_shutdown();
    // The open connection stays serviceable; new checks are refused with
    // a status, not a hang or a dropped socket.
    let resp = c.check("figure2.c", &fig2_files(), 0).unwrap();
    assert_eq!(resp.status, Status::ShuttingDown);
    handle.wait();
}

#[test]
fn shutdown_frame_drains_and_stops_the_daemon() {
    let dir = tmp_dir("shutdown-frame");
    let opts = ServeOptions { store_dir: Some(dir.clone()), ..default_opts() };
    let handle = start(opts);
    let mut c = client(&handle);
    assert!(c.check("figure2.c", &fig2_files(), 0).unwrap().status.is_report());

    let resp = c.shutdown().unwrap();
    assert_eq!(resp.status, Status::ShuttingDown);
    assert_eq!(resp.rendered, "drained");
    let snapshot = handle.wait();
    assert!(snapshot.sched.get("serve.requests").copied().unwrap_or(0) >= 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multi_client_stress_never_hangs_and_sheds_cleanly() {
    let dir = tmp_dir("stress");
    let opts = ServeOptions {
        workers: 4,
        queue_capacity: 8,
        store_dir: Some(dir.clone()),
        ..default_opts()
    };
    let handle = start(opts);
    let addr = handle.addr().to_string();

    let mut threads = Vec::new();
    for t in 0..8u32 {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            let mut statuses = Vec::new();
            for r in 0..6u32 {
                let mut c = Client::connect(&addr, 60_000).unwrap();
                let resp = match (t + r) % 4 {
                    // A rotating mix: shared fig2 (coalescable), per-thread
                    // variants, a tight deadline, and a ping.
                    0 => c.check("figure2.c", &fig2_files(), 0).unwrap(),
                    1 => {
                        let files = vec![(
                            "figure2.c".to_string(),
                            format!("// t{t}\n{}", figure2_example()),
                        )];
                        c.check("figure2.c", &files, 0).unwrap()
                    }
                    2 => c.check("figure2.c", &fig2_files(), 1).unwrap(),
                    _ => c.ping().unwrap(),
                };
                statuses.push(resp.status);
            }
            statuses
        }));
    }
    let mut all = Vec::new();
    for t in threads {
        all.extend(t.join().expect("no client may hang or die"));
    }
    // Every response is one of the contract's statuses; nothing leaks a
    // panic (DegradedFault) because no fault plan is armed.
    for s in &all {
        assert_ne!(*s, Status::DegradedFault, "uninjected panic escaped");
        assert_ne!(*s, Status::BadRequest);
    }
    let snapshot = shutdown(handle);
    assert_eq!(snapshot.sched.get("serve.panics_contained").copied().unwrap_or(0), 0);
    assert!(snapshot.sched.get("serve.requests").copied().unwrap_or(0) >= 48);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watch_recheck_keeps_the_store_warm() {
    let dir = tmp_dir("watch");
    let src_dir = tmp_dir("watch-src");
    let src = src_dir.join("prog.c");
    std::fs::write(&src, figure2_example()).unwrap();

    let opts =
        ServeOptions { store_dir: Some(dir.clone()), watch_poll_ms: Some(25), ..default_opts() };
    let handle = start(opts);
    let mut c = client(&handle);
    let paths = vec![src.to_string_lossy().to_string()];

    let first = c.check_paths(&paths, 0).unwrap();
    assert_eq!(first.run, RunKind::Analyzed);

    // Touch the file with different content; the watcher must re-analyze
    // in the background so the next client hit replays warm. Wait for the
    // watcher's run to *complete* (the daemon's run histogram reaches two
    // entries: the first check plus the re-check) before asking, so the
    // replay below is provably the watcher's doing, not our own.
    std::fs::write(&src, format!("// edited\n{}", figure2_example())).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let m = c.metrics().unwrap();
        let doc = safeflow_util::json::Json::parse(&m.report_json).unwrap();
        let runs = doc
            .get("dist")
            .and_then(|d| d.get("serve.run_ns"))
            .and_then(|h| h.get("count"))
            .and_then(|c| match c {
                safeflow_util::json::Json::UInt(n) => Some(*n),
                _ => None,
            })
            .unwrap_or(0);
        if runs >= 2 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "watch re-check never ran (runs = {runs})");
    }
    let again = c.check_paths(&paths, 0).unwrap();
    assert_eq!(again.run, RunKind::Replayed, "watcher must have warmed the store");
    let snapshot = shutdown(handle);
    assert!(snapshot.sched.get("serve.watch_rechecks").copied().unwrap_or(0) >= 1);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&src_dir);
}
