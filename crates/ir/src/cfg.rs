//! Control-flow graph utilities: predecessor maps and traversal orders.

use crate::module::{BlockId, Function};

/// Predecessor/successor structure of a function's CFG, plus a cached
/// reverse-postorder.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `preds[b]` = blocks branching to `b`.
    pub preds: Vec<Vec<BlockId>>,
    /// `succs[b]` = targets of `b`'s terminator.
    pub succs: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry (unreachable blocks are
    /// excluded).
    pub rpo: Vec<BlockId>,
    /// `rpo_index[b]` = position of `b` in `rpo`, or `usize::MAX` if
    /// unreachable.
    pub rpo_index: Vec<usize>,
}

impl Cfg {
    /// Computes the CFG of `func`.
    ///
    /// # Panics
    ///
    /// Panics if `func` has no blocks (prototypes have no CFG).
    pub fn build(func: &Function) -> Cfg {
        assert!(!func.blocks.is_empty(), "cannot build CFG of a prototype");
        let n = func.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (bid, block) in func.iter_blocks() {
            for succ in block.terminator.successors() {
                succs[bid.0 as usize].push(succ);
                preds[succ.0 as usize].push(bid);
            }
        }
        // Postorder DFS from entry.
        let mut post = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0=unvisited, 1=in-progress, 2=done
        let mut stack: Vec<(BlockId, usize)> = vec![(func.entry(), 0)];
        state[0] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let ss = &succs[b.0 as usize];
            if *i < ss.len() {
                let next = ss[*i];
                *i += 1;
                if state[next.0 as usize] == 0 {
                    state[next.0 as usize] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[b.0 as usize] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let mut rpo = post;
        rpo.reverse();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        Cfg { preds, succs, rpo, rpo_index }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.0 as usize] != usize::MAX
    }

    /// Predecessors of `b`.
    pub fn preds_of(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0 as usize]
    }

    /// Successors of `b`.
    pub fn succs_of(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0 as usize]
    }

    /// Number of blocks (including unreachable ones).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the CFG has no blocks (never true for built CFGs).
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{BasicBlock, Function, Terminator, Value};
    use crate::types::Type;
    use safeflow_syntax::span::Span;

    fn block(name: &str, term: Terminator) -> BasicBlock {
        BasicBlock { insts: vec![], terminator: term, name: name.into() }
    }

    fn func_with_blocks(blocks: Vec<BasicBlock>) -> Function {
        Function {
            name: "t".into(),
            ret: Type::Void,
            params: vec![],
            varargs: false,
            insts: vec![],
            blocks,
            annotations: vec![],
            is_definition: true,
            span: Span::dummy(),
        }
    }

    #[test]
    fn diamond_cfg() {
        // 0 -> 1, 2; 1 -> 3; 2 -> 3; 3 ret
        let f = func_with_blocks(vec![
            block(
                "entry",
                Terminator::CondBr {
                    cond: Value::i32(1),
                    then_bb: BlockId(1),
                    else_bb: BlockId(2),
                },
            ),
            block("then", Terminator::Br(BlockId(3))),
            block("else", Terminator::Br(BlockId(3))),
            block("join", Terminator::Ret(None)),
        ]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.preds_of(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.succs_of(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert_eq!(*cfg.rpo.last().unwrap(), BlockId(3));
        assert!(cfg.is_reachable(BlockId(2)));
    }

    #[test]
    fn unreachable_block_excluded_from_rpo() {
        let f = func_with_blocks(vec![
            block("entry", Terminator::Ret(None)),
            block("dead", Terminator::Ret(None)),
        ]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.rpo, vec![BlockId(0)]);
        assert!(!cfg.is_reachable(BlockId(1)));
    }

    #[test]
    fn loop_cfg_rpo_orders_header_first() {
        // 0 -> 1; 1 -> 2, 3; 2 -> 1; 3 ret   (while loop)
        let f = func_with_blocks(vec![
            block("entry", Terminator::Br(BlockId(1))),
            block(
                "cond",
                Terminator::CondBr {
                    cond: Value::i32(1),
                    then_bb: BlockId(2),
                    else_bb: BlockId(3),
                },
            ),
            block("body", Terminator::Br(BlockId(1))),
            block("exit", Terminator::Ret(None)),
        ]);
        let cfg = Cfg::build(&f);
        let pos = |b: u32| cfg.rpo_index[b as usize];
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
        assert_eq!(cfg.preds_of(BlockId(1)).len(), 2);
    }
}
