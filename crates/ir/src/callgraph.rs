//! Call graph construction and Tarjan SCC condensation.
//!
//! The paper's interprocedural phases run "bottom-up and top-down ... on the
//! strongly connected components (SCCs) of the call graph" (§3.3); this
//! module provides those orders.

use crate::module::{Callee, FuncId, InstKind, Module};
use std::collections::{HashMap, HashSet};

/// The module's call graph over locally-defined functions, plus the set of
/// external callees per function.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `callees[f]` = locally-bound call targets of `f` (deduplicated, in
    /// first-call order).
    pub callees: HashMap<FuncId, Vec<FuncId>>,
    /// `callers[f]` = functions calling `f`.
    pub callers: HashMap<FuncId, Vec<FuncId>>,
    /// External function names each function calls.
    pub externals: HashMap<FuncId, Vec<String>>,
    /// SCCs in reverse topological order (callees before callers), i.e.
    /// bottom-up order.
    pub sccs: Vec<Vec<FuncId>>,
    /// `scc_of[f]` = index into `sccs`.
    pub scc_of: HashMap<FuncId, usize>,
}

impl CallGraph {
    /// Builds the call graph of all defined functions in `module`.
    pub fn build(module: &Module) -> CallGraph {
        let mut callees: HashMap<FuncId, Vec<FuncId>> = HashMap::new();
        let mut callers: HashMap<FuncId, Vec<FuncId>> = HashMap::new();
        let mut externals: HashMap<FuncId, Vec<String>> = HashMap::new();
        let defs: Vec<FuncId> = module.definitions().collect();
        for &fid in &defs {
            callees.entry(fid).or_default();
            callers.entry(fid).or_default();
            externals.entry(fid).or_default();
        }
        for &fid in &defs {
            let func = module.function(fid);
            let mut seen_local: HashSet<FuncId> = HashSet::new();
            let mut seen_ext: HashSet<String> = HashSet::new();
            for (_, inst) in func.iter_insts() {
                if let InstKind::Call { callee, .. } = &inst.kind {
                    match callee {
                        Callee::Local(target) => {
                            // Calls to prototypes without bodies are treated
                            // like external calls for graph purposes.
                            if module.function(*target).is_definition {
                                if seen_local.insert(*target) {
                                    callees.get_mut(&fid).unwrap().push(*target);
                                    callers.entry(*target).or_default().push(fid);
                                }
                            } else {
                                let name = module.function(*target).name.clone();
                                if seen_ext.insert(name.clone()) {
                                    externals.get_mut(&fid).unwrap().push(name);
                                }
                            }
                        }
                        Callee::External(name) => {
                            if seen_ext.insert(name.clone()) {
                                externals.get_mut(&fid).unwrap().push(name.clone());
                            }
                        }
                    }
                }
            }
        }
        let (sccs, scc_of) = tarjan(&defs, &callees);
        CallGraph { callees, callers, externals, sccs, scc_of }
    }

    /// SCCs in bottom-up order (every callee SCC precedes its caller SCCs).
    pub fn bottom_up(&self) -> impl Iterator<Item = &Vec<FuncId>> {
        self.sccs.iter()
    }

    /// SCCs in top-down order (callers first).
    pub fn top_down(&self) -> impl Iterator<Item = &Vec<FuncId>> {
        self.sccs.iter().rev()
    }

    /// The condensation DAG as a dependency list over SCC indices:
    /// `deps[i]` are the SCC indices that SCC `i` calls into (excluding
    /// itself), sorted ascending and deduplicated. Because [`CallGraph::sccs`]
    /// is in bottom-up order, every dependency index is `< i` — the list
    /// feeds a DAG scheduler directly: an SCC may be summarized as soon as
    /// all of its dependencies are done, independent of its topological
    /// siblings.
    pub fn scc_dependencies(&self) -> Vec<Vec<usize>> {
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); self.sccs.len()];
        for (i, scc) in self.sccs.iter().enumerate() {
            let mut seen: HashSet<usize> = HashSet::new();
            for f in scc {
                for callee in &self.callees[f] {
                    let j = self.scc_of[callee];
                    if j != i && seen.insert(j) {
                        deps[i].push(j);
                    }
                }
            }
            deps[i].sort_unstable();
        }
        deps
    }

    /// Whether `f` participates in recursion (self-loop or larger SCC).
    pub fn is_recursive(&self, f: FuncId) -> bool {
        match self.scc_of.get(&f) {
            Some(&i) => {
                self.sccs[i].len() > 1 || self.callees.get(&f).is_some_and(|c| c.contains(&f))
            }
            None => false,
        }
    }

    /// All functions transitively reachable from `root` (including it).
    pub fn reachable_from(&self, root: FuncId) -> HashSet<FuncId> {
        let mut seen = HashSet::new();
        let mut work = vec![root];
        while let Some(f) = work.pop() {
            if !seen.insert(f) {
                continue;
            }
            if let Some(cs) = self.callees.get(&f) {
                work.extend(cs.iter().copied());
            }
        }
        seen
    }
}

/// Iterative Tarjan SCC. Returns SCCs in reverse topological order
/// (bottom-up) and the component index of each node.
fn tarjan(
    nodes: &[FuncId],
    edges: &HashMap<FuncId, Vec<FuncId>>,
) -> (Vec<Vec<FuncId>>, HashMap<FuncId, usize>) {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<u32>,
        lowlink: u32,
        on_stack: bool,
    }
    let mut state: HashMap<FuncId, NodeState> =
        nodes.iter().map(|&n| (n, NodeState::default())).collect();
    let mut index = 0u32;
    let mut stack: Vec<FuncId> = Vec::new();
    let mut sccs: Vec<Vec<FuncId>> = Vec::new();
    let mut scc_of: HashMap<FuncId, usize> = HashMap::new();

    // Iterative DFS with explicit frames.
    enum Action {
        Visit(FuncId),
        PostChild(FuncId, FuncId), // (parent, child)
        Finish(FuncId),
    }
    for &root in nodes {
        if state[&root].index.is_some() {
            continue;
        }
        let mut work = vec![Action::Visit(root)];
        while let Some(action) = work.pop() {
            match action {
                Action::Visit(v) => {
                    if state[&v].index.is_some() {
                        continue;
                    }
                    let st = state.get_mut(&v).unwrap();
                    st.index = Some(index);
                    st.lowlink = index;
                    st.on_stack = true;
                    index += 1;
                    stack.push(v);
                    work.push(Action::Finish(v));
                    if let Some(succs) = edges.get(&v) {
                        for &w in succs.iter().rev() {
                            work.push(Action::PostChild(v, w));
                            work.push(Action::Visit(w));
                        }
                    }
                }
                Action::PostChild(v, w) => {
                    let wll = {
                        let ws = &state[&w];
                        // On-stack: tree or back edge within the current
                        // SCC search; otherwise (already assigned to an
                        // SCC) it is a cross edge contributing nothing.
                        ws.on_stack.then(|| ws.lowlink.min(ws.index.unwrap_or(u32::MAX)))
                    };
                    if let Some(wll) = wll {
                        let vs = state.get_mut(&v).unwrap();
                        vs.lowlink = vs.lowlink.min(wll);
                    }
                }
                Action::Finish(v) => {
                    let (vi, vll) = {
                        let vs = &state[&v];
                        (vs.index.unwrap(), vs.lowlink)
                    };
                    if vi == vll {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("scc stack nonempty");
                            state.get_mut(&w).unwrap().on_stack = false;
                            scc_of.insert(w, sccs.len());
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        sccs.push(comp);
                    }
                }
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::types::Type;
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;

    fn build(src: &str) -> (Module, CallGraph) {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors());
        let mut diags = Diagnostics::new();
        let m = lower(&pr.unit, &mut diags);
        assert!(!diags.has_errors(), "{diags:?}");
        let cg = CallGraph::build(&m);
        (m, cg)
    }

    #[test]
    fn linear_chain_bottom_up_order() {
        let (m, cg) = build(
            "int c(void) { return 1; }\nint b(void) { return c(); }\nint a(void) { return b(); }",
        );
        let a = m.function_by_name("a").unwrap();
        let b = m.function_by_name("b").unwrap();
        let c = m.function_by_name("c").unwrap();
        let pos = |f| cg.sccs.iter().position(|s| s.contains(&f)).unwrap();
        assert!(pos(c) < pos(b));
        assert!(pos(b) < pos(a));
        assert!(!cg.is_recursive(a));
        assert_eq!(cg.callees[&a], vec![b]);
        assert_eq!(cg.callers[&b], vec![a]);
    }

    #[test]
    fn mutual_recursion_one_scc() {
        let (m, cg) = build(
            "int odd(int n);\nint even(int n) { if (n == 0) return 1; return odd(n - 1); }\nint odd(int n) { if (n == 0) return 0; return even(n - 1); }",
        );
        let even = m.function_by_name("even").unwrap();
        let odd = m.function_by_name("odd").unwrap();
        assert_eq!(cg.scc_of[&even], cg.scc_of[&odd]);
        assert!(cg.is_recursive(even));
        assert!(cg.is_recursive(odd));
    }

    #[test]
    fn self_recursion_detected() {
        let (m, cg) = build("int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }");
        let f = m.function_by_name("fact").unwrap();
        assert!(cg.is_recursive(f));
        assert_eq!(cg.sccs.iter().filter(|s| s.contains(&f)).count(), 1);
    }

    #[test]
    fn externals_and_prototypes_tracked() {
        let (m, cg) =
            build("void sendControl(float v);\nvoid f(void) { sendControl(1.0); tickle(); }");
        let f = m.function_by_name("f").unwrap();
        let mut ext = cg.externals[&f].clone();
        ext.sort();
        assert_eq!(ext, vec!["sendControl", "tickle"]);
        assert!(cg.callees[&f].is_empty());
    }

    #[test]
    fn reachable_from_root() {
        let (m, cg) = build(
            "int d(void) { return 0; }\nint c(void) { return d(); }\nint b(void) { return 0; }\nint main() { return c(); }",
        );
        let main = m.function_by_name("main").unwrap();
        let reach = cg.reachable_from(main);
        assert!(reach.contains(&m.function_by_name("c").unwrap()));
        assert!(reach.contains(&m.function_by_name("d").unwrap()));
        assert!(!reach.contains(&m.function_by_name("b").unwrap()));
    }

    #[test]
    fn scc_dependencies_form_bottom_up_dag() {
        let (m, cg) = build(
            "int leaf1(void) { return 1; }\nint leaf2(void) { return 2; }\nint mid(void) { return leaf1() + leaf2(); }\nint odd(int n);\nint even(int n) { if (n == 0) return 1; return odd(n - 1); }\nint odd(int n) { if (n == 0) return 0; return even(n - 1) + leaf2(); }\nint main() { return mid() + even(3); }",
        );
        let deps = cg.scc_dependencies();
        assert_eq!(deps.len(), cg.sccs.len());
        for (i, ds) in deps.iter().enumerate() {
            // Bottom-up: dependencies strictly precede their dependents.
            assert!(ds.iter().all(|&j| j < i), "scc {i} depends on {ds:?}");
            // Sorted and deduplicated.
            assert!(ds.windows(2).all(|w| w[0] < w[1]));
        }
        // main's SCC depends on mid's and the even/odd SCC, not the leaves.
        let main = m.function_by_name("main").unwrap();
        let mid = m.function_by_name("mid").unwrap();
        let even = m.function_by_name("even").unwrap();
        let leaf1 = m.function_by_name("leaf1").unwrap();
        let main_deps = &deps[cg.scc_of[&main]];
        assert!(main_deps.contains(&cg.scc_of[&mid]));
        assert!(main_deps.contains(&cg.scc_of[&even]));
        assert!(!main_deps.contains(&cg.scc_of[&leaf1]));
        // The mutual-recursion SCC records no self-dependency.
        let even_deps = &deps[cg.scc_of[&even]];
        assert!(!even_deps.contains(&cg.scc_of[&even]));
    }

    #[test]
    fn duplicate_calls_deduplicated() {
        let (m, cg) = build("int g(void) { return 1; }\nint f(void) { return g() + g(); }");
        let f = m.function_by_name("f").unwrap();
        assert_eq!(cg.callees[&f].len(), 1);
        let _ = Type::int32();
    }
}
