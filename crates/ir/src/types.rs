//! The IR type system: resolved, layout-aware types.
//!
//! Mirrors what the paper's LLVM 1.x substrate provided: a small typed
//! universe (integers, floats, pointers, arrays, structs) with concrete
//! sizes and field offsets, which the shared-memory extent reasoning
//! (`shmvar`/`assume(core(p, off, size))`) needs.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a struct layout inside a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub u32);

/// A resolved IR type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` (only valid as a return type or pointee of `void*`).
    Void,
    /// Integer with bit width and signedness. Widths used: 8, 16, 32, 64.
    Int {
        /// Bit width (8/16/32/64).
        bits: u8,
        /// Whether values are sign-extended.
        signed: bool,
    },
    /// IEEE float; 32 or 64 bits.
    Float {
        /// Bit width (32/64).
        bits: u8,
    },
    /// Pointer to another type (`void*` is `Ptr(Void)`).
    Ptr(Box<Type>),
    /// Fixed-size array.
    Array(Box<Type>, u64),
    /// Struct or union; layout lives in the [`TypeTable`].
    Struct(StructId),
}

impl Type {
    /// The canonical `int` (32-bit signed).
    pub fn int32() -> Type {
        Type::Int { bits: 32, signed: true }
    }

    /// The canonical `char` (8-bit signed).
    pub fn int8() -> Type {
        Type::Int { bits: 8, signed: true }
    }

    /// The canonical `long` (64-bit signed).
    pub fn int64() -> Type {
        Type::Int { bits: 64, signed: true }
    }

    /// `float`.
    pub fn f32() -> Type {
        Type::Float { bits: 32 }
    }

    /// `double`.
    pub fn f64() -> Type {
        Type::Float { bits: 64 }
    }

    /// `void*`.
    pub fn void_ptr() -> Type {
        Type::Ptr(Box::new(Type::Void))
    }

    /// Pointer to `self`.
    pub fn ptr_to(&self) -> Type {
        Type::Ptr(Box::new(self.clone()))
    }

    /// Whether this is any pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Whether this is an integer type.
    pub fn is_int(&self) -> bool {
        matches!(self, Type::Int { .. })
    }

    /// Whether this is a float type.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float { .. })
    }

    /// Whether this type can be held in a scalar SSA value (int, float,
    /// pointer).
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int { .. } | Type::Float { .. } | Type::Ptr(_))
    }

    /// The pointee of a pointer type.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            _ => None,
        }
    }

    /// The element type of an array.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int { bits, signed } => {
                write!(f, "{}{}", if *signed { "i" } else { "u" }, bits)
            }
            Type::Float { bits } => write!(f, "f{bits}"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "[{n} x {t}]"),
            Type::Struct(id) => write!(f, "%struct.{}", id.0),
        }
    }
}

/// One field of a struct layout.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldLayout {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Byte offset from the start of the struct (0 for all union members).
    pub offset: u64,
}

/// Layout of a struct or union.
#[derive(Debug, Clone, PartialEq)]
pub struct StructLayout {
    /// Tag name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<FieldLayout>,
    /// Total size in bytes (including padding).
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
    /// `true` for unions (all fields at offset 0).
    pub is_union: bool,
}

impl StructLayout {
    /// Index of the field called `name`.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// Registry of struct layouts plus sizing rules for the target.
///
/// The layout model is a conventional LP64 target: `char`=1, `short`=2,
/// `int`=4, `long`=8, pointers=8, `float`=4, `double`=8, natural alignment.
///
/// # Examples
///
/// ```
/// use safeflow_ir::types::{Type, TypeTable};
///
/// let mut table = TypeTable::new();
/// let id = table.define_struct(
///     "Pair",
///     vec![("a".into(), Type::int8()), ("b".into(), Type::int32())],
///     false,
/// );
/// let layout = table.layout(id);
/// assert_eq!(layout.size, 8); // 1 byte + 3 padding + 4
/// assert_eq!(layout.fields[1].offset, 4);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TypeTable {
    structs: Vec<StructLayout>,
    by_name: HashMap<String, StructId>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TypeTable::default()
    }

    /// Defines (or redefines, for forward-declared tags) a struct and
    /// computes its layout. Returns its id.
    pub fn define_struct(
        &mut self,
        name: &str,
        fields: Vec<(String, Type)>,
        is_union: bool,
    ) -> StructId {
        let id = match self.by_name.get(name) {
            Some(&id) => id,
            None => {
                let id = StructId(self.structs.len() as u32);
                self.structs.push(StructLayout {
                    name: name.to_string(),
                    fields: Vec::new(),
                    size: 0,
                    align: 1,
                    is_union,
                });
                self.by_name.insert(name.to_string(), id);
                id
            }
        };
        let mut laid = Vec::with_capacity(fields.len());
        let mut offset = 0u64;
        let mut align = 1u64;
        let mut size = 0u64;
        for (fname, fty) in fields {
            let falign = self.align_of(&fty);
            let fsize = self.size_of(&fty);
            align = align.max(falign);
            if is_union {
                laid.push(FieldLayout { name: fname, ty: fty, offset: 0 });
                size = size.max(fsize);
            } else {
                offset = round_up(offset, falign);
                laid.push(FieldLayout { name: fname, ty: fty, offset });
                offset += fsize;
            }
        }
        if !is_union {
            size = offset;
        }
        let total = round_up(size.max(1), align);
        let s = &mut self.structs[id.0 as usize];
        s.fields = laid;
        s.size = total;
        s.align = align;
        s.is_union = is_union;
        id
    }

    /// Declares a struct tag without a body (forward declaration).
    pub fn declare_struct(&mut self, name: &str, is_union: bool) -> StructId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = StructId(self.structs.len() as u32);
        self.structs.push(StructLayout {
            name: name.to_string(),
            fields: Vec::new(),
            size: 0,
            align: 1,
            is_union,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up a struct id by tag name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.by_name.get(name).copied()
    }

    /// The layout of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn layout(&self, id: StructId) -> &StructLayout {
        &self.structs[id.0 as usize]
    }

    /// Number of registered structs.
    pub fn len(&self) -> usize {
        self.structs.len()
    }

    /// Whether no struct has been registered.
    pub fn is_empty(&self) -> bool {
        self.structs.is_empty()
    }

    /// Byte size of `ty`.
    pub fn size_of(&self, ty: &Type) -> u64 {
        match ty {
            Type::Void => 0,
            Type::Int { bits, .. } => u64::from(*bits) / 8,
            Type::Float { bits } => u64::from(*bits) / 8,
            Type::Ptr(_) => 8,
            Type::Array(t, n) => self.size_of(t) * n,
            Type::Struct(id) => self.layout(*id).size,
        }
    }

    /// Alignment of `ty` in bytes.
    pub fn align_of(&self, ty: &Type) -> u64 {
        match ty {
            Type::Void => 1,
            Type::Int { bits, .. } => u64::from(*bits) / 8,
            Type::Float { bits } => u64::from(*bits) / 8,
            Type::Ptr(_) => 8,
            Type::Array(t, _) => self.align_of(t),
            Type::Struct(id) => self.layout(*id).align,
        }
    }

    /// Renders `ty` with struct names instead of numeric ids.
    pub fn display(&self, ty: &Type) -> String {
        match ty {
            Type::Ptr(t) => format!("{}*", self.display(t)),
            Type::Array(t, n) => format!("[{} x {}]", n, self.display(t)),
            Type::Struct(id) => format!("struct {}", self.layout(*id).name),
            other => other.to_string(),
        }
    }

    /// Whether two types may alias through a `core`/`noncore` extent, i.e.
    /// compatible for the purposes of restriction **P3** (no casts between
    /// pointers to incompatible shared-memory types).
    ///
    /// Compatibility is structural identity, except `void*` pairs with
    /// anything (the untyped result of `shmat` must be castable inside
    /// `shminit` functions, and byte-wise views are allowed for `char`).
    pub fn compatible_pointees(&self, a: &Type, b: &Type) -> bool {
        a == b || matches!(a, Type::Void) || matches!(b, Type::Void)
    }
}

fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        let t = TypeTable::new();
        assert_eq!(t.size_of(&Type::int8()), 1);
        assert_eq!(t.size_of(&Type::Int { bits: 16, signed: false }), 2);
        assert_eq!(t.size_of(&Type::int32()), 4);
        assert_eq!(t.size_of(&Type::int64()), 8);
        assert_eq!(t.size_of(&Type::f32()), 4);
        assert_eq!(t.size_of(&Type::f64()), 8);
        assert_eq!(t.size_of(&Type::void_ptr()), 8);
        assert_eq!(t.size_of(&Type::Array(Box::new(Type::int32()), 10)), 40);
    }

    #[test]
    fn struct_layout_with_padding() {
        let mut t = TypeTable::new();
        let id = t.define_struct(
            "Mixed",
            vec![
                ("c".into(), Type::int8()),
                ("d".into(), Type::f64()),
                ("i".into(), Type::int32()),
            ],
            false,
        );
        let l = t.layout(id);
        assert_eq!(l.fields[0].offset, 0);
        assert_eq!(l.fields[1].offset, 8);
        assert_eq!(l.fields[2].offset, 16);
        assert_eq!(l.size, 24); // rounded to align 8
        assert_eq!(l.align, 8);
    }

    #[test]
    fn union_layout() {
        let mut t = TypeTable::new();
        let id = t.define_struct(
            "U",
            vec![("i".into(), Type::int32()), ("d".into(), Type::f64())],
            true,
        );
        let l = t.layout(id);
        assert!(l.is_union);
        assert_eq!(l.fields[0].offset, 0);
        assert_eq!(l.fields[1].offset, 0);
        assert_eq!(l.size, 8);
    }

    #[test]
    fn forward_declaration_then_definition() {
        let mut t = TypeTable::new();
        let fwd = t.declare_struct("Node", false);
        let def = t.define_struct(
            "Node",
            vec![("v".into(), Type::int32()), ("next".into(), Type::Struct(fwd).ptr_to())],
            false,
        );
        assert_eq!(fwd, def);
        assert_eq!(t.layout(def).size, 16);
    }

    #[test]
    fn field_index_lookup() {
        let mut t = TypeTable::new();
        let id =
            t.define_struct("P", vec![("x".into(), Type::f32()), ("y".into(), Type::f32())], false);
        assert_eq!(t.layout(id).field_index("y"), Some(1));
        assert_eq!(t.layout(id).field_index("z"), None);
    }

    #[test]
    fn empty_struct_has_nonzero_size() {
        let mut t = TypeTable::new();
        let id = t.define_struct("E", vec![], false);
        assert!(t.layout(id).size >= 1);
    }

    #[test]
    fn pointee_compatibility_for_p3() {
        let mut t = TypeTable::new();
        let a = t.define_struct("A", vec![("x".into(), Type::int32())], false);
        let b = t.define_struct("B", vec![("x".into(), Type::int32())], false);
        assert!(t.compatible_pointees(&Type::Struct(a), &Type::Struct(a)));
        assert!(!t.compatible_pointees(&Type::Struct(a), &Type::Struct(b)));
        assert!(t.compatible_pointees(&Type::Void, &Type::Struct(a)));
        assert!(t.compatible_pointees(&Type::Struct(b), &Type::Void));
    }

    #[test]
    fn display_uses_struct_names() {
        let mut t = TypeTable::new();
        let id = t.define_struct("SHMData", vec![("c".into(), Type::f32())], false);
        assert_eq!(t.display(&Type::Struct(id).ptr_to()), "struct SHMData*");
        assert_eq!(t.display(&Type::int32()), "i32");
    }
}
