//! Natural loop detection and induction-variable recognition.
//!
//! Restriction **A2** (paper §3.2) demands that shared-memory arrays inside
//! loops are indexed by provably affine expressions of loop induction
//! variables, with affine bounds. This module recovers the loop structure
//! the constraint generator needs: headers, bodies, latches, basic
//! induction variables (`phi` + constant step), and the header exit
//! condition.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::module::*;
use std::collections::HashSet;

/// A natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Loop header (target of the back edge; dominates the body).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: HashSet<BlockId>,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// Basic induction variables of this loop.
    pub ivs: Vec<InductionVar>,
    /// The header's exit test, when it has the canonical
    /// `CondBr(Cmp(iv, bound))` shape.
    pub exit_test: Option<ExitTest>,
}

/// A basic induction variable: `iv = phi(init, iv + step)`.
#[derive(Debug, Clone)]
pub struct InductionVar {
    /// The φ instruction defining the IV at the header.
    pub phi: InstId,
    /// Initial value on loop entry.
    pub init: Value,
    /// Constant per-iteration step.
    pub step: i64,
}

/// The loop's controlling comparison at the header.
#[derive(Debug, Clone)]
pub struct ExitTest {
    /// The compared instruction (usually an IV φ).
    pub lhs: Value,
    /// Comparison predicate, oriented as `lhs op rhs` with the loop
    /// continuing while true.
    pub op: CmpOp,
    /// Loop-invariant bound.
    pub rhs: Value,
}

/// Finds all natural loops in `func` (loops sharing a header are merged).
pub fn find_loops(func: &Function, cfg: &Cfg, dom: &DomTree) -> Vec<Loop> {
    let mut loops: Vec<Loop> = Vec::new();
    for (bid, block) in func.iter_blocks() {
        if !cfg.is_reachable(bid) {
            continue;
        }
        for succ in block.terminator.successors() {
            if dom.dominates(succ, bid) {
                // Back edge bid -> succ.
                match loops.iter_mut().find(|l| l.header == succ) {
                    Some(l) => {
                        l.latches.push(bid);
                        collect_body(cfg, succ, bid, &mut l.body);
                    }
                    None => {
                        let mut body = HashSet::new();
                        body.insert(succ);
                        collect_body(cfg, succ, bid, &mut body);
                        loops.push(Loop {
                            header: succ,
                            body,
                            latches: vec![bid],
                            ivs: Vec::new(),
                            exit_test: None,
                        });
                    }
                }
            }
        }
    }
    for l in &mut loops {
        l.ivs = find_ivs(func, l);
        l.exit_test = find_exit_test(func, l);
    }
    loops
}

/// Adds to `body` every block that can reach `latch` without passing
/// through `header` (the classic natural-loop body computation).
fn collect_body(cfg: &Cfg, header: BlockId, latch: BlockId, body: &mut HashSet<BlockId>) {
    let mut work = vec![latch];
    while let Some(b) = work.pop() {
        if b == header || !body.insert(b) {
            continue;
        }
        for &p in cfg.preds_of(b) {
            work.push(p);
        }
    }
    body.insert(header);
}

/// Basic IVs: header φ with exactly one in-loop incoming that is
/// `φ + constant` (or `constant + φ` / `φ - constant`).
fn find_ivs(func: &Function, l: &Loop) -> Vec<InductionVar> {
    let mut ivs = Vec::new();
    for &iid in &func.block(l.header).insts {
        let InstKind::Phi { incoming } = &func.inst(iid).kind else { continue };
        let mut init: Option<Value> = None;
        let mut step: Option<i64> = None;
        let mut ok = true;
        for (pred, v) in incoming {
            if l.body.contains(pred) {
                // In-loop edge: must be phi +/- const.
                match step_of(func, iid, v) {
                    Some(s) => match step {
                        None => step = Some(s),
                        Some(prev) if prev == s => {}
                        _ => ok = false,
                    },
                    None => ok = false,
                }
            } else {
                // Entry edge.
                match &init {
                    None => init = Some(v.clone()),
                    Some(prev) if prev == v => {}
                    _ => ok = false,
                }
            }
        }
        if ok {
            if let (Some(init), Some(step)) = (init, step) {
                ivs.push(InductionVar { phi: iid, init, step });
            }
        }
    }
    ivs
}

/// If `v` is `phi + c`, `c + phi`, or `phi - c`, returns the signed step.
fn step_of(func: &Function, phi: InstId, v: &Value) -> Option<i64> {
    let Value::Inst(id) = v else { return None };
    match &func.inst(*id).kind {
        InstKind::Bin { op: BinOp::Add, lhs, rhs } => {
            if *lhs == Value::Inst(phi) {
                rhs.as_const_int()
            } else if *rhs == Value::Inst(phi) {
                lhs.as_const_int()
            } else {
                None
            }
        }
        InstKind::Bin { op: BinOp::Sub, lhs, rhs } if *lhs == Value::Inst(phi) => {
            rhs.as_const_int().map(|c| -c)
        }
        // Pointer IVs step through ElemAddr.
        InstKind::ElemAddr { base, index } if *base == Value::Inst(phi) => index.as_const_int(),
        // A cast of the phi plus a constant still counts (int width changes).
        InstKind::Cast { value, .. } => step_of(func, phi, value),
        _ => None,
    }
}

/// Extracts the canonical header exit test `CondBr(Cmp(lhs, rhs))` where
/// the true edge stays in the loop.
fn find_exit_test(func: &Function, l: &Loop) -> Option<ExitTest> {
    let header = func.block(l.header);
    let Terminator::CondBr { cond, then_bb, else_bb } = &header.terminator else {
        return None;
    };
    let Value::Inst(cid) = cond else { return None };
    let InstKind::Cmp { op, lhs, rhs } = &func.inst(*cid).kind else {
        return None;
    };
    let then_in = l.body.contains(then_bb);
    let else_in = l.body.contains(else_bb);
    if then_in == else_in {
        return None; // not a rotated-exit loop shape we understand
    }
    let (op, lhs, rhs) = if then_in {
        (*op, lhs.clone(), rhs.clone())
    } else {
        (negate(*op), lhs.clone(), rhs.clone())
    };
    Some(ExitTest { lhs, op, rhs })
}

fn negate(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::ssa::promote_module;
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;

    fn loops_of(src: &str, fname: &str) -> (Module, Vec<Loop>) {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors());
        let mut diags = Diagnostics::new();
        let mut m = lower(&pr.unit, &mut diags);
        assert!(!diags.has_errors());
        promote_module(&mut m);
        let fid = m.function_by_name(fname).unwrap();
        let f = m.function(fid);
        let cfg = Cfg::build(f);
        let dom = DomTree::build(&cfg);
        let ls = find_loops(f, &cfg, &dom);
        (m, ls)
    }

    #[test]
    fn simple_for_loop_recognized() {
        let (m, ls) = loops_of(
            "int f(int n, int *a) { int s = 0; int i; for (i = 0; i < n; i = i + 1) s += a[i]; return s; }",
            "f",
        );
        assert_eq!(ls.len(), 1);
        let l = &ls[0];
        // `i` is a basic IV; `s += a[i]` has a non-constant step so `s`
        // is not.
        assert_eq!(l.ivs.len(), 1);
        let iv = l.ivs.iter().find(|iv| iv.step == 1).expect("i recognized");
        assert_eq!(iv.init.as_const_int(), Some(0));
        // Exit test: i < n while in loop.
        let test = l.exit_test.as_ref().expect("canonical exit test");
        assert_eq!(test.op, CmpOp::Lt);
        let _ = m;
    }

    #[test]
    fn down_counting_loop() {
        let (_, ls) = loops_of(
            "int f(int n) { int s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }",
            "f",
        );
        assert_eq!(ls.len(), 1);
        let iv = ls[0].ivs.iter().find(|iv| iv.step == -1).expect("n is an IV with step -1");
        assert!(matches!(iv.init, Value::Param(0)));
        let test = ls[0].exit_test.as_ref().unwrap();
        assert_eq!(test.op, CmpOp::Gt);
    }

    #[test]
    fn nested_loops_found() {
        let (_, ls) = loops_of(
            "int f(int n) { int s = 0; int i; int j; for (i = 0; i < n; i++) { for (j = 0; j < i; j++) { s += j; } } return s; }",
            "f",
        );
        assert_eq!(ls.len(), 2);
        // The inner loop body is a subset of the outer loop body.
        let (outer, inner) =
            if ls[0].body.len() > ls[1].body.len() { (&ls[0], &ls[1]) } else { (&ls[1], &ls[0]) };
        assert!(inner.body.is_subset(&outer.body));
    }

    #[test]
    fn non_affine_update_not_an_iv() {
        let (_, ls) =
            loops_of("int f(int n) { int i = 1; while (i < n) { i = i * 2; } return i; }", "f");
        assert_eq!(ls.len(), 1);
        assert!(ls[0].ivs.is_empty(), "i*2 is not a basic IV");
    }

    #[test]
    fn infinite_loop_has_no_exit_test() {
        let (_, ls) = loops_of("void g(void); void f(void) { while (1) { g(); } }", "f");
        assert_eq!(ls.len(), 1);
        assert!(ls[0].exit_test.is_none());
    }

    #[test]
    fn do_while_latch_is_cond_block() {
        let (_, ls) =
            loops_of("int f(int n) { int i = 0; do { i++; } while (i < n); return i; }", "f");
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].latches.len(), 1);
    }
}
