//! Core IR data structures: modules, functions, basic blocks, instructions.
//!
//! The IR is a conventional typed CFG IR in the style of LLVM (which the
//! paper's implementation targeted): instructions live in an arena per
//! function, basic blocks hold instruction lists plus one terminator, and
//! after the SSA pass ([`crate::ssa`]) promoted locals become phi-joined
//! values.

use crate::types::{StructId, Type, TypeTable};
use safeflow_syntax::annot::Annotation;
use safeflow_syntax::span::Span;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifier of a global variable within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Identifier of a basic block within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifier of an instruction within a [`Function`]; doubles as the SSA
/// value it defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// An SSA operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Result of an instruction.
    Inst(InstId),
    /// The `i`-th formal parameter of the enclosing function.
    Param(u32),
    /// Address of a global variable.
    Global(GlobalId),
    /// Integer constant.
    ConstInt(i64, Type),
    /// Float constant.
    ConstFloat(f64, Type),
    /// Null pointer of the given type.
    ConstNull(Type),
}

impl Value {
    /// Integer constant of type `i32`.
    pub fn i32(v: i64) -> Value {
        Value::ConstInt(v, Type::int32())
    }

    /// Whether this operand is a compile-time constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Value::ConstInt(..) | Value::ConstFloat(..) | Value::ConstNull(_))
    }

    /// The constant integer value, if this is one.
    pub fn as_const_int(&self) -> Option<i64> {
        match self {
            Value::ConstInt(v, _) => Some(*v),
            _ => None,
        }
    }
}

/// Integer/float binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names mirror the C operators
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    And,
    Or,
    Xor,
}

/// Comparison predicates (result is `i32` 0/1, as in C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Cast categories; the SafeFlow restriction checker (P3) inspects these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// Int ↔ int width/signedness change.
    IntToInt,
    /// Int → float.
    IntToFloat,
    /// Float → int.
    FloatToInt,
    /// Float ↔ float width change.
    FloatToFloat,
    /// Pointer → pointer (bitcast). P3 restricts these on shared memory.
    PtrToPtr,
    /// Pointer → integer. P3 forbids these on shared memory.
    PtrToInt,
    /// Integer → pointer.
    IntToPtr,
}

/// Who a call targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    /// A function defined (or prototyped) in this module.
    Local(FuncId),
    /// An external function known only by name (libc, shm runtime, ...).
    External(String),
}

/// An instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// What the instruction does.
    pub kind: InstKind,
    /// Type of the value this instruction defines (`Void` if none).
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// Instruction kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// Stack slot for a local variable; value is its address.
    Alloca {
        /// Type of the slot.
        ty: Type,
        /// Source-level variable name (for diagnostics and annotations).
        name: String,
    },
    /// Read through a pointer.
    Load {
        /// Address to read.
        ptr: Value,
    },
    /// Write through a pointer.
    Store {
        /// Address to write.
        ptr: Value,
        /// Value stored.
        value: Value,
    },
    /// Address of a struct field: `&base->field`.
    FieldAddr {
        /// Pointer to the struct.
        base: Value,
        /// The struct whose layout is used.
        struct_id: StructId,
        /// Field index within the layout.
        field: u32,
    },
    /// Address of an array element / pointer arithmetic:
    /// `base + index * sizeof(elem)`.
    ElemAddr {
        /// Base pointer.
        base: Value,
        /// Element index (scaled by element size).
        index: Value,
    },
    /// Binary arithmetic.
    Bin {
        /// Operation.
        op: BinOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Comparison.
    Cmp {
        /// Predicate.
        op: CmpOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Conversion.
    Cast {
        /// Conversion category.
        kind: CastKind,
        /// Operand.
        value: Value,
    },
    /// Function call.
    Call {
        /// Target.
        callee: Callee,
        /// Arguments in order.
        args: Vec<Value>,
    },
    /// SSA φ-node (only after the SSA pass).
    Phi {
        /// `(predecessor, value)` pairs.
        incoming: Vec<(BlockId, Value)>,
    },
    /// Anchor for `assert(safe(x))`: the critical-data annotation lowered
    /// into the instruction stream at its program point (paper §3.1).
    AssertSafe {
        /// Source-level name of the asserted variable.
        var: String,
        /// The value of `x` at this point.
        value: Value,
    },
}

impl InstKind {
    /// Operands read by this instruction.
    pub fn operands(&self) -> Vec<&Value> {
        match self {
            InstKind::Alloca { .. } => vec![],
            InstKind::Load { ptr } => vec![ptr],
            InstKind::Store { ptr, value } => vec![ptr, value],
            InstKind::FieldAddr { base, .. } => vec![base],
            InstKind::ElemAddr { base, index } => vec![base, index],
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => vec![lhs, rhs],
            InstKind::Cast { value, .. } => vec![value],
            InstKind::Call { args, .. } => args.iter().collect(),
            InstKind::Phi { incoming } => incoming.iter().map(|(_, v)| v).collect(),
            InstKind::AssertSafe { value, .. } => vec![value],
        }
    }

    /// Mutable operand access (used by SSA rewriting).
    pub fn operands_mut(&mut self) -> Vec<&mut Value> {
        match self {
            InstKind::Alloca { .. } => vec![],
            InstKind::Load { ptr } => vec![ptr],
            InstKind::Store { ptr, value } => vec![ptr, value],
            InstKind::FieldAddr { base, .. } => vec![base],
            InstKind::ElemAddr { base, index } => vec![base, index],
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => vec![lhs, rhs],
            InstKind::Cast { value, .. } => vec![value],
            InstKind::Call { args, .. } => args.iter_mut().collect(),
            InstKind::Phi { incoming } => incoming.iter_mut().map(|(_, v)| v).collect(),
            InstKind::AssertSafe { value, .. } => vec![value],
        }
    }

    /// Whether this instruction has side effects (must not be removed).
    pub fn has_side_effects(&self) -> bool {
        matches!(self, InstKind::Store { .. } | InstKind::Call { .. } | InstKind::AssertSafe { .. })
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way conditional branch on a nonzero test.
    CondBr {
        /// Condition value.
        cond: Value,
        /// Target when nonzero.
        then_bb: BlockId,
        /// Target when zero.
        else_bb: BlockId,
    },
    /// Multi-way switch.
    Switch {
        /// Scrutinee.
        value: Value,
        /// `(constant, target)` arms.
        cases: Vec<(i64, BlockId)>,
        /// Target when no arm matches.
        default: BlockId,
    },
    /// Function return.
    Ret(Option<Value>),
    /// Unreachable (used for not-yet-terminated blocks during lowering).
    Unreachable,
}

impl Terminator {
    /// Successor blocks in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Switch { cases, default, .. } => {
                let mut v: Vec<BlockId> = cases.iter().map(|(_, b)| *b).collect();
                v.push(*default);
                v
            }
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
        }
    }

    /// Values read by the terminator.
    pub fn operands(&self) -> Vec<&Value> {
        match self {
            Terminator::CondBr { cond, .. } => vec![cond],
            Terminator::Switch { value, .. } => vec![value],
            Terminator::Ret(Some(v)) => vec![v],
            _ => vec![],
        }
    }

    /// Mutable access to values read by the terminator.
    pub fn operands_mut(&mut self) -> Vec<&mut Value> {
        match self {
            Terminator::CondBr { cond, .. } => vec![cond],
            Terminator::Switch { value, .. } => vec![value],
            Terminator::Ret(Some(v)) => vec![v],
            _ => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Instructions in execution order (ids into the function's arena).
    pub insts: Vec<InstId>,
    /// The block terminator.
    pub terminator: Terminator,
    /// Debug name (e.g. `while.cond`).
    pub name: String,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct IrParam {
    /// Source name.
    pub name: String,
    /// Resolved type.
    pub ty: Type,
}

/// A function: signature, body (if defined), and its SafeFlow annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<IrParam>,
    /// Whether declared varargs.
    pub varargs: bool,
    /// Instruction arena.
    pub insts: Vec<Inst>,
    /// Basic blocks; `BlockId(0)` is the entry when a body exists.
    pub blocks: Vec<BasicBlock>,
    /// Function-level SafeFlow annotations (assume core / shminit / shmvar /
    /// noncore).
    pub annotations: Vec<Annotation>,
    /// Whether a body was provided.
    pub is_definition: bool,
    /// Source location of the declarator.
    pub span: Span,
}

impl Function {
    /// The instruction stored under `id`.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.0 as usize]
    }

    /// Mutable access to the instruction under `id`.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.0 as usize]
    }

    /// The block stored under `id`.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Mutable access to the block under `id`.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.0 as usize]
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Iterates `(BlockId, &BasicBlock)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Iterates all `(InstId, &Inst)` in block order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (InstId, &Inst)> + '_ {
        self.blocks.iter().flat_map(|b| b.insts.iter()).map(move |&id| (id, self.inst(id)))
    }

    /// Which block contains instruction `id`.
    pub fn block_of(&self, id: InstId) -> Option<BlockId> {
        for (bid, b) in self.iter_blocks() {
            if b.insts.contains(&id) {
                return Some(bid);
            }
        }
        None
    }

    /// Whether this function carries a `shminit` annotation (paper §3.2.1).
    pub fn is_shminit(&self) -> bool {
        self.annotations.iter().any(|a| matches!(a, Annotation::ShmInit { .. }))
    }
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Value type (the global's address has type `ty*`).
    pub ty: Type,
    /// Whether an initializer was present (contents are irrelevant to the
    /// analysis; presence matters for diagnostics only).
    pub has_init: bool,
    /// Source location.
    pub span: Span,
}

/// A whole program in IR form.
#[derive(Debug, Default, Clone)]
pub struct Module {
    /// Struct layouts.
    pub types: TypeTable,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Functions (definitions and prototypes).
    pub functions: Vec<Function>,
    /// Typedef names resolved during lowering (`SHMData` → its struct
    /// type); annotation expressions like `sizeof(SHMData)` resolve here.
    pub typedefs: HashMap<String, Type>,
    /// Enum constants resolved during lowering; annotation expressions may
    /// name them.
    pub enum_consts: HashMap<String, i64>,
    func_by_name: HashMap<String, FuncId>,
    global_by_name: HashMap<String, GlobalId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Adds a function, returning its id. A definition replaces an earlier
    /// prototype of the same name.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        if let Some(&id) = self.func_by_name.get(&f.name) {
            let existing = &self.functions[id.0 as usize];
            if !existing.is_definition {
                self.functions[id.0 as usize] = f;
            }
            return id;
        }
        let id = FuncId(self.functions.len() as u32);
        self.func_by_name.insert(f.name.clone(), id);
        self.functions.push(f);
        id
    }

    /// Adds a global, returning its id. Duplicate names return the first id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        if let Some(&id) = self.global_by_name.get(&g.name) {
            return id;
        }
        let id = GlobalId(self.globals.len() as u32);
        self.global_by_name.insert(g.name.clone(), id);
        self.globals.push(g);
        id
    }

    /// The function stored under `id`.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Mutable access to the function under `id`.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.0 as usize]
    }

    /// Looks up a function id by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.func_by_name.get(name).copied()
    }

    /// The global stored under `id`.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// Looks up a global id by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.global_by_name.get(name).copied()
    }

    /// Ids of all function definitions (with bodies).
    pub fn definitions(&self) -> impl Iterator<Item = FuncId> + '_ {
        self.functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_definition)
            .map(|(i, _)| FuncId(i as u32))
    }

    /// The effective *external* name of a call target: `Some` both for
    /// `Callee::External` and for calls bound to prototypes without bodies
    /// (the common case for libc/shm runtime functions declared in
    /// headers).
    pub fn external_callee_name<'a>(&'a self, callee: &'a Callee) -> Option<&'a str> {
        match callee {
            Callee::External(n) => Some(n),
            Callee::Local(f) if !self.function(*f).is_definition => Some(&self.function(*f).name),
            _ => None,
        }
    }

    /// Resolves a type name as written in an annotation `sizeof(...)`:
    /// typedef names, struct tags, and primitive names all work.
    pub fn sizeof_name(&self, name: &str) -> Option<u64> {
        if let Some(t) = self.typedefs.get(name) {
            return Some(self.types.size_of(t));
        }
        if let Some(id) = self.types.struct_by_name(name) {
            return Some(self.types.layout(id).size);
        }
        match name {
            "char" => Some(1),
            "short" => Some(2),
            "int" | "float" => Some(4),
            "long" | "double" => Some(8),
            _ => None,
        }
    }

    /// The type of `value` as seen inside `func`.
    pub fn value_type(&self, func: &Function, value: &Value) -> Type {
        match value {
            Value::Inst(id) => func.inst(*id).ty.clone(),
            Value::Param(i) => func.params[*i as usize].ty.clone(),
            Value::Global(g) => self.global(*g).ty.ptr_to(),
            Value::ConstInt(_, t) | Value::ConstFloat(_, t) | Value::ConstNull(t) => t.clone(),
        }
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_fn(name: &str, def: bool) -> Function {
        Function {
            name: name.into(),
            ret: Type::Void,
            params: vec![],
            varargs: false,
            insts: vec![],
            blocks: vec![],
            annotations: vec![],
            is_definition: def,
            span: Span::dummy(),
        }
    }

    #[test]
    fn definition_replaces_prototype() {
        let mut m = Module::new();
        let id1 = m.add_function(dummy_fn("f", false));
        let id2 = m.add_function(dummy_fn("f", true));
        assert_eq!(id1, id2);
        assert!(m.function(id1).is_definition);
        // A later prototype does not clobber the definition.
        let id3 = m.add_function(dummy_fn("f", false));
        assert_eq!(id1, id3);
        assert!(m.function(id1).is_definition);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Switch {
            value: Value::i32(0),
            cases: vec![(1, BlockId(1)), (2, BlockId(2))],
            default: BlockId(3),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2), BlockId(3)]);
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    fn inst_operand_enumeration() {
        let k = InstKind::Bin { op: BinOp::Add, lhs: Value::i32(1), rhs: Value::i32(2) };
        assert_eq!(k.operands().len(), 2);
        let call = InstKind::Call {
            callee: Callee::External("kill".into()),
            args: vec![Value::i32(1), Value::i32(9)],
        };
        assert_eq!(call.operands().len(), 2);
        assert!(call.has_side_effects());
        assert!(!k.has_side_effects());
    }

    #[test]
    fn global_dedup() {
        let mut m = Module::new();
        let g1 = m.add_global(Global {
            name: "x".into(),
            ty: Type::int32(),
            has_init: false,
            span: Span::dummy(),
        });
        let g2 = m.add_global(Global {
            name: "x".into(),
            ty: Type::int32(),
            has_init: true,
            span: Span::dummy(),
        });
        assert_eq!(g1, g2);
        assert_eq!(m.globals.len(), 1);
    }

    #[test]
    fn value_constructors() {
        assert!(Value::i32(5).is_const());
        assert_eq!(Value::i32(5).as_const_int(), Some(5));
        assert!(!Value::Param(0).is_const());
    }
}
