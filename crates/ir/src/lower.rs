//! Lowering from the C AST to the typed IR.
//!
//! Two passes over the translation unit:
//!
//! 1. **Declarations**: struct layouts, enum constants, typedefs, globals,
//!    and function signatures are registered so that forward references
//!    resolve and every direct call site can be bound to a [`FuncId`].
//! 2. **Bodies**: each function body is lowered to a CFG. All locals start
//!    as `Alloca` slots; [`crate::ssa::promote_to_ssa`] later promotes the
//!    address-never-taken scalars to φ-joined SSA values.
//!
//! `assert(safe(x))` annotations lower to [`InstKind::AssertSafe`] anchors;
//! function-level annotations are copied onto the [`Function`].

use crate::module::*;
use crate::types::{Type, TypeTable};
use safeflow_syntax::annot::Annotation;
use safeflow_syntax::ast;
use safeflow_syntax::ast::{TypeExprKind, UnOp};
use safeflow_syntax::diag::Diagnostics;
use safeflow_syntax::span::Span;
use safeflow_util::Symbol;
use std::collections::HashMap;

/// Lowers a parsed translation unit to an IR module.
///
/// Errors (unknown types, bad constants, unsupported constructs) are
/// reported to `diags`; lowering is best-effort so later phases can still
/// run on the rest of the program.
pub fn lower(unit: &ast::TranslationUnit, diags: &mut Diagnostics) -> Module {
    let mut lw = Lowerer {
        module: Module::new(),
        ast: &unit.ast,
        typedefs: HashMap::new(),
        enum_consts: HashMap::new(),
        diags,
        str_counter: 0,
    };
    lw.register_declarations(unit);
    lw.lower_bodies(unit);
    // The module keeps name-keyed tables (annotation expressions resolve
    // against them by string); convert from the interned keys once here.
    lw.module.typedefs =
        lw.typedefs.into_iter().map(|(k, v)| (k.as_str().to_string(), v)).collect();
    lw.module.enum_consts =
        lw.enum_consts.into_iter().map(|(k, v)| (k.as_str().to_string(), v)).collect();
    lw.module
}

struct Lowerer<'u, 'd> {
    module: Module,
    /// Node arena of the unit being lowered.
    ast: &'u ast::Ast,
    typedefs: HashMap<Symbol, Type>,
    enum_consts: HashMap<Symbol, i64>,
    diags: &'d mut Diagnostics,
    str_counter: u32,
}

impl<'u, 'd> Lowerer<'u, 'd> {
    // ---- pass 1: declarations ------------------------------------------

    fn register_declarations(&mut self, unit: &ast::TranslationUnit) {
        for item in &unit.items {
            match item {
                ast::Item::Struct(s) => {
                    // Declare first so self-referential pointers resolve.
                    self.module.types.declare_struct(s.name.as_str(), s.is_union);
                    let fields: Vec<(String, Type)> = s
                        .fields
                        .iter()
                        .map(|f| (f.name.as_str().to_string(), self.resolve_type(f.ty)))
                        .collect();
                    self.module.types.define_struct(s.name.as_str(), fields, s.is_union);
                }
                ast::Item::Enum(e) => {
                    let mut next = 0i64;
                    for (name, value, span) in &e.variants {
                        let v = match value {
                            Some(expr) => match self.const_eval(*expr) {
                                Some(v) => v,
                                None => {
                                    self.diags.error(
                                        *span,
                                        format!("enumerator `{name}` is not a constant expression"),
                                    );
                                    next
                                }
                            },
                            None => next,
                        };
                        self.enum_consts.insert(*name, v);
                        next = v + 1;
                    }
                }
                ast::Item::Typedef(t) => {
                    let ty = self.resolve_type(t.ty);
                    self.typedefs.insert(t.name, ty);
                }
                ast::Item::Global(g) => {
                    let ty = self.resolve_type(g.ty);
                    self.module.add_global(Global {
                        name: g.name.as_str().to_string(),
                        ty,
                        has_init: g.init.is_some(),
                        span: g.span,
                    });
                }
                ast::Item::Func(f) => {
                    let ret = self.resolve_type(f.ret);
                    let params = f
                        .params
                        .iter()
                        .map(|p| IrParam {
                            name: p.name.as_str().to_string(),
                            ty: self.resolve_type(p.ty),
                        })
                        .collect();
                    self.module.add_function(Function {
                        name: f.name.as_str().to_string(),
                        ret,
                        params,
                        varargs: f.varargs,
                        insts: Vec::new(),
                        blocks: Vec::new(),
                        annotations: f.annotations.clone(),
                        is_definition: false, // bodies come in pass 2
                        span: f.span,
                    });
                }
            }
        }
    }

    fn lower_bodies(&mut self, unit: &ast::TranslationUnit) {
        for item in &unit.items {
            if let ast::Item::Func(f) = item {
                if f.body.is_some() {
                    self.lower_function(f);
                }
            }
        }
    }

    // ---- type resolution -------------------------------------------------

    fn resolve_type(&mut self, te: ast::TypeId) -> Type {
        let node = *self.ast.type_expr(te);
        match node.kind {
            TypeExprKind::Void => Type::Void,
            TypeExprKind::Char(s) => Type::Int { bits: 8, signed: s == ast::Signedness::Signed },
            TypeExprKind::Short(s) => Type::Int { bits: 16, signed: s == ast::Signedness::Signed },
            TypeExprKind::Int(s) => Type::Int { bits: 32, signed: s == ast::Signedness::Signed },
            TypeExprKind::Long(s) => Type::Int { bits: 64, signed: s == ast::Signedness::Signed },
            TypeExprKind::Float => Type::f32(),
            TypeExprKind::Double => Type::f64(),
            TypeExprKind::Named(n) => match self.typedefs.get(&n) {
                Some(t) => t.clone(),
                None => {
                    self.diags.error(node.span, format!("unknown type name `{n}`"));
                    Type::int32()
                }
            },
            TypeExprKind::Struct(tag) | TypeExprKind::Union(tag) => {
                let is_union = matches!(node.kind, TypeExprKind::Union(_));
                let id = self.module.types.struct_by_name(tag.as_str()).unwrap_or_else(|| {
                    // Forward reference: declare the tag.
                    self.module.types.declare_struct(tag.as_str(), is_union)
                });
                Type::Struct(id)
            }
            TypeExprKind::Enum(_) => Type::int32(),
            TypeExprKind::Ptr(inner) => self.resolve_type(inner).ptr_to(),
            TypeExprKind::Array(inner, size) => {
                let elem = self.resolve_type(inner);
                let n = match size {
                    Some(e) => match self.const_eval(e) {
                        Some(v) if v >= 0 => v as u64,
                        _ => {
                            self.diags
                                .error(node.span, "array size must be a nonnegative constant");
                            1
                        }
                    },
                    None => {
                        self.diags.error(
                            node.span,
                            "arrays must have an explicit constant size in the restricted subset",
                        );
                        1
                    }
                };
                Type::Array(Box::new(elem), n)
            }
        }
    }

    // ---- constant evaluation ----------------------------------------------

    fn const_eval(&mut self, e: ast::ExprId) -> Option<i64> {
        use ast::ExprKind as EK;
        match &self.ast.expr(e).kind {
            EK::IntLit(v) => Some(*v),
            EK::CharLit(v) => Some(*v),
            EK::Ident(n) => self.enum_consts.get(n).copied(),
            EK::Unary(UnOp::Neg, inner) => Some(-self.const_eval(*inner)?),
            EK::Unary(UnOp::Plus, inner) => self.const_eval(*inner),
            EK::Unary(UnOp::BitNot, inner) => Some(!self.const_eval(*inner)?),
            EK::Unary(UnOp::Not, inner) => Some(i64::from(self.const_eval(*inner)? == 0)),
            EK::Binary(op, l, r) => {
                let (l, r) = (*l, *r);
                let a = self.const_eval(l)?;
                let b = self.const_eval(r)?;
                use ast::BinOp as B;
                Some(match op {
                    B::Add => a.wrapping_add(b),
                    B::Sub => a.wrapping_sub(b),
                    B::Mul => a.wrapping_mul(b),
                    B::Div => {
                        if b == 0 {
                            return None;
                        }
                        a / b
                    }
                    B::Rem => {
                        if b == 0 {
                            return None;
                        }
                        a % b
                    }
                    B::Shl => a.wrapping_shl(b as u32),
                    B::Shr => a.wrapping_shr(b as u32),
                    B::Lt => i64::from(a < b),
                    B::Le => i64::from(a <= b),
                    B::Gt => i64::from(a > b),
                    B::Ge => i64::from(a >= b),
                    B::Eq => i64::from(a == b),
                    B::Ne => i64::from(a != b),
                    B::BitAnd => a & b,
                    B::BitXor => a ^ b,
                    B::BitOr => a | b,
                })
            }
            EK::SizeofType(te) => {
                let ty = self.resolve_type(*te);
                Some(self.module.types.size_of(&ty) as i64)
            }
            EK::Conditional { cond, then, els } => {
                let (cond, then, els) = (*cond, *then, *els);
                let c = self.const_eval(cond)?;
                if c != 0 {
                    self.const_eval(then)
                } else {
                    self.const_eval(els)
                }
            }
            _ => None,
        }
    }

    // ---- function body lowering -------------------------------------------

    fn lower_function(&mut self, f: &ast::FuncDef) {
        let fid = self.module.function_by_name(f.name.as_str()).expect("registered in pass 1");
        let ret = self.module.function(fid).ret.clone();
        let params = self.module.function(fid).params.clone();

        let mut fl = FnLower {
            lw: self,
            insts: Vec::new(),
            blocks: vec![BasicBlock {
                insts: Vec::new(),
                terminator: Terminator::Unreachable,
                name: "entry".into(),
            }],
            cur: BlockId(0),
            terminated: false,
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
            extra_annotations: Vec::new(),
            ret_ty: ret.clone(),
        };

        // Spill parameters into allocas so they behave like C lvalues; SSA
        // promotion removes the indirection.
        for (i, p) in params.iter().enumerate() {
            if p.name.is_empty() {
                continue;
            }
            let slot = fl.emit(
                InstKind::Alloca { ty: p.ty.clone(), name: p.name.clone() },
                p.ty.ptr_to(),
                f.span,
            );
            fl.emit(
                InstKind::Store { ptr: Value::Inst(slot), value: Value::Param(i as u32) },
                Type::Void,
                f.span,
            );
            fl.scopes
                .last_mut()
                .unwrap()
                .insert(Symbol::intern(&p.name), LocalSlot { addr: slot, ty: p.ty.clone() });
        }

        let body = f.body.as_ref().expect("definition");
        fl.lower_block(body);

        // Implicit return at the end of the function.
        if !fl.terminated {
            let term = if ret == Type::Void {
                Terminator::Ret(None)
            } else if f.name == "main" {
                Terminator::Ret(Some(Value::i32(0)))
            } else {
                Terminator::Ret(None)
            };
            fl.set_terminator(term);
        }

        let insts = std::mem::take(&mut fl.insts);
        let blocks = std::mem::take(&mut fl.blocks);
        let extra = std::mem::take(&mut fl.extra_annotations);
        let func = self.module.function_mut(fid);
        func.insts = insts;
        func.blocks = blocks;
        func.is_definition = true;
        func.annotations = f.annotations.clone();
        func.annotations.extend(extra);
    }
}

#[derive(Debug, Clone)]
struct LocalSlot {
    addr: InstId,
    ty: Type,
}

struct FnLower<'a, 'u, 'd> {
    lw: &'a mut Lowerer<'u, 'd>,
    insts: Vec<Inst>,
    blocks: Vec<BasicBlock>,
    cur: BlockId,
    terminated: bool,
    scopes: Vec<HashMap<Symbol, LocalSlot>>,
    /// `(continue_target, break_target)` stack.
    loops: Vec<(BlockId, BlockId)>,
    /// Function-level annotations found in statement position (e.g. the
    /// paper's Figure 3 post-conditions at the end of `initComm`).
    extra_annotations: Vec<Annotation>,
    ret_ty: Type,
}

/// What an lvalue lowered to: an address plus the value type stored there.
struct Place {
    addr: Value,
    ty: Type,
}

impl<'a, 'u, 'd> FnLower<'a, 'u, 'd> {
    // ---- block/instruction plumbing ----

    fn emit(&mut self, kind: InstKind, ty: Type, span: Span) -> InstId {
        if self.terminated {
            // Dead code after return/break: keep lowering into a fresh
            // unreachable block so diagnostics still fire.
            let dead = self.new_block("dead");
            self.switch_to(dead);
        }
        let id = InstId(self.insts.len() as u32);
        self.insts.push(Inst { kind, ty, span });
        self.blocks[self.cur.0 as usize].insts.push(id);
        id
    }

    fn new_block(&mut self, name: &str) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            insts: Vec::new(),
            terminator: Terminator::Unreachable,
            name: name.to_string(),
        });
        id
    }

    fn set_terminator(&mut self, t: Terminator) {
        if !self.terminated {
            self.blocks[self.cur.0 as usize].terminator = t;
            self.terminated = true;
        }
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
        self.terminated = false;
    }

    fn branch_to(&mut self, b: BlockId) {
        self.set_terminator(Terminator::Br(b));
        self.switch_to(b);
    }

    fn lookup(&self, name: Symbol) -> Option<LocalSlot> {
        for scope in self.scopes.iter().rev() {
            if let Some(s) = scope.get(&name) {
                return Some(s.clone());
            }
        }
        None
    }

    fn types(&self) -> &TypeTable {
        &self.lw.module.types
    }

    // ---- statements ----

    fn lower_block(&mut self, b: &ast::Block) {
        self.scopes.push(HashMap::new());
        for stmt in &b.items {
            self.lower_stmt(*stmt);
        }
        self.scopes.pop();
    }

    fn lower_stmt(&mut self, s: ast::StmtId) {
        use ast::StmtKind as SK;
        let ast = self.lw.ast;
        let stmt = ast.stmt(s);
        let span = stmt.span;
        match &stmt.kind {
            SK::Empty => {}
            SK::Expr(e) => {
                let _ = self.lower_rvalue(*e);
            }
            SK::Decl(d) => self.lower_local_decl(d),
            SK::Block(b) => self.lower_block(b),
            SK::If { cond, then, els } => {
                let (cond, then, els) = (*cond, *then, *els);
                let c = self.lower_condition(cond);
                let then_bb = self.new_block("if.then");
                let merge_bb = self.new_block("if.end");
                let else_bb = if els.is_some() { self.new_block("if.else") } else { merge_bb };
                self.set_terminator(Terminator::CondBr { cond: c, then_bb, else_bb });
                self.switch_to(then_bb);
                self.lower_stmt(then);
                self.set_terminator(Terminator::Br(merge_bb));
                if let Some(els) = els {
                    self.switch_to(else_bb);
                    self.lower_stmt(els);
                    self.set_terminator(Terminator::Br(merge_bb));
                }
                self.switch_to(merge_bb);
            }
            SK::While { cond, body } => {
                let (cond, body) = (*cond, *body);
                let cond_bb = self.new_block("while.cond");
                let body_bb = self.new_block("while.body");
                let exit_bb = self.new_block("while.end");
                self.branch_to(cond_bb);
                let c = self.lower_condition(cond);
                self.set_terminator(Terminator::CondBr {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit_bb,
                });
                self.switch_to(body_bb);
                self.loops.push((cond_bb, exit_bb));
                self.lower_stmt(body);
                self.loops.pop();
                self.set_terminator(Terminator::Br(cond_bb));
                self.switch_to(exit_bb);
            }
            SK::DoWhile { body, cond } => {
                let (body, cond) = (*body, *cond);
                let body_bb = self.new_block("do.body");
                let cond_bb = self.new_block("do.cond");
                let exit_bb = self.new_block("do.end");
                self.branch_to(body_bb);
                self.loops.push((cond_bb, exit_bb));
                self.lower_stmt(body);
                self.loops.pop();
                self.set_terminator(Terminator::Br(cond_bb));
                self.switch_to(cond_bb);
                let c = self.lower_condition(cond);
                self.set_terminator(Terminator::CondBr {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit_bb,
                });
                self.switch_to(exit_bb);
            }
            SK::For { init, cond, step, body } => {
                let (init, cond, step, body) = (*init, *cond, *step, *body);
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.lower_stmt(init);
                }
                let cond_bb = self.new_block("for.cond");
                let body_bb = self.new_block("for.body");
                let step_bb = self.new_block("for.step");
                let exit_bb = self.new_block("for.end");
                self.branch_to(cond_bb);
                match cond {
                    Some(c) => {
                        let cv = self.lower_condition(c);
                        self.set_terminator(Terminator::CondBr {
                            cond: cv,
                            then_bb: body_bb,
                            else_bb: exit_bb,
                        });
                    }
                    None => self.set_terminator(Terminator::Br(body_bb)),
                }
                self.switch_to(body_bb);
                self.loops.push((step_bb, exit_bb));
                self.lower_stmt(body);
                self.loops.pop();
                self.set_terminator(Terminator::Br(step_bb));
                self.switch_to(step_bb);
                if let Some(step) = step {
                    let _ = self.lower_rvalue(step);
                }
                self.set_terminator(Terminator::Br(cond_bb));
                self.switch_to(exit_bb);
                self.scopes.pop();
            }
            SK::Switch { scrutinee, cases } => self.lower_switch(*scrutinee, cases, span),
            SK::Return(value) => {
                let v = match value {
                    Some(e) => {
                        let e = *e;
                        let (v, ty) = self.lower_rvalue(e);
                        let ret_ty = self.ret_ty.clone();
                        Some(self.coerce(v, &ty, &ret_ty, ast.expr(e).span))
                    }
                    None => None,
                };
                self.set_terminator(Terminator::Ret(v));
            }
            SK::Break => match self.loops.last() {
                Some(&(_, brk)) => self.set_terminator(Terminator::Br(brk)),
                None => self.lw.diags.error(span, "`break` outside of a loop or switch"),
            },
            SK::Continue => match self.loops.last() {
                Some(&(cont, _)) => self.set_terminator(Terminator::Br(cont)),
                None => self.lw.diags.error(span, "`continue` outside of a loop"),
            },
            SK::Annotation(a) => self.lower_annotation(a, span),
        }
    }

    fn lower_annotation(&mut self, a: &Annotation, span: Span) {
        match a {
            Annotation::AssertSafe { var, .. } => {
                // Anchor the assertion at this program point with the
                // current value of `var`.
                match self.lookup(Symbol::intern(var)) {
                    Some(slot) => {
                        let v = self.emit(
                            InstKind::Load { ptr: Value::Inst(slot.addr) },
                            slot.ty,
                            span,
                        );
                        self.emit(
                            InstKind::AssertSafe { var: var.clone(), value: Value::Inst(v) },
                            Type::Void,
                            span,
                        );
                    }
                    None => {
                        // Maybe a global.
                        match self.lw.module.global_by_name(var) {
                            Some(gid) => {
                                let gty = self.lw.module.global(gid).ty.clone();
                                let v = self.emit(
                                    InstKind::Load { ptr: Value::Global(gid) },
                                    gty,
                                    span,
                                );
                                self.emit(
                                    InstKind::AssertSafe {
                                        var: var.clone(),
                                        value: Value::Inst(v),
                                    },
                                    Type::Void,
                                    span,
                                );
                            }
                            None => self.lw.diags.error(
                                span,
                                format!("assert(safe({var})): unknown variable `{var}`"),
                            ),
                        }
                    }
                }
            }
            other => {
                // Function-level facts written in statement position (e.g.
                // Figure 3 post-conditions) attach to the function.
                self.extra_annotations.push(other.clone());
            }
        }
    }

    fn lower_switch(&mut self, scrutinee: ast::ExprId, cases: &[ast::SwitchCase], span: Span) {
        let (scrut, sty) = self.lower_rvalue(scrutinee);
        let scrut = self.coerce(scrut, &sty, &Type::int64(), span);
        let exit_bb = self.new_block("switch.end");

        // Create one block per case arm.
        let case_blocks: Vec<BlockId> =
            (0..cases.len()).map(|i| self.new_block(&format!("switch.case{i}"))).collect();

        let mut arms = Vec::new();
        let mut default = exit_bb;
        for (i, case) in cases.iter().enumerate() {
            match &case.label {
                Some(label) => match self.lw.const_eval(*label) {
                    Some(v) => arms.push((v, case_blocks[i])),
                    None => {
                        self.lw.diags.error(case.span, "case label must be a constant expression")
                    }
                },
                None => default = case_blocks[i],
            }
        }
        self.set_terminator(Terminator::Switch { value: scrut, cases: arms, default });

        // Lower arm bodies with fallthrough semantics.
        self.loops.push((exit_bb, exit_bb)); // `continue` in switch is rare; treat like break target for safety
        for (i, case) in cases.iter().enumerate() {
            self.switch_to(case_blocks[i]);
            for stmt in &case.stmts {
                self.lower_stmt(*stmt);
            }
            // Fallthrough to the next case block, or exit.
            let next = case_blocks.get(i + 1).copied().unwrap_or(exit_bb);
            self.set_terminator(Terminator::Br(next));
        }
        self.loops.pop();
        self.switch_to(exit_bb);
    }

    fn lower_local_decl(&mut self, d: &ast::VarDecl) {
        let ty = self.lw.resolve_type(d.ty);
        let slot = self.emit(
            InstKind::Alloca { ty: ty.clone(), name: d.name.as_str().to_string() },
            ty.ptr_to(),
            d.span,
        );
        self.scopes.last_mut().unwrap().insert(d.name, LocalSlot { addr: slot, ty: ty.clone() });
        if let Some(init) = d.init {
            self.lower_initializer(Value::Inst(slot), &ty, init, d.span);
        }
    }

    fn lower_initializer(&mut self, addr: Value, ty: &Type, init: ast::InitId, span: Span) {
        let ast = self.lw.ast;
        match (ast.init(init), ty) {
            (ast::Initializer::Expr(e), _) => {
                let e = *e;
                let (v, vty) = self.lower_rvalue(e);
                let v = self.coerce(v, &vty, ty, ast.expr(e).span);
                self.emit(InstKind::Store { ptr: addr, value: v }, Type::Void, span);
            }
            (ast::Initializer::List(items, lspan), Type::Array(elem, n)) => {
                if items.len() as u64 > *n {
                    self.lw.diags.error(*lspan, "too many initializers for array");
                }
                for (i, item) in items.iter().enumerate().take(*n as usize) {
                    let eaddr = self.emit(
                        InstKind::ElemAddr { base: addr.clone(), index: Value::i32(i as i64) },
                        (**elem).ptr_to(),
                        *lspan,
                    );
                    self.lower_initializer(Value::Inst(eaddr), elem, *item, *lspan);
                }
            }
            (ast::Initializer::List(items, lspan), Type::Struct(sid)) => {
                let layout = self.types().layout(*sid).clone();
                if items.len() > layout.fields.len() {
                    self.lw.diags.error(*lspan, "too many initializers for struct");
                }
                for (i, item) in items.iter().enumerate().take(layout.fields.len()) {
                    let fty = layout.fields[i].ty.clone();
                    let faddr = self.emit(
                        InstKind::FieldAddr {
                            base: addr.clone(),
                            struct_id: *sid,
                            field: i as u32,
                        },
                        fty.ptr_to(),
                        *lspan,
                    );
                    self.lower_initializer(Value::Inst(faddr), &fty, *item, *lspan);
                }
            }
            (ast::Initializer::List(items, lspan), _) => {
                // Scalar brace init: `int x = {3};`
                match items.as_slice() {
                    [single] => self.lower_initializer(addr, ty, *single, span),
                    _ => self.lw.diags.error(*lspan, "brace initializer on scalar"),
                }
            }
        }
    }

    // ---- expressions ----

    /// Lowers `e` as a condition: a scalar value tested against zero.
    fn lower_condition(&mut self, e: ast::ExprId) -> Value {
        let span = self.lw.ast.expr(e).span;
        let (v, ty) = self.lower_rvalue(e);
        match ty {
            Type::Int { .. } => v,
            Type::Ptr(_) => {
                let null = Value::ConstNull(ty.clone());
                Value::Inst(self.emit(
                    InstKind::Cmp { op: CmpOp::Ne, lhs: v, rhs: null },
                    Type::int32(),
                    span,
                ))
            }
            Type::Float { .. } => {
                let zero = Value::ConstFloat(0.0, ty.clone());
                Value::Inst(self.emit(
                    InstKind::Cmp { op: CmpOp::Ne, lhs: v, rhs: zero },
                    Type::int32(),
                    span,
                ))
            }
            _ => {
                self.lw.diags.error(span, "condition must have scalar type");
                Value::i32(0)
            }
        }
    }

    /// Lowers `e` as an rvalue, returning the value and its type.
    fn lower_rvalue(&mut self, e: ast::ExprId) -> (Value, Type) {
        use ast::ExprKind as EK;
        let ast = self.lw.ast;
        let node = ast.expr(e);
        let span = node.span;
        match &node.kind {
            EK::IntLit(v) => (Value::ConstInt(*v, Type::int32()), Type::int32()),
            EK::CharLit(v) => (Value::ConstInt(*v, Type::int8()), Type::int8()),
            EK::FloatLit(v) => (Value::ConstFloat(*v, Type::f64()), Type::f64()),
            EK::StrLit(s) => self.lower_string_literal(s.as_str(), span),
            EK::Ident(n) => {
                // Enum constant?
                if let Some(&v) = self.lw.enum_consts.get(n) {
                    return (Value::ConstInt(v, Type::int32()), Type::int32());
                }
                match self.lower_lvalue(e) {
                    Some(place) => self.load_place(place, span),
                    None => (Value::i32(0), Type::int32()),
                }
            }
            EK::Member { .. } | EK::Index(..) | EK::Unary(UnOp::Deref, _) => {
                match self.lower_lvalue(e) {
                    Some(place) => self.load_place(place, span),
                    None => (Value::i32(0), Type::int32()),
                }
            }
            EK::Unary(UnOp::AddrOf, inner) => match self.lower_lvalue(*inner) {
                Some(place) => {
                    let ty = place.ty.ptr_to();
                    (place.addr, ty)
                }
                None => (Value::ConstNull(Type::void_ptr()), Type::void_ptr()),
            },
            EK::Unary(op, inner) => {
                let (v, ty) = self.lower_rvalue(*inner);
                match op {
                    UnOp::Plus => (v, ty),
                    UnOp::Neg => {
                        let zero = if ty.is_float() {
                            Value::ConstFloat(0.0, ty.clone())
                        } else {
                            Value::ConstInt(0, ty.clone())
                        };
                        let id = self.emit(
                            InstKind::Bin { op: BinOp::Sub, lhs: zero, rhs: v },
                            ty.clone(),
                            span,
                        );
                        (Value::Inst(id), ty)
                    }
                    UnOp::Not => {
                        let zero = if ty.is_float() {
                            Value::ConstFloat(0.0, ty.clone())
                        } else if ty.is_ptr() {
                            Value::ConstNull(ty.clone())
                        } else {
                            Value::ConstInt(0, ty.clone())
                        };
                        let id = self.emit(
                            InstKind::Cmp { op: CmpOp::Eq, lhs: v, rhs: zero },
                            Type::int32(),
                            span,
                        );
                        (Value::Inst(id), Type::int32())
                    }
                    UnOp::BitNot => {
                        let m1 = Value::ConstInt(-1, ty.clone());
                        let id = self.emit(
                            InstKind::Bin { op: BinOp::Xor, lhs: v, rhs: m1 },
                            ty.clone(),
                            span,
                        );
                        (Value::Inst(id), ty)
                    }
                    UnOp::Deref | UnOp::AddrOf => unreachable!("handled above"),
                }
            }
            EK::Binary(op, l, r) => self.lower_binary(*op, *l, *r, span),
            EK::LogicalAnd(l, r) => self.lower_short_circuit(*l, *r, true, span),
            EK::LogicalOr(l, r) => self.lower_short_circuit(*l, *r, false, span),
            EK::Assign { op, lhs, rhs } => self.lower_assign(op, *lhs, *rhs, span),
            EK::Conditional { cond, then, els } => self.lower_ternary(*cond, *then, *els, span),
            EK::Call { callee, args } => self.lower_call(callee.as_str(), args, span),
            EK::Cast(te, inner) => {
                let to = self.lw.resolve_type(*te);
                let (v, from) = self.lower_rvalue(*inner);
                let v = self.cast_value(v, &from, &to, span);
                (v, to)
            }
            EK::SizeofType(te) => {
                let ty = self.lw.resolve_type(*te);
                let sz = self.types().size_of(&ty) as i64;
                (Value::ConstInt(sz, Type::int64()), Type::int64())
            }
            EK::SizeofExpr(inner) => {
                // Type of the expression without evaluating it: lower into a
                // scratch throwaway? The restricted subset only needs the
                // type, so lower and discard (safe: no side effects matter
                // for sizeof in practice in the corpus).
                let ty = self.type_of_expr(*inner);
                let sz = self.types().size_of(&ty) as i64;
                (Value::ConstInt(sz, Type::int64()), Type::int64())
            }
            EK::PreIncDec(inner, inc) => {
                let delta = if *inc { 1 } else { -1 };
                match self.lower_lvalue(*inner) {
                    Some(place) => {
                        let (old, ty) = self.load_place(
                            Place { addr: place.addr.clone(), ty: place.ty.clone() },
                            span,
                        );
                        let new_v = self.apply_incdec(old, &ty, delta, span);
                        self.emit(
                            InstKind::Store { ptr: place.addr, value: new_v.clone() },
                            Type::Void,
                            span,
                        );
                        (new_v, ty)
                    }
                    None => (Value::i32(0), Type::int32()),
                }
            }
            EK::PostIncDec(inner, inc) => {
                let delta = if *inc { 1 } else { -1 };
                match self.lower_lvalue(*inner) {
                    Some(place) => {
                        let (old, ty) = self.load_place(
                            Place { addr: place.addr.clone(), ty: place.ty.clone() },
                            span,
                        );
                        let new_v = self.apply_incdec(old.clone(), &ty, delta, span);
                        self.emit(
                            InstKind::Store { ptr: place.addr, value: new_v },
                            Type::Void,
                            span,
                        );
                        (old, ty)
                    }
                    None => (Value::i32(0), Type::int32()),
                }
            }
            EK::Comma(l, r) => {
                let (l, r) = (*l, *r);
                let _ = self.lower_rvalue(l);
                self.lower_rvalue(r)
            }
        }
    }

    fn apply_incdec(&mut self, v: Value, ty: &Type, delta: i64, span: Span) -> Value {
        match ty {
            Type::Ptr(_) => {
                let id = self.emit(
                    InstKind::ElemAddr { base: v, index: Value::i32(delta) },
                    ty.clone(),
                    span,
                );
                Value::Inst(id)
            }
            Type::Float { .. } => {
                let one = Value::ConstFloat(delta as f64, ty.clone());
                let id =
                    self.emit(InstKind::Bin { op: BinOp::Add, lhs: v, rhs: one }, ty.clone(), span);
                Value::Inst(id)
            }
            _ => {
                let one = Value::ConstInt(delta, ty.clone());
                let id =
                    self.emit(InstKind::Bin { op: BinOp::Add, lhs: v, rhs: one }, ty.clone(), span);
                Value::Inst(id)
            }
        }
    }

    fn lower_string_literal(&mut self, s: &str, span: Span) -> (Value, Type) {
        let name = format!("__str_{}", self.lw.str_counter);
        self.lw.str_counter += 1;
        let ty = Type::Array(Box::new(Type::int8()), s.len() as u64 + 1);
        let gid = self.lw.module.add_global(Global { name, ty, has_init: true, span });
        // Decay to char*.
        let id = self.emit(
            InstKind::ElemAddr { base: Value::Global(gid), index: Value::i32(0) },
            Type::int8().ptr_to(),
            span,
        );
        (Value::Inst(id), Type::int8().ptr_to())
    }

    /// Best-effort static type of an expression (for `sizeof expr`).
    fn type_of_expr(&mut self, e: ast::ExprId) -> Type {
        use ast::ExprKind as EK;
        let ast = self.lw.ast;
        match &ast.expr(e).kind {
            EK::IntLit(_) => Type::int32(),
            EK::FloatLit(_) => Type::f64(),
            EK::CharLit(_) => Type::int8(),
            EK::StrLit(s) => Type::Array(Box::new(Type::int8()), s.as_str().len() as u64 + 1),
            EK::Ident(n) => self
                .lookup(*n)
                .map(|s| s.ty)
                .or_else(|| {
                    self.lw
                        .module
                        .global_by_name(n.as_str())
                        .map(|g| self.lw.module.global(g).ty.clone())
                })
                .unwrap_or_else(Type::int32),
            EK::Unary(UnOp::Deref, inner) => {
                let t = self.type_of_expr(*inner);
                t.pointee().cloned().unwrap_or_else(Type::int32)
            }
            EK::Unary(UnOp::AddrOf, inner) => self.type_of_expr(*inner).ptr_to(),
            EK::Cast(te, _) => self.lw.resolve_type(*te),
            EK::Member { base, field, arrow } => {
                let bt = self.type_of_expr(*base);
                let st = if *arrow { bt.pointee().cloned().unwrap_or(Type::Void) } else { bt };
                if let Type::Struct(sid) = st {
                    let layout = self.types().layout(sid);
                    if let Some(i) = layout.field_index(field.as_str()) {
                        return layout.fields[i].ty.clone();
                    }
                }
                Type::int32()
            }
            EK::Index(base, _) => {
                let bt = self.type_of_expr(*base);
                match bt {
                    Type::Array(e, _) => *e,
                    Type::Ptr(e) => *e,
                    _ => Type::int32(),
                }
            }
            _ => Type::int32(),
        }
    }

    /// Loads from a place; arrays decay to element pointers instead of
    /// loading.
    fn load_place(&mut self, place: Place, span: Span) -> (Value, Type) {
        match &place.ty {
            Type::Array(elem, _) => {
                let pty = (**elem).ptr_to();
                let id = self.emit(
                    InstKind::ElemAddr { base: place.addr, index: Value::i32(0) },
                    pty.clone(),
                    span,
                );
                (Value::Inst(id), pty)
            }
            _ => {
                let id = self.emit(InstKind::Load { ptr: place.addr }, place.ty.clone(), span);
                (Value::Inst(id), place.ty)
            }
        }
    }

    /// Lowers `e` as an lvalue to an address.
    fn lower_lvalue(&mut self, e: ast::ExprId) -> Option<Place> {
        use ast::ExprKind as EK;
        let ast = self.lw.ast;
        let node = ast.expr(e);
        let span = node.span;
        match &node.kind {
            EK::Ident(n) => {
                if let Some(slot) = self.lookup(*n) {
                    return Some(Place { addr: Value::Inst(slot.addr), ty: slot.ty });
                }
                if let Some(gid) = self.lw.module.global_by_name(n.as_str()) {
                    let ty = self.lw.module.global(gid).ty.clone();
                    return Some(Place { addr: Value::Global(gid), ty });
                }
                self.lw.diags.error(span, format!("unknown variable `{n}`"));
                None
            }
            EK::Unary(UnOp::Deref, inner) => {
                let (v, ty) = self.lower_rvalue(*inner);
                match ty.pointee() {
                    Some(p) => Some(Place { addr: v, ty: p.clone() }),
                    None => {
                        self.lw.diags.error(span, "cannot dereference a non-pointer");
                        None
                    }
                }
            }
            EK::Index(base, index) => {
                let (base, index) = (*base, *index);
                let (bv, bty) = self.lower_rvalue(base); // arrays decay here
                let (iv, ity) = self.lower_rvalue(index);
                let iv = self.coerce(iv, &ity, &Type::int64(), ast.expr(index).span);
                match bty.pointee() {
                    Some(elem) => {
                        let elem = elem.clone();
                        let id = self.emit(
                            InstKind::ElemAddr { base: bv, index: iv },
                            elem.ptr_to(),
                            span,
                        );
                        Some(Place { addr: Value::Inst(id), ty: elem })
                    }
                    None => {
                        self.lw.diags.error(span, "indexing a non-pointer value");
                        None
                    }
                }
            }
            EK::Member { base, field, arrow } => {
                let (base_addr, struct_ty) = if *arrow {
                    let (v, ty) = self.lower_rvalue(*base);
                    let p = ty.pointee().cloned();
                    match p {
                        Some(p) => (v, p),
                        None => {
                            self.lw.diags.error(span, "`->` on a non-pointer");
                            return None;
                        }
                    }
                } else {
                    let place = self.lower_lvalue(*base)?;
                    (place.addr, place.ty)
                };
                match struct_ty {
                    Type::Struct(sid) => {
                        let layout = self.types().layout(sid);
                        match layout.field_index(field.as_str()) {
                            Some(i) => {
                                let fty = layout.fields[i].ty.clone();
                                let id = self.emit(
                                    InstKind::FieldAddr {
                                        base: base_addr,
                                        struct_id: sid,
                                        field: i as u32,
                                    },
                                    fty.ptr_to(),
                                    span,
                                );
                                Some(Place { addr: Value::Inst(id), ty: fty })
                            }
                            None => {
                                let sname = self.types().layout(sid).name.clone();
                                self.lw.diags.error(
                                    span,
                                    format!("struct `{sname}` has no field `{field}`"),
                                );
                                None
                            }
                        }
                    }
                    _ => {
                        self.lw.diags.error(span, "member access on a non-struct");
                        None
                    }
                }
            }
            EK::Cast(te, inner) => {
                // `(T*)p` used as an lvalue base — lower the cast as rvalue
                // and synthesize a place through the result.
                let to = self.lw.resolve_type(*te);
                let (v, from) = self.lower_rvalue(*inner);
                let v = self.cast_value(v, &from, &to, span);
                match to.pointee() {
                    Some(_) => {
                        // The *place* here would be *(T*)p — only reachable
                        // via deref, which is handled above; a cast is not an
                        // lvalue in C.
                        let _ = v;
                        self.lw.diags.error(span, "cast expressions are not lvalues");
                        None
                    }
                    None => {
                        self.lw.diags.error(span, "cast expressions are not lvalues");
                        None
                    }
                }
            }
            _ => {
                self.lw.diags.error(span, "expression is not an lvalue");
                None
            }
        }
    }

    fn lower_binary(
        &mut self,
        op: ast::BinOp,
        l: ast::ExprId,
        r: ast::ExprId,
        span: Span,
    ) -> (Value, Type) {
        use ast::BinOp as B;
        let (lv, lt) = self.lower_rvalue(l);
        let (rv, rt) = self.lower_rvalue(r);

        // Pointer arithmetic.
        if matches!(op, B::Add | B::Sub) {
            match (&lt, &rt) {
                (Type::Ptr(_), t) if t.is_int() => {
                    let idx = if op == B::Sub {
                        let zero = Value::ConstInt(0, rt.clone());
                        Value::Inst(self.emit(
                            InstKind::Bin { op: BinOp::Sub, lhs: zero, rhs: rv },
                            rt.clone(),
                            span,
                        ))
                    } else {
                        rv
                    };
                    let id =
                        self.emit(InstKind::ElemAddr { base: lv, index: idx }, lt.clone(), span);
                    return (Value::Inst(id), lt);
                }
                (t, Type::Ptr(_)) if t.is_int() && op == B::Add => {
                    let id =
                        self.emit(InstKind::ElemAddr { base: rv, index: lv }, rt.clone(), span);
                    return (Value::Inst(id), rt);
                }
                (Type::Ptr(_), Type::Ptr(_)) if op == B::Sub => {
                    // Pointer difference: cast both to integers. (On shared
                    // memory this trips restriction P3, by design.)
                    let li = self.emit(
                        InstKind::Cast { kind: CastKind::PtrToInt, value: lv },
                        Type::int64(),
                        span,
                    );
                    let ri = self.emit(
                        InstKind::Cast { kind: CastKind::PtrToInt, value: rv },
                        Type::int64(),
                        span,
                    );
                    let id = self.emit(
                        InstKind::Bin {
                            op: BinOp::Sub,
                            lhs: Value::Inst(li),
                            rhs: Value::Inst(ri),
                        },
                        Type::int64(),
                        span,
                    );
                    return (Value::Inst(id), Type::int64());
                }
                _ => {}
            }
        }

        // Pointer comparisons.
        if op.is_comparison() && (lt.is_ptr() || rt.is_ptr()) {
            let cmp = comparison_op(op);
            let id = self.emit(InstKind::Cmp { op: cmp, lhs: lv, rhs: rv }, Type::int32(), span);
            return (Value::Inst(id), Type::int32());
        }

        // Usual arithmetic conversions (simplified): unify to the "wider"
        // of the two types.
        let common = common_type(&lt, &rt);
        let lv = self.coerce(lv, &lt, &common, span);
        let rv = self.coerce(rv, &rt, &common, span);

        if op.is_comparison() {
            let cmp = comparison_op(op);
            let id = self.emit(InstKind::Cmp { op: cmp, lhs: lv, rhs: rv }, Type::int32(), span);
            return (Value::Inst(id), Type::int32());
        }
        let bop = match op {
            B::Add => BinOp::Add,
            B::Sub => BinOp::Sub,
            B::Mul => BinOp::Mul,
            B::Div => BinOp::Div,
            B::Rem => BinOp::Rem,
            B::Shl => BinOp::Shl,
            B::Shr => BinOp::Shr,
            B::BitAnd => BinOp::And,
            B::BitOr => BinOp::Or,
            B::BitXor => BinOp::Xor,
            _ => unreachable!("comparisons handled above"),
        };
        let id = self.emit(InstKind::Bin { op: bop, lhs: lv, rhs: rv }, common.clone(), span);
        (Value::Inst(id), common)
    }

    fn lower_short_circuit(
        &mut self,
        l: ast::ExprId,
        r: ast::ExprId,
        is_and: bool,
        span: Span,
    ) -> (Value, Type) {
        // Lower via a result slot; SSA promotion turns it into a phi.
        let slot = self.emit(
            InstKind::Alloca { ty: Type::int32(), name: "__sc".into() },
            Type::int32().ptr_to(),
            span,
        );
        let lv = self.lower_condition(l);
        let lbool = self.normalize_bool(lv, span);
        self.emit(
            InstKind::Store { ptr: Value::Inst(slot), value: lbool.clone() },
            Type::Void,
            span,
        );
        let rhs_bb = self.new_block(if is_and { "and.rhs" } else { "or.rhs" });
        let merge_bb = self.new_block("sc.end");
        if is_and {
            self.set_terminator(Terminator::CondBr {
                cond: lbool,
                then_bb: rhs_bb,
                else_bb: merge_bb,
            });
        } else {
            self.set_terminator(Terminator::CondBr {
                cond: lbool,
                then_bb: merge_bb,
                else_bb: rhs_bb,
            });
        }
        self.switch_to(rhs_bb);
        let rv = self.lower_condition(r);
        let rbool = self.normalize_bool(rv, span);
        self.emit(InstKind::Store { ptr: Value::Inst(slot), value: rbool }, Type::Void, span);
        self.set_terminator(Terminator::Br(merge_bb));
        self.switch_to(merge_bb);
        let v = self.emit(InstKind::Load { ptr: Value::Inst(slot) }, Type::int32(), span);
        (Value::Inst(v), Type::int32())
    }

    fn normalize_bool(&mut self, v: Value, span: Span) -> Value {
        // Compare against zero so stored booleans are canonical 0/1.
        let id = self.emit(
            InstKind::Cmp { op: CmpOp::Ne, lhs: v, rhs: Value::i32(0) },
            Type::int32(),
            span,
        );
        Value::Inst(id)
    }

    fn lower_ternary(
        &mut self,
        cond: ast::ExprId,
        then: ast::ExprId,
        els: ast::ExprId,
        span: Span,
    ) -> (Value, Type) {
        let c = self.lower_condition(cond);
        let then_bb = self.new_block("sel.then");
        let else_bb = self.new_block("sel.else");
        let merge_bb = self.new_block("sel.end");

        // We need the result type before emitting stores; peek via a typing
        // pass on the then-branch.
        let result_ty = self.type_of_expr(then);
        let slot = self.emit(
            InstKind::Alloca { ty: result_ty.clone(), name: "__sel".into() },
            result_ty.ptr_to(),
            span,
        );
        self.set_terminator(Terminator::CondBr { cond: c, then_bb, else_bb });

        self.switch_to(then_bb);
        let (tv, tt) = self.lower_rvalue(then);
        let tv = self.coerce(tv, &tt, &result_ty, span);
        self.emit(InstKind::Store { ptr: Value::Inst(slot), value: tv }, Type::Void, span);
        self.set_terminator(Terminator::Br(merge_bb));

        self.switch_to(else_bb);
        let (ev, et) = self.lower_rvalue(els);
        let ev = self.coerce(ev, &et, &result_ty, span);
        self.emit(InstKind::Store { ptr: Value::Inst(slot), value: ev }, Type::Void, span);
        self.set_terminator(Terminator::Br(merge_bb));

        self.switch_to(merge_bb);
        let v = self.emit(InstKind::Load { ptr: Value::Inst(slot) }, result_ty.clone(), span);
        (Value::Inst(v), result_ty)
    }

    fn lower_assign(
        &mut self,
        op: &Option<ast::BinOp>,
        lhs: ast::ExprId,
        rhs: ast::ExprId,
        span: Span,
    ) -> (Value, Type) {
        let place = match self.lower_lvalue(lhs) {
            Some(p) => p,
            None => return (Value::i32(0), Type::int32()),
        };
        let value = match op {
            None => {
                let (rv, rt) = self.lower_rvalue(rhs);
                self.coerce(rv, &rt, &place.ty, span)
            }
            Some(binop) => {
                // Compound assignment: load, combine, store.
                let (old, oty) =
                    self.load_place(Place { addr: place.addr.clone(), ty: place.ty.clone() }, span);
                let (rv, rt) = self.lower_rvalue(rhs);
                // Pointer += int
                if oty.is_ptr() && matches!(binop, ast::BinOp::Add | ast::BinOp::Sub) {
                    let idx = if *binop == ast::BinOp::Sub {
                        let zero = Value::ConstInt(0, rt.clone());
                        Value::Inst(self.emit(
                            InstKind::Bin { op: BinOp::Sub, lhs: zero, rhs: rv },
                            rt.clone(),
                            span,
                        ))
                    } else {
                        rv
                    };
                    Value::Inst(self.emit(
                        InstKind::ElemAddr { base: old, index: idx },
                        oty.clone(),
                        span,
                    ))
                } else {
                    let common = common_type(&oty, &rt);
                    let a = self.coerce(old, &oty, &common, span);
                    let b = self.coerce(rv, &rt, &common, span);
                    let bop = match binop {
                        ast::BinOp::Add => BinOp::Add,
                        ast::BinOp::Sub => BinOp::Sub,
                        ast::BinOp::Mul => BinOp::Mul,
                        ast::BinOp::Div => BinOp::Div,
                        ast::BinOp::Rem => BinOp::Rem,
                        ast::BinOp::Shl => BinOp::Shl,
                        ast::BinOp::Shr => BinOp::Shr,
                        ast::BinOp::BitAnd => BinOp::And,
                        ast::BinOp::BitOr => BinOp::Or,
                        ast::BinOp::BitXor => BinOp::Xor,
                        other => {
                            self.lw.diags.error(
                                span,
                                format!("invalid compound assignment operator {other:?}"),
                            );
                            BinOp::Add
                        }
                    };
                    let combined =
                        self.emit(InstKind::Bin { op: bop, lhs: a, rhs: b }, common.clone(), span);
                    self.coerce(Value::Inst(combined), &common, &place.ty, span)
                }
            }
        };
        self.emit(InstKind::Store { ptr: place.addr, value: value.clone() }, Type::Void, span);
        (value, place.ty)
    }

    fn lower_call(&mut self, callee: &str, args: &[ast::ExprId], span: Span) -> (Value, Type) {
        let mut lowered = Vec::with_capacity(args.len());
        let target = self.lw.module.function_by_name(callee);
        let (callee_kind, ret_ty, param_tys, varargs) = match target {
            Some(fid) => {
                let f = self.lw.module.function(fid);
                (
                    Callee::Local(fid),
                    f.ret.clone(),
                    f.params.iter().map(|p| p.ty.clone()).collect::<Vec<_>>(),
                    f.varargs,
                )
            }
            None => (
                Callee::External(callee.to_string()),
                default_external_ret(callee),
                Vec::new(),
                true,
            ),
        };
        for (i, a) in args.iter().enumerate() {
            let a = *a;
            let aspan = self.lw.ast.expr(a).span;
            let (v, ty) = self.lower_rvalue(a);
            let v = match param_tys.get(i) {
                Some(pt) => self.coerce(v, &ty, pt, aspan),
                None => {
                    if !varargs && !param_tys.is_empty() {
                        self.lw.diags.warning(aspan, format!("too many arguments to `{callee}`"));
                    }
                    v
                }
            };
            lowered.push(v);
        }
        if !varargs && lowered.len() < param_tys.len() {
            self.lw.diags.warning(span, format!("too few arguments to `{callee}`"));
        }
        let id =
            self.emit(InstKind::Call { callee: callee_kind, args: lowered }, ret_ty.clone(), span);
        (Value::Inst(id), ret_ty)
    }

    // ---- conversions ----

    fn coerce(&mut self, v: Value, from: &Type, to: &Type, span: Span) -> Value {
        if from == to || *to == Type::Void {
            return v;
        }
        self.cast_value(v, from, to, span)
    }

    fn cast_value(&mut self, v: Value, from: &Type, to: &Type, span: Span) -> Value {
        if from == to {
            return v;
        }
        let kind = match (from, to) {
            (Type::Int { .. }, Type::Int { .. }) => CastKind::IntToInt,
            (Type::Int { .. }, Type::Float { .. }) => CastKind::IntToFloat,
            (Type::Float { .. }, Type::Int { .. }) => CastKind::FloatToInt,
            (Type::Float { .. }, Type::Float { .. }) => CastKind::FloatToFloat,
            (Type::Ptr(_), Type::Ptr(_)) => CastKind::PtrToPtr,
            (Type::Ptr(_), Type::Int { .. }) => CastKind::PtrToInt,
            (Type::Int { .. }, Type::Ptr(_)) => CastKind::IntToPtr,
            _ => {
                // Fold away no-op casts (e.g. to void) silently.
                if *to == Type::Void {
                    return v;
                }
                self.lw.diags.error(
                    span,
                    format!(
                        "unsupported conversion from `{}` to `{}`",
                        self.types().display(from),
                        self.types().display(to)
                    ),
                );
                return v;
            }
        };
        // Constant folding for the common literal cases keeps the IR tidy.
        if let (Value::ConstInt(c, _), CastKind::IntToInt) = (&v, kind) {
            return Value::ConstInt(*c, to.clone());
        }
        if let (Value::ConstInt(c, _), CastKind::IntToFloat) = (&v, kind) {
            return Value::ConstFloat(*c as f64, to.clone());
        }
        if let (Value::ConstFloat(c, _), CastKind::FloatToFloat) = (&v, kind) {
            return Value::ConstFloat(*c, to.clone());
        }
        if let (Value::ConstInt(0, _), CastKind::IntToPtr) = (&v, kind) {
            return Value::ConstNull(to.clone());
        }
        Value::Inst(self.emit(InstKind::Cast { kind, value: v }, to.clone(), span))
    }
}

fn comparison_op(op: ast::BinOp) -> CmpOp {
    match op {
        ast::BinOp::Lt => CmpOp::Lt,
        ast::BinOp::Le => CmpOp::Le,
        ast::BinOp::Gt => CmpOp::Gt,
        ast::BinOp::Ge => CmpOp::Ge,
        ast::BinOp::Eq => CmpOp::Eq,
        ast::BinOp::Ne => CmpOp::Ne,
        _ => unreachable!("not a comparison"),
    }
}

/// Simplified usual-arithmetic-conversions: floats beat ints, wider beats
/// narrower, unsigned beats signed at equal width.
fn common_type(a: &Type, b: &Type) -> Type {
    match (a, b) {
        (Type::Float { bits: x }, Type::Float { bits: y }) => Type::Float { bits: (*x).max(*y) },
        (Type::Float { .. }, _) => a.clone(),
        (_, Type::Float { .. }) => b.clone(),
        (Type::Int { bits: x, signed: sx }, Type::Int { bits: y, signed: sy }) => {
            // Promote to at least int.
            let bits = (*x).max(*y).max(32);
            let signed = if x == y {
                *sx && *sy
            } else if x > y {
                *sx
            } else {
                *sy
            };
            Type::Int { bits, signed }
        }
        (Type::Ptr(_), _) => a.clone(),
        (_, Type::Ptr(_)) => b.clone(),
        _ => Type::int32(),
    }
}

fn default_external_ret(name: &str) -> Type {
    // Known runtime/libc functions the corpus calls; everything else
    // defaults to `int`.
    match name {
        "shmat" | "malloc" | "calloc" => Type::void_ptr(),
        "sqrt" | "fabs" | "sin" | "cos" | "atan2" | "exp" | "pow" => Type::f64(),
        "sqrtf" | "fabsf" => Type::f32(),
        _ => Type::int32(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeflow_syntax::parse_source;

    fn lower_ok(src: &str) -> Module {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors(), "parse: {:?}", pr.diags);
        let mut diags = Diagnostics::new();
        let m = lower(&pr.unit, &mut diags);
        assert!(!diags.has_errors(), "lower: {}", diags.render_all(&pr.sources));
        m
    }

    use safeflow_syntax::diag::Diagnostics;

    #[test]
    fn lower_simple_function() {
        let m = lower_ok("int add(int a, int b) { return a + b; }");
        let fid = m.function_by_name("add").unwrap();
        let f = m.function(fid);
        assert!(f.is_definition);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::int32());
        // entry block: 2 allocas + 2 stores + loads + add
        assert!(f.insts.len() >= 5);
        assert!(matches!(f.blocks[0].terminator, Terminator::Ret(Some(_))));
    }

    #[test]
    fn lower_if_produces_diamond() {
        let m = lower_ok("int f(int x) { if (x > 0) return 1; else return 2; }");
        let f = m.function(m.function_by_name("f").unwrap());
        assert!(f.blocks.len() >= 3);
        assert!(matches!(f.blocks[0].terminator, Terminator::CondBr { .. }));
    }

    #[test]
    fn lower_while_loop_shape() {
        let m = lower_ok("int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }");
        let f = m.function(m.function_by_name("f").unwrap());
        // entry, cond, body, exit
        assert!(f.blocks.len() >= 4);
        let names: Vec<_> = f.blocks.iter().map(|b| b.name.clone()).collect();
        assert!(names.iter().any(|n| n == "while.cond"));
        assert!(names.iter().any(|n| n == "while.body"));
    }

    #[test]
    fn lower_struct_member_access() {
        let m = lower_ok(
            "typedef struct { float control; int valid; } D;\nfloat get(D *d) { return d->control; }",
        );
        let f = m.function(m.function_by_name("get").unwrap());
        let has_field_addr =
            f.insts.iter().any(|i| matches!(i.kind, InstKind::FieldAddr { field: 0, .. }));
        assert!(has_field_addr);
    }

    #[test]
    fn lower_array_indexing() {
        let m = lower_ok("int sum(int *a, int n) { int s = 0; int i; for (i = 0; i < n; i++) s += a[i]; return s; }");
        let f = m.function(m.function_by_name("sum").unwrap());
        let elem_addrs =
            f.insts.iter().filter(|i| matches!(i.kind, InstKind::ElemAddr { .. })).count();
        assert!(elem_addrs >= 1);
    }

    #[test]
    fn lower_pointer_arithmetic_to_elem_addr() {
        let m = lower_ok("typedef struct { float c; } D;\nD *g;\nvoid f(void) { D *p = g + 1; }");
        let f = m.function(m.function_by_name("f").unwrap());
        assert!(f.insts.iter().any(|i| matches!(i.kind, InstKind::ElemAddr { .. })));
    }

    #[test]
    fn lower_call_binds_local_and_external() {
        let m =
            lower_ok("int helper(int x) { return x; }\nvoid f(void) { helper(1); unknown_fn(2); }");
        let f = m.function(m.function_by_name("f").unwrap());
        let mut local = 0;
        let mut external = 0;
        for inst in &f.insts {
            if let InstKind::Call { callee, .. } = &inst.kind {
                match callee {
                    Callee::Local(_) => local += 1,
                    Callee::External(name) => {
                        assert_eq!(name, "unknown_fn");
                        external += 1;
                    }
                }
            }
        }
        assert_eq!((local, external), (1, 1));
    }

    #[test]
    fn lower_assert_safe_anchor() {
        let m = lower_ok(
            r#"
            void sendControl(float v);
            void step(void) {
                float output = 1.0;
                /** SafeFlow Annotation assert(safe(output)) */
                sendControl(output);
            }
            "#,
        );
        let f = m.function(m.function_by_name("step").unwrap());
        let anchor = f
            .insts
            .iter()
            .find(|i| matches!(&i.kind, InstKind::AssertSafe { var, .. } if var == "output"));
        assert!(anchor.is_some());
    }

    #[test]
    fn statement_level_facts_move_to_function() {
        let m = lower_ok(
            r#"
            typedef struct { float c; } D;
            D *fb;
            void initComm(void)
            /** SafeFlow Annotation shminit */
            {
                /** SafeFlow Annotation assume(shmvar(fb, sizeof(D))) */
            }
            "#,
        );
        let f = m.function(m.function_by_name("initComm").unwrap());
        assert!(f.is_shminit());
        assert!(f
            .annotations
            .iter()
            .any(|a| matches!(a, Annotation::ShmVar { ptr, .. } if ptr == "fb")));
    }

    #[test]
    fn enum_constants_fold() {
        let m = lower_ok("enum M { A, B = 7 };\nint f(void) { return B; }");
        let f = m.function(m.function_by_name("f").unwrap());
        assert!(matches!(f.blocks[0].terminator, Terminator::Ret(Some(Value::ConstInt(7, _)))));
    }

    #[test]
    fn sizeof_folds_to_constant() {
        let m =
            lower_ok("typedef struct { double a; int b; } T;\nlong f(void) { return sizeof(T); }");
        let f = m.function(m.function_by_name("f").unwrap());
        assert!(matches!(f.blocks[0].terminator, Terminator::Ret(Some(Value::ConstInt(16, _)))));
    }

    #[test]
    fn short_circuit_creates_blocks() {
        let m = lower_ok("int f(int a, int b) { return a && b; }");
        let f = m.function(m.function_by_name("f").unwrap());
        assert!(f.blocks.iter().any(|b| b.name == "and.rhs"));
    }

    #[test]
    fn ternary_merges_values() {
        let m = lower_ok("int f(int a) { return a > 0 ? a : 0 - a; }");
        let f = m.function(m.function_by_name("f").unwrap());
        assert!(f.blocks.iter().any(|b| b.name == "sel.then"));
        assert!(f.blocks.iter().any(|b| b.name == "sel.end"));
    }

    #[test]
    fn switch_lowered_with_cases() {
        let m = lower_ok(
            "int f(int x) { switch (x) { case 1: return 10; case 2: return 20; default: return 0; } }",
        );
        let f = m.function(m.function_by_name("f").unwrap());
        let has_switch = f
            .blocks
            .iter()
            .any(|b| matches!(&b.terminator, Terminator::Switch { cases, .. } if cases.len() == 2));
        assert!(has_switch);
    }

    #[test]
    fn switch_fallthrough_branches_to_next_case() {
        let m = lower_ok(
            "int f(int x) { int r = 0; switch (x) { case 1: r = 1; case 2: r = 2; break; } return r; }",
        );
        let f = m.function(m.function_by_name("f").unwrap());
        // case0 must branch to case1 (fallthrough).
        let case0 = f.blocks.iter().position(|b| b.name == "switch.case0").unwrap();
        let case1 = f.blocks.iter().position(|b| b.name == "switch.case1").unwrap();
        assert_eq!(f.blocks[case0].terminator, Terminator::Br(BlockId(case1 as u32)));
    }

    #[test]
    fn string_literal_becomes_global() {
        let m = lower_ok(r#"void log2(char *s); void f(void) { log2("hi"); }"#);
        assert!(m.globals.iter().any(|g| g.name.starts_with("__str_")));
    }

    #[test]
    fn globals_registered_with_types() {
        let m = lower_ok("typedef struct { float c; } D;\nD *noncoreCtrl;\nint counter = 3;");
        let g = m.global(m.global_by_name("noncoreCtrl").unwrap());
        assert!(g.ty.is_ptr());
        let c = m.global(m.global_by_name("counter").unwrap());
        assert!(c.has_init);
    }

    #[test]
    fn unknown_type_reports_error() {
        let pr = parse_source("t.c", "void f(void) { Mystery x; }");
        // `Mystery x;` parses as expression statement `Mystery` then errors;
        // either way the pipeline reports and does not panic.
        let mut diags = Diagnostics::new();
        let _ = lower(&pr.unit, &mut diags);
        assert!(pr.diags.has_errors() || diags.has_errors());
    }

    #[test]
    fn break_outside_loop_reports_error() {
        let pr = parse_source("t.c", "void f(void) { break; }");
        assert!(!pr.diags.has_errors());
        let mut diags = Diagnostics::new();
        let _ = lower(&pr.unit, &mut diags);
        assert!(diags.has_errors());
    }

    #[test]
    fn figure2_lowered_end_to_end() {
        let m = lower_ok(
            r#"
            typedef struct { float control; float track; float angle; } SHMData;
            SHMData *noncoreCtrl;
            SHMData *feedback;
            int shmget(int key, int size, int flags);
            void *shmat(int shmid, void *addr, int flags);
            int checkSafety(SHMData *fb, SHMData *ctrl);
            void sendControl(float output);

            float decision(SHMData *f, float safeControl, SHMData *ctrl)
            /***SafeFlow Annotation
                assume(core(noncoreCtrl, 0, sizeof(SHMData))) /***/
            {
                if (checkSafety(feedback, noncoreCtrl))
                    return noncoreCtrl->control;
                else
                    return safeControl;
            }

            int main() {
                void *shmStart;
                int shmid;
                float safeControl;
                float output;
                shmid = shmget(42, 2 * sizeof(SHMData), 0);
                shmStart = shmat(shmid, 0, 0);
                feedback = (SHMData *) shmStart;
                noncoreCtrl = feedback + 1;
                output = decision(feedback, safeControl, noncoreCtrl);
                /**SafeFlow Annotation assert(safe(output)); /***/
                sendControl(output);
                return 0;
            }
            "#,
        );
        let dec = m.function(m.function_by_name("decision").unwrap());
        assert_eq!(dec.annotations.len(), 1);
        let main = m.function(m.function_by_name("main").unwrap());
        assert!(main
            .insts
            .iter()
            .any(|i| matches!(&i.kind, InstKind::AssertSafe { var, .. } if var == "output")));
        // The cast `(SHMData*) shmStart` must appear as a PtrToPtr cast.
        assert!(main
            .insts
            .iter()
            .any(|i| matches!(&i.kind, InstKind::Cast { kind: CastKind::PtrToPtr, .. })));
    }
}
