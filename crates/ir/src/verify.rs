//! IR verifier: structural invariants every pass must preserve.
//!
//! Run after lowering and after SSA promotion in tests; cheap enough to run
//! always in debug builds.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::module::*;
use std::collections::HashSet;

/// A verifier failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the violation was found.
    pub function: String,
    /// Description of the violation.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "in `{}`: {}", self.function, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every defined function in `module`. Returns all violations.
pub fn verify_module(module: &Module) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    for fid in module.definitions() {
        verify_function(module, module.function(fid), &mut errors);
    }
    errors
}

fn verify_function(module: &Module, func: &Function, errors: &mut Vec<VerifyError>) {
    let fail = |errors: &mut Vec<VerifyError>, msg: String| {
        errors.push(VerifyError { function: func.name.clone(), message: msg });
    };

    if func.blocks.is_empty() {
        fail(errors, "definition has no blocks".into());
        return;
    }

    // Every block's instruction ids are valid and referenced at most once.
    let mut seen: HashSet<InstId> = HashSet::new();
    for (bid, block) in func.iter_blocks() {
        for &iid in &block.insts {
            if iid.0 as usize >= func.insts.len() {
                fail(errors, format!("{bid}: instruction {iid} out of range"));
                continue;
            }
            if !seen.insert(iid) {
                fail(errors, format!("{bid}: instruction {iid} appears in multiple blocks"));
            }
        }
        // Terminator targets must be valid blocks.
        for succ in block.terminator.successors() {
            if succ.0 as usize >= func.blocks.len() {
                fail(errors, format!("{bid}: branch to out-of-range block {succ}"));
            }
        }
    }

    // Operand sanity: instruction operands must reference in-range values;
    // params must be in range.
    let check_value = |v: &Value, ctx: &str, errors: &mut Vec<VerifyError>| match v {
        Value::Inst(id) if id.0 as usize >= func.insts.len() => {
            errors.push(VerifyError {
                function: func.name.clone(),
                message: format!("{ctx}: operand {id} out of range"),
            });
        }
        Value::Param(i) if *i as usize >= func.params.len() => {
            errors.push(VerifyError {
                function: func.name.clone(),
                message: format!("{ctx}: parameter index {i} out of range"),
            });
        }
        Value::Global(g) if g.0 as usize >= module.globals.len() => {
            errors.push(VerifyError {
                function: func.name.clone(),
                message: format!("{ctx}: global {g:?} out of range"),
            });
        }
        _ => {}
    };
    for (bid, block) in func.iter_blocks() {
        for &iid in &block.insts {
            for op in func.inst(iid).kind.operands() {
                check_value(op, &format!("{bid}/{iid}"), errors);
            }
        }
        for op in block.terminator.operands() {
            check_value(op, &format!("{bid}/terminator"), errors);
        }
    }

    // Phi invariants: phis must be at the head of their block and their
    // incoming edges must exactly match CFG predecessors.
    let cfg = Cfg::build(func);
    for (bid, block) in func.iter_blocks() {
        if !cfg.is_reachable(bid) {
            continue;
        }
        let mut past_phis = false;
        for &iid in &block.insts {
            match &func.inst(iid).kind {
                InstKind::Phi { incoming } => {
                    if past_phis {
                        fail(errors, format!("{bid}: phi {iid} after non-phi instruction"));
                    }
                    let mut inc: Vec<BlockId> = incoming.iter().map(|(b, _)| *b).collect();
                    inc.sort();
                    inc.dedup();
                    let mut preds = cfg.preds_of(bid).to_vec();
                    preds.sort();
                    preds.dedup();
                    if inc != preds {
                        fail(
                            errors,
                            format!("{bid}: phi {iid} incoming {inc:?} does not match predecessors {preds:?}"),
                        );
                    }
                }
                _ => past_phis = true,
            }
        }
    }

    // Dominance: every non-phi use of an instruction result must be
    // dominated by its definition.
    let dom = DomTree::build(&cfg);
    let mut def_block: Vec<Option<BlockId>> = vec![None; func.insts.len()];
    let mut def_pos: Vec<usize> = vec![0; func.insts.len()];
    for (bid, block) in func.iter_blocks() {
        for (pos, &iid) in block.insts.iter().enumerate() {
            def_block[iid.0 as usize] = Some(bid);
            def_pos[iid.0 as usize] = pos;
        }
    }
    for (bid, block) in func.iter_blocks() {
        if !cfg.is_reachable(bid) {
            continue;
        }
        for (pos, &iid) in block.insts.iter().enumerate() {
            let inst = func.inst(iid);
            if let InstKind::Phi { incoming } = &inst.kind {
                // Phi operands must be dominated by their def at the end of
                // the corresponding predecessor.
                for (pred, v) in incoming {
                    if let Value::Inst(src) = v {
                        match def_block[src.0 as usize] {
                            Some(db) => {
                                if !dom.dominates(db, *pred) {
                                    fail(
                                        errors,
                                        format!("{bid}: phi {iid} operand {src} does not dominate edge from {pred}"),
                                    );
                                }
                            }
                            None => fail(
                                errors,
                                format!("{bid}: phi {iid} references dead instruction {src}"),
                            ),
                        }
                    }
                }
                continue;
            }
            for op in inst.kind.operands() {
                if let Value::Inst(src) = op {
                    match def_block[src.0 as usize] {
                        Some(db) => {
                            let ok = if db == bid {
                                def_pos[src.0 as usize] < pos
                            } else {
                                dom.dominates(db, bid)
                            };
                            if !ok {
                                fail(errors, format!("{bid}: use of {src} in {iid} not dominated by its definition"));
                            }
                        }
                        None => {
                            fail(errors, format!("{bid}: {iid} references dead instruction {src}"))
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::ssa::promote_module;
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;

    fn checked(src: &str) -> Module {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors(), "{:?}", pr.diags);
        let mut diags = Diagnostics::new();
        let mut m = lower(&pr.unit, &mut diags);
        assert!(!diags.has_errors(), "{diags:?}");
        let pre = verify_module(&m);
        assert!(pre.is_empty(), "pre-SSA verify failed: {pre:?}");
        promote_module(&mut m);
        let post = verify_module(&m);
        assert!(post.is_empty(), "post-SSA verify failed: {post:?}");
        m
    }

    #[test]
    fn verify_straightline() {
        checked("int f(int a) { return a + 1; }");
    }

    #[test]
    fn verify_branches_and_loops() {
        checked(
            "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) { if (i % 2) s += i; else s -= i; } return s; }",
        );
    }

    #[test]
    fn verify_short_circuit_and_ternary() {
        checked("int f(int a, int b) { int c = a && b; return c ? a : b; }");
    }

    #[test]
    fn verify_switch() {
        checked("int f(int x) { switch (x) { case 1: return 1; case 2: break; default: return 3; } return 0; }");
    }

    #[test]
    fn verify_structs_and_pointers() {
        checked(
            "typedef struct { float v[4]; int n; } D;\nfloat f(D *d, int i) { d->n = i; return d->v[i]; }",
        );
    }

    #[test]
    fn verify_early_returns_with_dead_code() {
        checked("int f(void) { return 1; return 2; }");
    }

    #[test]
    fn detects_bad_phi_incoming() {
        let pr = parse_source("t.c", "int f(int x) { int r; if (x) r = 1; else r = 2; return r; }");
        let mut diags = Diagnostics::new();
        let mut m = lower(&pr.unit, &mut diags);
        promote_module(&mut m);
        // Sabotage: drop one phi incoming edge.
        let fid = m.function_by_name("f").unwrap();
        let func = m.function_mut(fid);
        let phi_id = func
            .iter_insts()
            .find(|(_, i)| matches!(i.kind, InstKind::Phi { .. }))
            .map(|(id, _)| id)
            .expect("has phi");
        if let InstKind::Phi { incoming } = &mut func.inst_mut(phi_id).kind {
            incoming.pop();
        }
        let errs = verify_module(&m);
        assert!(!errs.is_empty());
        assert!(errs.iter().any(|e| e.message.contains("does not match predecessors")));
    }

    #[test]
    fn detects_out_of_range_operand() {
        let pr = parse_source("t.c", "int f(void) { return 0; }");
        let mut diags = Diagnostics::new();
        let mut m = lower(&pr.unit, &mut diags);
        let fid = m.function_by_name("f").unwrap();
        let func = m.function_mut(fid);
        // Sabotage: terminator returns a bogus instruction id.
        func.blocks[0].terminator = Terminator::Ret(Some(Value::Inst(InstId(9999))));
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("out of range")));
    }
}
