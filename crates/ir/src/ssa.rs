//! SSA construction (mem2reg): promotes address-never-taken scalar `Alloca`
//! slots to φ-joined SSA values.
//!
//! Lowering spills every C local to an `Alloca`; this pass gives the value
//! flow analysis (paper §3.3, phase 3) direct def-use edges for scalars
//! while leaving address-taken and aggregate locals in memory, where the
//! points-to analysis handles them.
//!
//! Standard algorithm: iterated dominance frontiers for φ placement
//! (Cytron et al.), then a renaming walk over the dominator tree.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::module::*;
use crate::types::Type;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Promotes eligible allocas in every defined function of `module`.
///
/// Returns the total number of promoted slots.
pub fn promote_module(module: &mut Module) -> usize {
    let ids: Vec<FuncId> = module.definitions().collect();
    let mut total = 0;
    for id in ids {
        let func = module.function_mut(id);
        total += promote_to_ssa(func);
    }
    total
}

/// Promotes eligible allocas in `func` to SSA values. Returns how many
/// slots were promoted.
///
/// An alloca is eligible when its type is scalar and its address is used
/// *only* as the pointer operand of loads and stores — exactly the slots
/// whose address never escapes.
pub fn promote_to_ssa(func: &mut Function) -> usize {
    if func.blocks.is_empty() {
        return 0;
    }
    clear_unreachable_blocks(func);
    let cfg = Cfg::build(func);
    let dom = DomTree::build(&cfg);

    let promotable = find_promotable(func);
    if promotable.is_empty() {
        return 0;
    }

    // ---- φ placement ----------------------------------------------------
    // def_blocks[a] = blocks storing to alloca a. Ordered maps/sets
    // throughout: φ ids are allocated (and φs prepended to blocks) in
    // iteration order, and the summary cache content-hashes the IR, so the
    // construction must be reproducible run to run.
    let mut def_blocks: BTreeMap<InstId, BTreeSet<BlockId>> = BTreeMap::new();
    for (bid, block) in func.iter_blocks() {
        for &iid in &block.insts {
            if let InstKind::Store { ptr: Value::Inst(a), .. } = &func.inst(iid).kind {
                if promotable.contains(a) {
                    def_blocks.entry(*a).or_default().insert(bid);
                }
            }
        }
    }

    // phis[(block, alloca)] = phi inst id.
    let mut phis: BTreeMap<(BlockId, InstId), InstId> = BTreeMap::new();
    for (&alloca, defs) in &def_blocks {
        let ty = match &func.inst(alloca).kind {
            InstKind::Alloca { ty, .. } => ty.clone(),
            _ => unreachable!("promotable set only holds allocas"),
        };
        let mut work: Vec<BlockId> = defs.iter().copied().collect();
        let mut placed: HashSet<BlockId> = HashSet::new();
        let mut considered: BTreeSet<BlockId> = defs.clone();
        while let Some(b) = work.pop() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for &df in &dom.frontier[b.0 as usize] {
                if placed.contains(&df) {
                    continue;
                }
                placed.insert(df);
                let phi_id = InstId(func.insts.len() as u32);
                func.insts.push(Inst {
                    kind: InstKind::Phi { incoming: Vec::new() },
                    ty: ty.clone(),
                    span: func.inst(alloca).span,
                });
                func.blocks[df.0 as usize].insts.insert(0, phi_id);
                phis.insert((df, alloca), phi_id);
                if considered.insert(df) {
                    work.push(df);
                }
            }
        }
    }

    // ---- renaming walk ----------------------------------------------------
    let mut stacks: HashMap<InstId, Vec<Value>> = HashMap::new();
    for &a in &promotable {
        stacks.insert(a, Vec::new());
    }
    // Replacement map for removed loads.
    let mut replace: HashMap<InstId, Value> = HashMap::new();
    // Instructions to delete from block lists.
    let mut dead: HashSet<InstId> = HashSet::new();
    for &a in &promotable {
        dead.insert(a); // the alloca itself
    }

    // Iterative DFS over the dominator tree.
    struct Frame {
        block: BlockId,
        child_idx: usize,
        pushed: Vec<InstId>, // allocas whose stacks were pushed in this frame
    }
    let entry = func.entry();
    let mut frames = vec![Frame { block: entry, child_idx: 0, pushed: Vec::new() }];
    rename_block(
        func,
        &cfg,
        entry,
        &promotable,
        &phis,
        &mut stacks,
        &mut replace,
        &mut dead,
        &mut frames.last_mut().unwrap().pushed,
    );

    while !frames.is_empty() {
        let top = frames.len() - 1;
        let block = frames[top].block;
        let idx = frames[top].child_idx;
        let children = &dom.children[block.0 as usize];
        if idx < children.len() {
            frames[top].child_idx += 1;
            let child = children[idx];
            if !cfg.is_reachable(child) {
                continue;
            }
            let mut pushed = Vec::new();
            rename_block(
                func,
                &cfg,
                child,
                &promotable,
                &phis,
                &mut stacks,
                &mut replace,
                &mut dead,
                &mut pushed,
            );
            frames.push(Frame { block: child, child_idx: 0, pushed });
        } else {
            // Pop: undo stack pushes.
            let frame = frames.pop().unwrap();
            for a in frame.pushed {
                stacks.get_mut(&a).unwrap().pop();
            }
        }
    }

    // ---- cleanup ----------------------------------------------------------
    // Remove dead instructions from block lists and rewrite any remaining
    // operand references through the replacement map (phi incoming values
    // were already resolved during renaming).
    for block in &mut func.blocks {
        block.insts.retain(|i| !dead.contains(i));
    }
    let resolve = |v: &Value, replace: &HashMap<InstId, Value>| -> Value {
        let mut cur = v.clone();
        let mut guard = 0;
        while let Value::Inst(id) = cur {
            match replace.get(&id) {
                Some(next) => {
                    cur = next.clone();
                    guard += 1;
                    if guard > replace.len() + 1 {
                        break;
                    }
                }
                None => break,
            }
        }
        cur
    };
    for inst in &mut func.insts {
        for op in inst.kind.operands_mut() {
            *op = resolve(op, &replace);
        }
    }
    for block in &mut func.blocks {
        for op in block.terminator.operands_mut() {
            *op = resolve(op, &replace);
        }
    }

    promotable.len()
}

/// Replaces bodies of unreachable blocks with empty `Unreachable` stubs so
/// later passes can ignore them.
fn clear_unreachable_blocks(func: &mut Function) {
    let cfg = Cfg::build(func);
    for (i, block) in func.blocks.iter_mut().enumerate() {
        if !cfg.is_reachable(BlockId(i as u32)) {
            block.insts.clear();
            block.terminator = Terminator::Unreachable;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn rename_block(
    func: &mut Function,
    cfg: &Cfg,
    block: BlockId,
    promotable: &HashSet<InstId>,
    phis: &BTreeMap<(BlockId, InstId), InstId>,
    stacks: &mut HashMap<InstId, Vec<Value>>,
    replace: &mut HashMap<InstId, Value>,
    dead: &mut HashSet<InstId>,
    pushed: &mut Vec<InstId>,
) {
    // φ-defs first: they become the current value of their variable.
    for (&(b, a), &phi) in phis.iter() {
        if b == block {
            stacks.get_mut(&a).unwrap().push(Value::Inst(phi));
            pushed.push(a);
        }
    }

    let inst_ids: Vec<InstId> = func.blocks[block.0 as usize].insts.clone();
    for iid in inst_ids {
        // Rewrite operands through the replacement map first.
        let kind = &mut func.insts[iid.0 as usize].kind;
        for op in kind.operands_mut() {
            if let Value::Inst(id) = op {
                if let Some(v) = replace.get(id) {
                    *op = v.clone();
                }
            }
        }
        match &func.insts[iid.0 as usize].kind {
            InstKind::Load { ptr: Value::Inst(a) } if promotable.contains(a) => {
                let current = stacks[a]
                    .last()
                    .cloned()
                    .unwrap_or_else(|| undef_value(&func.insts[iid.0 as usize].ty));
                replace.insert(iid, current);
                dead.insert(iid);
            }
            InstKind::Store { ptr: Value::Inst(a), value } if promotable.contains(a) => {
                let a = *a;
                let v = value.clone();
                stacks.get_mut(&a).unwrap().push(v);
                pushed.push(a);
                dead.insert(iid);
            }
            _ => {}
        }
    }

    // Rewrite terminator operands.
    {
        let term = &mut func.blocks[block.0 as usize].terminator;
        for op in term.operands_mut() {
            if let Value::Inst(id) = op {
                if let Some(v) = replace.get(id) {
                    *op = v.clone();
                }
            }
        }
    }

    // Fill φ incoming in successors with our current values.
    for &succ in cfg.succs_of(block) {
        for (&(b, a), &phi) in phis.iter() {
            if b == succ {
                let current = stacks[&a]
                    .last()
                    .cloned()
                    .unwrap_or_else(|| undef_value(&func.insts[phi.0 as usize].ty));
                if let InstKind::Phi { incoming } = &mut func.insts[phi.0 as usize].kind {
                    incoming.push((block, current));
                }
            }
        }
    }
}

/// The "undefined" placeholder for a type (reads before any write).
fn undef_value(ty: &Type) -> Value {
    match ty {
        Type::Float { .. } => Value::ConstFloat(0.0, ty.clone()),
        Type::Ptr(_) => Value::ConstNull(ty.clone()),
        _ => Value::ConstInt(0, ty.clone()),
    }
}

/// Allocas whose address is only used by loads and stores (as the pointer).
fn find_promotable(func: &Function) -> HashSet<InstId> {
    let mut allocas: HashSet<InstId> = HashSet::new();
    for (iid, inst) in func.iter_insts() {
        if let InstKind::Alloca { ty, .. } = &inst.kind {
            if ty.is_scalar() {
                allocas.insert(iid);
            }
        }
    }
    // Disqualify allocas used outside load/store-pointer position.
    for (_, inst) in func.iter_insts() {
        match &inst.kind {
            InstKind::Load { ptr: Value::Inst(_) } => {}
            InstKind::Store { ptr: Value::Inst(p), value } => {
                // Storing the *address itself* somewhere disqualifies it.
                if let Value::Inst(v) = value {
                    allocas.remove(v);
                }
                let _ = p;
            }
            other => {
                for op in other.operands() {
                    if let Value::Inst(id) = op {
                        allocas.remove(id);
                    }
                }
            }
        }
    }
    for (_, block) in func.iter_blocks() {
        for op in block.terminator.operands() {
            if let Value::Inst(id) = op {
                allocas.remove(id);
            }
        }
    }
    allocas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;

    fn lower_and_promote(src: &str) -> Module {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors(), "{:?}", pr.diags);
        let mut diags = Diagnostics::new();
        let mut m = lower(&pr.unit, &mut diags);
        assert!(!diags.has_errors(), "{:?}", diags);
        promote_module(&mut m);
        m
    }

    fn func<'m>(m: &'m Module, name: &str) -> &'m Function {
        m.function(m.function_by_name(name).unwrap())
    }

    fn count_kind(f: &Function, pred: impl Fn(&InstKind) -> bool) -> usize {
        f.iter_insts().filter(|(_, i)| pred(&i.kind)).count()
    }

    #[test]
    fn straightline_locals_fully_promoted() {
        let m = lower_and_promote("int f(int a, int b) { int c = a + b; return c * 2; }");
        let f = func(&m, "f");
        assert_eq!(count_kind(f, |k| matches!(k, InstKind::Alloca { .. })), 0);
        assert_eq!(count_kind(f, |k| matches!(k, InstKind::Load { .. })), 0);
        assert_eq!(count_kind(f, |k| matches!(k, InstKind::Store { .. })), 0);
    }

    #[test]
    fn diamond_inserts_phi() {
        let m =
            lower_and_promote("int f(int x) { int r; if (x > 0) r = 1; else r = 2; return r; }");
        let f = func(&m, "f");
        assert!(count_kind(f, |k| matches!(k, InstKind::Phi { .. })) >= 1);
        // The return must flow from a phi.
        let ret_block = f
            .iter_blocks()
            .find(|(_, b)| matches!(b.terminator, Terminator::Ret(Some(_))))
            .unwrap();
        match &ret_block.1.terminator {
            Terminator::Ret(Some(Value::Inst(id))) => {
                assert!(matches!(f.inst(*id).kind, InstKind::Phi { .. }));
            }
            other => panic!("unexpected terminator {other:?}"),
        }
    }

    #[test]
    fn phi_incoming_matches_predecessors() {
        let m =
            lower_and_promote("int f(int x) { int r; if (x > 0) r = 1; else r = 2; return r; }");
        let f = func(&m, "f");
        let cfg = Cfg::build(f);
        for (bid, block) in f.iter_blocks() {
            for &iid in &block.insts {
                if let InstKind::Phi { incoming } = &f.inst(iid).kind {
                    let mut inc_blocks: Vec<BlockId> = incoming.iter().map(|(b, _)| *b).collect();
                    inc_blocks.sort();
                    let mut preds = cfg.preds_of(bid).to_vec();
                    preds.sort();
                    assert_eq!(inc_blocks, preds, "phi incoming must cover predecessors");
                }
            }
        }
    }

    #[test]
    fn loop_counter_becomes_phi() {
        let m = lower_and_promote(
            "int f(int n) { int s = 0; int i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }",
        );
        let f = func(&m, "f");
        // i and s each need a phi at the loop header.
        assert!(count_kind(f, |k| matches!(k, InstKind::Phi { .. })) >= 2);
        assert_eq!(count_kind(f, |k| matches!(k, InstKind::Alloca { .. })), 0);
    }

    #[test]
    fn address_taken_local_not_promoted() {
        let m = lower_and_promote("void g(int *p); int f(void) { int x = 1; g(&x); return x; }");
        let f = func(&m, "f");
        // x's alloca must survive (its address escapes into g).
        assert_eq!(count_kind(f, |k| matches!(k, InstKind::Alloca { .. })), 1);
        assert!(count_kind(f, |k| matches!(k, InstKind::Load { .. })) >= 1);
    }

    #[test]
    fn aggregate_local_not_promoted() {
        let m = lower_and_promote(
            "typedef struct { int a; int b; } P; int f(void) { P p; p.a = 1; return p.a; }",
        );
        let f = func(&m, "f");
        assert_eq!(count_kind(f, |k| matches!(k, InstKind::Alloca { .. })), 1);
    }

    #[test]
    fn globals_unaffected_by_promotion() {
        let m = lower_and_promote("int g; int f(void) { g = 3; return g; }");
        let f = func(&m, "f");
        // Loads/stores to globals stay.
        assert!(count_kind(f, |k| matches!(k, InstKind::Store { .. })) >= 1);
        assert!(count_kind(f, |k| matches!(k, InstKind::Load { .. })) >= 1);
    }

    #[test]
    fn short_circuit_scratch_promoted_to_phi() {
        let m = lower_and_promote("int f(int a, int b) { return a && b; }");
        let f = func(&m, "f");
        assert_eq!(count_kind(f, |k| matches!(k, InstKind::Alloca { .. })), 0);
        assert!(count_kind(f, |k| matches!(k, InstKind::Phi { .. })) >= 1);
    }

    #[test]
    fn use_before_def_gets_undef_constant() {
        // `r` is only assigned in one branch; the other path merges an undef
        // placeholder rather than crashing.
        let m = lower_and_promote("int f(int x) { int r; if (x) r = 5; return r; }");
        let f = func(&m, "f");
        let phi_count = count_kind(f, |k| matches!(k, InstKind::Phi { .. }));
        assert!(phi_count >= 1);
    }

    #[test]
    fn params_promote_cleanly() {
        let m = lower_and_promote("int f(int a) { a = a + 1; return a; }");
        let f = func(&m, "f");
        assert_eq!(count_kind(f, |k| matches!(k, InstKind::Alloca { .. })), 0);
    }

    #[test]
    fn figure2_main_promotes_scalars() {
        let m = lower_and_promote(
            r#"
            typedef struct { float control; } SHMData;
            SHMData *feedback;
            void *shmat(int shmid, void *addr, int flags);
            float decision(SHMData *f, float s);
            void sendControl(float output);
            int main() {
                void *shmStart;
                float output;
                shmStart = shmat(0, 0, 0);
                feedback = (SHMData *) shmStart;
                output = decision(feedback, 1.0);
                sendControl(output);
                return 0;
            }
            "#,
        );
        let f = func(&m, "main");
        // All scalars (shmStart, output) promoted.
        assert_eq!(count_kind(f, |k| matches!(k, InstKind::Alloca { .. })), 0);
    }
}
