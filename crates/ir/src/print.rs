//! Human-readable IR printer, for debugging and golden tests.

use crate::module::*;
use std::fmt::Write as _;

/// Renders the whole module.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    for g in &module.globals {
        let _ = writeln!(out, "global @{}: {}", g.name, module.types.display(&g.ty));
    }
    for fid in module.definitions() {
        out.push('\n');
        out.push_str(&print_function(module, fid));
    }
    out
}

/// Renders one function.
pub fn print_function(module: &Module, fid: FuncId) -> String {
    let func = module.function(fid);
    let mut out = String::new();
    let params: Vec<String> = func
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| format!("%arg{}: {}", i, module.types.display(&p.ty)))
        .collect();
    let _ = writeln!(
        out,
        "fn @{}({}) -> {} {{",
        func.name,
        params.join(", "),
        module.types.display(&func.ret)
    );
    for ann in &func.annotations {
        let _ = writeln!(out, "  ; annotation: {ann:?}");
    }
    for (bid, block) in func.iter_blocks() {
        let _ = writeln!(out, "{bid}: ; {}", block.name);
        for &iid in &block.insts {
            let _ = writeln!(out, "  {}", print_inst(module, func, iid));
        }
        let _ = writeln!(out, "  {}", print_terminator(func, &block.terminator));
    }
    out.push_str("}\n");
    out
}

fn val(v: &Value) -> String {
    match v {
        Value::Inst(id) => format!("%{}", id.0),
        Value::Param(i) => format!("%arg{i}"),
        Value::Global(g) => format!("@g{}", g.0),
        Value::ConstInt(c, _) => format!("{c}"),
        Value::ConstFloat(c, _) => format!("{c:?}"),
        Value::ConstNull(_) => "null".to_string(),
    }
}

fn print_inst(module: &Module, func: &Function, iid: InstId) -> String {
    let inst = func.inst(iid);
    let ty = module.types.display(&inst.ty);
    match &inst.kind {
        InstKind::Alloca { ty: t, name } => {
            format!("%{} = alloca {} ; {}", iid.0, module.types.display(t), name)
        }
        InstKind::Load { ptr } => format!("%{} = load {} <- {}", iid.0, ty, val(ptr)),
        InstKind::Store { ptr, value } => format!("store {} -> {}", val(value), val(ptr)),
        InstKind::FieldAddr { base, struct_id, field } => {
            let layout = module.types.layout(*struct_id);
            let fname = layout.fields.get(*field as usize).map(|f| f.name.as_str()).unwrap_or("?");
            format!("%{} = fieldaddr {}.{}", iid.0, val(base), fname)
        }
        InstKind::ElemAddr { base, index } => {
            format!("%{} = elemaddr {}[{}]", iid.0, val(base), val(index))
        }
        InstKind::Bin { op, lhs, rhs } => {
            format!("%{} = {:?} {}, {}", iid.0, op, val(lhs), val(rhs)).to_lowercase()
        }
        InstKind::Cmp { op, lhs, rhs } => {
            format!("%{} = cmp.{:?} {}, {}", iid.0, op, val(lhs), val(rhs)).to_lowercase()
        }
        InstKind::Cast { kind, value } => {
            format!("%{} = cast.{kind:?} {} to {}", iid.0, val(value), ty)
        }
        InstKind::Call { callee, args } => {
            let name = match callee {
                Callee::Local(f) => format!("@{}", module.function(*f).name),
                Callee::External(n) => format!("@!{n}"),
            };
            let args: Vec<String> = args.iter().map(val).collect();
            format!("%{} = call {}({})", iid.0, name, args.join(", "))
        }
        InstKind::Phi { incoming } => {
            let inc: Vec<String> =
                incoming.iter().map(|(b, v)| format!("[{b}: {}]", val(v))).collect();
            format!("%{} = phi {}", iid.0, inc.join(", "))
        }
        InstKind::AssertSafe { var, value } => {
            format!("assert.safe({var} = {})", val(value))
        }
    }
}

fn print_terminator(_func: &Function, t: &Terminator) -> String {
    match t {
        Terminator::Br(b) => format!("br {b}"),
        Terminator::CondBr { cond, then_bb, else_bb } => {
            format!("condbr {}, {then_bb}, {else_bb}", val(cond))
        }
        Terminator::Switch { value, cases, default } => {
            let arms: Vec<String> = cases.iter().map(|(c, b)| format!("{c}: {b}")).collect();
            format!("switch {} [{}] default {default}", val(value), arms.join(", "))
        }
        Terminator::Ret(Some(v)) => format!("ret {}", val(v)),
        Terminator::Ret(None) => "ret".to_string(),
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::ssa::promote_module;
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;

    #[test]
    fn print_round_trip_smoke() {
        let pr = parse_source(
            "t.c",
            "typedef struct { float c; } D;\nD *g;\nfloat f(int n) { float s = 0.0; int i; for (i = 0; i < n; i++) s = s + g->c; return s; }",
        );
        let mut diags = Diagnostics::new();
        let mut m = lower(&pr.unit, &mut diags);
        promote_module(&mut m);
        let text = print_module(&m);
        assert!(text.contains("fn @f"));
        assert!(text.contains("global @g"));
        assert!(text.contains("phi"));
        assert!(text.contains("fieldaddr"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn print_shows_annotations_and_asserts() {
        let pr = parse_source(
            "t.c",
            r#"
            void send(float v);
            void f(void)
            /** SafeFlow Annotation shminit */
            {
                float x = 1.0;
                /** SafeFlow Annotation assert(safe(x)) */
                send(x);
            }
            "#,
        );
        let mut diags = Diagnostics::new();
        let m = lower(&pr.unit, &mut diags);
        let text = print_module(&m);
        assert!(text.contains("annotation"));
        assert!(text.contains("assert.safe(x"));
    }
}
