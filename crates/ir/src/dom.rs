//! Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy), used by
//! SSA construction and by control-dependence analysis.

use crate::cfg::Cfg;
use crate::module::BlockId;

/// Dominator tree over a function's CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` = immediate dominator of `b`; entry's idom is itself;
    /// `None` for unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
    /// Children in the dominator tree.
    pub children: Vec<Vec<BlockId>>,
    /// Dominance frontier of each block.
    pub frontier: Vec<Vec<BlockId>>,
}

impl DomTree {
    /// Computes dominators and dominance frontiers for `cfg`.
    pub fn build(cfg: &Cfg) -> DomTree {
        let n = cfg.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 || cfg.rpo.is_empty() {
            return DomTree { idom, children: vec![Vec::new(); n], frontier: vec![Vec::new(); n] };
        }
        let entry = cfg.rpo[0];
        idom[entry.0 as usize] = Some(entry);

        // Iterate to fixpoint over reverse postorder (CHK algorithm).
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds_of(b) {
                    if idom[p.0 as usize].is_none() {
                        continue; // predecessor not yet processed / unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &cfg.rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for (b, d) in idom.iter().enumerate() {
            if let Some(d) = d {
                if d.0 as usize != b {
                    children[d.0 as usize].push(BlockId(b as u32));
                }
            }
        }

        // Dominance frontiers (Cytron et al. via CHK's simple formulation).
        let mut frontier: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for b in 0..n {
            let bid = BlockId(b as u32);
            if cfg.preds_of(bid).len() >= 2 {
                for &p in cfg.preds_of(bid) {
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    let mut runner = p;
                    let b_idom = match idom[b] {
                        Some(d) => d,
                        None => continue,
                    };
                    while runner != b_idom {
                        let fr = &mut frontier[runner.0 as usize];
                        if !fr.contains(&bid) {
                            fr.push(bid);
                        }
                        runner = match idom[runner.0 as usize] {
                            Some(d) if d != runner => d,
                            _ => break,
                        };
                    }
                }
            }
        }

        DomTree { idom, children, frontier }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// The immediate dominator of `b` (`None` for the entry and unreachable
    /// blocks).
    pub fn immediate_dominator(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.0 as usize] {
            Some(d) if d != b => Some(d),
            _ => None,
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed block has idom");
        }
        while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{BasicBlock, Function, Terminator, Value};
    use crate::types::Type;
    use safeflow_syntax::span::Span;

    fn block(term: Terminator) -> BasicBlock {
        BasicBlock { insts: vec![], terminator: term, name: String::new() }
    }

    fn func(blocks: Vec<BasicBlock>) -> Function {
        Function {
            name: "t".into(),
            ret: Type::Void,
            params: vec![],
            varargs: false,
            insts: vec![],
            blocks,
            annotations: vec![],
            is_definition: true,
            span: Span::dummy(),
        }
    }

    fn diamond() -> Function {
        func(vec![
            block(Terminator::CondBr {
                cond: Value::i32(1),
                then_bb: BlockId(1),
                else_bb: BlockId(2),
            }),
            block(Terminator::Br(BlockId(3))),
            block(Terminator::Br(BlockId(3))),
            block(Terminator::Ret(None)),
        ])
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&cfg);
        assert_eq!(dom.immediate_dominator(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.immediate_dominator(BlockId(2)), Some(BlockId(0)));
        // The join is dominated by the entry, not by either arm.
        assert_eq!(dom.immediate_dominator(BlockId(3)), Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn diamond_frontiers() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&cfg);
        // Both arms have the join in their frontier; entry has none.
        assert_eq!(dom.frontier[1], vec![BlockId(3)]);
        assert_eq!(dom.frontier[2], vec![BlockId(3)]);
        assert!(dom.frontier[0].is_empty());
    }

    #[test]
    fn loop_frontier_contains_header() {
        // entry(0) -> cond(1); cond -> body(2), exit(3); body -> cond.
        let f = func(vec![
            block(Terminator::Br(BlockId(1))),
            block(Terminator::CondBr {
                cond: Value::i32(1),
                then_bb: BlockId(2),
                else_bb: BlockId(3),
            }),
            block(Terminator::Br(BlockId(1))),
            block(Terminator::Ret(None)),
        ]);
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&cfg);
        // The loop body's frontier includes the loop header.
        assert!(dom.frontier[2].contains(&BlockId(1)));
        // Header dominates body and exit.
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(dom.dominates(BlockId(1), BlockId(3)));
    }

    #[test]
    fn children_form_tree() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&cfg);
        let mut kids = dom.children[0].clone();
        kids.sort();
        assert_eq!(kids, vec![BlockId(1), BlockId(2), BlockId(3)]);
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let f = func(vec![block(Terminator::Ret(None)), block(Terminator::Ret(None))]);
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&cfg);
        assert_eq!(dom.immediate_dominator(BlockId(1)), None);
        assert!(!dom.dominates(BlockId(0), BlockId(1)));
    }
}
