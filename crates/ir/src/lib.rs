//! # safeflow-ir
//!
//! Typed SSA intermediate representation for the SafeFlow analysis
//! (DSN 2006). Stands in for the LLVM 1.x substrate the paper used: a typed
//! CFG IR with SSA form, dominators, loop analysis, and a call graph with
//! SCC condensation.
//!
//! Pipeline: [`lower::lower`] (AST → IR) → [`ssa::promote_module`]
//! (mem2reg) → analyses ([`mod@cfg`], [`dom`], [`loops`], [`callgraph`]).
//!
//! # Examples
//!
//! ```
//! use safeflow_syntax::parse_source;
//! use safeflow_syntax::diag::Diagnostics;
//! use safeflow_ir::{lower::lower, ssa::promote_module, verify::verify_module};
//!
//! let pr = parse_source("demo.c", "int add(int a, int b) { return a + b; }");
//! let mut diags = Diagnostics::new();
//! let mut module = lower(&pr.unit, &mut diags);
//! promote_module(&mut module);
//! assert!(verify_module(&module).is_empty());
//! ```

#![warn(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod dom;
pub mod loops;
pub mod lower;
pub mod module;
pub mod print;
pub mod ssa;
pub mod types;
pub mod verify;

pub use callgraph::CallGraph;
pub use cfg::Cfg;
pub use dom::DomTree;
pub use module::{
    BasicBlock, BinOp, BlockId, Callee, CastKind, CmpOp, FuncId, Function, Global, GlobalId, Inst,
    InstId, InstKind, IrParam, Module, Terminator, Value,
};
pub use types::{FieldLayout, StructId, StructLayout, Type, TypeTable};

use safeflow_syntax::diag::Diagnostics;
use safeflow_syntax::TranslationUnit;

/// Convenience: lowers `unit` and promotes to SSA in one call.
pub fn build_module(unit: &TranslationUnit, diags: &mut Diagnostics) -> Module {
    let mut m = lower::lower(unit, diags);
    ssa::promote_module(&mut m);
    m
}
