//! Property tests over the IR pipeline: any program our generator emits
//! must lower cleanly, and the result must satisfy the verifier's SSA and
//! CFG invariants — before and after mem2reg.

use proptest::prelude::*;
use safeflow_ir::{lower::lower, ssa::promote_module, verify::verify_module, Cfg, DomTree};
use safeflow_syntax::diag::Diagnostics;
use safeflow_syntax::parse_source;

/// A tiny statement-level program generator: straight-line arithmetic,
/// nested ifs, while loops with bounded shapes, all over a fixed set of
/// int locals.
#[derive(Debug, Clone)]
enum GenStmt {
    Assign(usize, GenExpr),
    If(GenExpr, Vec<GenStmt>, Vec<GenStmt>),
    While(usize, Vec<GenStmt>),
    Return(GenExpr),
}

#[derive(Debug, Clone)]
enum GenExpr {
    Var(usize),
    Const(i32),
    Add(Box<GenExpr>, Box<GenExpr>),
    Mul(Box<GenExpr>, Box<GenExpr>),
    Lt(Box<GenExpr>, Box<GenExpr>),
}

const NVARS: usize = 4;

fn expr_strategy() -> impl Strategy<Value = GenExpr> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(GenExpr::Var),
        (-50i32..50).prop_map(GenExpr::Const),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| GenExpr::Lt(Box::new(a), Box::new(b))),
        ]
    })
}

fn stmt_strategy(depth: u32) -> BoxedStrategy<GenStmt> {
    if depth == 0 {
        prop_oneof![
            ((0..NVARS), expr_strategy()).prop_map(|(v, e)| GenStmt::Assign(v, e)),
            expr_strategy().prop_map(GenStmt::Return),
        ]
        .boxed()
    } else {
        prop_oneof![
            3 => ((0..NVARS), expr_strategy()).prop_map(|(v, e)| GenStmt::Assign(v, e)),
            1 => (
                expr_strategy(),
                prop::collection::vec(stmt_strategy(depth - 1), 1..3),
                prop::collection::vec(stmt_strategy(depth - 1), 0..3)
            )
                .prop_map(|(c, t, e)| GenStmt::If(c, t, e)),
            1 => ((0..NVARS), prop::collection::vec(stmt_strategy(depth - 1), 1..3))
                .prop_map(|(v, b)| GenStmt::While(v, b)),
        ]
        .boxed()
    }
}

fn render_expr(e: &GenExpr) -> String {
    match e {
        GenExpr::Var(v) => format!("v{v}"),
        GenExpr::Const(c) => {
            if *c < 0 {
                format!("(0 - {})", -c)
            } else {
                format!("{c}")
            }
        }
        GenExpr::Add(a, b) => format!("({} + {})", render_expr(a), render_expr(b)),
        GenExpr::Mul(a, b) => format!("({} * {})", render_expr(a), render_expr(b)),
        GenExpr::Lt(a, b) => format!("({} < {})", render_expr(a), render_expr(b)),
    }
}

fn render_stmts(stmts: &[GenStmt], indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            GenStmt::Assign(v, e) => {
                out.push_str(&format!("{pad}v{v} = {};\n", render_expr(e)));
            }
            GenStmt::If(c, t, e) => {
                out.push_str(&format!("{pad}if ({}) {{\n", render_expr(c)));
                render_stmts(t, indent + 1, out);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_stmts(e, indent + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            GenStmt::While(v, b) => {
                // Bounded loop: counts v down so lowering terminates in
                // finite shape (runtime behaviour is irrelevant here).
                out.push_str(&format!("{pad}while (v{v} > 0) {{\n"));
                out.push_str(&format!("{}v{v} = v{v} - 1;\n", "    ".repeat(indent + 1)));
                render_stmts(b, indent + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            GenStmt::Return(e) => {
                out.push_str(&format!("{pad}return {};\n", render_expr(e)));
            }
        }
    }
}

fn render_program(stmts: &[GenStmt]) -> String {
    let mut out = String::from("int f(int a, int b) {\n");
    for v in 0..NVARS {
        out.push_str(&format!("    int v{v};\n"));
    }
    out.push_str("    v0 = a;\n    v1 = b;\n    v2 = 0;\n    v3 = 1;\n");
    render_stmts(stmts, 1, &mut out);
    out.push_str("    return v0 + v1 + v2 + v3;\n}\n");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Generated programs lower without diagnostics and verify before and
    /// after SSA promotion.
    #[test]
    fn lower_and_ssa_preserve_invariants(
        stmts in prop::collection::vec(stmt_strategy(2), 1..8)
    ) {
        let src = render_program(&stmts);
        let parsed = parse_source("gen.c", &src);
        prop_assert!(!parsed.diags.has_errors(), "parse failed on:\n{src}");
        let mut diags = Diagnostics::new();
        let mut module = lower(&parsed.unit, &mut diags);
        prop_assert!(!diags.has_errors(), "lowering failed on:\n{src}");
        let pre = verify_module(&module);
        prop_assert!(pre.is_empty(), "pre-SSA verify failed on:\n{src}\n{pre:?}");
        promote_module(&mut module);
        let post = verify_module(&module);
        prop_assert!(post.is_empty(), "post-SSA verify failed on:\n{src}\n{post:?}");
        // Scalars must be fully promoted.
        for fid in module.definitions() {
            let f = module.function(fid);
            let allocas = f
                .iter_insts()
                .filter(|(_, i)| matches!(i.kind, safeflow_ir::InstKind::Alloca { .. }))
                .count();
            prop_assert_eq!(allocas, 0, "all scalar locals promote on:\n{}", src);
        }
    }

    /// Dominator facts are consistent with reachability on generated CFGs.
    #[test]
    fn dominators_consistent(stmts in prop::collection::vec(stmt_strategy(2), 1..8)) {
        let src = render_program(&stmts);
        let parsed = parse_source("gen.c", &src);
        prop_assume!(!parsed.diags.has_errors());
        let mut diags = Diagnostics::new();
        let mut module = lower(&parsed.unit, &mut diags);
        promote_module(&mut module);
        for fid in module.definitions() {
            let f = module.function(fid);
            if f.blocks.is_empty() {
                continue;
            }
            let cfg = Cfg::build(f);
            let dom = DomTree::build(&cfg);
            // The entry dominates every reachable block; nothing dominates
            // the entry except itself.
            for &b in &cfg.rpo {
                prop_assert!(dom.dominates(f.entry(), b));
                if b != f.entry() {
                    prop_assert!(!dom.dominates(b, f.entry()));
                }
            }
            // idom is a strict ancestor in RPO.
            for &b in &cfg.rpo {
                if let Some(d) = dom.immediate_dominator(b) {
                    prop_assert!(
                        cfg.rpo_index[d.0 as usize] < cfg.rpo_index[b.0 as usize],
                        "idom must precede in RPO"
                    );
                }
            }
        }
    }
}
