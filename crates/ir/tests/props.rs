//! Property tests over the IR pipeline: any program our generator emits
//! must lower cleanly, and the result must satisfy the verifier's SSA and
//! CFG invariants — before and after mem2reg.

use safeflow_ir::{lower::lower, ssa::promote_module, verify::verify_module, Cfg, DomTree};
use safeflow_syntax::diag::Diagnostics;
use safeflow_syntax::parse_source;
use safeflow_util::prop::{run_cases, Gen};

/// A tiny statement-level program generator: straight-line arithmetic,
/// nested ifs, while loops with bounded shapes, all over a fixed set of
/// int locals.
#[derive(Debug, Clone)]
enum GenStmt {
    Assign(usize, GenExpr),
    If(GenExpr, Vec<GenStmt>, Vec<GenStmt>),
    While(usize, Vec<GenStmt>),
    Return(GenExpr),
}

#[derive(Debug, Clone)]
enum GenExpr {
    Var(usize),
    Const(i32),
    Add(Box<GenExpr>, Box<GenExpr>),
    Mul(Box<GenExpr>, Box<GenExpr>),
    Lt(Box<GenExpr>, Box<GenExpr>),
}

const NVARS: usize = 4;

fn gen_expr(g: &mut Gen, depth: u32) -> GenExpr {
    if depth == 0 || g.chance(0.4) {
        if g.bool() {
            GenExpr::Var(g.usize(0, NVARS))
        } else {
            GenExpr::Const(g.i32(-50, 50))
        }
    } else {
        let a = Box::new(gen_expr(g, depth - 1));
        let b = Box::new(gen_expr(g, depth - 1));
        match g.usize(0, 3) {
            0 => GenExpr::Add(a, b),
            1 => GenExpr::Mul(a, b),
            _ => GenExpr::Lt(a, b),
        }
    }
}

fn gen_stmt(g: &mut Gen, depth: u32) -> GenStmt {
    if depth == 0 {
        if g.chance(0.8) {
            GenStmt::Assign(g.usize(0, NVARS), gen_expr(g, 3))
        } else {
            GenStmt::Return(gen_expr(g, 3))
        }
    } else {
        match g.usize(0, 5) {
            0 => {
                let c = gen_expr(g, 3);
                let t = g.vec_of(1, 3, |g| gen_stmt(g, depth - 1));
                let e = g.vec_of(0, 3, |g| gen_stmt(g, depth - 1));
                GenStmt::If(c, t, e)
            }
            1 => {
                let v = g.usize(0, NVARS);
                let b = g.vec_of(1, 3, |g| gen_stmt(g, depth - 1));
                GenStmt::While(v, b)
            }
            _ => GenStmt::Assign(g.usize(0, NVARS), gen_expr(g, 3)),
        }
    }
}

fn gen_stmts(g: &mut Gen) -> Vec<GenStmt> {
    g.vec_of(1, 8, |g| gen_stmt(g, 2))
}

fn render_expr(e: &GenExpr) -> String {
    match e {
        GenExpr::Var(v) => format!("v{v}"),
        GenExpr::Const(c) => {
            if *c < 0 {
                format!("(0 - {})", -c)
            } else {
                format!("{c}")
            }
        }
        GenExpr::Add(a, b) => format!("({} + {})", render_expr(a), render_expr(b)),
        GenExpr::Mul(a, b) => format!("({} * {})", render_expr(a), render_expr(b)),
        GenExpr::Lt(a, b) => format!("({} < {})", render_expr(a), render_expr(b)),
    }
}

fn render_stmts(stmts: &[GenStmt], indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            GenStmt::Assign(v, e) => {
                out.push_str(&format!("{pad}v{v} = {};\n", render_expr(e)));
            }
            GenStmt::If(c, t, e) => {
                out.push_str(&format!("{pad}if ({}) {{\n", render_expr(c)));
                render_stmts(t, indent + 1, out);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_stmts(e, indent + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            GenStmt::While(v, b) => {
                // Bounded loop: counts v down so lowering terminates in
                // finite shape (runtime behaviour is irrelevant here).
                out.push_str(&format!("{pad}while (v{v} > 0) {{\n"));
                out.push_str(&format!("{}v{v} = v{v} - 1;\n", "    ".repeat(indent + 1)));
                render_stmts(b, indent + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            GenStmt::Return(e) => {
                out.push_str(&format!("{pad}return {};\n", render_expr(e)));
            }
        }
    }
}

fn render_program(stmts: &[GenStmt]) -> String {
    let mut out = String::from("int f(int a, int b) {\n");
    for v in 0..NVARS {
        out.push_str(&format!("    int v{v};\n"));
    }
    out.push_str("    v0 = a;\n    v1 = b;\n    v2 = 0;\n    v3 = 1;\n");
    render_stmts(stmts, 1, &mut out);
    out.push_str("    return v0 + v1 + v2 + v3;\n}\n");
    out
}

/// Generated programs lower without diagnostics and verify before and
/// after SSA promotion.
#[test]
fn lower_and_ssa_preserve_invariants() {
    run_cases(128, |g| {
        let stmts = gen_stmts(g);
        let src = render_program(&stmts);
        let parsed = parse_source("gen.c", &src);
        assert!(!parsed.diags.has_errors(), "parse failed on:\n{src}");
        let mut diags = Diagnostics::new();
        let mut module = lower(&parsed.unit, &mut diags);
        assert!(!diags.has_errors(), "lowering failed on:\n{src}");
        let pre = verify_module(&module);
        assert!(pre.is_empty(), "pre-SSA verify failed on:\n{src}\n{pre:?}");
        promote_module(&mut module);
        let post = verify_module(&module);
        assert!(post.is_empty(), "post-SSA verify failed on:\n{src}\n{post:?}");
        // Scalars must be fully promoted.
        for fid in module.definitions() {
            let f = module.function(fid);
            let allocas = f
                .iter_insts()
                .filter(|(_, i)| matches!(i.kind, safeflow_ir::InstKind::Alloca { .. }))
                .count();
            assert_eq!(allocas, 0, "all scalar locals promote on:\n{src}");
        }
    });
}

/// Dominator facts are consistent with reachability on generated CFGs.
#[test]
fn dominators_consistent() {
    run_cases(128, |g| {
        let stmts = gen_stmts(g);
        let src = render_program(&stmts);
        let parsed = parse_source("gen.c", &src);
        if parsed.diags.has_errors() {
            return;
        }
        let mut diags = Diagnostics::new();
        let mut module = lower(&parsed.unit, &mut diags);
        promote_module(&mut module);
        for fid in module.definitions() {
            let f = module.function(fid);
            if f.blocks.is_empty() {
                continue;
            }
            let cfg = Cfg::build(f);
            let dom = DomTree::build(&cfg);
            // The entry dominates every reachable block; nothing dominates
            // the entry except itself.
            for &b in &cfg.rpo {
                assert!(dom.dominates(f.entry(), b));
                if b != f.entry() {
                    assert!(!dom.dominates(b, f.entry()));
                }
            }
            // idom is a strict ancestor in RPO.
            for &b in &cfg.rpo {
                if let Some(d) = dom.immediate_dominator(b) {
                    assert!(
                        cfg.rpo_index[d.0 as usize] < cfg.rpo_index[b.0 as usize],
                        "idom must precede in RPO"
                    );
                }
            }
        }
    });
}
