//! Phase 2: enforcement of the shared-memory language restrictions
//! (paper §3.2, checked as described in §3.3):
//!
//! * **P1** — shared memory must not be deallocated before the end of
//!   `main`;
//! * **P2** — the address of a shared-memory pointer must not be taken
//!   (no aliasing shm pointers through memory);
//! * **P3** — no casts of shm pointers to incompatible pointee types or to
//!   integers (exempt inside `shminit` functions and their callees);
//! * **A1/A2** — shared-array indices must be provably in bounds; loop
//!   indices must be affine in induction variables with affine bounds.
//!   Obligations are discharged by the Omega-test solver, standing in for
//!   the paper's use of the Omega library.
//!
//! (§3.3 once says "restrictions P1–P4"; the paper only ever defines
//! P1–P3, so we treat "P4" as a typo for P3.)

use crate::config::AnalysisConfig;
use crate::regions::RegionMap;
use crate::report::{Degradation, DegradationKind, Restriction, RestrictionViolation};
use crate::shmptr::ShmPointers;
use safeflow_ir::{
    loops::{find_loops, Loop},
    CallGraph, CastKind, Cfg, DomTree, FuncId, Function, InstId, InstKind, Module, Type, Value,
};
use safeflow_solver::{Entailment, LinExpr, SolveStats, SolverLimits, System, Var};
use safeflow_util::fault::FaultSite;
use safeflow_util::metrics::{Class, Metrics};
use safeflow_util::pool::{panic_message, run_map_observed, PoolStats};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Per-function check/solver tallies, merged in definition order after the
/// parallel pass so the metrics totals are independent of `jobs`.
#[derive(Debug, Default)]
struct FnCheckStats {
    /// Shared-array bounds obligations examined (A1/A2 sites).
    bounds_obligations: u64,
    /// Omega entailment queries issued (two per proven obligation).
    solver_calls: u64,
    /// Aggregated solver work counters.
    solve: SolveStats,
}

/// Runs all restriction checks, returning the violations found plus any
/// degradations (panicking or over-budget per-function scans).
///
/// The module-wide facts (shminit reachability, the transitive
/// shm-touching set, phase 1's escaping stores) are computed sequentially;
/// the per-function P1/P2/P3/A1/A2 scans then run concurrently on
/// `config.jobs` worker threads. Results are merged in definition order,
/// so the output is independent of `jobs`.
///
/// A panic inside one function's scan is contained: that function's
/// checks degrade (recorded as an `InternalError` degradation — no silent
/// pass), every other function completes. Solver obligations share a
/// per-function step pool from `config.budget.solver_steps`; exhaustion
/// leaves the obligation *unproven* (still an A1 violation, conservative)
/// and records a `BudgetExhausted` degradation.
pub fn check_restrictions(
    module: &Module,
    regions: &RegionMap,
    shm: &ShmPointers,
    callgraph: &CallGraph,
    config: &AnalysisConfig,
    deadline: Option<Instant>,
    metrics: &Metrics,
) -> (Vec<RestrictionViolation>, Vec<Degradation>) {
    let shminit_reachable = shminit_reachable(module, callgraph);
    let touches = shm_touching_functions(module, shm, callgraph);

    // P2(a): region pointers stored into arbitrary memory (from phase 1).
    let mut out = Vec::new();
    for &(fid, iid) in &shm.escaping_stores {
        let func = module.function(fid);
        out.push(RestrictionViolation {
            restriction: Restriction::P2,
            function: func.name.clone(),
            message: "shared-memory pointer stored into memory (aliases a shm pointer through a memory location)"
                .to_string(),
            span: func.inst(iid).span,
        });
    }

    let defs: Vec<FuncId> = module.definitions().collect();
    let pool_stats = PoolStats::default();
    let per_fn = run_map_observed(config.jobs.max(1), defs.len(), &pool_stats, |i| {
        let fid = defs[i];
        catch_unwind(AssertUnwindSafe(|| {
            let mut vs = Vec::new();
            let mut budget_notes: Vec<String> = Vec::new();
            let mut fs = FnCheckStats::default();
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    budget_notes
                        .push("wall-clock deadline exceeded before restriction checks".into());
                    return (vs, budget_notes, fs);
                }
            }
            check_p1_in(
                module,
                shm,
                &touches,
                &config.dealloc_functions,
                &config.entry,
                fid,
                &mut vs,
            );
            check_p2_in(module, shm, fid, &mut vs);
            check_p3_in(module, shm, &shminit_reachable, fid, &mut vs);
            check_arrays_in(
                module,
                regions,
                shm,
                &shminit_reachable,
                fid,
                config,
                &mut vs,
                &mut budget_notes,
                &mut fs,
            );
            (vs, budget_notes, fs)
        }))
        .map_err(|p| panic_message(&*p))
    });

    // Merge in definition order (independent of the worker schedule); the
    // tallies are flushed once, so they are too.
    let mut degradations = Vec::new();
    let mut totals = FnCheckStats::default();
    let mut scanned: u64 = 0;
    for (i, r) in per_fn.into_iter().enumerate() {
        let name = module.function(defs[i]).name.clone();
        match r {
            Ok((vs, notes, fs)) => {
                scanned += 1;
                totals.bounds_obligations += fs.bounds_obligations;
                totals.solver_calls += fs.solver_calls;
                totals.solve.steps += fs.solve.steps;
                totals.solve.eq_eliminations += fs.solve.eq_eliminations;
                totals.solve.fm_eliminations += fs.solve.fm_eliminations;
                totals.solve.early_exits += fs.solve.early_exits;
                out.extend(vs);
                for n in notes {
                    degradations.push(Degradation {
                        kind: DegradationKind::BudgetExhausted,
                        functions: vec![name.clone()],
                        detail: n,
                    });
                }
            }
            Err(msg) => degradations.push(Degradation {
                kind: DegradationKind::InternalError,
                functions: vec![name],
                detail: format!("restriction checks panicked: {msg}"),
            }),
        }
    }
    metrics.add_many(
        Class::Counter,
        &[
            ("restrict.functions_checked", scanned),
            ("restrict.bounds_obligations", totals.bounds_obligations),
            ("restrict.solver_calls", totals.solver_calls),
            ("solver.steps", totals.solve.steps),
            ("solver.eq_eliminations", totals.solve.eq_eliminations),
            ("solver.fm_eliminations", totals.solve.fm_eliminations),
            ("solver.early_exits", totals.solve.early_exits),
        ],
    );
    metrics.add_many(
        Class::Sched,
        &[
            ("pool.restrict.tasks", pool_stats.tasks.load(Ordering::Relaxed)),
            ("pool.restrict.steals", pool_stats.steals.load(Ordering::Relaxed)),
            ("pool.restrict.max_queue_depth", pool_stats.max_queue_depth.load(Ordering::Relaxed)),
        ],
    );
    metrics.record_ns("pool.restrict.busy_ns", pool_stats.busy_ns.load(Ordering::Relaxed));
    (out, degradations)
}

/// Functions exempt from P3: `shminit` functions and everything they call
/// ("applies to the function and any function invoked recursively by it",
/// §3.2.1).
fn shminit_reachable(module: &Module, callgraph: &CallGraph) -> HashSet<FuncId> {
    let mut set = HashSet::new();
    for fid in module.definitions() {
        if module.function(fid).is_shminit() {
            set.extend(callgraph.reachable_from(fid));
        }
    }
    set
}

// --------------------------------------------------------------------- P1

/// Functions that (transitively) touch shared memory — the module-wide
/// input to the per-function P1 scan.
fn shm_touching_functions(
    module: &Module,
    shm: &ShmPointers,
    callgraph: &CallGraph,
) -> HashSet<FuncId> {
    let mut touches: HashSet<FuncId> = HashSet::new();
    for fid in module.definitions() {
        let func = module.function(fid);
        if func.is_shminit() {
            continue;
        }
        let has_access = func.iter_insts().any(|(_, inst)| match &inst.kind {
            InstKind::Load { ptr } | InstKind::Store { ptr, .. } => shm.is_shm_ptr(fid, ptr),
            _ => false,
        });
        if has_access {
            touches.insert(fid);
        }
    }
    // Close over callers: a function touching shm taints its callers.
    let mut changed = true;
    while changed {
        changed = false;
        for fid in module.definitions() {
            if touches.contains(&fid) {
                continue;
            }
            if let Some(callees) = callgraph.callees.get(&fid) {
                if callees.iter().any(|c| touches.contains(c)) {
                    touches.insert(fid);
                    changed = true;
                }
            }
        }
    }
    touches
}

fn check_p1_in(
    module: &Module,
    shm: &ShmPointers,
    touches: &HashSet<FuncId>,
    dealloc_functions: &[String],
    entry: &str,
    fid: FuncId,
    out: &mut Vec<RestrictionViolation>,
) {
    let func = module.function(fid);
    for (_bid, block) in func.iter_blocks() {
        for (pos, &iid) in block.insts.iter().enumerate() {
            let inst = func.inst(iid);
            let InstKind::Call { callee, .. } = &inst.kind else { continue };
            let Some(name) = module.external_callee_name(callee) else { continue };
            if !dealloc_functions.iter().any(|d| d == name) {
                continue;
            }
            if func.name != entry {
                out.push(RestrictionViolation {
                    restriction: Restriction::P1,
                    function: func.name.clone(),
                    message: format!(
                        "`{name}` deallocates shared memory outside `{entry}` (shared memory must live until the end of `{entry}`)"
                    ),
                    span: inst.span,
                });
                continue;
            }
            // Inside main: any shm access after the call (same block or
            // reachable block) violates P1.
            let mut bad = false;
            for &later in &block.insts[pos + 1..] {
                if inst_touches_shm(module, shm, fid, func, later, touches) {
                    bad = true;
                }
            }
            if !bad {
                let cfg = Cfg::build(func);
                let mut seen = HashSet::new();
                let mut work: Vec<_> = block.terminator.successors();
                while let Some(b) = work.pop() {
                    if !seen.insert(b) {
                        continue;
                    }
                    for &i2 in &func.block(b).insts {
                        if inst_touches_shm(module, shm, fid, func, i2, touches) {
                            bad = true;
                        }
                    }
                    work.extend(cfg.succs_of(b).iter().copied());
                }
            }
            if bad {
                out.push(RestrictionViolation {
                    restriction: Restriction::P1,
                    function: func.name.clone(),
                    message: format!("shared memory may be accessed after `{name}` deallocates it"),
                    span: inst.span,
                });
            }
        }
    }
}

fn inst_touches_shm(
    module: &Module,
    shm: &ShmPointers,
    fid: FuncId,
    func: &Function,
    iid: InstId,
    touching_fns: &HashSet<FuncId>,
) -> bool {
    match &func.inst(iid).kind {
        InstKind::Load { ptr } | InstKind::Store { ptr, .. } => shm.is_shm_ptr(fid, ptr),
        InstKind::Call { callee, .. } => match callee {
            safeflow_ir::Callee::Local(t) if module.function(*t).is_definition => {
                touching_fns.contains(t)
            }
            _ => false,
        },
        _ => false,
    }
}

// --------------------------------------------------------------------- P2

/// P2(b): taking the address of a variable that holds a shm pointer — a
/// `Value::Global(g)` (the global's address) or an alloca holding shm
/// facts used anywhere except as the direct pointer of a load/store.
/// (P2(a), the escaping stores collected in phase 1, is emitted by
/// [`check_restrictions`] before the parallel per-function pass.)
fn check_p2_in(
    module: &Module,
    shm: &ShmPointers,
    fid: FuncId,
    out: &mut Vec<RestrictionViolation>,
) {
    let func = module.function(fid);
    if func.is_shminit() {
        return;
    }
    // Allocas holding shm pointers.
    let mut shm_slots: HashSet<InstId> = HashSet::new();
    for (iid, inst) in func.iter_insts() {
        if matches!(inst.kind, InstKind::Alloca { .. })
            && !shm.regions_of(fid, &Value::Inst(iid)).is_empty()
        {
            shm_slots.insert(iid);
        }
    }
    for (_iid, inst) in func.iter_insts() {
        let bad_use = |v: &Value, exclude_ptr_position: bool| -> bool {
            if exclude_ptr_position {
                return false;
            }
            match v {
                Value::Global(g) => !shm.global_regions(*g).is_empty(),
                Value::Inst(id) => shm_slots.contains(id),
                _ => false,
            }
        };
        let mut offending = false;
        match &inst.kind {
            InstKind::Load { .. } => {}
            InstKind::Store { ptr: _, value } => {
                // Using the address *as the stored value* is the
                // violation; using it as the store target is fine.
                if bad_use(value, false) {
                    offending = true;
                }
            }
            other => {
                for op in other.operands() {
                    if bad_use(op, false) {
                        offending = true;
                    }
                }
            }
        }
        if offending {
            out.push(RestrictionViolation {
                restriction: Restriction::P2,
                function: func.name.clone(),
                message: "address of a shared-memory pointer variable is taken".to_string(),
                span: inst.span,
            });
        }
    }
}

// --------------------------------------------------------------------- P3

fn check_p3_in(
    module: &Module,
    shm: &ShmPointers,
    exempt: &HashSet<FuncId>,
    fid: FuncId,
    out: &mut Vec<RestrictionViolation>,
) {
    if exempt.contains(&fid) {
        return;
    }
    let func = module.function(fid);
    for (_, inst) in func.iter_insts() {
        let InstKind::Cast { kind, value } = &inst.kind else { continue };
        if shm.regions_of(fid, value).is_empty() {
            continue;
        }
        match kind {
            CastKind::PtrToInt => {
                out.push(RestrictionViolation {
                    restriction: Restriction::P3,
                    function: func.name.clone(),
                    message: "shared-memory pointer cast to an integer".to_string(),
                    span: inst.span,
                });
            }
            CastKind::PtrToPtr => {
                let from = module.value_type(func, value);
                let (Some(fp), Some(tp)) = (from.pointee(), inst.ty.pointee()) else {
                    continue;
                };
                if !module.types.compatible_pointees(fp, tp)
                    && !matches!(fp, Type::Int { bits: 8, .. })
                    && !matches!(tp, Type::Int { bits: 8, .. })
                {
                    out.push(RestrictionViolation {
                        restriction: Restriction::P3,
                        function: func.name.clone(),
                        message: format!(
                            "shared-memory pointer cast between incompatible types `{}` and `{}`",
                            module.types.display(&from),
                            module.types.display(&inst.ty)
                        ),
                        span: inst.span,
                    });
                }
            }
            _ => {}
        }
    }
}

// ----------------------------------------------------------------- A1/A2

/// Affine form of an index expression over loop induction variables.
struct AffineCtx<'a> {
    func: &'a Function,
    loops: &'a [Loop],
    /// Solver variable per IV φ.
    iv_vars: HashMap<InstId, Var>,
    /// Solver variable per non-IV symbolic leaf (bounds like `n`).
    sym_vars: HashMap<ValueFingerprint, Var>,
    sys: System,
}

/// Hashable stand-in for `Value` leaves (params and instruction results).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ValueFingerprint {
    Inst(InstId),
    Param(u32),
}

fn fingerprint(v: &Value) -> Option<ValueFingerprint> {
    match v {
        Value::Inst(i) => Some(ValueFingerprint::Inst(*i)),
        Value::Param(i) => Some(ValueFingerprint::Param(*i)),
        _ => None,
    }
}

impl<'a> AffineCtx<'a> {
    fn new(func: &'a Function, loops: &'a [Loop]) -> AffineCtx<'a> {
        AffineCtx {
            func,
            loops,
            iv_vars: HashMap::new(),
            sym_vars: HashMap::new(),
            sys: System::new(),
        }
    }

    /// Declares the constraints of every loop enclosing `at`.
    fn add_loop_constraints(&mut self, at: safeflow_ir::BlockId) {
        let loops: Vec<&Loop> = self.loops.iter().filter(|l| l.body.contains(&at)).collect();
        for l in loops {
            for iv in &l.ivs {
                let v = self.iv_var(iv.phi);
                // Bound by the initial value.
                if let Some(init) = iv.init.as_const_int() {
                    if iv.step > 0 {
                        self.sys.add_ge(LinExpr::var(v), LinExpr::constant(init));
                    } else if iv.step < 0 {
                        self.sys.add_le(LinExpr::var(v), LinExpr::constant(init));
                    }
                } else if let Some(fp) = fingerprint(&iv.init) {
                    let sv = self.sym_var(fp);
                    if iv.step > 0 {
                        self.sys.add_ge(LinExpr::var(v), LinExpr::var(sv));
                    } else if iv.step < 0 {
                        self.sys.add_le(LinExpr::var(v), LinExpr::var(sv));
                    }
                }
            }
            // Header exit test constrains values seen inside the body.
            if let Some(test) = &l.exit_test {
                if let Some(lhs) = self.as_affine_shallow(&test.lhs) {
                    if let Some(rhs) = self.as_affine_shallow(&test.rhs) {
                        use safeflow_ir::CmpOp::*;
                        match test.op {
                            Lt => self.sys.add_lt(lhs, rhs),
                            Le => self.sys.add_le(lhs, rhs),
                            Gt => self.sys.add_gt(lhs, rhs),
                            Ge => self.sys.add_ge(lhs, rhs),
                            Eq => self.sys.add_eq(lhs, rhs),
                            Ne => {} // disequality not representable; skip
                        }
                    }
                }
            }
        }
    }

    fn iv_var(&mut self, phi: InstId) -> Var {
        if let Some(&v) = self.iv_vars.get(&phi) {
            return v;
        }
        let v = self.sys.new_var(format!("iv{}", phi.0));
        self.iv_vars.insert(phi, v);
        v
    }

    fn sym_var(&mut self, fp: ValueFingerprint) -> Var {
        if let Some(&v) = self.sym_vars.get(&fp) {
            return v;
        }
        let v = self.sys.new_var(format!("{fp:?}"));
        self.sym_vars.insert(fp, v);
        v
    }

    /// Affine view of a value as a leaf: constant, IV φ, or a fresh
    /// symbolic variable. Does not recurse into arithmetic.
    fn as_affine_shallow(&mut self, v: &Value) -> Option<LinExpr> {
        if let Some(c) = v.as_const_int() {
            return Some(LinExpr::constant(c));
        }
        if let Value::Inst(id) = v {
            if self.loops.iter().any(|l| l.ivs.iter().any(|iv| iv.phi == *id)) {
                return Some(LinExpr::var(self.iv_var(*id)));
            }
        }
        fingerprint(v).map(|fp| LinExpr::var(self.sym_var(fp)))
    }

    /// Full affine view: recurses through +, -, ×const, and casts. `None`
    /// means the expression is not affine in IVs and constants (an A2
    /// violation when used as a shared-array index).
    fn as_affine(&mut self, v: &Value, depth: usize) -> Option<LinExpr> {
        if depth > 16 {
            return None;
        }
        if let Some(c) = v.as_const_int() {
            return Some(LinExpr::constant(c));
        }
        if let Value::Inst(id) = v {
            if self.loops.iter().any(|l| l.ivs.iter().any(|iv| iv.phi == *id)) {
                return Some(LinExpr::var(self.iv_var(*id)));
            }
            match &self.func.inst(*id).kind {
                InstKind::Bin { op, lhs, rhs } => {
                    use safeflow_ir::BinOp::*;
                    match op {
                        Add => {
                            let a = self.as_affine(lhs, depth + 1)?;
                            let b = self.as_affine(rhs, depth + 1)?;
                            return Some(a + b);
                        }
                        Sub => {
                            let a = self.as_affine(lhs, depth + 1)?;
                            let b = self.as_affine(rhs, depth + 1)?;
                            return Some(a - b);
                        }
                        Mul => {
                            if let Some(c) = rhs.as_const_int() {
                                let a = self.as_affine(lhs, depth + 1)?;
                                return Some(a * c);
                            }
                            if let Some(c) = lhs.as_const_int() {
                                let b = self.as_affine(rhs, depth + 1)?;
                                return Some(b * c);
                            }
                            return None;
                        }
                        _ => return None,
                    }
                }
                InstKind::Cast { kind: CastKind::IntToInt, value } => {
                    return self.as_affine(value, depth + 1);
                }
                _ => {}
            }
            // A non-IV symbolic leaf (e.g. a parameter-derived value):
            // allowed by A2(c) only if it cannot change the accessed
            // location — we keep it symbolic, which makes the bounds
            // obligation unprovable unless otherwise constrained.
            return Some(LinExpr::var(self.sym_var(ValueFingerprint::Inst(*id))));
        }
        if let Value::Param(i) = v {
            return Some(LinExpr::var(self.sym_var(ValueFingerprint::Param(*i))));
        }
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn check_arrays_in(
    module: &Module,
    regions: &RegionMap,
    shm: &ShmPointers,
    exempt: &HashSet<FuncId>,
    fid: FuncId,
    config: &AnalysisConfig,
    out: &mut Vec<RestrictionViolation>,
    budget_notes: &mut Vec<String>,
    fs: &mut FnCheckStats,
) {
    if exempt.contains(&fid) {
        return;
    }
    let func = module.function(fid);
    if func.blocks.is_empty() {
        return;
    }
    // Per-function Omega step pool, shared by every bounds obligation in
    // the function. The solver fault site keys on the function id, so an
    // injected fault lands on the same function at any thread count (a
    // Panic unwinds into the per-function `catch_unwind`; a
    // BudgetExhaustion empties the step pool).
    let mut limits = SolverLimits::default();
    if let Some(steps) = config.budget.solver_steps {
        limits.max_steps = steps;
    }
    if let Some(plan) = &config.fault_plan {
        if plan.trip(FaultSite::Solver, fid.0 as u64) {
            limits.max_steps = 0;
        }
    }
    let mut exhausted = false;
    let cfg = Cfg::build(func);
    let dom = DomTree::build(&cfg);
    let loops = find_loops(func, &cfg, &dom);

    for (iid, inst) in func.iter_insts() {
        let InstKind::ElemAddr { base, index } = &inst.kind else { continue };
        let facts = shm.regions_of(fid, base);
        if facts.is_empty() {
            continue;
        }
        // The decay step `elemaddr p[0]` is trivially safe.
        if index.as_const_int() == Some(0) {
            continue;
        }
        // Determine the bound: an array field inside the region, or the
        // region itself as an array.
        let (bound, base_offset) = match array_bound(module, func, base, regions, &facts) {
            Some(b) => b,
            None => continue,
        };

        let at = func.block_of(iid).unwrap_or(func.entry());
        let mut ctx = AffineCtx::new(func, &loops);
        ctx.add_loop_constraints(at);
        fs.bounds_obligations += 1;
        let Some(idx) = ctx.as_affine(index, 0) else {
            out.push(RestrictionViolation {
                restriction: Restriction::A2,
                function: func.name.clone(),
                message:
                    "shared-array index is not an affine expression of loop induction variables"
                        .to_string(),
                span: inst.span,
            });
            continue;
        };
        let full = idx + LinExpr::constant(base_offset);
        fs.solver_calls += 2;
        let lower = ctx.sys.implies_ge_stats(full.clone(), LinExpr::zero(), &limits, &mut fs.solve);
        let upper =
            ctx.sys.implies_lt_stats(full, LinExpr::constant(bound as i64), &limits, &mut fs.solve);
        let lower_ok = lower == Entailment::Proved;
        let upper_ok = upper == Entailment::Proved;
        let hit_budget =
            lower == Entailment::BudgetExhausted || upper == Entailment::BudgetExhausted;
        if hit_budget {
            exhausted = true;
        }
        if !lower_ok || !upper_ok {
            out.push(RestrictionViolation {
                restriction: Restriction::A1,
                function: func.name.clone(),
                message: format!(
                    "cannot prove shared-array index within bounds [0, {bound}){}",
                    if hit_budget {
                        " (solver step budget exhausted)"
                    } else if !lower_ok {
                        " (lower bound unproven)"
                    } else {
                        " (upper bound unproven)"
                    }
                ),
                span: inst.span,
            });
        }
    }
    if exhausted {
        budget_notes.push(format!(
            "Omega solver step budget ({} step(s)) exhausted while checking shared-array bounds",
            limits.max_steps
        ));
    }
}

/// The element bound for an indexed shared pointer: `(length, base offset)`.
fn array_bound(
    module: &Module,
    func: &Function,
    base: &Value,
    regions: &RegionMap,
    facts: &std::collections::BTreeSet<crate::shmptr::RegionPtr>,
) -> Option<(u64, i64)> {
    // Case 1: base derives from an array-typed field (d->v decayed).
    if let Value::Inst(id) = base {
        if let InstKind::ElemAddr { base: inner, index } = &func.inst(*id).kind {
            if index.as_const_int() == Some(0) {
                if let Value::Inst(fid2) = inner {
                    if let InstKind::FieldAddr { struct_id, field, .. } = &func.inst(*fid2).kind {
                        let fty = &module.types.layout(*struct_id).fields[*field as usize].ty;
                        if let Type::Array(_, n) = fty {
                            return Some((*n, 0));
                        }
                    }
                }
            }
        }
    }
    // Case 2: the region itself is the array.
    let mut tightest: Option<(u64, i64)> = None;
    for f in facts {
        let r = regions.region(f.region);
        let off = f.offset.unwrap_or(0);
        let cand = (r.len, off);
        tightest = Some(match tightest {
            None => cand,
            Some(prev) => {
                if cand.0 < prev.0 {
                    cand
                } else {
                    prev
                }
            }
        });
    }
    tightest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::extract_regions;
    use crate::shmptr::identify_shm_pointers;
    use safeflow_ir::build_module;
    use safeflow_syntax::diag::Diagnostics;
    use safeflow_syntax::parse_source;

    fn violations(src: &str) -> Vec<RestrictionViolation> {
        let pr = parse_source("t.c", src);
        assert!(!pr.diags.has_errors(), "{:?}", pr.diags);
        let mut diags = Diagnostics::new();
        let m = build_module(&pr.unit, &mut diags);
        assert!(!diags.has_errors(), "{diags:?}");
        let regions = extract_regions(&m, &["shmat".to_string()], &mut diags);
        let shm = identify_shm_pointers(&m, &regions);
        let cg = CallGraph::build(&m);
        let config = AnalysisConfig::default();
        let metrics = Metrics::new();
        let (vs, degradations) =
            check_restrictions(&m, &regions, &shm, &cg, &config, None, &metrics);
        assert!(degradations.is_empty(), "{degradations:?}");
        vs
    }

    const PRELUDE: &str = r#"
        typedef struct { float control; float arr[4]; int n; } SHMData;
        SHMData *feedback;
        SHMData *noncoreCtrl;
        void *shmat(int shmid, void *addr, int flags);
        int shmdt(void *addr);
        void initComm(void)
        /** SafeFlow Annotation shminit */
        {
            feedback = (SHMData *) shmat(0, 0, 0);
            noncoreCtrl = feedback + 1;
            /** SafeFlow Annotation
                assume(shmvar(feedback, sizeof(SHMData)))
                assume(shmvar(noncoreCtrl, sizeof(SHMData)))
                assume(noncore(noncoreCtrl))
            */
        }
    "#;

    fn has(vs: &[RestrictionViolation], r: Restriction) -> bool {
        vs.iter().any(|v| v.restriction == r)
    }

    #[test]
    fn clean_program_has_no_violations() {
        let vs = violations(&format!(
            r#"{PRELUDE}
            float ok(void) {{
                int i;
                float s = 0.0;
                for (i = 0; i < 4; i++) s += noncoreCtrl->arr[i];
                return s;
            }}
            int main() {{ ok(); return 0; }}
            "#
        ));
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn p1_dealloc_outside_main() {
        let vs = violations(&format!(
            "{PRELUDE}\nvoid teardown(void) {{ shmdt(feedback); }}\nint main() {{ teardown(); return 0; }}"
        ));
        assert!(has(&vs, Restriction::P1), "{vs:?}");
    }

    #[test]
    fn p1_access_after_dealloc_in_main() {
        let vs = violations(&format!(
            r#"{PRELUDE}
            int main() {{
                float x;
                shmdt(feedback);
                x = feedback->control;
                return 0;
            }}
            "#
        ));
        assert!(has(&vs, Restriction::P1), "{vs:?}");
    }

    #[test]
    fn p1_dealloc_at_end_of_main_ok() {
        let vs = violations(&format!(
            r#"{PRELUDE}
            int main() {{
                float x = feedback->control;
                shmdt(feedback);
                return 0;
            }}
            "#
        ));
        assert!(!has(&vs, Restriction::P1), "{vs:?}");
    }

    #[test]
    fn p2_store_into_struct_field() {
        let vs = violations(&format!(
            r#"{PRELUDE}
            typedef struct {{ SHMData *stash; }} Holder;
            Holder h;
            void bad(void) {{ h.stash = noncoreCtrl; }}
            "#
        ));
        assert!(has(&vs, Restriction::P2), "{vs:?}");
    }

    #[test]
    fn p2_address_of_region_global() {
        let vs = violations(&format!(
            "{PRELUDE}\nvoid taker(SHMData **pp);\nvoid bad(void) {{ taker(&feedback); }}"
        ));
        assert!(has(&vs, Restriction::P2), "{vs:?}");
    }

    #[test]
    fn p3_incompatible_cast() {
        let vs = violations(&format!(
            r#"{PRELUDE}
            typedef struct {{ double d; }} Other;
            void bad(void) {{ Other *o = (Other *) noncoreCtrl; }}
            "#
        ));
        assert!(has(&vs, Restriction::P3), "{vs:?}");
    }

    #[test]
    fn p3_cast_to_int() {
        let vs = violations(&format!("{PRELUDE}\nlong bad(void) {{ return (long) noncoreCtrl; }}"));
        assert!(has(&vs, Restriction::P3), "{vs:?}");
    }

    #[test]
    fn p3_exempt_in_shminit() {
        // The casts inside initComm (void* → SHMData*) must not fire.
        let vs = violations(&format!("{PRELUDE}\nint main() {{ return 0; }}"));
        assert!(!has(&vs, Restriction::P3), "{vs:?}");
    }

    #[test]
    fn a1_constant_out_of_bounds() {
        let vs =
            violations(&format!("{PRELUDE}\nfloat bad(void) {{ return noncoreCtrl->arr[7]; }}"));
        assert!(has(&vs, Restriction::A1), "{vs:?}");
    }

    #[test]
    fn a1_constant_in_bounds_ok() {
        let vs =
            violations(&format!("{PRELUDE}\nfloat ok(void) {{ return noncoreCtrl->arr[3]; }}"));
        assert!(!has(&vs, Restriction::A1), "{vs:?}");
    }

    #[test]
    fn a1_loop_bound_proven() {
        let vs = violations(&format!(
            r#"{PRELUDE}
            float ok(void) {{
                float s = 0.0;
                int i;
                for (i = 0; i < 4; i++) s += noncoreCtrl->arr[i];
                return s;
            }}
            "#
        ));
        assert!(!has(&vs, Restriction::A1), "{vs:?}");
        assert!(!has(&vs, Restriction::A2), "{vs:?}");
    }

    #[test]
    fn a1_loop_bound_too_large() {
        let vs = violations(&format!(
            r#"{PRELUDE}
            float bad(void) {{
                float s = 0.0;
                int i;
                for (i = 0; i < 8; i++) s += noncoreCtrl->arr[i];
                return s;
            }}
            "#
        ));
        assert!(has(&vs, Restriction::A1), "{vs:?}");
    }

    #[test]
    fn a1_symbolic_bound_unprovable() {
        let vs = violations(&format!(
            r#"{PRELUDE}
            float bad(int n) {{
                float s = 0.0;
                int i;
                for (i = 0; i < n; i++) s += noncoreCtrl->arr[i];
                return s;
            }}
            "#
        ));
        assert!(has(&vs, Restriction::A1), "{vs:?}");
    }

    #[test]
    fn a2_nonaffine_index() {
        let vs = violations(&format!(
            r#"{PRELUDE}
            float bad(void) {{
                float s = 0.0;
                int i;
                for (i = 1; i < 4; i = i * 2) s += noncoreCtrl->arr[i];
                return s;
            }}
            "#
        ));
        // i*2 update makes i a non-IV; indexing by it is non-affine... but
        // the *index* is the phi itself which becomes a symbolic leaf, so
        // this manifests as an unprovable A1 rather than A2.
        assert!(has(&vs, Restriction::A1) || has(&vs, Restriction::A2), "{vs:?}");
    }

    #[test]
    fn a1_affine_transformed_index_proven() {
        let vs = violations(&format!(
            r#"{PRELUDE}
            float ok(void) {{
                float s = 0.0;
                int i;
                for (i = 0; i < 2; i++) s += noncoreCtrl->arr[2 * i + 1];
                return s;
            }}
            "#
        ));
        assert!(!has(&vs, Restriction::A1), "{vs:?}");
        assert!(!has(&vs, Restriction::A2), "{vs:?}");
    }

    #[test]
    fn region_indexed_as_array() {
        let src = r#"
            float *samples;
            void *shmat(int shmid, void *addr, int flags);
            void init(void)
            /** SafeFlow Annotation shminit */
            {
                samples = (float *) shmat(0, 0, 0);
                /** SafeFlow Annotation
                    assume(shmvar(samples, 64))
                    assume(noncore(samples))
                */
            }
            float ok(void) {
                float s = 0.0;
                int i;
                for (i = 0; i < 16; i++) s += samples[i];
                return s;
            }
            float bad(void) { return samples[16]; }
        "#;
        let vs = violations(src);
        assert_eq!(vs.iter().filter(|v| v.restriction == Restriction::A1).count(), 1, "{vs:?}");
        assert!(vs.iter().all(|v| v.function == "bad"), "{vs:?}");
    }
}
