//! Analysis configuration.

use crate::policy::{ImplicitFlowMode, Policy};
use safeflow_util::fault::FaultPlan;

/// Resource budgets for one analysis run.
///
/// Every field defaults to `None` ("the engine's built-in bound"), so the
/// default budget reproduces historical behavior exactly. When a bound is
/// set and exhausted, the affected scope degrades *conservatively* — facts
/// become unknown-unsafe, solver obligations become unproven — and the
/// report carries a `BudgetExhausted` degradation note instead of the run
/// hanging or aborting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Total Omega-solver step pool per function (shared by all of that
    /// function's array-bounds obligations).
    pub solver_steps: Option<u64>,
    /// Cap on dataflow fixpoint iterations (per function and per SCC).
    /// When the cap is hit before convergence the scope degrades.
    pub fixpoint_rounds: Option<u32>,
    /// Functions with more instructions than this are not analyzed in
    /// depth; their effects degrade to conservative top.
    pub max_function_insts: Option<usize>,
    /// Wall-clock deadline for the whole run, in milliseconds. Scopes that
    /// start after the deadline degrade. This is the one budget whose
    /// effect is machine-dependent; determinism tests never set it.
    pub deadline_ms: Option<u64>,
}

impl Budget {
    /// A budget with no explicit bounds (the default).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// `true` if no explicit bound is set.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::default()
    }
}

/// An external call whose argument is implicitly critical (the paper
/// treats the pid argument of `kill` this way, §3.1/§4): every value
/// flowing into `args[arg]` at a call to `name` must be monitored, exactly
/// as if it carried an `assert(safe(...))`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CriticalCall {
    /// External function name.
    pub name: String,
    /// Zero-based index of the critical argument.
    pub arg: usize,
    /// Clearance label: the highest label the argument may carry without
    /// an error. `None` (the default, and the paper's behavior) means
    /// `trusted` — any labeled value is an error.
    pub clearance: Option<String>,
}

impl CriticalCall {
    /// A critical-call spec for argument `arg` of `name`, cleared only
    /// for `trusted` values (the paper's behavior).
    pub fn new(name: impl Into<String>, arg: usize) -> CriticalCall {
        CriticalCall { name: name.into(), arg, clearance: None }
    }

    /// A critical-call spec whose argument is cleared up to the given
    /// policy label.
    pub fn with_clearance(
        name: impl Into<String>,
        arg: usize,
        clearance: impl Into<String>,
    ) -> CriticalCall {
        CriticalCall { name: name.into(), arg, clearance: Some(clearance.into()) }
    }
}

/// A message-receive library call for the §3.4.3 extension: `recv(sock,
/// buf, ...)`-shaped functions whose buffer is tainted when the descriptor
/// argument reads from a non-core socket.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RecvSpec {
    /// External function name (`recv`, `read`, ...).
    pub name: String,
    /// Zero-based index of the socket/descriptor argument.
    pub sock_arg: usize,
    /// Zero-based index of the buffer argument filled with received data.
    pub buf_arg: usize,
}

impl RecvSpec {
    /// A receive spec: `name(sock_arg .. buf_arg ..)`.
    pub fn new(name: impl Into<String>, sock_arg: usize, buf_arg: usize) -> RecvSpec {
        RecvSpec { name: name.into(), sock_arg, buf_arg }
    }
}

/// Which phase-3 engine to run (paper §3.3, last two paragraphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Re-analyze each function per calling context (assumption set ×
    /// parameter taint). Matches the paper's implemented algorithm:
    /// "each function ... is analyzed multiple times for different call
    /// sequences leading to it, making the implementation exponential".
    #[default]
    ContextSensitive,
    /// ESP-style value-flow summaries: one bottom-up pass computing
    /// symbolic summaries, then instantiation — the optimization the paper
    /// proposes ("analyzing each function only once and summarizing the
    /// data dependencies ... using value flow graphs developed in ESP").
    Summary,
}

/// Configuration of a SafeFlow run.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Phase-3 engine.
    pub engine: Engine,
    /// External calls whose arguments are implicitly critical. The paper
    /// treats the pid argument of `kill` this way (§3.1/§4).
    pub implicit_critical_calls: Vec<CriticalCall>,
    /// External functions that deallocate shared memory (restriction P1).
    pub dealloc_functions: Vec<String>,
    /// External functions that allocate/attach shared memory segments
    /// inside `shminit` functions.
    pub shm_attach_functions: Vec<String>,
    /// Message-receive library calls for the §3.4.3 extension.
    pub recv_functions: Vec<RecvSpec>,
    /// Entry point used for reachability and P1 ("end of main").
    pub entry: String,
    /// Cap on distinct contexts analyzed *per function* before the
    /// context-sensitive engine merges into a single worst-case context
    /// (no inherited assumptions, tainted parameters — sound, imprecise).
    pub max_contexts: usize,
    /// Whether branches on unsafe values taint what they control (paper
    /// §3.3). Disabling this is the §3.4.1 ablation: every false positive
    /// disappears — and so do real control-dependence errors like the
    /// paper's Figure 2 finding. Default: on, as in the paper.
    pub track_control_dependence: bool,
    /// Worker threads for the parallel phases (summary-engine SCC
    /// scheduling, per-function graph construction, restriction checks).
    /// `1` (the default) runs everything sequentially on the calling
    /// thread; reports are identical for every value.
    pub jobs: usize,
    /// Resource budgets; the default is unlimited (built-in bounds only).
    pub budget: Budget,
    /// Deterministic fault injection for testing the degradation paths;
    /// `None` (the default) injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// The label-lattice policy. The default empty policy is the paper's
    /// two-point monitored/unmonitored scheme; see [`Policy`].
    pub policy: Policy,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            engine: Engine::ContextSensitive,
            implicit_critical_calls: vec![CriticalCall::new("kill", 0)],
            dealloc_functions: vec!["shmdt".to_string(), "shmctl".to_string()],
            shm_attach_functions: vec!["shmat".to_string()],
            recv_functions: vec![RecvSpec::new("recv", 0, 1), RecvSpec::new("read", 0, 1)],
            entry: "main".to_string(),
            max_contexts: 512,
            track_control_dependence: true,
            jobs: 1,
            budget: Budget::default(),
            fault_plan: None,
            policy: Policy::default(),
        }
    }
}

impl AnalysisConfig {
    /// A builder over the default configuration — the documented way to
    /// construct a non-default [`AnalysisConfig`]. The struct fields stay
    /// public for compatibility, but new code should prefer the builder's
    /// typed setters over bare struct mutation.
    pub fn builder() -> AnalyzerBuilder {
        AnalyzerBuilder::new()
    }

    /// Default configuration with the given engine.
    pub fn with_engine(engine: Engine) -> Self {
        AnalysisConfig { engine, ..AnalysisConfig::default() }
    }

    /// The differential-oracle **reference** configuration: the summary
    /// engine run in its most naive shape — single-threaded (`jobs = 1`),
    /// unlimited budget, no fault plan. "Cache-free" and "store-free" are
    /// usage conventions on top of this: oracle reference runs use a fresh
    /// `Analyzer` per program (so the in-memory summary cache is always
    /// cold) and never attach a persistent store. Every optimized
    /// configuration (`--jobs N`, warm cache, store replay, dirty-region
    /// incremental) must reproduce this configuration's report byte for
    /// byte under the observability contract.
    pub fn reference() -> Self {
        AnalysisConfig::with_engine(Engine::Summary).normalized()
    }

    /// This configuration with its external-function lists sorted and
    /// deduplicated. Two configurations that differ only in list *order*
    /// are semantically identical; normalizing makes them structurally
    /// identical too, so store manifest keys and summary content hashes
    /// cannot diverge on flag order.
    pub fn normalized(mut self) -> Self {
        self.implicit_critical_calls.sort();
        self.implicit_critical_calls.dedup();
        self.dealloc_functions.sort();
        self.dealloc_functions.dedup();
        self.shm_attach_functions.sort();
        self.shm_attach_functions.dedup();
        self.recv_functions.sort();
        self.recv_functions.dedup();
        self.policy = self.policy.normalized();
        self
    }

    /// This configuration with `jobs` worker threads (builder-style;
    /// `0` is clamped to `1`).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// This configuration with the given resource budget (builder-style).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// This configuration with the given fault plan (builder-style;
    /// testing hook — injected faults exercise the degradation paths).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// Typed, chainable construction of an [`AnalysisConfig`] (and, via
/// [`AnalyzerBuilder::build`], an `Analyzer`). Obtained from
/// [`AnalysisConfig::builder`]; every setter has the same semantics as the
/// corresponding config field, with the clamping and defaulting rules
/// applied at the point of the call.
#[derive(Debug, Clone, Default)]
pub struct AnalyzerBuilder {
    config: AnalysisConfig,
}

impl AnalyzerBuilder {
    /// A builder holding the default configuration.
    pub fn new() -> AnalyzerBuilder {
        AnalyzerBuilder { config: AnalysisConfig::default() }
    }

    /// Sets the phase-3 engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.config.engine = engine;
        self
    }

    /// Sets the worker-thread count (`0` is clamped to `1`).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.config.jobs = jobs.max(1);
        self
    }

    /// Sets the resource budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Sets the entry-point function name.
    pub fn entry(mut self, entry: impl Into<String>) -> Self {
        self.config.entry = entry.into();
        self
    }

    /// Sets the per-function context cap for the context-sensitive engine.
    pub fn max_contexts(mut self, max: usize) -> Self {
        self.config.max_contexts = max.max(1);
        self
    }

    /// Enables or disables control-dependence taint tracking (§3.4.1).
    pub fn track_control_dependence(mut self, track: bool) -> Self {
        self.config.track_control_dependence = track;
        self
    }

    /// Sets a deterministic fault-injection plan (testing hook).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.config.fault_plan = Some(plan);
        self
    }

    /// Adds an implicitly-critical external call.
    pub fn critical_call(mut self, call: CriticalCall) -> Self {
        self.config.implicit_critical_calls.push(call);
        self
    }

    /// Adds a message-receive library call (§3.4.3 extension).
    pub fn recv_function(mut self, spec: RecvSpec) -> Self {
        self.config.recv_functions.push(spec);
        self
    }

    /// Sets the label-lattice policy (see [`Policy::builder`]).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the policy's implicit-flow handling mode without replacing
    /// the rest of the policy.
    pub fn implicit_flow(mut self, mode: ImplicitFlowMode) -> Self {
        self.config.policy.implicit_flow = mode;
        self
    }

    /// The finished configuration, with external-function lists
    /// sort-normalized (see [`AnalysisConfig::normalized`]) so the order
    /// the setters were called in cannot leak into store manifest keys or
    /// summary content hashes.
    pub fn build_config(self) -> AnalysisConfig {
        self.config.normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_conventions() {
        let c = AnalysisConfig::default();
        assert_eq!(c.engine, Engine::ContextSensitive);
        assert!(c.implicit_critical_calls.contains(&CriticalCall::new("kill", 0)));
        assert!(c.dealloc_functions.iter().any(|f| f == "shmdt"));
        assert_eq!(c.entry, "main");
    }

    #[test]
    fn builder_sets_typed_fields() {
        let c = AnalysisConfig::builder()
            .engine(Engine::Summary)
            .jobs(0)
            .entry("start")
            .budget(Budget { fixpoint_rounds: Some(7), ..Budget::default() })
            .critical_call(CriticalCall::new("reboot", 1))
            .recv_function(RecvSpec::new("recvfrom", 0, 1))
            .build_config();
        assert_eq!(c.engine, Engine::Summary);
        assert_eq!(c.jobs, 1, "jobs must clamp to 1");
        assert_eq!(c.entry, "start");
        assert_eq!(c.budget.fixpoint_rounds, Some(7));
        assert!(c.implicit_critical_calls.contains(&CriticalCall::new("kill", 0)));
        assert!(c.implicit_critical_calls.contains(&CriticalCall::new("reboot", 1)));
        assert!(c.recv_functions.contains(&RecvSpec::new("recvfrom", 0, 1)));
    }

    #[test]
    fn with_engine_overrides_only_engine() {
        let c = AnalysisConfig::with_engine(Engine::Summary);
        assert_eq!(c.engine, Engine::Summary);
        assert_eq!(c.entry, "main");
    }

    #[test]
    fn builder_normalizes_list_order() {
        let forward = AnalysisConfig::builder()
            .critical_call(CriticalCall::new("reboot", 1))
            .critical_call(CriticalCall::new("abort", 0))
            .recv_function(RecvSpec::new("recvfrom", 0, 1))
            .recv_function(RecvSpec::new("mq_receive", 0, 1))
            .build_config();
        let backward = AnalysisConfig::builder()
            .recv_function(RecvSpec::new("mq_receive", 0, 1))
            .recv_function(RecvSpec::new("recvfrom", 0, 1))
            .critical_call(CriticalCall::new("abort", 0))
            .critical_call(CriticalCall::new("reboot", 1))
            .build_config();
        assert_eq!(forward.implicit_critical_calls, backward.implicit_critical_calls);
        assert_eq!(forward.recv_functions, backward.recv_functions);
        let mut sorted = forward.implicit_critical_calls.clone();
        sorted.sort();
        assert_eq!(forward.implicit_critical_calls, sorted);
    }

    #[test]
    fn normalized_sorts_and_dedups_every_list() {
        let c = AnalysisConfig {
            dealloc_functions: vec!["z".into(), "a".into(), "z".into()],
            shm_attach_functions: vec!["shmat".into(), "attach2".into(), "attach2".into()],
            implicit_critical_calls: vec![
                CriticalCall::new("kill", 1),
                CriticalCall::new("kill", 0),
            ],
            ..Default::default()
        }
        .normalized();
        assert_eq!(c.dealloc_functions, vec!["a".to_string(), "z".to_string()]);
        assert_eq!(c.shm_attach_functions, vec!["attach2".to_string(), "shmat".to_string()]);
        assert_eq!(
            c.implicit_critical_calls,
            vec![CriticalCall::new("kill", 0), CriticalCall::new("kill", 1)]
        );
    }

    #[test]
    fn reference_is_single_threaded_summary() {
        let c = AnalysisConfig::reference();
        assert_eq!(c.engine, Engine::Summary);
        assert_eq!(c.jobs, 1);
        assert!(c.budget.is_unlimited());
        assert!(c.fault_plan.is_none());
    }

    #[test]
    fn builder_sets_policy_and_implicit_flow() {
        let c = AnalysisConfig::builder()
            .policy(Policy::builder().label("sensor_b").label("sensor_a").build())
            .implicit_flow(ImplicitFlowMode::Strict)
            .build_config();
        assert!(!c.policy.is_default());
        assert_eq!(c.policy.implicit_flow, ImplicitFlowMode::Strict);
        assert_eq!(c.policy.labels[0].name, "sensor_a");
        assert!(AnalysisConfig::default().policy.is_default());
        assert!(AnalysisConfig::reference().policy.is_default());
    }

    #[test]
    fn normalized_sorts_the_policy() {
        let c = AnalysisConfig {
            policy: Policy {
                labels: vec![
                    crate::policy::LabelDecl::new("z"),
                    crate::policy::LabelDecl::new("a"),
                ],
                declassifiers: vec![("z".into(), "a".into()), ("a".into(), "trusted".into())],
                implicit_flow: ImplicitFlowMode::default(),
            },
            ..Default::default()
        }
        .normalized();
        assert_eq!(c.policy.labels[0].name, "a");
        assert_eq!(c.policy.declassifiers[0], ("a".to_string(), "trusted".to_string()));
    }

    #[test]
    fn with_jobs_sets_and_clamps() {
        assert_eq!(AnalysisConfig::default().jobs, 1);
        assert_eq!(AnalysisConfig::default().with_jobs(8).jobs, 8);
        assert_eq!(AnalysisConfig::default().with_jobs(0).jobs, 1);
    }
}
