//! # safeflow
//!
//! A from-scratch implementation of **SafeFlow** (Kowshik, Roşu, Sha —
//! *Static Analysis to Enforce Safe Value Flow in Embedded Control
//! Systems*, DSN 2006): an annotation-driven static analysis that verifies
//! the **safe value flow** property of embedded control software:
//!
//! > All non-core values flowing into a core component should be monitored
//! > before use in critical computation.
//!
//! The analyzer consumes the core component's C source (restricted subset,
//! §3.2) with four kinds of annotations (§3.1/§3.2.1):
//!
//! * `shminit` on shared-memory initializing functions,
//! * `assume(shmvar(p, size))` / `assume(noncore(p))` post-conditions
//!   declaring shared-memory regions,
//! * `assume(core(p, offset, size))` on monitoring functions,
//! * `assert(safe(x))` on critical data.
//!
//! and runs the paper's three phases: shared-memory pointer identification,
//! language-restriction enforcement (P1–P3, A1/A2 via an Omega-test
//! solver), and an interprocedural, context-sensitive value-flow analysis
//! that reports unmonitored accesses (warnings) and critical-data
//! dependencies (errors, with control-only dependencies flagged as the
//! false-positive candidates the paper triages by hand).
//!
//! # Examples
//!
//! ```
//! use safeflow::{Analyzer, AnalysisConfig};
//!
//! let src = r#"
//!     typedef struct { float control; } SHMData;
//!     SHMData *noncoreCtrl;
//!     void *shmat(int shmid, void *addr, int flags);
//!     void sendControl(float v);
//!
//!     void initComm(void)
//!     /** SafeFlow Annotation shminit */
//!     {
//!         noncoreCtrl = (SHMData *) shmat(0, 0, 0);
//!         /** SafeFlow Annotation
//!             assume(shmvar(noncoreCtrl, sizeof(SHMData)))
//!             assume(noncore(noncoreCtrl))
//!         */
//!     }
//!
//!     int main() {
//!         float output;
//!         initComm();
//!         output = noncoreCtrl->control;   /* unmonitored! */
//!         /** SafeFlow Annotation assert(safe(output)) */
//!         sendControl(output);
//!         return 0;
//!     }
//! "#;
//! let result = Analyzer::new(AnalysisConfig::default())
//!     .analyze_source("core.c", src)
//!     .expect("program parses");
//! assert_eq!(result.report.warnings.len(), 1);
//! assert_eq!(result.report.errors.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod flowgraph;
pub mod policy;
pub mod regions;
pub mod report;
pub mod restrict;
pub mod session;
pub mod shard;
pub mod shmptr;
mod store;
pub mod summary;
pub mod taint;

pub use config::{AnalysisConfig, AnalyzerBuilder, Budget, CriticalCall, Engine, RecvSpec};
pub use engine::CacheStats;
pub use policy::{ImplicitFlowMode, LabelDecl, LabelTable, Policy, PolicyBuilder, MAX_LABELS};
pub use regions::{Region, RegionId, RegionMap};
pub use report::{
    AnalysisReport, Degradation, DegradationKind, DependencyKind, ErrorDependency, FlowNode,
    RegionInfo, Restriction, RestrictionViolation, Warning,
};
pub use safeflow_util::fault::{FaultKind, FaultPlan, FaultSite};
pub use safeflow_util::json::Json;
pub use safeflow_util::metrics::MetricsSnapshot;
pub use session::{AnalysisSession, SessionOutcome, SessionRun};

use safeflow_ir::{build_module, CallGraph, Module};
use safeflow_points_to::PointsTo;
use safeflow_syntax::{Diagnostics, SourceMap, VirtualFs};
use safeflow_util::metrics::{Class, Metrics};
use std::sync::Mutex;

/// A completed analysis: the report plus everything needed to render it.
#[derive(Debug)]
pub struct AnalysisResult {
    /// The findings.
    pub report: AnalysisReport,
    /// Source map for rendering spans.
    pub sources: SourceMap,
    /// Frontend/lowering diagnostics (never contains errors — those abort
    /// the run).
    pub diags: Diagnostics,
    /// The lowered module, for tooling (value-flow graph dumps etc.).
    pub module: Module,
}

impl AnalysisResult {
    /// Renders report + diagnostics as a human-readable block.
    pub fn render(&self) -> String {
        let mut out = self.report.render(&self.sources);
        if !self.diags.is_empty() {
            out.push_str(&self.diags.render_all(&self.sources));
            out.push('\n');
        }
        out
    }
}

/// Errors aborting an analysis run or session operation.
///
/// Non-exhaustive: new variants may appear in future releases, so matches
/// must carry a wildcard arm. Variants that wrap an underlying error expose
/// it through [`std::error::Error::source`].
#[derive(Debug)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The source failed to parse or lower.
    #[non_exhaustive]
    Parse {
        /// Frontend/lowering diagnostics explaining the failure.
        diags: Diagnostics,
        /// Source map for rendering them.
        sources: SourceMap,
    },
    /// An input file could not be read (session entry points only).
    #[non_exhaustive]
    Io {
        /// The file that failed.
        path: std::path::PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The persistent summary store could not be written or created.
    /// (A store that fails to *load* — corrupt, truncated, wrong version —
    /// is not an error: the session degrades to a cold run instead.)
    #[non_exhaustive]
    Store {
        /// What the store operation was doing.
        context: String,
        /// The underlying I/O error, when one exists.
        source: Option<std::io::Error>,
    },
    /// A strict-mode session run degraded because a resource budget was
    /// exhausted (exit code 3 territory).
    #[non_exhaustive]
    Budget {
        /// The degradations the run reported.
        degradations: Vec<Degradation>,
    },
    /// A strict-mode session run degraded because an analysis fault was
    /// contained (exit code 4 territory).
    #[non_exhaustive]
    Fault {
        /// The degradations the run reported.
        degradations: Vec<Degradation>,
    },
}

impl AnalysisError {
    /// The frontend diagnostics, when this is a parse error.
    pub fn diagnostics(&self) -> Option<&Diagnostics> {
        match self {
            AnalysisError::Parse { diags, .. } => Some(diags),
            _ => None,
        }
    }

    fn degradation_summary(degradations: &[Degradation]) -> String {
        let mut kinds: Vec<String> = degradations.iter().map(|d| format!("{:?}", d.kind)).collect();
        kinds.sort();
        kinds.dedup();
        kinds.join(", ")
    }
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Parse { diags, sources } => {
                write!(f, "{}", diags.render_all(sources))
            }
            AnalysisError::Io { path, source } => {
                write!(f, "cannot read `{}`: {source}", path.display())
            }
            AnalysisError::Store { context, source } => match source {
                Some(e) => write!(f, "summary store: {context}: {e}"),
                None => write!(f, "summary store: {context}"),
            },
            AnalysisError::Budget { degradations } => write!(
                f,
                "analysis degraded: budget exhausted ({})",
                AnalysisError::degradation_summary(degradations)
            ),
            AnalysisError::Fault { degradations } => write!(
                f,
                "analysis degraded: fault contained ({})",
                AnalysisError::degradation_summary(degradations)
            ),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Io { source, .. } => Some(source),
            AnalysisError::Store { source: Some(e), .. } => Some(e),
            _ => None,
        }
    }
}

/// Compiles the label policy for `module`: config-declared labels merged
/// with annotation-declared ones (`label(...)` / `declassifier(...)`
/// facts), then `channel(...)` region labels and critical-call clearances
/// bound. The default two-point policy compiles to the empty table, under
/// which everything downstream reduces to the historical
/// monitored/unmonitored behavior byte-for-byte.
///
/// The table is a pure function of `(config, module, regions)`, so shard
/// workers compiling it independently (see [`crate::shard`]) get exactly
/// the table the coordinator's final in-process run uses.
pub(crate) fn compile_policy(
    config: &AnalysisConfig,
    module: &Module,
    regions: &RegionMap,
) -> (LabelTable, Vec<String>) {
    use safeflow_syntax::annot::Annotation;
    let mut extra_labels: Vec<LabelDecl> = Vec::new();
    let mut extra_declass: Vec<(String, String)> = Vec::new();
    for f in &module.functions {
        for ann in &f.annotations {
            match ann {
                Annotation::Label { name, below, .. } => extra_labels.push(match below {
                    Some(b) => LabelDecl::above(name.clone(), vec![b.clone()]),
                    None => LabelDecl::new(name.clone()),
                }),
                Annotation::Declassifier { from, to, .. } => {
                    extra_declass.push((from.clone(), to.clone()));
                }
                _ => {}
            }
        }
    }
    let (mut table, mut notes) = config.policy.compile(&extra_labels, &extra_declass);
    for r in regions.iter() {
        if let Some(label) = &r.label {
            match table.mask_of(label) {
                Some(mask) => table.set_region_label(r.id.0, mask),
                None => notes.push(format!(
                    "channel({}, ...) names undeclared label `{label}`; region treated as untrusted",
                    r.name
                )),
            }
        }
    }
    for call in &config.implicit_critical_calls {
        if let Some(clearance) = &call.clearance {
            if table.mask_of(clearance).is_none() {
                notes.push(format!(
                    "critical call `{}` names undeclared clearance label `{clearance}`; treated as trusted",
                    call.name
                ));
            }
        }
    }
    (table, notes)
}

impl AnalyzerBuilder {
    /// Finishes the builder into an [`Analyzer`] over the configuration.
    pub fn build(self) -> Analyzer {
        Analyzer::new(self.build_config())
    }
}

/// The SafeFlow analyzer.
///
/// Construct with a config, then call [`Analyzer::analyze_source`] (single
/// file) or [`Analyzer::analyze_program`] (multi-file with `#include`s).
///
/// The analyzer keeps a content-hashed summary cache across calls: when
/// the summary engine re-analyzes a program whose functions (and analysis
/// environment) hash identically to a previous run, their summaries are
/// replayed instead of recomputed — see [`crate::engine`] and
/// [`Analyzer::cache_stats`]. With `config.jobs > 1` the summary and
/// restriction phases run on a work-stealing thread pool; reports are
/// identical for every worker count.
#[derive(Debug, Default)]
pub struct Analyzer {
    config: AnalysisConfig,
    cache: engine::SummaryCache,
    last_metrics: Mutex<MetricsSnapshot>,
}

impl Analyzer {
    /// Creates an analyzer with `config`.
    pub fn new(config: AnalysisConfig) -> Analyzer {
        Analyzer {
            config,
            cache: engine::SummaryCache::default(),
            last_metrics: Mutex::new(MetricsSnapshot::default()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Mutable access to the configuration, e.g. to arm a
    /// [`FaultPlan`] or tighten the [`Budget`] between runs while keeping
    /// the summary cache warm.
    pub fn config_mut(&mut self) -> &mut AnalysisConfig {
        &mut self.config
    }

    /// Summary-cache hit/miss counters, cumulative over every analysis
    /// this analyzer has run (the context-sensitive engine does not use
    /// the cache and never moves them).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The metrics recorded by the most recent [`Analyzer::analyze_module`]
    /// run (empty before the first run). Each run starts from a fresh
    /// registry, so `work`-class counters reflect that run's cache state
    /// alone — see [`safeflow_util::metrics`] for the determinism classes.
    pub fn last_metrics(&self) -> MetricsSnapshot {
        self.last_metrics.lock().unwrap().clone()
    }

    /// Composes the full machine-readable report for `result` (which must
    /// come from this analyzer's most recent run): findings, configured
    /// budget limits, cumulative cache stats, and the run's metrics, in
    /// one stable schema — `safeflow-report-v1` for default-policy runs
    /// (frozen), `safeflow-report-v2` when a label policy is in effect
    /// (see [`AnalysisReport::schema`]).
    ///
    /// Everything except the `metrics.sched`, `metrics.dist`, and
    /// `metrics.timings_ns` sections is byte-identical across `--jobs`
    /// counts; comparing cache-warm against cache-cold runs additionally
    /// excludes `metrics.work` and `cache`.
    pub fn report_json(&self, result: &AnalysisResult) -> Json {
        self.report_json_with(result, &self.last_metrics())
    }

    /// [`Analyzer::report_json`] with an explicit metrics snapshot —
    /// sessions use this to fold their store bookkeeping into the
    /// document's `metrics` object.
    pub fn report_json_with(&self, result: &AnalysisResult, metrics: &MetricsSnapshot) -> Json {
        let mut o = Json::obj();
        o.set("schema", result.report.schema());
        o.set("exit_code", u64::from(result.report.exit_code()));
        o.set("report", result.report.to_json(&result.sources));
        o.set("budget", self.budget_json());
        o.set("cache", self.cache_json());
        o.set("metrics", metrics.to_json());
        o
    }

    /// The `budget` section of the report document.
    pub(crate) fn budget_json(&self) -> Json {
        let mut budget = Json::obj();
        budget.set("solver_steps", self.config.budget.solver_steps);
        budget.set("fixpoint_rounds", self.config.budget.fixpoint_rounds);
        budget.set("max_function_insts", self.config.budget.max_function_insts);
        budget.set("deadline_ms", self.config.budget.deadline_ms);
        budget
    }

    /// The `cache` section of the report document (cumulative stats).
    pub(crate) fn cache_json(&self) -> Json {
        let cs = self.cache_stats();
        let mut cache = Json::obj();
        cache.set("hits", cs.hits);
        cache.set("misses", cs.misses);
        cache
    }

    /// Seeds the in-memory summary cache from a persistent store (no
    /// effect on hit/miss stats until a run probes the entries).
    pub(crate) fn cache_seed(&self, entries: Vec<(u64, std::sync::Arc<Vec<summary::Summary>>)>) {
        self.cache.seed(entries);
    }

    /// Exports the most recent run's live summary entries for persistence.
    pub(crate) fn cache_export_live(&self) -> Vec<(u64, std::sync::Arc<Vec<summary::Summary>>)> {
        self.cache.export_live()
    }

    /// Analyzes a single self-contained source file.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] when the source fails to parse or lower.
    pub fn analyze_source(&self, name: &str, src: &str) -> Result<AnalysisResult, AnalysisError> {
        let mut fs = VirtualFs::new();
        fs.add(name, src);
        self.analyze_program(name, &fs)
    }

    /// Analyzes `main_name` from `fs`, resolving `#include`s against `fs`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] when the source fails to parse or lower.
    pub fn analyze_program(
        &self,
        main_name: &str,
        fs: &VirtualFs,
    ) -> Result<AnalysisResult, AnalysisError> {
        let parsed = safeflow_syntax::parse_program_jobs(main_name, fs, self.config.jobs.max(1));
        let mut diags = parsed.diags;
        let sources = parsed.sources;
        if diags.has_errors() {
            return Err(AnalysisError::Parse { diags, sources });
        }
        let module = build_module(&parsed.unit, &mut diags);
        if diags.has_errors() {
            return Err(AnalysisError::Parse { diags, sources });
        }
        let report = self.analyze_module(&module, &mut diags);
        if diags.has_errors() {
            return Err(AnalysisError::Parse { diags, sources });
        }
        Ok(AnalysisResult { report, sources, diags, module })
    }

    /// Runs the three analysis phases over an already-lowered module.
    ///
    /// Failures inside the phases do not abort the run: contained panics
    /// and exhausted budgets degrade the affected scopes conservatively
    /// and surface as [`Degradation`] entries on the report (see
    /// [`AnalysisReport::exit_code`]).
    pub fn analyze_module(&self, module: &Module, diags: &mut Diagnostics) -> AnalysisReport {
        // Fresh registry per run: `work`-class counters must reflect this
        // run's cache state alone (see `safeflow_util::metrics`).
        let metrics = Metrics::new();
        metrics.add_many(Class::Counter, &[("module.functions", module.functions.len() as u64)]);
        // One wall-clock deadline for the whole run (the only
        // machine-dependent budget; determinism tests never set it).
        let deadline = self
            .config
            .budget
            .deadline_ms
            .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
        // Region model + static InitCheck (§3.2.1).
        let regions = metrics.time("phase.regions", || {
            regions::extract_regions(module, &self.config.shm_attach_functions, diags)
        });
        let (table, mut policy_notes) =
            metrics.time("phase.policy", || compile_policy(&self.config, module, &regions));
        // Phase 1: shared-memory pointer identification.
        let shm = metrics.time("phase.shmptr", || shmptr::identify_shm_pointers(module, &regions));
        // Phase 2: language restrictions.
        let callgraph = metrics.time("phase.callgraph", || CallGraph::build(module));
        let (violations, mut degradations) = metrics.time("phase.restrict", || {
            restrict::check_restrictions(
                module,
                &regions,
                &shm,
                &callgraph,
                &self.config,
                deadline,
                &metrics,
            )
        });
        // Phase 3: warnings + critical-data value flow.
        let pt = metrics.time("phase.points_to", || PointsTo::analyze(module));
        let results = metrics.time("phase.value_flow", || match self.config.engine {
            Engine::ContextSensitive => taint::analyze_taint(
                module,
                &regions,
                &shm,
                &pt,
                &self.config,
                &table,
                deadline,
                &metrics,
            ),
            Engine::Summary => summary::analyze_summaries(
                module,
                &regions,
                &shm,
                &pt,
                &self.config,
                &table,
                &self.cache,
                deadline,
                &metrics,
            ),
        });
        degradations.extend(results.degradations.iter().cloned());

        // Count every annotation fact bound anywhere in the module.
        let annotation_count = module.functions.iter().map(|f| f.annotations.len()).sum::<usize>()
            + module
                .functions
                .iter()
                .flat_map(|f| f.insts.iter())
                .filter(|i| matches!(i.kind, safeflow_ir::InstKind::AssertSafe { .. }))
                .count();

        let mut init_check = regions.init_check.clone();
        policy_notes.sort();
        policy_notes.dedup();
        init_check.extend(policy_notes);
        init_check.extend(results.notes.iter().cloned());

        // Per-policy implicit-flow handling (post-engine so both engines —
        // and their caches — share one implementation): `strict` treats
        // control-only dependencies as definite errors, `taint-only` drops
        // them, `report-separately` (the default, the paper's behavior)
        // keeps them flagged as false-positive candidates.
        let mut errors = results.errors;
        match table.mode() {
            ImplicitFlowMode::Strict => {
                for e in &mut errors {
                    e.kind = DependencyKind::Data;
                }
            }
            ImplicitFlowMode::TaintOnly => {
                errors.retain(|e| e.kind != DependencyKind::ControlOnly);
            }
            ImplicitFlowMode::ReportSeparately => {}
        }

        let mut report = AnalysisReport {
            regions: regions
                .iter()
                .map(|r| RegionInfo {
                    id: r.id,
                    name: r.name.clone(),
                    size: r.size,
                    noncore: r.noncore,
                    offset: r.offset,
                })
                .collect(),
            warnings: results.warnings,
            errors,
            violations,
            init_check,
            annotation_count,
            contexts_analyzed: results.contexts_analyzed,
            degradations,
            labeled: !table.is_default(),
        };
        report.canonicalize();
        // Report counts are covered by the byte-identity contract, so they
        // are `Counter`-class by construction.
        metrics.add_many(
            Class::Counter,
            &[
                ("report.warnings", report.warnings.len() as u64),
                ("report.errors", report.errors.len() as u64),
                ("report.violations", report.violations.len() as u64),
                ("report.degradations", report.degradations.len() as u64),
            ],
        );
        *self.last_metrics.lock().unwrap() = metrics.snapshot();
        report
    }
}
