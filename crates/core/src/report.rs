//! Report model: everything SafeFlow tells the developer.
//!
//! Three result categories, exactly as the paper's evaluation counts them
//! (Table 1):
//!
//! * **warnings** — unmonitored reads of non-core shared memory ("a warning
//!   is reported for each unsafe access to shared memory, without any false
//!   positives or false negatives", §3.3);
//! * **errors** — critical data that is data- or control-dependent on an
//!   unmonitored non-core value; control-only dependencies are flagged as
//!   false-positive candidates needing manual triage via the value-flow
//!   path (§3.4.1, §4);
//! * **violations** — breaches of the language restrictions P1–P3/A1–A2
//!   (§3.2).

use crate::regions::RegionId;
use safeflow_syntax::source::SourceMap;
use safeflow_syntax::span::Span;
use safeflow_util::json::Json;
use std::fmt;
use std::sync::Arc;

/// One step in a value-flow path (newest first when linked).
#[derive(Debug, Clone)]
pub struct FlowNode {
    /// What happened at this step (e.g. "read of non-core region
    /// `noncoreCtrl`").
    pub what: String,
    /// Where.
    pub span: Span,
    /// Previous step (towards the taint source).
    pub prev: Option<Arc<FlowNode>>,
}

impl FlowNode {
    /// Creates a source node.
    pub fn source(what: impl Into<String>, span: Span) -> Arc<FlowNode> {
        Arc::new(FlowNode { what: what.into(), span, prev: None })
    }

    /// Creates a node chained onto `prev`.
    pub fn step(what: impl Into<String>, span: Span, prev: Arc<FlowNode>) -> Arc<FlowNode> {
        Arc::new(FlowNode { what: what.into(), span, prev: Some(prev) })
    }

    /// The path from the source to this node, oldest first.
    pub fn path(&self) -> Vec<(String, Span)> {
        let mut out = Vec::new();
        let mut cur = Some(self);
        while let Some(n) = cur {
            out.push((n.what.clone(), n.span));
            cur = n.prev.as_deref();
        }
        out.reverse();
        out
    }
}

/// An unmonitored read of a non-core shared-memory region.
#[derive(Debug, Clone)]
pub struct Warning {
    /// Function containing the access.
    pub function: String,
    /// The non-core region accessed.
    pub region: RegionId,
    /// Region name (pointer variable it was declared through).
    pub region_name: String,
    /// Location of the access.
    pub span: Span,
    /// The policy label the read carries — `None` under the default
    /// two-point policy (which keeps v1 reports byte-identical).
    pub label: Option<String>,
}

/// How critical data depends on an unsafe value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DependencyKind {
    /// Pure control dependence: the unsafe value only steered which path
    /// computed the critical data. These are the paper's false-positive
    /// candidates (§3.4.1, all observed FPs in §4 were of this kind).
    ControlOnly,
    /// Data dependence (possibly alongside control dependence).
    Data,
}

/// Critical data depending on an unmonitored non-core value.
#[derive(Debug, Clone)]
pub struct ErrorDependency {
    /// The asserted variable (or `function:arg` for implicit critical
    /// call arguments like `kill:0`).
    pub critical: String,
    /// Function containing the assertion.
    pub function: String,
    /// Location of the assertion / critical call.
    pub span: Span,
    /// Data vs control-only.
    pub kind: DependencyKind,
    /// The policy label that leaked past the sink's clearance — `None`
    /// under the default two-point policy.
    pub label: Option<String>,
    /// Value-flow path from the unmonitored access to the critical datum
    /// (the triage aid the paper's users inspected manually).
    pub flow: Option<Arc<FlowNode>>,
}

/// Which restriction a violation breaks. The derived order (`P1 < P2 <
/// P3 < A1 < A2`) is part of the canonical report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Restriction {
    /// Shared memory deallocated before the end of `main`.
    P1,
    /// Address of a shared-memory pointer taken / pointer stored outside a
    /// named variable.
    P2,
    /// Incompatible cast of a shared-memory pointer (or cast to integer).
    P3,
    /// Array index not provably within bounds.
    A1,
    /// Loop-indexed shared array with non-affine index/bounds.
    A2,
}

impl fmt::Display for Restriction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Restriction::P1 => "P1",
            Restriction::P2 => "P2",
            Restriction::P3 => "P3",
            Restriction::A1 => "A1",
            Restriction::A2 => "A2",
        };
        write!(f, "{s}")
    }
}

/// A breach of the shared-memory language restrictions.
#[derive(Debug, Clone)]
pub struct RestrictionViolation {
    /// Which rule.
    pub restriction: Restriction,
    /// Function containing the violation.
    pub function: String,
    /// Explanation.
    pub message: String,
    /// Location.
    pub span: Span,
}

/// Why part of an analysis degraded (the paper's conservatism contract
/// extended to the tool's own failures: degrade loudly, never silently).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationKind {
    /// A resource budget ran out; the affected scope was treated
    /// conservatively (facts unknown-unsafe, obligations unproven).
    BudgetExhausted,
    /// The analyzer itself panicked while analyzing the scope; its results
    /// degraded to conservative top and the fault is surfaced here.
    InternalError,
}

/// A note that some functions were analyzed in degraded (conservative)
/// mode. Findings attributed to these functions may be missing or
/// over-approximate; findings elsewhere are unaffected or strictly more
/// conservative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// Internal error vs budget exhaustion.
    pub kind: DegradationKind,
    /// The affected functions, sorted by name.
    pub functions: Vec<String>,
    /// Deterministic detail (panic message, exhausted bound, ...).
    pub detail: String,
}

/// Summary of one shared-memory region for the report.
#[derive(Debug, Clone)]
pub struct RegionInfo {
    /// Region id.
    pub id: RegionId,
    /// Pointer variable name.
    pub name: String,
    /// Total byte size.
    pub size: u64,
    /// Whether non-core components may write it.
    pub noncore: bool,
    /// Constant byte offset within its segment, when the initializer was
    /// statically evaluable.
    pub offset: Option<i64>,
}

/// The full output of a SafeFlow run.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Shared-memory regions discovered from `shminit` annotations.
    pub regions: Vec<RegionInfo>,
    /// Unmonitored non-core reads.
    pub warnings: Vec<Warning>,
    /// Critical-data dependencies.
    pub errors: Vec<ErrorDependency>,
    /// P1–P3/A1–A2 violations.
    pub violations: Vec<RestrictionViolation>,
    /// Results of the static `InitCheck` (region overlap) verification.
    pub init_check: Vec<String>,
    /// Number of SafeFlow annotation facts bound during the run.
    pub annotation_count: usize,
    /// Phase-3 work metric: distinct `(function, context)` analyses for the
    /// context-sensitive engine, or function summaries computed for the
    /// summary engine (the §3.3 complexity trade-off, measured).
    pub contexts_analyzed: usize,
    /// Scopes analyzed in degraded (conservative) mode; empty on a clean
    /// run. A non-empty list means "verified as far as possible", not
    /// "verified safe" — the CLI maps it to a distinct exit code.
    pub degradations: Vec<Degradation>,
    /// Whether the run used a non-default label policy. Drives the JSON
    /// schema choice: labeled runs emit `safeflow-report-v2` (per-finding
    /// `label` and `flow_kind` members); default-policy runs keep emitting
    /// `safeflow-report-v1` byte-for-byte.
    pub labeled: bool,
}

impl AnalysisReport {
    /// Errors that are data dependencies (definite).
    pub fn data_errors(&self) -> impl Iterator<Item = &ErrorDependency> {
        self.errors.iter().filter(|e| e.kind == DependencyKind::Data)
    }

    /// Errors that are control-only (false-positive candidates, paper §4).
    pub fn control_only_errors(&self) -> impl Iterator<Item = &ErrorDependency> {
        self.errors.iter().filter(|e| e.kind == DependencyKind::ControlOnly)
    }

    /// Whether the component passed with no findings at all — and no
    /// degradations: a degraded run is "verified as far as possible",
    /// never "verified safe".
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty()
            && self.errors.is_empty()
            && self.violations.is_empty()
            && self.degradations.is_empty()
    }

    /// The JSON schema identifier this report's [`AnalysisReport::to_json`]
    /// document conforms to. v1 is frozen; v2 is a strict superset adding
    /// per-finding `label` and `flow_kind` members. A report is v2 exactly
    /// when a non-default policy (declared labels, declassifiers, or a
    /// non-default implicit-flow mode) was in effect.
    pub fn schema(&self) -> &'static str {
        if self.labeled {
            "safeflow-report-v2"
        } else {
            "safeflow-report-v1"
        }
    }

    /// The documented CLI exit code for this report:
    ///
    /// | code | meaning |
    /// |------|---------|
    /// | 0 | clean — verified safe |
    /// | 1 | warnings only |
    /// | 2 | errors or restriction violations |
    /// | 3 | internal error contained — results incomplete |
    /// | 4 | budget exhausted — verified as far as the budget allowed |
    ///
    /// Degradations dominate findings (3 > 4 > 2 > 1 > 0): a degraded
    /// report may be missing findings, so "there are errors" is less
    /// informative than "the run did not complete cleanly". The rendered
    /// report still lists every finding either way.
    pub fn exit_code(&self) -> u8 {
        if self.degradations.iter().any(|d| d.kind == DegradationKind::InternalError) {
            3
        } else if !self.degradations.is_empty() {
            4
        } else if !self.errors.is_empty() || !self.violations.is_empty() {
            2
        } else if !self.warnings.is_empty() {
            1
        } else {
            0
        }
    }

    /// Sorts every finding list into the canonical order: `(file, span,
    /// kind, function, detail)`. The analyzer calls this before returning,
    /// so rendered reports are byte-identical regardless of worker count,
    /// scheduling, or cache state. Stable sorts, so equal keys keep their
    /// producer order.
    pub fn canonicalize(&mut self) {
        self.warnings.sort_by(|a, b| {
            span_key(a.span)
                .cmp(&span_key(b.span))
                .then_with(|| a.region.cmp(&b.region))
                .then_with(|| a.function.cmp(&b.function))
        });
        self.violations.sort_by(|a, b| {
            span_key(a.span)
                .cmp(&span_key(b.span))
                .then_with(|| a.restriction.cmp(&b.restriction))
                .then_with(|| a.function.cmp(&b.function))
                .then_with(|| a.message.cmp(&b.message))
        });
        self.errors.sort_by(|a, b| {
            span_key(a.span)
                .cmp(&span_key(b.span))
                .then_with(|| a.critical.cmp(&b.critical))
                .then_with(|| a.function.cmp(&b.function))
                .then_with(|| a.kind.cmp(&b.kind))
        });
        for d in &mut self.degradations {
            d.functions.sort();
            d.functions.dedup();
        }
        self.degradations.sort_by(|a, b| {
            a.kind
                .cmp(&b.kind)
                .then_with(|| a.functions.cmp(&b.functions))
                .then_with(|| a.detail.cmp(&b.detail))
        });
        self.degradations.dedup();
    }

    /// Renders the findings as a JSON object with a stable schema and
    /// ordering. The report is canonicalized before the analyzer returns
    /// it, so this document is byte-identical for any worker count or
    /// cache state — the machine-readable face of the same determinism
    /// contract [`AnalysisReport::render`] honors.
    pub fn to_json(&self, sources: &SourceMap) -> Json {
        let loc = |span: Span| sources.describe(span);
        let mut o = Json::obj();
        let mut summary = Json::obj();
        summary.set("regions", self.regions.len());
        summary.set("warnings", self.warnings.len());
        summary.set("errors", self.errors.len());
        summary.set("data_errors", self.data_errors().count());
        summary.set("control_only_errors", self.control_only_errors().count());
        summary.set("violations", self.violations.len());
        summary.set("degradations", self.degradations.len());
        summary.set("annotations", self.annotation_count);
        summary.set("contexts_analyzed", self.contexts_analyzed);
        o.set("summary", summary);
        o.set(
            "regions",
            self.regions
                .iter()
                .map(|r| {
                    let mut j = Json::obj();
                    j.set("name", r.name.as_str());
                    j.set("size", r.size);
                    j.set("noncore", r.noncore);
                    j.set("offset", r.offset.map(Json::Int));
                    j
                })
                .collect::<Vec<_>>(),
        );
        o.set(
            "init_check",
            self.init_check.iter().map(|c| Json::from(c.as_str())).collect::<Vec<_>>(),
        );
        o.set(
            "warnings",
            self.warnings
                .iter()
                .map(|w| {
                    let mut j = Json::obj();
                    j.set("function", w.function.as_str());
                    j.set("region", w.region_name.as_str());
                    if self.labeled {
                        j.set("label", w.label.as_deref().map(Json::from));
                    }
                    j.set("location", loc(w.span));
                    j
                })
                .collect::<Vec<_>>(),
        );
        o.set(
            "violations",
            self.violations
                .iter()
                .map(|v| {
                    let mut j = Json::obj();
                    j.set("restriction", v.restriction.to_string());
                    j.set("function", v.function.as_str());
                    j.set("message", v.message.as_str());
                    j.set("location", loc(v.span));
                    j
                })
                .collect::<Vec<_>>(),
        );
        o.set(
            "errors",
            self.errors
                .iter()
                .map(|e| {
                    let mut j = Json::obj();
                    j.set("critical", e.critical.as_str());
                    j.set("function", e.function.as_str());
                    j.set(
                        "kind",
                        match e.kind {
                            DependencyKind::Data => "data",
                            DependencyKind::ControlOnly => "control-only",
                        },
                    );
                    if self.labeled {
                        j.set(
                            "flow_kind",
                            match e.kind {
                                DependencyKind::Data => "explicit",
                                DependencyKind::ControlOnly => "implicit",
                            },
                        );
                        j.set("label", e.label.as_deref().map(Json::from));
                    }
                    j.set("location", loc(e.span));
                    j.set(
                        "flow",
                        e.flow
                            .as_ref()
                            .map(|f| {
                                f.path()
                                    .into_iter()
                                    .map(|(what, span)| {
                                        let mut n = Json::obj();
                                        n.set("what", what);
                                        n.set("location", loc(span));
                                        n
                                    })
                                    .collect::<Vec<_>>()
                            })
                            .unwrap_or_default(),
                    );
                    j
                })
                .collect::<Vec<_>>(),
        );
        o.set(
            "degradations",
            self.degradations
                .iter()
                .map(|d| {
                    let mut j = Json::obj();
                    j.set(
                        "kind",
                        match d.kind {
                            DegradationKind::BudgetExhausted => "budget-exhausted",
                            DegradationKind::InternalError => "internal-error",
                        },
                    );
                    j.set(
                        "functions",
                        d.functions.iter().map(|f| Json::from(f.as_str())).collect::<Vec<_>>(),
                    );
                    j.set("detail", d.detail.as_str());
                    j
                })
                .collect::<Vec<_>>(),
        );
        o
    }

    /// Renders the report against `sources` as a human-readable block.
    pub fn render(&self, sources: &SourceMap) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "SafeFlow report: {} region(s), {} warning(s), {} error(s) ({} data, {} control-only), {} restriction violation(s)\n",
            self.regions.len(),
            self.warnings.len(),
            self.errors.len(),
            self.data_errors().count(),
            self.control_only_errors().count(),
            self.violations.len(),
        ));
        if !self.degradations.is_empty() {
            out.push_str(&format!(
                "  DEGRADED RUN: {} scope(s) analyzed conservatively — \
                 findings below are \"as far as possible\", not \"verified safe\"\n",
                self.degradations.len()
            ));
            for d in &self.degradations {
                out.push_str(&format!(
                    "    {}: {} (functions: {})\n",
                    match d.kind {
                        DegradationKind::InternalError => "internal error (contained)",
                        DegradationKind::BudgetExhausted => "budget exhausted",
                    },
                    d.detail,
                    if d.functions.is_empty() { "-".to_string() } else { d.functions.join(", ") },
                ));
            }
        }
        for r in &self.regions {
            out.push_str(&format!(
                "  region `{}`: {} bytes, {}{}\n",
                r.name,
                r.size,
                if r.noncore { "non-core" } else { "core" },
                match r.offset {
                    Some(o) => format!(", segment offset {o}"),
                    None => String::new(),
                }
            ));
        }
        for c in &self.init_check {
            out.push_str(&format!("  init-check: {c}\n"));
        }
        for w in &self.warnings {
            match &w.label {
                Some(label) => out.push_str(&format!(
                    "  warning: read of non-core region `{}` (label `{}`) in `{}` [{}]\n",
                    w.region_name,
                    label,
                    w.function,
                    sources.describe(w.span)
                )),
                None => out.push_str(&format!(
                    "  warning: unmonitored read of non-core region `{}` in `{}` [{}]\n",
                    w.region_name,
                    w.function,
                    sources.describe(w.span)
                )),
            }
        }
        for v in &self.violations {
            out.push_str(&format!(
                "  violation [{}]: {} in `{}` [{}]\n",
                v.restriction,
                v.message,
                v.function,
                sources.describe(v.span)
            ));
        }
        for e in &self.errors {
            let dep = match e.kind {
                DependencyKind::Data => "is data-dependent",
                DependencyKind::ControlOnly => "is control-dependent (false-positive candidate)",
            };
            match &e.label {
                Some(label) => out.push_str(&format!(
                    "  ERROR: critical `{}` in `{}` {} on value labeled `{}` [{}]\n",
                    e.critical,
                    e.function,
                    dep,
                    label,
                    sources.describe(e.span)
                )),
                None => out.push_str(&format!(
                    "  ERROR: critical `{}` in `{}` {} on unmonitored non-core value [{}]\n",
                    e.critical,
                    e.function,
                    dep,
                    sources.describe(e.span)
                )),
            }
            if let Some(flow) = &e.flow {
                for (i, (what, span)) in flow.path().iter().enumerate() {
                    out.push_str(&format!(
                        "      {}{} [{}]\n",
                        if i == 0 { "source: " } else { "  then: " },
                        what,
                        sources.describe(*span)
                    ));
                }
            }
        }
        out
    }
}

fn span_key(s: Span) -> (u32, u32, u32) {
    (s.file.0, s.lo, s.hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_sorts_by_file_span_kind() {
        let sp = |lo: u32| Span::new(safeflow_syntax::span::FileId(0), lo, lo + 1);
        let mk = |r: Restriction, lo: u32, f: &str| RestrictionViolation {
            restriction: r,
            function: f.into(),
            message: String::new(),
            span: sp(lo),
        };
        let mut rep = AnalysisReport {
            violations: vec![
                mk(Restriction::A1, 20, "b"),
                mk(Restriction::P2, 5, "a"),
                mk(Restriction::P1, 5, "a"),
                mk(Restriction::A2, 20, "b"),
            ],
            ..AnalysisReport::default()
        };
        rep.canonicalize();
        let order: Vec<(u32, Restriction)> =
            rep.violations.iter().map(|v| (v.span.lo, v.restriction)).collect();
        assert_eq!(
            order,
            vec![
                (5, Restriction::P1),
                (5, Restriction::P2),
                (20, Restriction::A1),
                (20, Restriction::A2),
            ]
        );
    }

    #[test]
    fn flow_path_orders_source_first() {
        let a = FlowNode::source("read region", Span::dummy());
        let b = FlowNode::step("assigned to x", Span::dummy(), a);
        let c = FlowNode::step("returned from decision", Span::dummy(), b);
        let path = c.path();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0].0, "read region");
        assert_eq!(path[2].0, "returned from decision");
    }

    #[test]
    fn report_classification() {
        let mut r = AnalysisReport::default();
        assert!(r.is_clean());
        r.errors.push(ErrorDependency {
            critical: "output".into(),
            function: "main".into(),
            span: Span::dummy(),
            kind: DependencyKind::Data,
            label: None,
            flow: None,
        });
        r.errors.push(ErrorDependency {
            critical: "mode".into(),
            function: "main".into(),
            span: Span::dummy(),
            kind: DependencyKind::ControlOnly,
            label: None,
            flow: None,
        });
        assert_eq!(r.data_errors().count(), 1);
        assert_eq!(r.control_only_errors().count(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn exit_codes_follow_severity_order() {
        let mut r = AnalysisReport::default();
        assert_eq!(r.exit_code(), 0);
        r.warnings.push(Warning {
            function: "main".into(),
            region: RegionId(0),
            region_name: "n".into(),
            span: Span::dummy(),
            label: None,
        });
        assert_eq!(r.exit_code(), 1);
        r.errors.push(ErrorDependency {
            critical: "output".into(),
            function: "main".into(),
            span: Span::dummy(),
            kind: DependencyKind::Data,
            label: None,
            flow: None,
        });
        assert_eq!(r.exit_code(), 2);
        r.degradations.push(Degradation {
            kind: DegradationKind::BudgetExhausted,
            functions: vec!["f".into()],
            detail: "solver step budget".into(),
        });
        assert_eq!(r.exit_code(), 4);
        r.degradations.push(Degradation {
            kind: DegradationKind::InternalError,
            functions: vec!["g".into()],
            detail: "panic".into(),
        });
        assert_eq!(r.exit_code(), 3);
        assert!(!r.is_clean());
    }

    #[test]
    fn degradations_render_and_canonicalize() {
        let mut r = AnalysisReport::default();
        r.degradations.push(Degradation {
            kind: DegradationKind::InternalError,
            functions: vec!["zeta".into(), "alpha".into(), "alpha".into()],
            detail: "injected".into(),
        });
        r.degradations.push(Degradation {
            kind: DegradationKind::BudgetExhausted,
            functions: vec!["beta".into()],
            detail: "rounds".into(),
        });
        r.canonicalize();
        assert_eq!(r.degradations[0].kind, DegradationKind::BudgetExhausted);
        assert_eq!(r.degradations[1].functions, vec!["alpha".to_string(), "zeta".to_string()]);
        let text = r.render(&SourceMap::new());
        assert!(text.contains("DEGRADED RUN: 2 scope(s)"));
        assert!(text.contains("internal error (contained): injected (functions: alpha, zeta)"));
        assert!(text.contains("budget exhausted: rounds (functions: beta)"));
    }

    #[test]
    fn render_mentions_everything() {
        let mut r = AnalysisReport::default();
        r.regions.push(RegionInfo {
            id: RegionId(0),
            name: "noncoreCtrl".into(),
            size: 12,
            noncore: true,
            offset: Some(12),
        });
        r.warnings.push(Warning {
            function: "main".into(),
            region: RegionId(0),
            region_name: "noncoreCtrl".into(),
            span: Span::dummy(),
            label: None,
        });
        let sm = SourceMap::new();
        let text = r.render(&sm);
        assert!(text.contains("1 warning"));
        assert!(text.contains("noncoreCtrl"));
        assert!(text.contains("non-core"));
    }
}
